//! Workspace umbrella for the SmartTrack reproduction.
//!
//! This package exists to host the cross-crate integration tests in `tests/`
//! and the runnable examples in `examples/`. The actual library lives in the
//! [`smarttrack`] facade crate and the `smarttrack-*` substrate crates.
//!
//! Start with the documentation under `docs/`:
//!
//! * `docs/ARCHITECTURE.md` — the crate map, the `Engine`/`Session`
//!   ingestion dataflow every driver sits on, and where new detectors,
//!   formats, and workloads plug in;
//! * `docs/TRACE_FORMATS.md` — the normative spec of the four trace
//!   serialization formats (native line, STD/`RAPID`, CSV, and the STB
//!   binary format with its byte-level layout).

pub use smarttrack;
pub use smarttrack_clock;
pub use smarttrack_detect;
pub use smarttrack_runtime;
pub use smarttrack_trace;
pub use smarttrack_vindicate;
pub use smarttrack_workloads;
