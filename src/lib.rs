//! Workspace umbrella for the SmartTrack reproduction.
//!
//! This package exists to host the cross-crate integration tests in `tests/`
//! and the runnable examples in `examples/`. The actual library lives in the
//! [`smarttrack`] facade crate and the `smarttrack-*` substrate crates.

pub use smarttrack;
pub use smarttrack_clock;
pub use smarttrack_detect;
pub use smarttrack_runtime;
pub use smarttrack_trace;
pub use smarttrack_vindicate;
pub use smarttrack_workloads;
