//! Integration tests for the parallel analyses (§5.1).
//!
//! Three layers of evidence that the concurrent metadata is correct:
//!
//! 1. **Deterministic differential**: fed one event at a time in trace order,
//!    the concurrent analyses must equal their sequential counterparts
//!    exactly — races, event ids, and FTO case counters (proptest over
//!    random traces).
//! 2. **Concurrent soundness trials**: running real OS threads, programs
//!    that are race-free under *every* interleaving must never produce a
//!    report, and programs racy under every interleaving always must.
//! 3. **Recorded-linearization cross-check**: the online report agrees with
//!    a sequential analysis of the driver's recorded interleaving.

use proptest::prelude::*;
use smarttrack_clock::ThreadId;
use smarttrack_detect::{run_detector, Detector, FtoCase, FtoHb, SmartTrackWdc};
use smarttrack_parallel::{
    feed_trace, run_online, ConcurrentFtoHb, ConcurrentSmartTrackWdc, OnlineAnalysis, WorldSpec,
};
use smarttrack_runtime::{Program, ThreadSpec};
use smarttrack_trace::gen::RandomTraceSpec;
use smarttrack_trace::{LockId, Trace, VarId};

fn t(i: u32) -> ThreadId {
    ThreadId::new(i)
}
fn x(i: u32) -> VarId {
    VarId::new(i)
}
fn m(i: u32) -> LockId {
    LockId::new(i)
}

/// Normalized race view: (event, loc, tid, var, kind-is-write, priors).
fn norm(report: &smarttrack_detect::Report) -> Vec<(u32, u32, u32, u32, bool, Vec<u32>)> {
    report
        .races()
        .iter()
        .map(|r| {
            (
                r.event.raw(),
                r.loc.raw(),
                r.tid.raw(),
                r.var.raw(),
                matches!(r.kind, smarttrack_detect::AccessKind::Write),
                r.prior_threads.iter().map(|t| t.raw()).collect(),
            )
        })
        .collect()
}

fn assert_feed_matches_sequential(tr: &Trace, seed_label: &str) {
    // FTO-HB.
    let mut seq_hb = FtoHb::new();
    run_detector(&mut seq_hb, tr);
    let par_hb = ConcurrentFtoHb::new(WorldSpec::of_trace(tr));
    let par_hb_report = feed_trace(&par_hb, tr);
    assert_eq!(
        norm(&par_hb_report),
        norm(seq_hb.report()),
        "FTO-HB differential on {seed_label}"
    );
    let (pc, sc) = (
        par_hb.case_counters(),
        seq_hb.case_counters().expect("FTO tracks cases").clone(),
    );
    for case in FtoCase::ALL {
        assert_eq!(pc.count(case), sc.count(case), "HB {case} on {seed_label}");
    }

    // SmartTrack-WDC.
    let mut seq_wdc = SmartTrackWdc::new();
    run_detector(&mut seq_wdc, tr);
    let par_wdc = ConcurrentSmartTrackWdc::new(WorldSpec::of_trace(tr));
    let par_wdc_report = feed_trace(&par_wdc, tr);
    assert_eq!(
        norm(&par_wdc_report),
        norm(seq_wdc.report()),
        "SmartTrack-WDC differential on {seed_label}"
    );
    let (pc, sc) = (
        par_wdc.case_counters(),
        seq_wdc.case_counters().expect("ST tracks cases").clone(),
    );
    for case in FtoCase::ALL {
        assert_eq!(pc.count(case), sc.count(case), "WDC {case} on {seed_label}");
    }
}

/// Property 1 over condvar/barrier-bearing traces: the deterministic feed
/// must drive the online analyses' wait/notify/barrier arms (shared condvar
/// clocks, the round-keyed `OnlineBarrier`) to exactly the sequential
/// detectors' verdicts *and* FTO case counters — this is the differential
/// that catches a missing clock increment or a stolen rendezvous round.
#[test]
fn sync_op_feeds_match_sequential() {
    for seed in 0..24u64 {
        let tr = RandomTraceSpec {
            events: 160,
            ..RandomTraceSpec::tiny_sync()
        }
        .generate(seed);
        assert_feed_matches_sequential(&tr, &format!("tiny_sync seed {seed}"));
    }
}

/// Property 1 over rwlock-bearing traces: read/write acquires and failed
/// trylocks drive the online reader-aggregate clocks (HB) and read-mode CS
/// entries (WDC) to exactly the sequential verdicts and case counters.
#[test]
fn rwlock_feeds_match_sequential() {
    for seed in 0..24u64 {
        let tr = RandomTraceSpec {
            events: 160,
            ..RandomTraceSpec::tiny_rw()
        }
        .generate(seed);
        assert_feed_matches_sequential(&tr, &format!("tiny_rw seed {seed}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: deterministic feeds equal the sequential detectors.
    #[test]
    fn concurrent_structures_compute_the_sequential_analysis(
        seed in 0u64..10_000,
        events in 100usize..800,
    ) {
        let tr = RandomTraceSpec { events, ..RandomTraceSpec::default() }.generate(seed);
        assert_feed_matches_sequential(&tr, &format!("seed {seed} events {events}"));
    }
}

/// A program whose threads only touch shared state under a single lock, plus
/// thread-private variables: race-free under every interleaving.
fn disciplined_program(threads: u32, rounds: usize) -> Program {
    let specs = (0..threads)
        .map(|i| {
            let mut spec = ThreadSpec::new();
            // One builder call per statement inside loops: long consuming
            // chains here trip a rustc release-mode miscompilation (see the
            // note in `driver.rs`'s lock_discipline_never_races).
            for r in 0..rounds {
                spec = spec.acquire(m(0));
                spec = spec.read(x(0));
                spec = spec.write(x(0));
                spec = spec.release(m(0));
                // Private variable: same-epoch traffic, never racy.
                spec = spec.write(x(1 + i));
                if r % 3 == 0 {
                    spec = spec.acquire(m(1));
                    spec = spec.write(x(100));
                    spec = spec.release(m(1));
                }
            }
            spec
        })
        .collect();
    Program::new(specs)
}

/// A program with one always-racy variable (no synchronization whatsoever
/// between its writers) amid lock-disciplined traffic.
fn racy_program(threads: u32, rounds: usize) -> Program {
    let specs = (0..threads)
        .map(|_| {
            let mut spec = ThreadSpec::new();
            for _ in 0..rounds {
                spec = spec.acquire(m(0));
                spec = spec.write(x(0));
                spec = spec.release(m(0));
                spec = spec.write(x(9)); // the racy one
            }
            spec
        })
        .collect();
    Program::new(specs)
}

/// Property 2a: race-free-under-all-interleavings programs never report.
#[test]
fn online_never_reports_on_disciplined_programs() {
    let program = disciplined_program(4, 40);
    for trial in 0..8 {
        let hb = ConcurrentFtoHb::new(WorldSpec::of_program(&program));
        let run = run_online(&program, &hb, false).unwrap();
        assert!(
            run.report.is_empty(),
            "HB trial {trial}: {:?}",
            run.report.races()
        );

        let wdc = ConcurrentSmartTrackWdc::new(WorldSpec::of_program(&program));
        let run = run_online(&program, &wdc, false).unwrap();
        assert!(
            run.report.is_empty(),
            "WDC trial {trial}: {:?}",
            run.report.races()
        );
    }
}

/// Property 2b: always-racy programs always report, and only on the racy
/// variable.
#[test]
fn online_always_reports_the_unsynchronized_variable() {
    let program = racy_program(4, 30);
    for trial in 0..8 {
        let wdc = ConcurrentSmartTrackWdc::new(WorldSpec::of_program(&program));
        let run = run_online(&program, &wdc, false).unwrap();
        assert!(!run.report.is_empty(), "WDC trial {trial} found no race");
        for race in run.report.races() {
            assert_eq!(race.var, x(9), "trial {trial}: race on wrong variable");
        }
    }
}

/// Property 3: the online report is consistent with a sequential analysis of
/// the observed linearization. For the disciplined program both are empty;
/// for the racy program both report races exactly on the racy variable.
#[test]
fn online_report_consistent_with_recorded_linearization() {
    let program = disciplined_program(3, 25);
    for _ in 0..4 {
        let wdc = ConcurrentSmartTrackWdc::new(WorldSpec::of_program(&program));
        let run = run_online(&program, &wdc, true).unwrap();
        let recorded = run.recorded.expect("recording requested");
        assert_eq!(recorded.len(), run.events);
        let mut offline = SmartTrackWdc::new();
        run_detector(&mut offline, &recorded);
        assert!(run.report.is_empty());
        assert!(
            offline.report().is_empty(),
            "offline view of a disciplined execution must be race-free"
        );
    }

    let program = racy_program(3, 20);
    for _ in 0..4 {
        let wdc = ConcurrentSmartTrackWdc::new(WorldSpec::of_program(&program));
        let run = run_online(&program, &wdc, true).unwrap();
        let recorded = run.recorded.expect("recording requested");
        let mut offline = SmartTrackWdc::new();
        run_detector(&mut offline, &recorded);
        let online_vars: std::collections::BTreeSet<u32> =
            run.report.races().iter().map(|r| r.var.raw()).collect();
        let offline_vars: std::collections::BTreeSet<u32> = offline
            .report()
            .races()
            .iter()
            .map(|r| r.var.raw())
            .collect();
        assert_eq!(online_vars, offline_vars, "both views agree on racy vars");
        assert_eq!(online_vars.into_iter().collect::<Vec<_>>(), vec![9]);
    }
}

/// The observed linearization is itself a valid execution: it passes the
/// well-formedness validator (TraceBuilder) and replaying it through *any*
/// sequential detector is meaningful. Exercise the full Table-1 HB row.
#[test]
fn recorded_linearization_replays_through_all_hb_detectors() {
    use smarttrack_detect::{Ft2, UnoptHb};
    let program = disciplined_program(4, 15);
    let hb = ConcurrentFtoHb::new(WorldSpec::of_program(&program));
    let run = run_online(&program, &hb, true).unwrap();
    let recorded = run.recorded.unwrap();
    let mut unopt = UnoptHb::new();
    run_detector(&mut unopt, &recorded);
    let mut ft2 = Ft2::new();
    run_detector(&mut ft2, &recorded);
    let mut fto = FtoHb::new();
    run_detector(&mut fto, &recorded);
    assert!(unopt.report().is_empty());
    assert!(ft2.report().is_empty());
    assert!(fto.report().is_empty());
}

/// Fork/join chains through multiple generations stay ordered online.
#[test]
fn forked_generations_are_ordered_online() {
    // t0 forks t1, t1 forks t2; all write x0 in lifecycle order.
    let program = Program::new(vec![
        ThreadSpec::new()
            .write(x(0))
            .fork(t(1))
            .join(t(1))
            .read(x(0)),
        ThreadSpec::new().write(x(0)).fork(t(2)).join(t(2)),
        ThreadSpec::new().write(x(0)),
    ]);
    for _ in 0..10 {
        let wdc = ConcurrentSmartTrackWdc::new(WorldSpec::of_program(&program));
        let run = run_online(&program, &wdc, false).unwrap();
        assert!(run.report.is_empty(), "{:?}", run.report.races());
    }
}

/// Volatile publication orders an unlocked handoff (single-writer,
/// single-reader flag protocol) — race-free under the analysis because
/// volatile edges are hard ordering (§5.1).
#[test]
fn volatile_flag_protocol_is_race_free_when_ordered() {
    // t0 writes data then volatile-writes the flag; t1 is forked *after*
    // the publication and volatile-reads the flag before reading data: the
    // fork edge makes the protocol unconditionally ordered.
    let v = VarId::new(0);
    let program = Program::new(vec![
        ThreadSpec::new().write(x(0)).volatile_write(v).fork(t(1)),
        ThreadSpec::new().volatile_read(v).read(x(0)),
    ]);
    for _ in 0..10 {
        let hb = ConcurrentFtoHb::new(WorldSpec::of_program(&program));
        let run = run_online(&program, &hb, false).unwrap();
        assert!(run.report.is_empty());
    }
}

/// Stress: many threads, many variables, mixed locked and private traffic;
/// SmartTrack-WDC's CS lists and extras under real contention. The assert is
/// absence of false races plus internal-invariant panics (debug asserts).
#[test]
fn stress_smarttrack_wdc_under_contention() {
    let threads = 8u32;
    let mut specs = Vec::new();
    for i in 0..threads {
        let mut spec = ThreadSpec::new();
        for r in 0..60usize {
            // Nested critical sections in a globally consistent order (one
            // builder call per statement; see the rustc-miscompilation note
            // in `driver.rs`'s lock_discipline_never_races).
            spec = spec.acquire(m(0));
            spec = spec.acquire(m(1));
            spec = spec.read(x(0));
            spec = spec.write(x(0));
            spec = spec.release(m(1));
            spec = spec.write(x(2));
            spec = spec.release(m(0));
            if r % 5 == i as usize % 5 {
                spec = spec.acquire(m(2));
                spec = spec.write(x(3));
                spec = spec.release(m(2));
            }
            spec = spec.write(x(10 + i));
        }
        specs.push(spec);
    }
    let program = Program::new(specs);
    for trial in 0..4 {
        let wdc = ConcurrentSmartTrackWdc::new(WorldSpec::of_program(&program));
        let run = run_online(&program, &wdc, false).unwrap();
        // x0 and x2 are m0-disciplined, x3 is m2-disciplined, x10+i private:
        // all race-free. (WDC can in principle report false races, but not
        // on single-lock discipline: rule (a) orders every pair.)
        assert!(
            run.report.is_empty(),
            "trial {trial}: {:?}",
            run.report.races()
        );
        assert_eq!(run.events, program.total_ops(), "no Waits: 1 op = 1 event");
    }
}
