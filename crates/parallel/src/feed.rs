//! Deterministic single-threaded feed: drives an [`OnlineAnalysis`] over a
//! recorded trace in trace order, one context per thread.
//!
//! This is the bridge between the two worlds: it exercises exactly the
//! concurrent data structures (atomic mirrors, write-once release cells,
//! per-variable locks) but with a deterministic event order, so its output
//! must equal the corresponding sequential detector's — the property the
//! differential tests check on thousands of traces.
//!
//! Since the `Engine`/`Session` redesign this is a thin wrapper: the
//! analysis is adapted into a [`Detector`](smarttrack_detect::Detector)
//! lane by [`OnlineLane`](crate::OnlineLane) and driven by the same
//! [`Session`] ingestion path as every other driver in the workspace.

use smarttrack_detect::{Report, Session};
use smarttrack_trace::Trace;

use crate::{OnlineAnalysis, OnlineLane};

/// Feeds `trace` through `analysis` in trace order and returns the report.
///
/// Contexts are created lazily at each thread's first event (absorbing fork
/// edges, like threads starting under the online driver). Before each
/// `join(u)` event the target's clock is published, mirroring the online
/// driver's thread-exit publication.
///
/// # Panics
///
/// Panics if the trace uses identifiers outside the bounds the analysis was
/// created with (create the analysis from [`WorldSpec::of_trace`](crate::WorldSpec::of_trace)).
///
/// # Examples
///
/// ```
/// use smarttrack_parallel::{feed_trace, ConcurrentFtoHb, WorldSpec};
/// use smarttrack_trace::paper;
///
/// let trace = paper::figure1();
/// let analysis = ConcurrentFtoHb::new(WorldSpec::of_trace(&trace));
/// assert!(feed_trace(&analysis, &trace).is_empty(), "no HB-race in Fig. 1");
/// ```
pub fn feed_trace<A: OnlineAnalysis>(analysis: &A, trace: &Trace) -> Report {
    let mut lane = OnlineLane::new(analysis);
    let mut session = Session::from_detector(&mut lane);
    session
        .feed_trace(trace)
        .expect("a validated Trace re-admits cleanly");
    session.finish();
    analysis.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConcurrentFtoHb, WorldSpec};
    use smarttrack_clock::ThreadId;
    use smarttrack_trace::{Op, TraceBuilder, VarId};

    #[test]
    fn join_of_never_started_thread_is_harmless() {
        let mut b = TraceBuilder::new();
        b.push(ThreadId::new(0), Op::Join(ThreadId::new(1)))
            .unwrap();
        b.push(ThreadId::new(0), Op::Write(VarId::new(0))).unwrap();
        let tr = b.finish();
        let par = ConcurrentFtoHb::new(WorldSpec::of_trace(&tr));
        assert!(feed_trace(&par, &tr).is_empty());
    }

    #[test]
    fn feeding_two_traces_accumulates_reports() {
        let mk = || {
            let mut b = TraceBuilder::new();
            b.push(ThreadId::new(0), Op::Write(VarId::new(0))).unwrap();
            b.push(ThreadId::new(1), Op::Write(VarId::new(0))).unwrap();
            b.finish()
        };
        let t1 = mk();
        let par = ConcurrentFtoHb::new(WorldSpec::of_trace(&t1));
        assert_eq!(feed_trace(&par, &t1).dynamic_count(), 1);
        // Same analysis object: metadata persists, the report accumulates.
        assert!(feed_trace(&par, &mk()).dynamic_count() >= 1);
    }
}
