//! Pre-sized metadata tables.
//!
//! The sequential detectors grow their metadata vectors on demand; a parallel
//! analysis cannot (growth would move entries under concurrent readers).
//! A [`WorldSpec`] declares the identifier bounds up front — exactly the
//! information RoadRunner derives from class loading — so every table can be
//! allocated once and then accessed with plain indexing and per-entry locks.

use smarttrack_runtime::{Program, ProgramOp};
use smarttrack_trace::{Op, Trace};

/// Identifier bounds for one analyzed execution: how many thread, variable,
/// lock, and volatile ids the analysis must be prepared to see.
///
/// # Examples
///
/// ```
/// use smarttrack_parallel::WorldSpec;
/// use smarttrack_trace::paper;
///
/// let spec = WorldSpec::of_trace(&paper::figure1());
/// assert_eq!(spec.threads, 2);
/// assert_eq!(spec.locks, 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorldSpec {
    /// Number of thread ids (bound, not count: ids are `0..threads`).
    pub threads: usize,
    /// Number of shared-variable ids.
    pub vars: usize,
    /// Number of lock ids.
    pub locks: usize,
    /// Number of volatile-variable ids.
    pub volatiles: usize,
    /// Number of condition-variable ids.
    pub condvars: usize,
    /// Number of barrier ids.
    pub barriers: usize,
}

impl WorldSpec {
    /// Explicit bounds.
    pub fn new(threads: usize, vars: usize, locks: usize, volatiles: usize) -> Self {
        WorldSpec {
            threads,
            vars,
            locks,
            volatiles,
            condvars: 0,
            barriers: 0,
        }
    }

    /// Scans a trace for its identifier bounds.
    pub fn of_trace(trace: &Trace) -> Self {
        let mut spec = WorldSpec::default();
        for event in trace.events() {
            spec.threads = spec.threads.max(event.tid.index() + 1);
            spec.see_op(&event.op);
        }
        spec
    }

    /// Scans a program for its identifier bounds.
    pub fn of_program(program: &Program) -> Self {
        let mut spec = WorldSpec {
            threads: program.num_threads(),
            ..WorldSpec::default()
        };
        for thread in program.threads() {
            for &(op, _) in thread.ops() {
                match op {
                    ProgramOp::Read(x) | ProgramOp::Write(x) => {
                        spec.vars = spec.vars.max(x.index() + 1)
                    }
                    ProgramOp::Acquire(m) | ProgramOp::Release(m) | ProgramOp::Wait(m) => {
                        spec.locks = spec.locks.max(m.index() + 1)
                    }
                    ProgramOp::VolatileRead(v) | ProgramOp::VolatileWrite(v) => {
                        spec.volatiles = spec.volatiles.max(v.index() + 1)
                    }
                    ProgramOp::Fork(t) | ProgramOp::Join(t) => {
                        spec.threads = spec.threads.max(t.index() + 1)
                    }
                }
            }
        }
        spec
    }

    fn see_op(&mut self, op: &Op) {
        match op {
            Op::Read(x) | Op::Write(x) => self.vars = self.vars.max(x.index() + 1),
            Op::Acquire(m)
            | Op::AcqRead(m)
            | Op::AcqWrite(m)
            | Op::TryAcqFail(m)
            | Op::Release(m) => self.locks = self.locks.max(m.index() + 1),
            Op::VolatileRead(v) | Op::VolatileWrite(v) => {
                self.volatiles = self.volatiles.max(v.index() + 1)
            }
            Op::Fork(t) | Op::Join(t) => self.threads = self.threads.max(t.index() + 1),
            Op::Wait(c, m) => {
                self.condvars = self.condvars.max(c.index() + 1);
                self.locks = self.locks.max(m.index() + 1);
            }
            Op::Notify(c) | Op::NotifyAll(c) => self.condvars = self.condvars.max(c.index() + 1),
            Op::BarrierEnter(b) | Op::BarrierExit(b) => {
                self.barriers = self.barriers.max(b.index() + 1)
            }
        }
    }

    /// The union of two specs (useful when analyzing several traces against
    /// one shared analysis instance).
    pub fn union(self, other: WorldSpec) -> WorldSpec {
        WorldSpec {
            threads: self.threads.max(other.threads),
            vars: self.vars.max(other.vars),
            locks: self.locks.max(other.locks),
            volatiles: self.volatiles.max(other.volatiles),
            condvars: self.condvars.max(other.condvars),
            barriers: self.barriers.max(other.barriers),
        }
    }
}

/// Builds a `Vec<T>` of `n` default entries (metadata table construction).
pub(crate) fn table<T: Default>(n: usize) -> Vec<T> {
    std::iter::repeat_with(T::default).take(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarttrack_clock::ThreadId;
    use smarttrack_runtime::ThreadSpec;
    use smarttrack_trace::{LockId, VarId};

    #[test]
    fn trace_bounds_cover_all_id_spaces() {
        let tr = smarttrack_trace::paper::figure2();
        let spec = WorldSpec::of_trace(&tr);
        assert_eq!(spec.threads, 3);
        assert_eq!(spec.locks, 2);
        assert!(spec.vars >= 2);
    }

    #[test]
    fn program_bounds_include_fork_targets() {
        let p = Program::new(vec![
            ThreadSpec::new()
                .fork(ThreadId::new(2))
                .acquire(LockId::new(4))
                .release(LockId::new(4)),
            ThreadSpec::new().write(VarId::new(7)),
        ]);
        let spec = WorldSpec::of_program(&p);
        assert_eq!(spec.threads, 3, "fork target raises the bound");
        assert_eq!(spec.locks, 5);
        assert_eq!(spec.vars, 8);
    }

    #[test]
    fn union_is_pointwise_max() {
        let a = WorldSpec::new(1, 5, 0, 2);
        let b = WorldSpec::new(3, 2, 4, 0);
        assert_eq!(a.union(b), WorldSpec::new(3, 5, 4, 2));
    }

    #[test]
    fn volatile_ids_counted_separately_from_vars() {
        let p = Program::new(vec![ThreadSpec::new()
            .volatile_write(VarId::new(3))
            .read(VarId::new(0))]);
        let spec = WorldSpec::of_program(&p);
        assert_eq!(spec.vars, 1);
        assert_eq!(spec.volatiles, 4);
    }
}
