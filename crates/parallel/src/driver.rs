//! True parallel execution: run a [`Program`] on OS threads with real locks
//! and inlined analysis hooks — the RoadRunner deployment model.
//!
//! Hook placement matches instrumentation frameworks:
//!
//! * the **acquire** hook runs after the real lock is taken;
//! * the **release** hook runs *before* the real unlock (inside the critical
//!   section), so any thread that later holds the lock observes the
//!   analysis effects of every earlier critical section on it — the
//!   invariant SmartTrack's `MultiCheck` and extras absorption rely on;
//! * **fork** hooks run before the child is allowed to start; **join** hooks
//!   run after the child has published its final clock.
//!
//! With `record = true` the driver also captures the *observed
//! linearization*: every hook draws a global sequence number, and the merged,
//! seq-sorted event list forms a well-formed trace (program order and
//! lock-alternation are guaranteed by the hook placement above). The recorded
//! trace is *one* valid interleaving of the execution; at unsynchronized
//! boundaries (racing accesses, volatile timing windows between sequence
//! draw and metadata update) the offline analysis of the recording and the
//! online analysis may legitimately order events differently — both are
//! correct analyses of the same execution.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use parking_lot::{Condvar, Mutex, MutexGuard};
use smarttrack_clock::ThreadId;
use smarttrack_detect::{FtoCaseCounters, Report};
use smarttrack_runtime::{Program, ProgramOp};
use smarttrack_trace::{Event, EventId, Loc, LockId, Op, Trace, TraceBuilder, TraceError};

use crate::{OnlineAnalysis, OnlineCtx};

/// Result of one online (parallel) analysis run.
#[derive(Clone, Debug)]
pub struct OnlineRun {
    /// Races reported by the analysis during the execution.
    pub report: Report,
    /// FTO case frequencies observed during the execution.
    pub case_counters: FtoCaseCounters,
    /// Total events executed (and analyzed).
    pub events: usize,
    /// The observed linearization, if recording was requested.
    pub recorded: Option<Trace>,
}

/// Errors surfaced by [`run_online`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OnlineError {
    /// A thread released a lock it does not hold.
    ReleaseUnheld {
        /// The releasing thread.
        tid: ThreadId,
        /// The lock.
        lock: LockId,
    },
    /// A thread (re-)acquired a lock it already holds (the program model has
    /// no reentrant locks; really re-locking would self-deadlock).
    AcquireHeld {
        /// The acquiring thread.
        tid: ThreadId,
        /// The lock.
        lock: LockId,
    },
    /// The recorded linearization failed well-formedness validation — a
    /// driver bug by construction; surfaced rather than panicking.
    BadRecording(TraceError),
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::ReleaseUnheld { tid, lock } => {
                write!(f, "{tid} released {lock} which it does not hold")
            }
            OnlineError::AcquireHeld { tid, lock } => {
                write!(f, "{tid} acquired {lock} which it already holds")
            }
            OnlineError::BadRecording(e) => write!(f, "recorded trace is malformed: {e}"),
        }
    }
}

impl std::error::Error for OnlineError {}

/// A one-shot gate: threads wait until it opens.
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn open(&self) {
        let mut open = self.open.lock();
        *open = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut open = self.open.lock();
        while !*open {
            self.cv.wait(&mut open);
        }
    }
}

/// Executes `program` on real OS threads, feeding each thread's events to
/// `analysis` through that thread's own [`OnlineCtx`] handle.
///
/// Threads that are fork targets wait for their `fork`; all other threads
/// start immediately. `Wait(m)` is expanded to release-then-acquire (§5.1).
///
/// # Errors
///
/// Returns [`OnlineError`] on lock misuse by the program. The execution is
/// aborted (remaining threads are released so the scope can join them).
///
/// # Deadlock
///
/// Locks are real mutexes: a program whose threads acquire locks in
/// inconsistent nesting orders can deadlock under true concurrency even if
/// some sequential schedule avoids it. Callers must provide programs with a
/// consistent lock acquisition order (all generators in this workspace do).
///
/// # Examples
///
/// ```
/// use smarttrack_parallel::{run_online, ConcurrentFtoHb, WorldSpec};
/// use smarttrack_runtime::{Program, ThreadSpec};
/// use smarttrack_trace::{LockId, VarId};
///
/// let x = VarId::new(0);
/// let m = LockId::new(0);
/// let guarded = |spec: ThreadSpec| spec.acquire(m).write(x).release(m);
/// let program = Program::new(vec![
///     guarded(ThreadSpec::new()),
///     guarded(ThreadSpec::new()),
/// ]);
/// let analysis = ConcurrentFtoHb::new(WorldSpec::of_program(&program));
/// let run = run_online(&program, &analysis, true)?;
/// assert!(run.report.is_empty(), "lock-disciplined: no race");
/// assert_eq!(run.recorded.unwrap().len(), run.events);
/// # Ok::<(), smarttrack_parallel::OnlineError>(())
/// ```
pub fn run_online<A: OnlineAnalysis>(
    program: &Program,
    analysis: &A,
    record: bool,
) -> Result<OnlineRun, OnlineError> {
    let spec = crate::WorldSpec::of_program(program);
    let locks: Vec<Mutex<()>> = std::iter::repeat_with(Mutex::default)
        .take(spec.locks)
        .collect();
    let start_gates: Vec<Gate> = std::iter::repeat_with(Gate::default)
        .take(spec.threads)
        .collect();
    let done_gates: Vec<Gate> = std::iter::repeat_with(Gate::default)
        .take(spec.threads)
        .collect();
    let seq = AtomicU32::new(0);
    let error: Mutex<Option<OnlineError>> = Mutex::new(None);
    // Lock-free abort flag: checking the error mutex on every operation
    // would put one shared cache line on every thread's hot path.
    let failed = AtomicBool::new(false);

    let fork_targets = program.fork_targets();
    let num_threads = program.num_threads();
    // Records an error and opens every start gate so fork targets that will
    // now never be forked can run, observe the error, and exit immediately.
    let fail = |e: OnlineError| {
        let mut slot = error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        drop(slot);
        failed.store(true, Ordering::Release);
        for gate in &start_gates {
            gate.open();
        }
    };

    let logs: Vec<(usize, Vec<(u32, Event)>)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, thread_spec) in program.threads().iter().enumerate() {
            let tid = ThreadId::new(i as u32);
            let is_forked = fork_targets.contains(&tid);
            let locks = &locks;
            let start_gates = &start_gates;
            let done_gates = &done_gates;
            let seq = &seq;
            let failed = &failed;
            let fail = &fail;
            handles.push(scope.spawn(move || {
                if is_forked {
                    start_gates[tid.index()].wait();
                }
                let mut ctx = analysis.context(tid);
                let mut held: HashMap<LockId, MutexGuard<'_, ()>> = HashMap::new();
                let mut log: Vec<(u32, Event)> = Vec::new();
                // Recording draws globally unique sequence numbers (the
                // observed linearization). Without recording, the global
                // counter would be pure hook-serialization overhead, so
                // event ids fall back to thread-tagged local indices.
                let mut local = 0u32;
                let mut hook =
                    |ctx: &mut A::Ctx<'_>, log: &mut Vec<(u32, Event)>, op: Op, loc: Loc| {
                        let n = if record {
                            seq.fetch_add(1, Ordering::Relaxed)
                        } else {
                            (tid.raw() << 24) | local
                        };
                        local += 1;
                        ctx.on_event(EventId::new(n), op, loc);
                        if record {
                            log.push((n, Event::with_loc(tid, op, loc)));
                        }
                    };
                'ops: for &(op, loc) in thread_spec.ops() {
                    if failed.load(Ordering::Acquire) {
                        break;
                    }
                    // `Wait` is release-then-acquire (§5.1).
                    let steps: [Option<ProgramOp>; 2] = match op {
                        ProgramOp::Wait(m) => {
                            [Some(ProgramOp::Release(m)), Some(ProgramOp::Acquire(m))]
                        }
                        other => [Some(other), None],
                    };
                    for step in steps.into_iter().flatten() {
                        match step {
                            ProgramOp::Acquire(m) => {
                                if held.contains_key(&m) {
                                    fail(OnlineError::AcquireHeld { tid, lock: m });
                                    break 'ops;
                                }
                                let guard = locks[m.index()].lock();
                                hook(&mut ctx, &mut log, Op::Acquire(m), loc);
                                held.insert(m, guard);
                            }
                            ProgramOp::Release(m) => {
                                // Hook inside the critical section, then the
                                // real unlock (guard drop).
                                if !held.contains_key(&m) {
                                    fail(OnlineError::ReleaseUnheld { tid, lock: m });
                                    break 'ops;
                                }
                                hook(&mut ctx, &mut log, Op::Release(m), loc);
                                held.remove(&m);
                            }
                            ProgramOp::Read(x) => hook(&mut ctx, &mut log, Op::Read(x), loc),
                            ProgramOp::Write(x) => hook(&mut ctx, &mut log, Op::Write(x), loc),
                            ProgramOp::VolatileRead(v) => {
                                hook(&mut ctx, &mut log, Op::VolatileRead(v), loc)
                            }
                            ProgramOp::VolatileWrite(v) => {
                                hook(&mut ctx, &mut log, Op::VolatileWrite(v), loc)
                            }
                            ProgramOp::Fork(u) => {
                                hook(&mut ctx, &mut log, Op::Fork(u), loc);
                                start_gates[u.index()].open();
                            }
                            ProgramOp::Join(u) => {
                                // A join target with no program never runs
                                // and thus never opens its gate; its clock is
                                // trivial, so the hook alone is correct.
                                if u.index() < num_threads {
                                    done_gates[u.index()].wait();
                                }
                                hook(&mut ctx, &mut log, Op::Join(u), loc);
                            }
                            ProgramOp::Wait(_) => unreachable!("expanded above"),
                        }
                    }
                }
                drop(held);
                ctx.publish();
                done_gates[tid.index()].open();
                (local as usize, log)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("analysis thread panicked"))
            .collect()
    });

    if let Some(e) = error.into_inner() {
        return Err(e);
    }

    let events = logs.iter().map(|(n, _)| n).sum();
    let recorded = if record {
        let mut all: Vec<(u32, Event)> = logs.into_iter().flat_map(|(_, log)| log).collect();
        all.sort_unstable_by_key(|(n, _)| *n);
        let mut builder = TraceBuilder::new();
        for (_, event) in all {
            builder
                .push_event(event)
                .map_err(OnlineError::BadRecording)?;
        }
        Some(builder.finish())
    } else {
        None
    };

    Ok(OnlineRun {
        report: analysis.report(),
        case_counters: analysis.case_counters(),
        events,
        recorded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConcurrentFtoHb, ConcurrentSmartTrackWdc, WorldSpec};
    use smarttrack_runtime::ThreadSpec;
    use smarttrack_trace::VarId;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }

    #[test]
    fn racy_program_is_caught_online() {
        let program = Program::new(vec![
            ThreadSpec::new().write(x(0)),
            ThreadSpec::new().write(x(0)),
        ]);
        let analysis = ConcurrentFtoHb::new(WorldSpec::of_program(&program));
        let run = run_online(&program, &analysis, false).unwrap();
        assert_eq!(run.report.dynamic_count(), 1, "second write always races");
        assert_eq!(run.events, 2);
    }

    #[test]
    fn lock_discipline_never_races() {
        // One builder call per statement: rustc's release-mode MIR
        // pipeline (observed on 1.95.0, opt-level >= 2) miscompiles long
        // consuming-builder chains reassigned inside a loop — the moved
        // aggregate's ops buffer is read after its growth realloc freed it
        // (ASan: heap-use-after-free; glibc: "double free or corruption").
        //
        // Minimized repro (standalone, zero unsafe, crashes at opt >= 2;
        // use it to re-test on toolchain upgrades or to file upstream):
        // a struct `S { v: Vec<(Copy, u32)>, n: u32 }` with
        // `fn op(mut self, x) -> Self { self.v.push(..); self }`, driven as
        // `s = s.op(a).op(b).op(c).op(d);` inside a `for` loop inside a
        // closure, then read back via `for &(x, _) in s.v { match x {..} }`.
        // Disabling any one of MIR DestinationPropagation / GVN / Inline
        // (-Zmir-enable-passes=-DestinationPropagation) masks it; separate
        // statements, a plain fn instead of the closure, or a fold all
        // avoid it. Method-side `#[inline(never)]`/`black_box` do NOT.
        let body = |spec: ThreadSpec| {
            let mut spec = spec;
            for _ in 0..50 {
                spec = spec.acquire(m(0));
                spec = spec.read(x(0));
                spec = spec.write(x(0));
                spec = spec.release(m(0));
            }
            spec
        };
        let program = Program::new(vec![
            body(ThreadSpec::new()),
            body(ThreadSpec::new()),
            body(ThreadSpec::new()),
        ]);
        for _ in 0..5 {
            let analysis = ConcurrentSmartTrackWdc::new(WorldSpec::of_program(&program));
            let run = run_online(&program, &analysis, false).unwrap();
            assert!(run.report.is_empty(), "lock-disciplined program");
        }
    }

    #[test]
    fn fork_join_lifecycle_is_ordered() {
        let program = Program::new(vec![
            ThreadSpec::new()
                .write(x(0))
                .fork(t(1))
                .join(t(1))
                .read(x(0)),
            ThreadSpec::new().write(x(0)),
        ]);
        for _ in 0..10 {
            let analysis = ConcurrentFtoHb::new(WorldSpec::of_program(&program));
            let run = run_online(&program, &analysis, false).unwrap();
            assert!(run.report.is_empty(), "fork/join fully order the child");
        }
    }

    #[test]
    fn release_unheld_is_an_error() {
        let program = Program::new(vec![ThreadSpec::new().release(m(0))]);
        let analysis = ConcurrentFtoHb::new(WorldSpec::of_program(&program));
        let err = run_online(&program, &analysis, false).unwrap_err();
        assert_eq!(
            err,
            OnlineError::ReleaseUnheld {
                tid: t(0),
                lock: m(0)
            }
        );
    }

    #[test]
    fn reacquire_held_is_an_error() {
        let program = Program::new(vec![ThreadSpec::new().acquire(m(0)).acquire(m(0))]);
        let analysis = ConcurrentFtoHb::new(WorldSpec::of_program(&program));
        let err = run_online(&program, &analysis, false).unwrap_err();
        assert_eq!(
            err,
            OnlineError::AcquireHeld {
                tid: t(0),
                lock: m(0)
            }
        );
    }

    #[test]
    fn recording_captures_a_well_formed_linearization() {
        let program = Program::new(vec![
            ThreadSpec::new().acquire(m(0)).write(x(0)).release(m(0)),
            ThreadSpec::new().acquire(m(0)).read(x(0)).release(m(0)),
        ]);
        let analysis = ConcurrentSmartTrackWdc::new(WorldSpec::of_program(&program));
        let run = run_online(&program, &analysis, true).unwrap();
        let tr = run.recorded.expect("recording requested");
        assert_eq!(tr.len(), 6);
        // Well-formedness is validated by the TraceBuilder; spot-check lock
        // alternation survived the merge.
        let ops: Vec<_> = tr.events().iter().map(|e| e.op).collect();
        let acq_positions: Vec<_> = ops
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op, Op::Acquire(_)))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(acq_positions.len(), 2);
    }

    #[test]
    fn wait_expands_to_release_acquire() {
        let program = Program::new(vec![ThreadSpec::new()
            .acquire(m(0))
            .wait(m(0))
            .release(m(0))]);
        let analysis = ConcurrentFtoHb::new(WorldSpec::of_program(&program));
        let run = run_online(&program, &analysis, true).unwrap();
        let ops: Vec<_> = run
            .recorded
            .unwrap()
            .events()
            .iter()
            .map(|e| e.op)
            .collect();
        assert_eq!(
            ops,
            vec![
                Op::Acquire(m(0)),
                Op::Release(m(0)),
                Op::Acquire(m(0)),
                Op::Release(m(0)),
            ]
        );
    }
}
