//! Shared-state building blocks used by both parallel analyses: atomic FTO
//! case counters, the race sink, and the fork/join clock handoff slots.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use smarttrack_clock::{ThreadId, VectorClock};
use smarttrack_detect::{FtoCase, FtoCaseCounters, RaceReport, Report};

use crate::world::table;

/// FTO case counters that many threads update concurrently (relaxed atomics:
/// counters are statistics, not synchronization).
#[derive(Debug)]
pub(crate) struct AtomicCaseCounters {
    counts: [AtomicU64; 11],
}

impl AtomicCaseCounters {
    pub fn new() -> Self {
        AtomicCaseCounters {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    pub fn hit(&self, case: FtoCase) {
        let i = FtoCase::ALL
            .iter()
            .position(|c| *c == case)
            .expect("known case");
        self.counts[i].fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> FtoCaseCounters {
        let mut out = FtoCaseCounters::new();
        for (i, case) in FtoCase::ALL.into_iter().enumerate() {
            out.add(case, self.counts[i].load(Ordering::Relaxed));
        }
        out
    }
}

/// Collects races reported from many threads.
///
/// A mutex (not a lock-free list) is deliberate: races are rare relative to
/// accesses, and the paper's implementations likewise serialize race
/// reporting. The count mirror lets [`len`](ReportSink::len) answer "any
/// new races?" without touching the mutex at all — it sits on the
/// per-event path of the sequential [`crate::OnlineLane`] bridge.
#[derive(Debug, Default)]
pub(crate) struct ReportSink {
    races: Mutex<Report>,
    count: std::sync::atomic::AtomicUsize,
}

impl ReportSink {
    pub fn new() -> Self {
        ReportSink::default()
    }

    pub fn push(&self, race: RaceReport) {
        let mut races = self.races.lock();
        races.push(race);
        // Published under the lock so `len() <= snapshot().dynamic_count()`
        // always holds for a racing reader.
        self.count.store(races.dynamic_count(), Ordering::Release);
    }

    pub fn snapshot(&self) -> Report {
        self.races.lock().clone()
    }

    /// Dynamic race count without locking or cloning the report.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }
}

/// Concurrent barrier rendezvous state.
///
/// The sequential detectors' `BarrierRendezvous` assumes validated
/// total-trace ordering: no enter arrives while a round is draining. Under
/// true concurrency that assumption fails — a fast thread can trip the
/// rendezvous, run its exit hook, loop around, and *enter the next round*
/// before a slow peer's exit hook for the previous round has run (exit
/// hooks carry no cross-thread ordering). This state therefore keys every
/// membership on an explicit **round number**: an enter joins the current
/// gather and returns the round it joined; the round's first exit seals
/// it into a per-round table (with its party count); a late exit looks its
/// own round up by number, so concurrent rounds never steal each other's
/// clocks. Sealed rounds are dropped once every party exited, keeping the
/// table bounded by the number of simultaneously draining rounds.
///
/// **Hook-placement contract** (the symmetric hazard): the *enter* hook
/// must run when the thread arrives at the real barrier, before blocking
/// on it — then every enter hook of a round happens-before the rendezvous
/// release, which happens-before every exit hook, so an enter can never
/// lag into a peer's drained round. This mirrors the driver's
/// release-hook-inside-the-critical-section rule. Today only the
/// deterministic single-threaded feed reaches these handlers (the runtime
/// `ProgramOp` has no condvar/barrier operations yet); the differential in
/// `tests/parallel_integration.rs` pins them against the sequential
/// detectors.
#[derive(Debug, Default)]
pub(crate) struct OnlineBarrier {
    /// The round currently gathering.
    round: u64,
    gather: VectorClock,
    entered: u32,
    /// Sealed rounds still draining: round → (rendezvous clock, exits left).
    sealed: Vec<(u64, VectorClock, u32)>,
}

impl OnlineBarrier {
    /// Records an enter by a thread whose clock is `now`; returns the round
    /// number the thread joined (pass it back to [`exit`](Self::exit)).
    pub fn enter(&mut self, now: &VectorClock) -> u64 {
        self.gather.join(now);
        self.entered += 1;
        self.round
    }

    /// Records an exit from `round` and returns the sealed rendezvous clock
    /// the leaving thread must join. The first exit of the gathering round
    /// seals it and opens the next.
    pub fn exit(&mut self, round: u64) -> VectorClock {
        if round == self.round {
            // First exit of the gathering round: seal it.
            let clock = std::mem::take(&mut self.gather);
            // Defensive `max(1)`: an exit without a matching enter (raw
            // misuse; validated feeds cannot produce it) must not underflow.
            let parties = self.entered.max(1);
            self.sealed.push((round, clock, parties));
            self.round += 1;
            self.entered = 0;
        }
        let i = self
            .sealed
            .iter()
            .position(|&(r, _, _)| r == round)
            .expect("exit of a round that was entered");
        self.sealed[i].2 -= 1;
        if self.sealed[i].2 == 0 {
            self.sealed.swap_remove(i).1
        } else {
            self.sealed[i].1.clone()
        }
    }
}

/// Fork/join clock handoff.
///
/// `fork(u)` by the parent stores a snapshot of the parent's clock in `u`'s
/// *start slot* before `u` begins; `u`'s context absorbs it on creation.
/// A thread publishes its clock into its *final slot* (at thread end, or —
/// in the deterministic feed — just before a `join` of it is processed);
/// `join(u)` absorbs the final slot.
///
/// Both directions are race-free at the application level (fork
/// happens-before child start; child end happens-before join), so these
/// mutexes are uncontended; they exist to satisfy Rust's aliasing rules and
/// to carry the happens-before edge for the clock data itself.
#[derive(Debug)]
pub(crate) struct Handoff {
    starts: Vec<Mutex<VectorClock>>,
    finals: Vec<Mutex<VectorClock>>,
}

impl Handoff {
    pub fn new(threads: usize) -> Self {
        Handoff {
            starts: table(threads),
            finals: table(threads),
        }
    }

    /// Parent side of `fork(u)`: merge the parent clock into `u`'s start slot.
    pub fn offer_start(&self, u: ThreadId, parent_clock: &VectorClock) {
        self.starts[u.index()].lock().join(parent_clock);
    }

    /// Child side: absorb any pending fork edge into `clock`.
    pub fn absorb_start(&self, u: ThreadId, clock: &mut VectorClock) {
        clock.join(&self.starts[u.index()].lock());
    }

    /// Publish `u`'s current clock for joiners.
    pub fn publish_final(&self, u: ThreadId, clock: &VectorClock) {
        self.finals[u.index()].lock().assign(clock);
    }

    /// Joiner side of `join(u)`: absorb `u`'s published clock.
    pub fn absorb_final(&self, u: ThreadId, clock: &mut VectorClock) {
        clock.join(&self.finals[u.index()].lock());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarttrack_clock::ThreadId;
    use smarttrack_detect::AccessKind;
    use smarttrack_trace::{EventId, Loc, VarId};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn online_barrier_survives_reentry_before_a_slow_exit() {
        // The concurrent hazard: B exits round 0 and enters round 1 before
        // A's round-0 exit hook runs. A must still join round 0's full
        // rendezvous clock, and round 1's gather must be untouched.
        let mut bar = OnlineBarrier::default();
        let a: VectorClock = [(t(0), 5)].into_iter().collect();
        let b: VectorClock = [(t(1), 7)].into_iter().collect();
        let r0a = bar.enter(&a);
        let r0b = bar.enter(&b);
        assert_eq!(r0a, r0b);
        // B exits first (seals round 0), then immediately re-enters.
        let b_sees = bar.exit(r0b);
        assert_eq!(b_sees.get(t(0)), 5);
        let b2: VectorClock = [(t(1), 9)].into_iter().collect();
        let r1b = bar.enter(&b2);
        assert_ne!(r0b, r1b, "re-entry joins a fresh round");
        // A's late exit still finds round 0's sealed clock.
        let a_sees = bar.exit(r0a);
        assert_eq!(a_sees.get(t(1)), 7, "A joins B's round-0 enter clock");
        assert_eq!(a_sees.get(t(0)), 5);
        // Round 1 drains independently with only B2's clock gathered so far.
        let c: VectorClock = [(t(2), 1)].into_iter().collect();
        let r1c = bar.enter(&c);
        assert_eq!(r1b, r1c);
        let c_sees = bar.exit(r1c);
        assert_eq!(c_sees.get(t(1)), 9);
        assert_eq!(c_sees.get(t(0)), 0, "round 0's clock was not stolen");
        let _ = bar.exit(r1b);
        assert!(bar.sealed.is_empty(), "drained rounds are dropped");
    }

    #[test]
    fn counters_accumulate_across_threads() {
        let c = AtomicCaseCounters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.hit(FtoCase::ReadOwned);
                    }
                });
            }
        });
        assert_eq!(c.snapshot().count(FtoCase::ReadOwned), 4000);
        assert_eq!(c.snapshot().count(FtoCase::WriteOwned), 0);
    }

    #[test]
    fn sink_collects_from_threads() {
        let sink = ReportSink::new();
        std::thread::scope(|s| {
            for i in 0..3u32 {
                let sink = &sink;
                s.spawn(move || {
                    sink.push(RaceReport {
                        event: EventId::new(i),
                        loc: Loc::new(i),
                        tid: t(i),
                        var: VarId::new(0),
                        kind: AccessKind::Write,
                        prior_threads: vec![],
                    });
                });
            }
        });
        assert_eq!(sink.snapshot().dynamic_count(), 3);
    }

    #[test]
    fn handoff_carries_fork_and_join_edges() {
        let h = Handoff::new(2);
        let parent: VectorClock = [(t(0), 5)].into_iter().collect();
        h.offer_start(t(1), &parent);
        let mut child = VectorClock::new();
        child.set(t(1), 1);
        h.absorb_start(t(1), &mut child);
        assert_eq!(child.get(t(0)), 5);

        child.set(t(1), 9);
        h.publish_final(t(1), &child);
        let mut joiner = parent.clone();
        h.absorb_final(t(1), &mut joiner);
        assert_eq!(joiner.get(t(1)), 9);
    }
}
