//! Concurrent SmartTrack-WDC: the paper's cheapest predictive analysis
//! (§5.7) running inside the application threads.
//!
//! This is Algorithm 3 minus rule (b) (the WDC relation, §3), with the
//! sequential implementation's `Strict` CCS fidelity refinements (DESIGN.md
//! §5 items 4–5), re-partitioned for parallel execution:
//!
//! * `Ct` and `Ht` are owned by the thread's context — WDC lock operations
//!   touch **no shared analysis state** except publishing the critical
//!   section's release time into its write-once cell;
//! * all per-variable metadata (`Wx`, `Rx`, `Lwx`, `Lrx`, `Ewx`, `Erx`)
//!   lives behind one per-variable mutex, with atomic epoch mirrors for the
//!   lock-free same-epoch fast paths (§5.1);
//! * `MultiCheck` reads other threads' critical-section release times
//!   through [`SharedCsEntry`] cells; a pending cell *is* the paper's `∞`.

use std::collections::HashMap;

use parking_lot::Mutex;
use smarttrack_clock::{Epoch, ReadMeta, ThreadId, VectorClock};
use smarttrack_detect::{AccessKind, FtoCase, FtoCaseCounters, RaceReport, Report};
use smarttrack_trace::{BarrierId, CondId, EventId, Loc, LockId, Op, VarId};

use crate::atomic::AtomicEpoch;
use crate::ccs::{multi_check_shared, ReleaseCell, SharedCsEntry, SharedCsList};
use crate::shared::{AtomicCaseCounters, Handoff, OnlineBarrier, ReportSink};
use crate::world::{table, WorldSpec};
use crate::{OnlineAnalysis, OnlineCtx};

/// Read-side CS metadata mirroring the representation of `Rx` (see the
/// sequential `LrMeta`).
#[derive(Debug)]
enum SharedLr {
    Single(Option<SharedCsList>),
    PerThread(HashMap<ThreadId, SharedCsList>),
}

impl Default for SharedLr {
    fn default() -> Self {
        SharedLr::Single(None)
    }
}

/// Extras keyed per `(lock, write-mode)`: a read-mode residual must not be
/// absorbed by a later read-mode hold (read/read pairs never conflict), so
/// the hold-mode gate needs both the lock and the stashed section's mode.
type SharedExtraMap = HashMap<ThreadId, HashMap<(LockId, bool), ReleaseCell>>;

/// `Erx`/`Ewx` fall-back metadata (paper §4.2, "Using extra metadata").
#[derive(Debug, Default)]
struct SharedExtras {
    read: SharedExtraMap,
    write: SharedExtraMap,
}

impl SharedExtras {
    fn is_empty(&self) -> bool {
        self.read.values().all(HashMap::is_empty) && self.write.values().all(HashMap::is_empty)
    }
}

/// Strict-mode residual stash: merge per lock (a thread's newer release time
/// on a lock dominates its older one).
fn stash(side: &mut SharedExtraMap, owner: ThreadId, residual: Vec<SharedCsEntry>) {
    if residual.is_empty() {
        return;
    }
    let map = side.entry(owner).or_default();
    for e in residual {
        let cell = e.cell().clone();
        map.insert((e.lock, e.write), cell);
    }
}

/// The extras keys a hold of `m` (write-mode iff `held_write`) conflicts
/// with: write-mode sections always, read-mode sections only under a
/// write-mode hold.
fn conflicting_keys(m: LockId, held_write: bool) -> impl Iterator<Item = (LockId, bool)> {
    std::iter::once((m, true)).chain(held_write.then_some((m, false)))
}

/// Authoritative per-variable metadata (guarded by the variable's mutex).
#[derive(Debug, Default)]
struct StMeta {
    write: Epoch,
    read: ReadMeta,
    lw: Option<SharedCsList>,
    lr: SharedLr,
    extras: Option<Box<SharedExtras>>,
}

/// Cache-line aligned to avoid false sharing between adjacent variables.
#[derive(Debug, Default)]
#[repr(align(64))]
struct ShadowVar {
    write_mirror: AtomicEpoch,
    read_mirror: AtomicEpoch,
    meta: Mutex<StMeta>,
}

/// SmartTrack-WDC analysis with concurrent metadata (the parallel
/// counterpart of [`SmartTrackWdc`](smarttrack_detect::SmartTrackWdc) in
/// `Strict` fidelity).
///
/// # Examples
///
/// ```
/// use smarttrack_parallel::{feed_trace, ConcurrentSmartTrackWdc, WorldSpec};
/// use smarttrack_trace::paper;
///
/// let trace = paper::figure1();
/// let analysis = ConcurrentSmartTrackWdc::new(WorldSpec::of_trace(&trace));
/// let report = feed_trace(&analysis, &trace);
/// assert_eq!(report.dynamic_count(), 1, "figure 1's predictable race");
/// ```
#[derive(Debug)]
pub struct ConcurrentSmartTrackWdc {
    vars: Vec<ShadowVar>,
    volatiles: Vec<Mutex<VectorClock>>,
    condvars: Vec<Mutex<VectorClock>>,
    barriers: Vec<Mutex<OnlineBarrier>>,
    handoff: Handoff,
    sink: ReportSink,
    counters: AtomicCaseCounters,
}

impl ConcurrentSmartTrackWdc {
    /// Creates the analysis with metadata tables sized by `spec`.
    pub fn new(spec: WorldSpec) -> Self {
        ConcurrentSmartTrackWdc {
            vars: table(spec.vars),
            volatiles: table(spec.volatiles),
            condvars: table(spec.condvars),
            barriers: table(spec.barriers),
            handoff: Handoff::new(spec.threads),
            sink: ReportSink::new(),
            counters: AtomicCaseCounters::new(),
        }
    }
}

impl OnlineAnalysis for ConcurrentSmartTrackWdc {
    type Ctx<'a> = WdcCtx<'a>;

    fn name(&self) -> &'static str {
        "SmartTrack-WDC (parallel)"
    }

    fn relation(&self) -> smarttrack_detect::Relation {
        smarttrack_detect::Relation::Wdc
    }

    fn opt_level(&self) -> smarttrack_detect::OptLevel {
        smarttrack_detect::OptLevel::SmartTrack
    }

    fn races_so_far(&self) -> usize {
        self.sink.len()
    }

    fn context(&self, t: ThreadId) -> WdcCtx<'_> {
        let mut clock = VectorClock::new();
        clock.set(t, 1);
        self.handoff.absorb_start(t, &mut clock);
        WdcCtx {
            t,
            clock,
            ht: Vec::new(),
            ht_cache: None,
            barrier_round: Vec::new(),
            shared: self,
        }
    }

    fn report(&self) -> Report {
        self.sink.snapshot()
    }

    fn case_counters(&self) -> FtoCaseCounters {
        self.counters.snapshot()
    }
}

/// Per-thread handle of [`ConcurrentSmartTrackWdc`].
#[derive(Debug)]
pub struct WdcCtx<'a> {
    t: ThreadId,
    clock: VectorClock,
    /// `Ht`: active critical sections, outermost first.
    ht: Vec<SharedCsEntry>,
    /// Cached shared snapshot of `Ht`, invalidated at lock operations.
    ht_cache: Option<SharedCsList>,
    /// Per barrier: the rendezvous round this thread last entered.
    barrier_round: Vec<u64>,
    shared: &'a ConcurrentSmartTrackWdc,
}

impl WdcCtx<'_> {
    fn held(&self) -> Vec<(LockId, bool)> {
        self.ht.iter().map(|e| (e.lock, e.write)).collect()
    }

    fn snapshot_ht(&mut self) -> SharedCsList {
        if self.ht_cache.is_none() {
            self.ht_cache = Some(SharedCsList::from_entries(self.t, self.ht.clone()));
        }
        self.ht_cache.clone().expect("just filled")
    }

    fn acquire(&mut self, m: LockId) {
        self.ht.push(SharedCsEntry::pending(m));
        self.ht_cache = None;
        self.clock.increment(self.t);
    }

    fn acquire_read(&mut self, m: LockId) {
        self.ht.push(SharedCsEntry::pending_read(m));
        self.ht_cache = None;
        self.clock.increment(self.t);
    }

    fn release(&mut self, m: LockId) {
        self.ht_cache = None;
        // Innermost-first search tolerates non-LIFO unlocking, like the
        // sequential implementation.
        if let Some(pos) = self.ht.iter().rposition(|e| e.lock == m) {
            let entry = self.ht.remove(pos);
            entry.resolve(self.clock.clone());
        }
        self.clock.increment(self.t);
    }

    /// Algorithm 3 lines 19–23 plus the Strict write-side absorption. Only
    /// stashed sections *conflicting* with a current hold are absorbed and
    /// removed: read-mode residuals survive read-mode holds for a later
    /// write-involved pair.
    fn absorb_extras_at_write(
        meta: &mut StMeta,
        held: &[(LockId, bool)],
        t: ThreadId,
        now: &mut VectorClock,
    ) {
        let Some(ex) = meta.extras.as_mut() else {
            return;
        };
        if ex.is_empty() {
            return;
        }
        for &(m, held_write) in held {
            for key in conflicting_keys(m, held_write) {
                for (&u, map) in ex.read.iter() {
                    if u != t {
                        if let Some(cell) = map.get(&key) {
                            now.join(resolved(cell));
                        }
                    }
                }
                for (&u, map) in ex.write.iter() {
                    if u != t {
                        if let Some(cell) = map.get(&key) {
                            now.join(resolved(cell));
                        }
                    }
                }
                for (&u, map) in ex.read.iter_mut() {
                    if u != t {
                        map.remove(&key);
                    }
                }
                for (&u, map) in ex.write.iter_mut() {
                    if u != t {
                        map.remove(&key);
                    }
                }
            }
        }
        ex.read.remove(&t);
        ex.write.remove(&t);
        if ex.is_empty() {
            meta.extras = None;
        }
    }

    /// Algorithm 3 lines 4–6: absorb write-side extras at a read.
    fn absorb_extras_at_read(
        meta: &StMeta,
        held: &[(LockId, bool)],
        t: ThreadId,
        now: &mut VectorClock,
    ) {
        let Some(ex) = meta.extras.as_ref() else {
            return;
        };
        if ex.write.values().all(HashMap::is_empty) {
            return;
        }
        for &(m, held_write) in held {
            for key in conflicting_keys(m, held_write) {
                for (&u, map) in ex.write.iter() {
                    if u != t {
                        if let Some(cell) = map.get(&key) {
                            now.join(resolved(cell));
                        }
                    }
                }
            }
        }
    }

    fn write(&mut self, id: EventId, x: VarId, loc: Loc) {
        let t = self.t;
        let shared = self.shared;
        let e = Epoch::new(t, self.clock.get(t));
        let sv = &shared.vars[x.index()];
        if sv.write_mirror.load().is_same_epoch(e) {
            shared.counters.hit(FtoCase::WriteSameEpoch);
            return;
        }
        let held = self.held();
        let snapshot = self.snapshot_ht();
        let mut guard = sv.meta.lock();
        let meta = &mut *guard;
        if meta.write == e {
            shared.counters.hit(FtoCase::WriteSameEpoch);
            return;
        }
        let mut now = self.clock.clone();
        Self::absorb_extras_at_write(meta, &held, t, &mut now);
        let mut prior: Vec<ThreadId> = Vec::new();

        match &meta.read {
            ReadMeta::Epoch(r) if r.is_owned_by(t) => {
                shared.counters.hit(FtoCase::WriteOwned);
            }
            ReadMeta::Epoch(r) if r.is_none() => {
                shared.counters.hit(FtoCase::WriteExclusive);
            }
            ReadMeta::Epoch(r) => {
                shared.counters.hit(FtoCase::WriteExclusive);
                let r = *r;
                let u = r.tid();
                let lr = match &meta.lr {
                    SharedLr::Single(l) => l.as_ref(),
                    SharedLr::PerThread(_) => unreachable!("epoch Rx implies single Lrx"),
                };
                let (residual, raced) = multi_check_shared(&mut now, &held, lr, r);
                if raced {
                    prior.push(u);
                }
                if !residual.is_empty() {
                    let ex = meta.extras.get_or_insert_with(Default::default);
                    stash(&mut ex.read, u, residual);
                    if meta.lw.as_ref().is_some_and(|l| l.owner == u) {
                        let (wres, _) =
                            multi_check_shared(&mut now, &held, meta.lw.as_ref(), Epoch::NONE);
                        let ex = meta.extras.get_or_insert_with(Default::default);
                        stash(&mut ex.write, u, wres);
                    }
                }
            }
            ReadMeta::Vc(rvc) => {
                shared.counters.hit(FtoCase::WriteShared);
                let rvc = rvc.clone();
                for (u, c) in rvc.iter_nonzero() {
                    if u == t {
                        continue;
                    }
                    let lr = match &meta.lr {
                        SharedLr::PerThread(map) => map.get(&u),
                        SharedLr::Single(_) => None,
                    };
                    let (residual, raced) =
                        multi_check_shared(&mut now, &held, lr, Epoch::new(u, c));
                    if raced {
                        prior.push(u);
                    }
                    if !residual.is_empty() {
                        let ex = meta.extras.get_or_insert_with(Default::default);
                        stash(&mut ex.read, u, residual);
                        if meta.lw.as_ref().is_some_and(|l| l.owner == u) {
                            let (wres, _) =
                                multi_check_shared(&mut now, &held, meta.lw.as_ref(), Epoch::NONE);
                            let ex = meta.extras.get_or_insert_with(Default::default);
                            stash(&mut ex.write, u, wres);
                        }
                    }
                }
            }
        }

        // Lines 36–37: Lwx ← Lrx ← Ht; Wx ← Rx ← Ct(t).
        meta.lw = Some(snapshot.clone());
        meta.lr = SharedLr::Single(Some(snapshot));
        meta.write = e;
        meta.read = ReadMeta::Epoch(e);
        sv.write_mirror.store(e);
        sv.read_mirror.store(e);
        drop(guard);
        self.clock.assign(&now);
        if !prior.is_empty() {
            shared.sink.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Write,
                prior_threads: prior,
            });
        }
    }

    fn read(&mut self, id: EventId, x: VarId, loc: Loc) {
        let t = self.t;
        let shared = self.shared;
        let e = Epoch::new(t, self.clock.get(t));
        let sv = &shared.vars[x.index()];
        if sv.read_mirror.load().is_same_epoch(e) {
            shared.counters.hit(FtoCase::ReadSameEpoch);
            return;
        }
        let held = self.held();
        let snapshot = self.snapshot_ht();
        let mut guard = sv.meta.lock();
        let meta = &mut *guard;
        match &meta.read {
            ReadMeta::Epoch(r) if *r == e => {
                shared.counters.hit(FtoCase::ReadSameEpoch);
                return;
            }
            ReadMeta::Vc(vc) if vc.get(t) == e.clock() => {
                shared.counters.hit(FtoCase::SharedSameEpoch);
                return;
            }
            _ => {}
        }
        let mut now = self.clock.clone();
        Self::absorb_extras_at_read(meta, &held, t, &mut now);
        let mut raced_with_write = false;

        match &mut meta.read {
            ReadMeta::Epoch(r) if r.is_owned_by(t) => {
                shared.counters.hit(FtoCase::ReadOwned);
                meta.lr = SharedLr::Single(Some(snapshot));
                meta.read = ReadMeta::Epoch(e);
                sv.read_mirror.store(e);
            }
            ReadMeta::Epoch(r) if r.is_none() => {
                shared.counters.hit(FtoCase::ReadExclusive);
                meta.lr = SharedLr::Single(Some(snapshot));
                meta.read = ReadMeta::Epoch(e);
                sv.read_mirror.store(e);
            }
            ReadMeta::Epoch(r) => {
                let r = *r;
                let u = r.tid();
                // Line 11: the outermost release of the prior access's CS
                // list, or Rx itself if the list is empty; pending = ∞.
                let lr_list = match &meta.lr {
                    SharedLr::Single(l) => l.as_ref(),
                    SharedLr::PerThread(_) => unreachable!("epoch Rx implies single Lrx"),
                };
                let ordered = match lr_list.and_then(SharedCsList::outermost) {
                    Some(outer) => match outer.release_clock() {
                        Some(rel) => rel.get(u) <= now.get(u),
                        None => false,
                    },
                    None => r.leq_vc(&now),
                };
                if ordered {
                    shared.counters.hit(FtoCase::ReadExclusive);
                    meta.lr = SharedLr::Single(Some(snapshot));
                    meta.read = ReadMeta::Epoch(e);
                    sv.read_mirror.store(e);
                } else {
                    shared.counters.hit(FtoCase::ReadShare);
                    let (_, raced) =
                        multi_check_shared(&mut now, &held, meta.lw.as_ref(), meta.write);
                    raced_with_write = raced;
                    let old = match std::mem::take(&mut meta.lr) {
                        SharedLr::Single(l) => l.unwrap_or_else(|| SharedCsList::empty(u)),
                        SharedLr::PerThread(_) => unreachable!(),
                    };
                    let mut map = HashMap::new();
                    map.insert(u, old);
                    map.insert(t, snapshot);
                    meta.lr = SharedLr::PerThread(map);
                    meta.read.share(e);
                    sv.read_mirror.mark_shared();
                }
            }
            ReadMeta::Vc(rvc) => {
                if rvc.get(t) != 0 {
                    shared.counters.hit(FtoCase::ReadSharedOwned);
                    // Strict refinement: keep rule (a) ordering from the last
                    // write's critical sections (join-only, no race check).
                    if meta.lw.as_ref().is_some_and(|l| l.owner != t) {
                        let _ = multi_check_shared(&mut now, &held, meta.lw.as_ref(), Epoch::NONE);
                    }
                    rvc.set(t, e.clock());
                } else {
                    shared.counters.hit(FtoCase::ReadShared);
                    let write = meta.write;
                    let (_, raced) = multi_check_shared(&mut now, &held, meta.lw.as_ref(), write);
                    raced_with_write = raced;
                    rvc.set(t, e.clock());
                }
                match &mut meta.lr {
                    SharedLr::PerThread(map) => {
                        map.insert(t, snapshot);
                    }
                    SharedLr::Single(_) => unreachable!("vector Rx implies per-thread Lrx"),
                }
            }
        }
        let write_tid = (!meta.write.is_none()).then(|| meta.write.tid());
        drop(guard);
        self.clock.assign(&now);
        if raced_with_write {
            shared.sink.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Read,
                prior_threads: write_tid.into_iter().collect(),
            });
        }
    }

    fn volatile_read(&mut self, v: VarId) {
        {
            let vv = self.shared.volatiles[v.index()].lock();
            self.clock.join(&vv);
        }
        self.clock.increment(self.t);
    }

    fn volatile_write(&mut self, v: VarId) {
        {
            let mut vv = self.shared.volatiles[v.index()].lock();
            self.clock.join(&vv);
            vv.assign(&self.clock);
        }
        self.clock.increment(self.t);
    }

    fn notify(&mut self, c: CondId) {
        self.shared.condvars[c.index()].lock().join(&self.clock);
        self.clock.increment(self.t);
    }

    fn wait(&mut self, c: CondId, m: LockId) {
        // Atomic release-and-reacquire with the condvar hard edge between:
        // the release resolves the critical section's release time, the
        // reacquire opens a fresh pending one, exactly as explicit rel/acq.
        self.release(m);
        {
            let nc = self.shared.condvars[c.index()].lock();
            self.clock.join(&nc);
        }
        self.acquire(m);
    }

    fn barrier_enter(&mut self, b: BarrierId) {
        // Remember which round we joined: a fast peer may seal this round
        // and start gathering the next before our exit hook runs.
        let round = self.shared.barriers[b.index()].lock().enter(&self.clock);
        if b.index() >= self.barrier_round.len() {
            self.barrier_round.resize(b.index() + 1, 0);
        }
        self.barrier_round[b.index()] = round;
        self.clock.increment(self.t);
    }

    fn barrier_exit(&mut self, b: BarrierId) {
        let round = self.barrier_round.get(b.index()).copied().unwrap_or(0);
        let open = self.shared.barriers[b.index()].lock().exit(round);
        self.clock.join(&open);
        // Predictive analyses increment at exits too (DcClocks::barrier_exit)
        // — the deterministic-feed differential pins this against the
        // sequential SmartTrack-WDC.
        self.clock.increment(self.t);
    }
}

/// Reads a cell that the held-lock invariant guarantees is resolved: extras
/// are only absorbed for locks the current thread holds, so their owners'
/// critical sections have published their release times.
fn resolved(cell: &ReleaseCell) -> &VectorClock {
    cell.get()
        .expect("extras for held locks reference completed critical sections")
}

impl OnlineCtx for WdcCtx<'_> {
    fn tid(&self) -> ThreadId {
        self.t
    }

    fn on_event(&mut self, id: EventId, op: Op, loc: Loc) {
        match op {
            Op::Read(x) => self.read(id, x, loc),
            Op::Write(x) => self.write(id, x, loc),
            Op::Acquire(m) | Op::AcqWrite(m) => self.acquire(m),
            Op::AcqRead(m) => self.acquire_read(m),
            // A failed trylock establishes no ordering in any direction.
            Op::TryAcqFail(_) => {}
            Op::Release(m) => self.release(m),
            Op::Fork(u) => {
                self.shared.handoff.offer_start(u, &self.clock);
                self.clock.increment(self.t);
            }
            Op::Join(u) => {
                self.shared.handoff.absorb_final(u, &mut self.clock);
                self.clock.increment(self.t);
            }
            Op::VolatileRead(v) => self.volatile_read(v),
            Op::VolatileWrite(v) => self.volatile_write(v),
            Op::Wait(c, m) => self.wait(c, m),
            Op::Notify(c) | Op::NotifyAll(c) => self.notify(c),
            Op::BarrierEnter(b) => self.barrier_enter(b),
            Op::BarrierExit(b) => self.barrier_exit(b),
        }
    }

    fn publish(&mut self) {
        self.shared.handoff.publish_final(self.t, &self.clock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feed_trace;
    use smarttrack_detect::{run_detector, Detector, SmartTrackWdc};
    use smarttrack_trace::{paper, TraceBuilder};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }

    fn assert_matches_sequential(tr: &smarttrack_trace::Trace, label: &str) {
        let mut seq = SmartTrackWdc::new();
        run_detector(&mut seq, tr);
        let par = ConcurrentSmartTrackWdc::new(WorldSpec::of_trace(tr));
        let report = feed_trace(&par, tr);
        assert_eq!(report.races(), seq.report().races(), "races on {label}");
        let pc = par.case_counters();
        let sc = seq.case_counters().expect("sequential ST tracks cases");
        for case in FtoCase::ALL {
            assert_eq!(pc.count(case), sc.count(case), "{case} count on {label}");
        }
    }

    #[test]
    fn matches_sequential_on_paper_figures() {
        for (name, tr) in paper::all_figures() {
            assert_matches_sequential(&tr, name);
        }
    }

    #[test]
    fn figure1_race_detected() {
        let tr = paper::figure1();
        let par = ConcurrentSmartTrackWdc::new(WorldSpec::of_trace(&tr));
        let report = feed_trace(&par, &tr);
        assert_eq!(report.dynamic_count(), 1);
    }

    #[test]
    fn figure3_wdc_false_race_detected_like_sequential() {
        // Figure 3 is a WDC-race that is not a predictable race; WDC analysis
        // (sequential or parallel) must report it.
        let tr = paper::figure3();
        let par = ConcurrentSmartTrackWdc::new(WorldSpec::of_trace(&tr));
        assert_eq!(feed_trace(&par, &tr).dynamic_count(), 1);
    }

    #[test]
    fn rule_a_ordering_through_conflicting_critical_sections() {
        // wr(x) and rd(x) in critical sections on the same lock: rule (a)
        // orders them; the later unprotected write to another variable still
        // races.
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Acquire(m(0))).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap();
        b.push(t(1), Op::Release(m(0))).unwrap();
        let tr = b.finish();
        let par = ConcurrentSmartTrackWdc::new(WorldSpec::of_trace(&tr));
        assert!(feed_trace(&par, &tr).is_empty(), "rule (a) orders the CCS");
    }

    #[test]
    fn unprotected_conflicting_accesses_race() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        b.push(t(2), Op::Read(x(0))).unwrap();
        let tr = b.finish();
        let par = ConcurrentSmartTrackWdc::new(WorldSpec::of_trace(&tr));
        let report = feed_trace(&par, &tr);
        assert_eq!(report.dynamic_count(), 2);
    }

    #[test]
    fn extras_preserve_rule_a_after_overwriting_write() {
        // Figure 4(c): Thread 2's unprotected write overwrites Lwx/Lrx, but
        // the extra metadata must preserve Thread 1's critical section on m
        // so Thread 3's rd(x) under m is still ordered after Thread 1.
        assert_matches_sequential(&paper::figure4c(), "figure 4(c)");
    }

    #[test]
    fn matches_sequential_on_random_traces() {
        use smarttrack_trace::gen::RandomTraceSpec;
        for seed in 0..40 {
            let tr = RandomTraceSpec {
                events: 600,
                ..RandomTraceSpec::default()
            }
            .generate(seed);
            assert_matches_sequential(&tr, &format!("seed {seed}"));
        }
    }
}
