//! Bridges a concurrent [`OnlineAnalysis`] into the sequential
//! [`Detector`]/[`Session`](smarttrack_detect::Session) ingestion path.
//!
//! [`OnlineLane`] borrows an analysis and exposes it as a [`Detector`]: it
//! keeps one lazily created per-thread [`OnlineCtx`] per thread id and
//! routes each event to its thread's context, publishing a join target's
//! clock first (mirroring how the true-parallel driver publishes at thread
//! exit). This is the deterministic bridge the differential tests rely on:
//! an `OnlineLane` fed a recorded trace through a session must report
//! exactly what the corresponding sequential detector reports — and it also
//! lets a concurrent analysis join any fan-out
//! [`Session`](smarttrack_detect::Session) next to sequential lanes.

use smarttrack_detect::{Detector, FtoCaseCounters, OptLevel, Relation, Report, StreamHint};
use smarttrack_trace::{Event, EventId, Op};

use crate::{OnlineAnalysis, OnlineCtx};

/// A sequential [`Detector`] view over a borrowed concurrent analysis.
///
/// # Examples
///
/// ```
/// use smarttrack_detect::Session;
/// use smarttrack_parallel::{ConcurrentFtoHb, OnlineAnalysis, OnlineLane, WorldSpec};
/// use smarttrack_trace::paper;
///
/// let trace = paper::figure1();
/// let analysis = ConcurrentFtoHb::new(WorldSpec::of_trace(&trace));
/// let mut lane = OnlineLane::new(&analysis);
/// let mut session = Session::from_detector(&mut lane);
/// session.feed_trace(&trace)?;
/// session.finish();
/// assert!(analysis.report().is_empty(), "no HB-race in Fig. 1");
/// # Ok::<(), smarttrack_trace::TraceError>(())
/// ```
pub struct OnlineLane<'a, A: OnlineAnalysis> {
    analysis: &'a A,
    ctxs: Vec<Option<A::Ctx<'a>>>,
    /// Cached report, refreshed only when the analysis' race count moves
    /// (snapshotting the shared report after every event would serialize
    /// the exact mutex the fast path avoids).
    report: Report,
    cases: FtoCaseCounters,
}

impl<'a, A: OnlineAnalysis> OnlineLane<'a, A> {
    /// Wraps `analysis`. Contexts are created on each thread's first event
    /// (absorbing fork edges, like threads starting under the online
    /// driver).
    pub fn new(analysis: &'a A) -> Self {
        OnlineLane {
            analysis,
            ctxs: Vec::new(),
            report: Report::new(),
            cases: FtoCaseCounters::new(),
        }
    }

    fn ctx(&mut self, index: usize) -> &mut A::Ctx<'a> {
        if index >= self.ctxs.len() {
            self.ctxs.resize_with(index + 1, || None);
        }
        let analysis = self.analysis;
        self.ctxs[index]
            .get_or_insert_with(|| analysis.context(smarttrack_clock::ThreadId::new(index as u32)))
    }

    fn refresh(&mut self) {
        if self.analysis.races_so_far() != self.report.dynamic_count() {
            self.report = self.analysis.report();
        }
    }
}

impl<A: OnlineAnalysis> Detector for OnlineLane<'_, A> {
    fn name(&self) -> &'static str {
        self.analysis.name()
    }

    fn relation(&self) -> Relation {
        self.analysis.relation()
    }

    fn opt_level(&self) -> OptLevel {
        self.analysis.opt_level()
    }

    fn begin_stream(&mut self, hint: StreamHint) {
        // Identifier bounds come from the analysis' WorldSpec, fixed at
        // construction; stream hints carry nothing further for it.
        let _ = hint;
    }

    fn process(&mut self, id: EventId, event: &Event) {
        // Publish a join target's clock before the join absorbs it,
        // mirroring the online driver's thread-exit publication.
        if let Op::Join(u) = event.op {
            self.ctx(u.index()).publish();
        }
        self.ctx(event.tid.index())
            .on_event(id, event.op, event.loc);
        self.refresh();
    }

    fn finish_stream(&mut self) {
        for ctx in self.ctxs.iter_mut().flatten() {
            ctx.publish();
        }
        self.report = self.analysis.report();
        self.cases = self.analysis.case_counters();
    }

    fn report(&self) -> &Report {
        &self.report
    }

    fn footprint_bytes(&self) -> usize {
        self.analysis
            .footprint_bytes()
            .max(self.report.footprint_bytes())
    }

    fn case_counters(&self) -> Option<&FtoCaseCounters> {
        Some(&self.cases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConcurrentFtoHb, ConcurrentSmartTrackWdc, WorldSpec};
    use smarttrack_detect::Session;
    use smarttrack_trace::{paper, ThreadId, TraceBuilder, VarId};

    #[test]
    fn lane_detects_like_the_sequential_detector() {
        let mut b = TraceBuilder::new();
        b.push(ThreadId::new(0), Op::Write(VarId::new(0))).unwrap();
        b.push(ThreadId::new(1), Op::Write(VarId::new(0))).unwrap();
        let trace = b.finish();

        let analysis = ConcurrentSmartTrackWdc::new(WorldSpec::of_trace(&trace));
        let mut lane = OnlineLane::new(&analysis);
        let mut session = Session::from_detector(&mut lane);
        session.feed_trace(&trace).unwrap();
        let snapshot = session.snapshot();
        assert_eq!(snapshot.lanes[0].report.dynamic_count(), 1);
        assert_eq!(snapshot.lanes[0].name, "SmartTrack-WDC (parallel)");
        session.finish();
        assert_eq!(analysis.report().dynamic_count(), 1);
    }

    #[test]
    fn lane_report_is_refreshed_mid_stream() {
        let trace = paper::figure1();
        let analysis = ConcurrentSmartTrackWdc::new(WorldSpec::of_trace(&trace));
        let mut lane = OnlineLane::new(&analysis);
        for (id, event) in trace.iter() {
            lane.process(id, event);
        }
        assert_eq!(lane.report().dynamic_count(), 1, "race visible pre-finish");
        lane.finish_stream();
        assert_eq!(lane.report().dynamic_count(), 1);
        assert!(lane.case_counters().is_some());
    }

    #[test]
    fn join_of_uncreated_context_publishes_trivially() {
        let mut b = TraceBuilder::new();
        b.push(ThreadId::new(0), Op::Join(ThreadId::new(1)))
            .unwrap();
        b.push(ThreadId::new(0), Op::Write(VarId::new(0))).unwrap();
        let trace = b.finish();
        let analysis = ConcurrentFtoHb::new(WorldSpec::of_trace(&trace));
        let mut lane = OnlineLane::new(&analysis);
        let mut session = Session::from_detector(&mut lane);
        session.feed_trace(&trace).unwrap();
        session.finish();
        assert!(analysis.report().is_empty());
    }
}
