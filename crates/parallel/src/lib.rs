#![warn(missing_docs)]

//! Parallel race-detection analyses: the paper's §5.1 implementation model.
//!
//! The detectors in [`smarttrack-detect`](smarttrack_detect) are sequential
//! trace processors. The paper's evaluated implementations are not: built on
//! RoadRunner, their analysis hooks run *inside the application threads*, and
//! §5.1 describes how that is made correct:
//!
//! > "Each analysis processes events correctly in parallel by using
//! > fine-grained synchronization on analysis metadata. An analysis can forgo
//! > synchronization for an access if a same-epoch check succeeds. To
//! > synchronize this lock-free check correctly, the read and write epochs in
//! > all analyses are volatile variables."
//!
//! This crate reproduces that architecture for the two ends of the paper's
//! analysis spectrum:
//!
//! * [`ConcurrentFtoHb`] — FTO-HB (the FastTrack-family baseline) with
//!   per-variable metadata locks, per-lock clock locks, and lock-free
//!   same-epoch fast paths over atomic epochs ([`AtomicEpoch`]);
//! * [`ConcurrentSmartTrackWdc`] — SmartTrack-WDC (the paper's cheapest
//!   predictive analysis, §5.7) with the same per-variable locking, and
//!   critical-section lists whose deferred release times are published
//!   through write-once cells — the concurrent realization of Algorithm 3's
//!   "reference to a new vector clock \[with\] `C(t) ← ∞`" (lines 3–5): a
//!   pending cell reads as `∞`, a published one as the release time.
//!
//! Both implement [`OnlineAnalysis`]: application threads obtain a
//! [`OnlineCtx`] handle each and push their own events through it, exactly
//! like RoadRunner's inlined instrumentation. Two drivers are provided:
//!
//! * [`feed_trace`] — a deterministic single-threaded feed, used to prove the
//!   concurrent data structures compute the *same analysis* as the sequential
//!   detectors (differential tests over random traces);
//! * [`run_online`] — true parallel execution of a
//!   [`Program`](smarttrack_runtime::Program) on OS threads with real locks,
//!   analysis hooks inlined at the RoadRunner hook points (acquire hooks
//!   after the real lock, release hooks before the real unlock), and an
//!   optional observed-linearization recorder.
//!
//! # Examples
//!
//! Detect a data race online, from inside the racing threads themselves:
//!
//! ```
//! use smarttrack_parallel::{run_online, ConcurrentSmartTrackWdc, WorldSpec};
//! use smarttrack_runtime::{Program, ThreadSpec};
//! use smarttrack_trace::VarId;
//!
//! let x = VarId::new(0);
//! let program = Program::new(vec![
//!     ThreadSpec::new().write(x),
//!     ThreadSpec::new().write(x),
//! ]);
//! let analysis = ConcurrentSmartTrackWdc::new(WorldSpec::of_program(&program));
//! let run = run_online(&program, &analysis, false)?;
//! assert_eq!(run.report.dynamic_count(), 1);
//! # Ok::<(), smarttrack_parallel::OnlineError>(())
//! ```

mod atomic;
mod ccs;
mod driver;
mod feed;
mod hb;
mod lane;
mod shared;
mod wdc;
mod world;

pub use atomic::{AtomicEpoch, Mirror};
pub use ccs::{SharedCsEntry, SharedCsList};
pub use driver::{run_online, OnlineError, OnlineRun};
pub use feed::feed_trace;
pub use hb::ConcurrentFtoHb;
pub use lane::OnlineLane;
pub use wdc::ConcurrentSmartTrackWdc;
pub use world::WorldSpec;

// The one worker-count derivation shared by every parallel driver in the
// workspace (the batch `EnginePool`, the CLI `--jobs` flag, bench sweeps):
// explicit request > `SMARTTRACK_WORKERS` > detected parallelism, clamped
// ≥ 1. `run_online` itself spawns exactly one OS thread per *program*
// thread (the §5.1 model analyzes from inside the application's own
// threads), so callers sizing machine-wide sweeps over it use this
// instead of deriving their own count.
pub use smarttrack_detect::pool::{worker_count, worker_count_from};

use smarttrack_clock::ThreadId;
use smarttrack_detect::{FtoCaseCounters, OptLevel, Relation, Report};
use smarttrack_trace::{EventId, Loc, Op};

/// A race-detection analysis whose metadata may be updated from many
/// application threads at once (the paper's §5.1 deployment model).
///
/// The analysis object holds the shared metadata; each application thread
/// obtains its own [`OnlineCtx`] via [`context`](OnlineAnalysis::context) and
/// pushes its events through it. Thread clocks are owned by their contexts
/// (never shared), per-variable and per-lock metadata is guarded by
/// fine-grained locks inside the analysis, and same-epoch checks are
/// lock-free ([`AtomicEpoch`]).
pub trait OnlineAnalysis: Sync {
    /// The per-thread handle type.
    type Ctx<'a>: OnlineCtx + Send
    where
        Self: 'a;

    /// Short name matching the paper's tables (e.g. `"SmartTrack-WDC"`).
    fn name(&self) -> &'static str;

    /// The relation this analysis computes (Table 1 row).
    fn relation(&self) -> Relation;

    /// The optimization level of this analysis (Table 1 column).
    fn opt_level(&self) -> OptLevel;

    /// Dynamic races reported so far — a cheap count, so sequential
    /// bridges can detect new races without snapshotting the whole report
    /// after every event.
    fn races_so_far(&self) -> usize;

    /// Approximate live metadata bytes. Parallel analyses default to `0`
    /// (walking shared metadata would mean locking every entry); the
    /// sequential detectors are the footprint-measurement substrate.
    fn footprint_bytes(&self) -> usize {
        0
    }

    /// Creates the handle for thread `t`, absorbing any fork edge already
    /// offered to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside the [`WorldSpec`] bounds the analysis was
    /// created with, or if a context for `t` is created while another one for
    /// the same thread is still being used concurrently (thread ids must be
    /// unique per OS thread at any given time).
    fn context(&self, t: ThreadId) -> Self::Ctx<'_>;

    /// Snapshot of the races detected so far.
    fn report(&self) -> Report;

    /// Snapshot of the FTO case counters (Appendix Table 12).
    fn case_counters(&self) -> FtoCaseCounters;
}

/// Per-thread event handle of an [`OnlineAnalysis`].
pub trait OnlineCtx {
    /// The thread this handle belongs to.
    fn tid(&self) -> ThreadId;

    /// Processes one event executed by this thread. `id` is the event's
    /// global sequence number (trace index in feed mode, hook sequence number
    /// in online mode); it is recorded in race reports.
    fn on_event(&mut self, id: EventId, op: Op, loc: Loc);

    /// Publishes this thread's current clock so that `join`s of it observe
    /// its time. Called at thread end by the online driver, and before each
    /// `join` event by the deterministic feed.
    fn publish(&mut self);
}
