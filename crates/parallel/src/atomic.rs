//! Lock-free last-access mirrors: the paper's "volatile" epochs.
//!
//! §5.1: "An analysis can forgo synchronization for an access if a same-epoch
//! check succeeds. To synchronize this lock-free check correctly, the read
//! and write epochs in all analyses are volatile variables." An
//! [`Epoch`](smarttrack_clock::Epoch) already packs into one `u64`
//! (`c@t` = `t << 32 | c`), so a single atomic word is the exact Rust
//! equivalent of RoadRunner's volatile epoch fields.

use std::sync::atomic::{AtomicU64, Ordering};

use smarttrack_clock::Epoch;

/// The raw value mirrored for a shared (vector-form) `Rx`.
///
/// Real epochs never use thread id `u32::MAX` (that id would collide with the
/// `⊥ₑ` encoding for clock `u32::MAX`), so `(u32::MAX)@MAX-1` is free to act
/// as the "read metadata is a vector clock" marker.
const SHARED_RAW: u64 = u64::MAX - 1;

/// The raw encoding of `⊥ₑ` (matches [`Epoch::NONE`]).
const NONE_RAW: u64 = u64::MAX;

/// What a lock-free load of a last-access mirror observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mirror {
    /// The metadata is (or recently was) the contained epoch.
    Epoch(Epoch),
    /// The metadata is in shared (vector-clock) form; the same-epoch check
    /// cannot be answered without taking the variable's lock.
    Shared,
}

impl Mirror {
    /// Returns `true` if the mirror holds exactly `e` (the lock-free
    /// same-epoch test).
    #[inline]
    pub fn is_same_epoch(self, e: Epoch) -> bool {
        matches!(self, Mirror::Epoch(m) if m == e)
    }
}

/// An atomic last-access mirror: an [`Epoch`] or the shared marker, stored in
/// one atomic `u64`.
///
/// Writers update the mirror while holding the variable's metadata lock;
/// readers may load it without any lock. A *stale* load is safe: the
/// same-epoch fast path only ever skips work for an access that was redundant
/// at the moment the mirrored value was current, which is a valid
/// linearization point for the access (the standard FastTrack argument).
///
/// # Examples
///
/// ```
/// use smarttrack_clock::{Epoch, ThreadId};
/// use smarttrack_parallel::{AtomicEpoch, Mirror};
///
/// let e = Epoch::new(ThreadId::new(1), 7);
/// let mirror = AtomicEpoch::new();
/// assert_eq!(mirror.load(), Mirror::Epoch(Epoch::NONE));
/// mirror.store(e);
/// assert!(mirror.load().is_same_epoch(e));
/// mirror.mark_shared();
/// assert_eq!(mirror.load(), Mirror::Shared);
/// ```
#[derive(Debug)]
pub struct AtomicEpoch(AtomicU64);

impl AtomicEpoch {
    /// Creates a mirror holding `⊥ₑ`.
    pub fn new() -> Self {
        AtomicEpoch(AtomicU64::new(NONE_RAW))
    }

    /// Lock-free load (`Ordering::Acquire`, pairing with [`store`]'s release
    /// so a hit observes the metadata writes that produced it).
    ///
    /// [`store`]: AtomicEpoch::store
    #[inline]
    pub fn load(&self) -> Mirror {
        match self.0.load(Ordering::Acquire) {
            SHARED_RAW => Mirror::Shared,
            raw => Mirror::Epoch(decode(raw)),
        }
    }

    /// Publishes a new epoch value (call while holding the variable's
    /// metadata lock).
    #[inline]
    pub fn store(&self, e: Epoch) {
        self.0.store(encode(e), Ordering::Release);
    }

    /// Marks the metadata as shared (vector-clock form): lock-free same-epoch
    /// checks will miss and fall through to the locked slow path.
    #[inline]
    pub fn mark_shared(&self) {
        self.0.store(SHARED_RAW, Ordering::Release);
    }
}

impl Default for AtomicEpoch {
    fn default() -> Self {
        AtomicEpoch::new()
    }
}

#[inline]
fn encode(e: Epoch) -> u64 {
    if e.is_none() {
        NONE_RAW
    } else {
        ((e.tid().raw() as u64) << 32) | e.clock() as u64
    }
}

#[inline]
fn decode(raw: u64) -> Epoch {
    if raw == NONE_RAW {
        Epoch::NONE
    } else {
        Epoch::new(
            smarttrack_clock::ThreadId::new((raw >> 32) as u32),
            raw as u32,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarttrack_clock::ThreadId;

    fn e(t: u32, c: u32) -> Epoch {
        Epoch::new(ThreadId::new(t), c)
    }

    #[test]
    fn round_trips_epochs() {
        let m = AtomicEpoch::new();
        for epoch in [e(0, 0), e(3, 41), e(7, u32::MAX - 2)] {
            m.store(epoch);
            assert_eq!(m.load(), Mirror::Epoch(epoch));
            assert!(m.load().is_same_epoch(epoch));
        }
    }

    #[test]
    fn none_round_trips() {
        let m = AtomicEpoch::new();
        m.store(e(1, 1));
        m.store(Epoch::NONE);
        assert_eq!(m.load(), Mirror::Epoch(Epoch::NONE));
    }

    #[test]
    fn shared_marker_is_not_an_epoch() {
        let m = AtomicEpoch::new();
        m.mark_shared();
        assert_eq!(m.load(), Mirror::Shared);
        assert!(!m.load().is_same_epoch(e(0, 0)));
        assert!(!m.load().is_same_epoch(Epoch::NONE));
    }

    #[test]
    fn shared_raw_collides_with_no_real_epoch() {
        // SHARED_RAW decodes to tid u32::MAX, which ThreadId never issues for
        // real threads in this workspace (ids are dense indices from 0).
        assert_ne!(encode(e(0, u32::MAX - 1)), SHARED_RAW);
        assert_ne!(encode(Epoch::NONE), SHARED_RAW);
    }

    #[test]
    fn concurrent_hammering_preserves_valid_values() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let m = AtomicEpoch::new();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..10_000u32 {
                    m.store(e(i % 5, i));
                    if i % 97 == 0 {
                        m.mark_shared();
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
            s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    match m.load() {
                        Mirror::Shared => {}
                        Mirror::Epoch(ep) => {
                            // Every observed epoch is one that was stored
                            // (tid < 5) or the initial ⊥ₑ — never torn.
                            assert!(ep.is_none() || ep.tid().raw() < 5);
                        }
                    }
                }
            });
        });
    }
}
