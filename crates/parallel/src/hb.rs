//! Concurrent FTO-HB: the FastTrack-family baseline running inside the
//! application threads (§5.1).
//!
//! Metadata partitioning follows the paper's implementation description:
//!
//! * thread clocks `Ct` are owned by their thread's [`OnlineCtx`] handle —
//!   no synchronization at all;
//! * each lock's clock `Lm` and each volatile's clock `Vv` has its own
//!   mutex, touched only at (already-synchronizing) lock/volatile operations;
//! * each variable's last-access metadata has its own mutex, plus lock-free
//!   atomic mirrors of `Wx`/`Rx` for the same-epoch fast paths;
//! * fork/join clock handoff goes through dedicated slots whose accesses are
//!   ordered by the application's own fork/join edges.

use parking_lot::Mutex;
use smarttrack_clock::{Epoch, ReadMeta, ThreadId, VectorClock};
use smarttrack_detect::{AccessKind, FtoCase, FtoCaseCounters, RaceReport, Report};
use smarttrack_trace::{BarrierId, CondId, EventId, Loc, LockId, Op, VarId};

use crate::atomic::AtomicEpoch;
use crate::shared::{AtomicCaseCounters, Handoff, OnlineBarrier, ReportSink};
use crate::world::{table, WorldSpec};
use crate::{OnlineAnalysis, OnlineCtx};

/// Authoritative last-access metadata of one variable (guarded).
#[derive(Debug, Default)]
struct VarMeta {
    write: Epoch,
    read: ReadMeta,
}

/// One variable's shadow location: atomic mirrors + guarded metadata.
/// Cache-line aligned so threads working on adjacent variables (the common
/// disjoint-access pattern) never false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct ShadowVar {
    write_mirror: AtomicEpoch,
    read_mirror: AtomicEpoch,
    meta: Mutex<VarMeta>,
}

/// FTO-HB analysis with concurrent metadata (the parallel counterpart of
/// [`FtoHb`](smarttrack_detect::FtoHb)).
///
/// # Examples
///
/// Deterministically fed, it computes exactly the sequential analysis:
///
/// ```
/// use smarttrack_detect::{run_detector, Detector, FtoHb};
/// use smarttrack_parallel::{feed_trace, ConcurrentFtoHb, WorldSpec};
/// use smarttrack_trace::paper;
///
/// let trace = paper::figure1();
/// let mut seq = FtoHb::new();
/// run_detector(&mut seq, &trace);
/// let par = ConcurrentFtoHb::new(WorldSpec::of_trace(&trace));
/// let report = feed_trace(&par, &trace);
/// assert_eq!(report.dynamic_count(), seq.report().dynamic_count());
/// ```
#[derive(Debug)]
pub struct ConcurrentFtoHb {
    vars: Vec<ShadowVar>,
    locks: Vec<Mutex<VectorClock>>,
    /// `LRm`: per-lock aggregate of reader release times. Write-mode
    /// acquires join it (a writer orders after every prior reader); read
    /// releases *join into* it (readers do not order each other).
    read_locks: Vec<Mutex<VectorClock>>,
    volatiles: Vec<Mutex<VectorClock>>,
    condvars: Vec<Mutex<VectorClock>>,
    barriers: Vec<Mutex<OnlineBarrier>>,
    handoff: Handoff,
    sink: ReportSink,
    counters: AtomicCaseCounters,
}

impl ConcurrentFtoHb {
    /// Creates the analysis with metadata tables sized by `spec`.
    pub fn new(spec: WorldSpec) -> Self {
        ConcurrentFtoHb {
            vars: table(spec.vars),
            locks: table(spec.locks),
            read_locks: table(spec.locks),
            volatiles: table(spec.volatiles),
            condvars: table(spec.condvars),
            barriers: table(spec.barriers),
            handoff: Handoff::new(spec.threads),
            sink: ReportSink::new(),
            counters: AtomicCaseCounters::new(),
        }
    }
}

impl OnlineAnalysis for ConcurrentFtoHb {
    type Ctx<'a> = HbCtx<'a>;

    fn name(&self) -> &'static str {
        "FTO-HB (parallel)"
    }

    fn relation(&self) -> smarttrack_detect::Relation {
        smarttrack_detect::Relation::Hb
    }

    fn opt_level(&self) -> smarttrack_detect::OptLevel {
        smarttrack_detect::OptLevel::Fto
    }

    fn races_so_far(&self) -> usize {
        self.sink.len()
    }

    fn context(&self, t: ThreadId) -> HbCtx<'_> {
        let mut clock = VectorClock::new();
        clock.set(t, 1);
        self.handoff.absorb_start(t, &mut clock);
        HbCtx {
            t,
            clock,
            read_held: Vec::new(),
            barrier_round: Vec::new(),
            shared: self,
        }
    }

    fn report(&self) -> Report {
        self.sink.snapshot()
    }

    fn case_counters(&self) -> FtoCaseCounters {
        self.counters.snapshot()
    }
}

/// Per-thread handle of [`ConcurrentFtoHb`].
#[derive(Debug)]
pub struct HbCtx<'a> {
    t: ThreadId,
    clock: VectorClock,
    /// Locks this thread currently holds in read mode (innermost last):
    /// a release of one of these is a read-mode release.
    read_held: Vec<LockId>,
    /// Per barrier: the rendezvous round this thread last entered.
    barrier_round: Vec<u64>,
    shared: &'a ConcurrentFtoHb,
}

impl HbCtx<'_> {
    fn read(&mut self, id: EventId, x: VarId, loc: Loc) {
        let t = self.t;
        let e = Epoch::new(t, self.clock.get(t));
        let sv = &self.shared.vars[x.index()];
        // Lock-free fast path (§5.1): a hit proves the access redundant.
        if sv.read_mirror.load().is_same_epoch(e) {
            self.shared.counters.hit(FtoCase::ReadSameEpoch);
            return;
        }
        let mut guard = sv.meta.lock();
        let meta = &mut *guard;
        // Authoritative same-epoch checks (the mirror can be stale-shared).
        match &meta.read {
            ReadMeta::Epoch(r) if *r == e => {
                self.shared.counters.hit(FtoCase::ReadSameEpoch);
                return;
            }
            ReadMeta::Vc(vc) if vc.get(t) == e.clock() => {
                self.shared.counters.hit(FtoCase::SharedSameEpoch);
                return;
            }
            _ => {}
        }
        let now = &self.clock;
        let mut race_with_write = false;
        match &mut meta.read {
            ReadMeta::Epoch(r) if r.is_owned_by(t) => {
                self.shared.counters.hit(FtoCase::ReadOwned);
                meta.read = ReadMeta::Epoch(e);
                sv.read_mirror.store(e);
            }
            ReadMeta::Epoch(r) => {
                if r.leq_vc(now) {
                    self.shared.counters.hit(FtoCase::ReadExclusive);
                    meta.read = ReadMeta::Epoch(e);
                    sv.read_mirror.store(e);
                } else {
                    self.shared.counters.hit(FtoCase::ReadShare);
                    race_with_write = !meta.write.leq_vc(now);
                    meta.read.share(e);
                    sv.read_mirror.mark_shared();
                }
            }
            ReadMeta::Vc(vc) => {
                if vc.get(t) != 0 {
                    self.shared.counters.hit(FtoCase::ReadSharedOwned);
                } else {
                    self.shared.counters.hit(FtoCase::ReadShared);
                    race_with_write = !meta.write.leq_vc(now);
                }
                vc.set(t, e.clock());
            }
        }
        if race_with_write {
            let prior = vec![meta.write.tid()];
            drop(guard);
            self.shared.sink.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Read,
                prior_threads: prior,
            });
        }
    }

    fn write(&mut self, id: EventId, x: VarId, loc: Loc) {
        let t = self.t;
        let e = Epoch::new(t, self.clock.get(t));
        let sv = &self.shared.vars[x.index()];
        if sv.write_mirror.load().is_same_epoch(e) {
            self.shared.counters.hit(FtoCase::WriteSameEpoch);
            return;
        }
        let mut guard = sv.meta.lock();
        let meta = &mut *guard;
        if meta.write == e {
            self.shared.counters.hit(FtoCase::WriteSameEpoch);
            return;
        }
        let now = &self.clock;
        let mut prior: Vec<ThreadId> = Vec::new();
        match &meta.read {
            ReadMeta::Epoch(r) if r.is_owned_by(t) => {
                self.shared.counters.hit(FtoCase::WriteOwned);
            }
            ReadMeta::Epoch(r) => {
                self.shared.counters.hit(FtoCase::WriteExclusive);
                if !r.leq_vc(now) {
                    prior.push(r.tid());
                }
            }
            ReadMeta::Vc(vc) => {
                self.shared.counters.hit(FtoCase::WriteShared);
                for (u, c) in vc.iter_nonzero() {
                    if c > now.get(u) {
                        prior.push(u);
                    }
                }
            }
        }
        meta.write = e;
        meta.read = ReadMeta::Epoch(e);
        sv.write_mirror.store(e);
        sv.read_mirror.store(e);
        drop(guard);
        if !prior.is_empty() {
            self.shared.sink.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Write,
                prior_threads: prior,
            });
        }
    }

    fn acquire(&mut self, m: LockId) {
        {
            let lm = self.shared.locks[m.index()].lock();
            self.clock.join(&lm);
        }
        // A write-involved acquire also orders after every prior reader.
        let lrm = self.shared.read_locks[m.index()].lock();
        self.clock.join(&lrm);
    }

    fn acquire_read(&mut self, m: LockId) {
        // Readers order after the last writer only — not after each other.
        {
            let lm = self.shared.locks[m.index()].lock();
            self.clock.join(&lm);
        }
        self.read_held.push(m);
    }

    fn release(&mut self, m: LockId) {
        if let Some(pos) = self.read_held.iter().rposition(|&l| l == m) {
            self.read_held.remove(pos);
            // Join (not assign): concurrent readers' times accumulate so
            // the next writer orders after all of them.
            self.shared.read_locks[m.index()].lock().join(&self.clock);
        } else {
            self.shared.locks[m.index()].lock().assign(&self.clock);
        }
        self.clock.increment(self.t);
    }

    fn volatile_read(&mut self, v: VarId) {
        let vv = self.shared.volatiles[v.index()].lock();
        self.clock.join(&vv);
    }

    fn volatile_write(&mut self, v: VarId) {
        let mut vv = self.shared.volatiles[v.index()].lock();
        self.clock.join(&vv);
        vv.assign(&self.clock);
        drop(vv);
        self.clock.increment(self.t);
    }

    fn notify(&mut self, c: CondId) {
        self.shared.condvars[c.index()].lock().join(&self.clock);
        self.clock.increment(self.t);
    }

    fn wait(&mut self, c: CondId, m: LockId) {
        // Atomic release-and-reacquire with the condvar hard edge between.
        self.release(m);
        {
            let nc = self.shared.condvars[c.index()].lock();
            self.clock.join(&nc);
        }
        self.acquire(m);
    }

    fn barrier_enter(&mut self, b: BarrierId) {
        // Remember which round we joined: a fast peer may seal this round
        // and start gathering the next before our exit hook runs.
        let round = self.shared.barriers[b.index()].lock().enter(&self.clock);
        if b.index() >= self.barrier_round.len() {
            self.barrier_round.resize(b.index() + 1, 0);
        }
        self.barrier_round[b.index()] = round;
        self.clock.increment(self.t);
    }

    fn barrier_exit(&mut self, b: BarrierId) {
        let round = self.barrier_round.get(b.index()).copied().unwrap_or(0);
        let open = self.shared.barriers[b.index()].lock().exit(round);
        self.clock.join(&open);
    }
}

impl OnlineCtx for HbCtx<'_> {
    fn tid(&self) -> ThreadId {
        self.t
    }

    fn on_event(&mut self, id: EventId, op: Op, loc: Loc) {
        match op {
            Op::Read(x) => self.read(id, x, loc),
            Op::Write(x) => self.write(id, x, loc),
            Op::Acquire(m) | Op::AcqWrite(m) => self.acquire(m),
            Op::AcqRead(m) => self.acquire_read(m),
            // A failed trylock establishes no ordering in any direction.
            Op::TryAcqFail(_) => {}
            Op::Release(m) => self.release(m),
            Op::Fork(u) => {
                self.shared.handoff.offer_start(u, &self.clock);
                self.clock.increment(self.t);
            }
            Op::Join(u) => self.shared.handoff.absorb_final(u, &mut self.clock),
            Op::VolatileRead(v) => self.volatile_read(v),
            Op::VolatileWrite(v) => self.volatile_write(v),
            Op::Wait(c, m) => self.wait(c, m),
            Op::Notify(c) | Op::NotifyAll(c) => self.notify(c),
            Op::BarrierEnter(b) => self.barrier_enter(b),
            Op::BarrierExit(b) => self.barrier_exit(b),
        }
    }

    fn publish(&mut self) {
        self.shared.handoff.publish_final(self.t, &self.clock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feed_trace;
    use smarttrack_detect::{run_detector, Detector, FtoHb};
    use smarttrack_trace::{paper, TraceBuilder};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn matches_sequential_on_paper_figures() {
        for (name, tr) in paper::all_figures() {
            let mut seq = FtoHb::new();
            run_detector(&mut seq, &tr);
            let par = ConcurrentFtoHb::new(WorldSpec::of_trace(&tr));
            let report = feed_trace(&par, &tr);
            assert_eq!(
                report.races(),
                seq.report().races(),
                "parallel vs sequential FTO-HB on {name}"
            );
        }
    }

    #[test]
    fn same_epoch_fast_path_counts_like_sequential() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap(); // same epoch
        b.push(t(0), Op::Read(x(0))).unwrap(); // read same epoch (Rx = e)
        let tr = b.finish();
        let par = ConcurrentFtoHb::new(WorldSpec::of_trace(&tr));
        feed_trace(&par, &tr);
        let c = par.case_counters();
        assert_eq!(c.count(FtoCase::WriteSameEpoch), 1);
        assert_eq!(c.count(FtoCase::ReadSameEpoch), 1);
    }

    #[test]
    fn fork_join_edges_suppress_races() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Fork(t(1))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Join(t(1))).unwrap();
        b.push(t(0), Op::Read(x(0))).unwrap();
        let tr = b.finish();
        let par = ConcurrentFtoHb::new(WorldSpec::of_trace(&tr));
        assert!(feed_trace(&par, &tr).is_empty());
    }

    #[test]
    fn volatile_edges_order_accesses() {
        let v = VarId::new(0);
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(1))).unwrap();
        b.push(t(0), Op::VolatileWrite(v)).unwrap();
        b.push(t(1), Op::VolatileRead(v)).unwrap();
        b.push(t(1), Op::Write(x(1))).unwrap();
        let tr = b.finish();
        let par = ConcurrentFtoHb::new(WorldSpec::of_trace(&tr));
        assert!(feed_trace(&par, &tr).is_empty());
    }

    #[test]
    fn read_shared_race_reports_all_unordered_readers() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Read(x(0))).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap();
        b.push(t(2), Op::Write(x(0))).unwrap();
        let tr = b.finish();
        let par = ConcurrentFtoHb::new(WorldSpec::of_trace(&tr));
        let report = feed_trace(&par, &tr);
        assert_eq!(report.dynamic_count(), 1);
        assert_eq!(report.races()[0].prior_threads, vec![t(0), t(1)]);
    }
}
