//! Concurrent critical-section lists: SmartTrack's CCS metadata shared
//! across application threads.
//!
//! The sequential implementation defers release times through
//! `Rc<RefCell<VectorClock>>` initialized to `∞` (Algorithm 3 lines 3–5 and
//! 13–15). Concurrently, the same deferred-update protocol is a *write-once
//! cell*: a pending cell reads as "release time `∞`" (never ordered before
//! anything), and the single write at the release publishes the final time.
//! `OnceLock` provides exactly this, including the happens-before edge from
//! the publishing release to every later reader.
//!
//! Resolution visibility is guaranteed at the one place the analysis relies
//! on it: when the current thread *holds* lock `m`, any other thread's
//! critical section on `m` has completed its release **hook** (hooks run
//! before the real unlock), so its cell is observably resolved — the real
//! mutex carries the happens-before edge.

use std::sync::{Arc, OnceLock};

use smarttrack_clock::{Epoch, ThreadId, VectorClock};
use smarttrack_trace::LockId;

/// A deferred release-time clock: pending (`∞`) until the release publishes.
pub(crate) type ReleaseCell = Arc<OnceLock<VectorClock>>;

/// One element `⟨C, m⟩` of a concurrent CS list.
#[derive(Clone, Debug)]
pub struct SharedCsEntry {
    /// The lock of the critical section.
    pub lock: LockId,
    /// Write-mode hold? Exclusive acquires and `AcqWrite` are write-mode;
    /// `AcqRead` sections are read-mode and conflict only with write-mode
    /// holds of the same lock.
    pub write: bool,
    release: ReleaseCell,
}

impl SharedCsEntry {
    /// Creates a pending write-mode entry (release time `∞`).
    pub fn pending(lock: LockId) -> Self {
        SharedCsEntry {
            lock,
            write: true,
            release: Arc::new(OnceLock::new()),
        }
    }

    /// Creates a pending read-mode entry (release time `∞`).
    pub fn pending_read(lock: LockId) -> Self {
        SharedCsEntry {
            lock,
            write: false,
            release: Arc::new(OnceLock::new()),
        }
    }

    /// Publishes the release time. Each critical section releases exactly
    /// once (traces are well formed), so the cell is never already set.
    pub(crate) fn resolve(&self, release_time: VectorClock) {
        self.release
            .set(release_time)
            .expect("a critical section releases exactly once");
    }

    /// The published release time, or `None` while the critical section is
    /// still open (the `∞` state).
    pub fn release_clock(&self) -> Option<&VectorClock> {
        self.release.get()
    }

    pub(crate) fn cell(&self) -> &ReleaseCell {
        &self.release
    }
}

/// A concurrent CS list: the active critical sections of `owner` at some
/// access, outermost first (see
/// [`CsList`](smarttrack_detect::CsList) for the sequential form).
///
/// Entry vectors sit behind an `Arc`, so `Lrx ← Ht` stays an O(1) reference
/// copy — the paper's shared-structure list — and is safe to read from any
/// thread.
#[derive(Clone, Debug)]
pub struct SharedCsList {
    /// The thread whose critical sections these are.
    pub owner: ThreadId,
    entries: Arc<Vec<SharedCsEntry>>,
}

impl SharedCsList {
    /// An empty list owned by `owner`.
    pub fn empty(owner: ThreadId) -> Self {
        SharedCsList {
            owner,
            entries: Arc::new(Vec::new()),
        }
    }

    /// A list from explicit entries (outermost first).
    pub fn from_entries(owner: ThreadId, entries: Vec<SharedCsEntry>) -> Self {
        SharedCsList {
            owner,
            entries: Arc::new(entries),
        }
    }

    /// The entries, outermost first.
    pub fn entries(&self) -> &[SharedCsEntry] {
        &self.entries
    }

    /// The outermost entry (the paper's `tail(Lrx)`), if any.
    pub fn outermost(&self) -> Option<&SharedCsEntry> {
        self.entries.first()
    }
}

/// The combined CCS-and-race check (Algorithm 3's `MultiCheck`) over
/// concurrent CS lists, mirroring
/// [`detect`](smarttrack_detect)'s sequential `multi_check` with the
/// pending-cell reading of `∞`:
///
/// * a *resolved* entry whose owner component is `≤ now`'s subsumes
///   everything inner and the race check;
/// * a *resolved* entry on a *conflicting* held lock — same lock, at least
///   one of the two holds write-mode — is a conflicting critical section:
///   its release time joins into `now` (rule (a)). Read-mode entries on
///   locks held only in read mode never conflict and become residual;
/// * a *pending* entry is never ordered and (by the real-lock argument in the
///   module docs) never on a conflicting held lock, so it always falls into
///   the residual.
///
/// `held` pairs each held lock with its write-mode flag.
///
/// Returns `(residual, raced)`.
pub(crate) fn multi_check_shared(
    now: &mut VectorClock,
    held: &[(LockId, bool)],
    list: Option<&SharedCsList>,
    check: Epoch,
) -> (Vec<SharedCsEntry>, bool) {
    let mut residual = Vec::new();
    if let Some(l) = list {
        for entry in l.entries.iter() {
            let conflicts = held
                .iter()
                .any(|&(lk, w)| lk == entry.lock && (w || entry.write));
            match entry.release_clock() {
                Some(rel) => {
                    if rel.get(l.owner) <= now.get(l.owner) {
                        return (residual, false);
                    }
                    if conflicts {
                        now.join(rel);
                        return (residual, false);
                    }
                }
                None => {
                    // A pending entry on a conflicting held lock is
                    // unreachable: cross-thread, the real lock forces the
                    // owner's release hook first (write-involved holds
                    // mutually exclude); same-thread, an ordered outer entry
                    // always short-circuits the traversal first (a thread's
                    // own resolved release is ≤ its own clock). A pending
                    // *read* entry on a lock held only in read mode is
                    // reachable — concurrent read sections overlap — and
                    // rightly lands in the residual.
                    debug_assert!(
                        !conflicts,
                        "cannot hold a lock whose conflicting critical section is still pending"
                    );
                }
            }
            residual.push(entry.clone());
        }
    }
    let raced = !check.leq_vc(now);
    (residual, raced)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }

    #[test]
    fn pending_entries_become_residual() {
        let entry = SharedCsEntry::pending(m(0));
        let list = SharedCsList::from_entries(t(0), vec![entry]);
        let mut now: VectorClock = [(t(1), 5)].into_iter().collect();
        let (residual, raced) = multi_check_shared(&mut now, &[], Some(&list), Epoch::NONE);
        assert_eq!(residual.len(), 1);
        assert!(!raced);
    }

    #[test]
    fn resolved_ordered_entry_subsumes_race_check() {
        let entry = SharedCsEntry::pending(m(0));
        entry.resolve([(t(0), 3)].into_iter().collect());
        let inner = SharedCsEntry::pending(m(1));
        let list = SharedCsList::from_entries(t(0), vec![entry, inner]);
        let mut now: VectorClock = [(t(0), 4)].into_iter().collect();
        let (residual, raced) = multi_check_shared(&mut now, &[], Some(&list), Epoch::new(t(0), 9));
        assert!(residual.is_empty());
        assert!(!raced, "ordered outermost subsumes the failing race check");
    }

    #[test]
    fn held_lock_joins_release_time() {
        let entry = SharedCsEntry::pending(m(2));
        entry.resolve([(t(0), 7), (t(2), 4)].into_iter().collect());
        let list = SharedCsList::from_entries(t(0), vec![entry]);
        let mut now: VectorClock = [(t(1), 1)].into_iter().collect();
        let (residual, raced) =
            multi_check_shared(&mut now, &[(m(2), true)], Some(&list), Epoch::new(t(0), 9));
        assert!(residual.is_empty());
        assert!(!raced);
        assert_eq!(now.get(t(0)), 7);
        assert_eq!(now.get(t(2)), 4);
    }

    #[test]
    fn no_match_falls_through_to_race_check() {
        let list = SharedCsList::from_entries(t(0), vec![SharedCsEntry::pending(m(0))]);
        let mut now: VectorClock = [(t(1), 3)].into_iter().collect();
        let (residual, raced) =
            multi_check_shared(&mut now, &[(m(1), true)], Some(&list), Epoch::new(t(0), 2));
        assert_eq!(residual.len(), 1);
        assert!(raced);
    }

    #[test]
    fn resolution_is_visible_across_threads() {
        let entry = SharedCsEntry::pending(m(0));
        let reader = entry.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                entry.resolve([(t(0), 1)].into_iter().collect());
            });
            s.spawn(move || {
                // Spin until the resolution is visible; the OnceLock
                // publication guarantees the full clock is then readable.
                loop {
                    if let Some(rel) = reader.release_clock() {
                        assert_eq!(rel.get(t(0)), 1);
                        break;
                    }
                    std::hint::spin_loop();
                }
            });
        });
    }
}
