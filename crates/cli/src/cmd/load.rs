//! `smarttrack load` — load-test a serve daemon.
//!
//! Generates a calibrated workload corpus (the same generator behind
//! `smarttrack generate`), replays it over `--clients` concurrent
//! connections against a running `smarttrack serve`, and validates every
//! returned report race-for-race against offline analysis of the same
//! trace (`--no-validate` skips the offline pass for pure throughput
//! runs). Any divergence or transport failure makes the exit nonzero.
//!
//! `--captured` switches from synthetic corpus replay to *live capture*:
//! each executable pattern twin from `smarttrack-capture` runs as a real
//! threaded program whose execution streams to the daemon while a teed
//! in-memory copy is analyzed offline — every daemon lane must agree with
//! the offline count, which must match the twin's expectation. `--nudge
//! PERIOD[/PHASE]` injects schedule-perturbing yields into the wrappers.

use std::io::Write;
use std::net::{SocketAddr, ToSocketAddrs};

use smarttrack_capture::twins::{run_twin, TwinKind};
use smarttrack_capture::{CaptureConfig, CaptureSink, Nudge};
use smarttrack_serve::{run_load, LoadOptions, ServeClient};

use crate::{write_out, CliError, Opts};

const USAGE: &str = "smarttrack load <addr> [--clients N] [--scale F] [--seeds N] \
                     [--chunk-bytes N] [--tenant NAME] [--no-validate] \
                     [--captured] [--nudge PERIOD[/PHASE]]";
const SWITCHES: &[&str] = &["no-validate", "captured"];
const VALUES: &[&str] = &[
    "clients",
    "scale",
    "seeds",
    "chunk-bytes",
    "tenant",
    "nudge",
];

pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = Opts::parse(args, SWITCHES, VALUES)?;
    let addr_text = opts
        .positional(0)
        .ok_or_else(|| CliError::Usage(format!("missing <addr> argument; usage: {USAGE}")))?;
    let addr = addr_text
        .to_socket_addrs()
        .map_err(|e| CliError::Usage(format!("invalid address `{addr_text}`: {e}")))?
        .next()
        .ok_or_else(|| CliError::Usage(format!("address `{addr_text}` resolved to nothing")))?;

    if opts.switch("captured") {
        return run_captured(addr, addr_text, &opts, out);
    }

    let scale: f64 = opts.parsed_or("scale", 2e-5)?;
    let seeds: u64 = opts.parsed_or("seeds", 1)?;
    if scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(CliError::Usage("`--scale` must be positive".to_string()));
    }
    let chunk_bytes: usize = opts.parsed_or("chunk-bytes", 0usize)?;
    if chunk_bytes > smarttrack_serve::MAX_FRAME_BYTES as usize {
        return Err(CliError::Usage(format!(
            "`--chunk-bytes` must be at most {} (one data frame's payload)",
            smarttrack_serve::MAX_FRAME_BYTES
        )));
    }
    let seed_list: Vec<u64> = (0..seeds.max(1)).collect();
    let traces = smarttrack_workloads::corpus(scale, &seed_list);

    let options = LoadOptions {
        clients: opts.parsed_or("clients", 4usize)?.max(1),
        chunk_bytes,
        validate: !opts.switch("no-validate"),
        tenant: opts.value("tenant").unwrap_or("load").to_string(),
    };

    let report = run_load(addr, &traces, &options)
        .map_err(|e| CliError::Invalid(format!("{addr_text}: {e}")))?;

    let mut buf = format!(
        "load: {} session(s) over {} client connection(s)\n",
        report.sessions, report.clients
    );
    buf.push_str(&format!(
        "  {} events, {} stream bytes in {:.3}s ({:.0} events/s)\n",
        report.events,
        report.bytes,
        report.elapsed.as_secs_f64(),
        report.events_per_sec()
    ));
    buf.push_str(&format!(
        "  {} race(s) reported, {} pushed mid-stream, {} busy retr{}\n",
        report.races,
        report.pushed,
        report.busy_retries,
        if report.busy_retries == 1 { "y" } else { "ies" }
    ));
    if options.validate {
        buf.push_str("  validation: reports match offline analysis\n");
    }
    if !report.failures.is_empty() {
        buf.push_str(&format!("  {} failure(s):\n", report.failures.len()));
        for failure in &report.failures {
            buf.push_str(&format!("    {failure}\n"));
        }
        write_out(out, &buf)?;
        return Err(CliError::Invalid(format!(
            "{} of {} sessions failed or diverged from offline analysis",
            report.failures.len(),
            report.sessions + report.failures.len()
        )));
    }
    write_out(out, &buf)
}

/// `PERIOD` or `PERIOD/PHASE` (e.g. `3` or `3/1`).
fn parse_nudge(text: &str) -> Result<Nudge, CliError> {
    let bad = || CliError::Usage(format!("invalid `--nudge {text}`; expected PERIOD[/PHASE]"));
    let (period, phase) = match text.split_once('/') {
        Some((p, ph)) => (p, ph),
        None => (text, "0"),
    };
    let period: u32 = period.parse().map_err(|_| bad())?;
    let phase: u32 = phase.parse().map_err(|_| bad())?;
    if period == 0 {
        return Err(CliError::Usage(
            "`--nudge` period must be positive".to_string(),
        ));
    }
    Ok(Nudge { period, phase })
}

/// The `--captured` path: run every pattern twin as a real threaded
/// program streaming live to the daemon, and cross-check three ways —
/// daemon lane vs offline analysis of the teed file-sink copy vs the
/// twin's schedule-independent expectation.
fn run_captured(
    addr: SocketAddr,
    addr_text: &str,
    opts: &Opts,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let nudge = opts.value("nudge").map(parse_nudge).transpose()?;
    let tenant = opts.value("tenant").unwrap_or("capture");
    let config = CaptureConfig {
        nudge,
        ..CaptureConfig::default()
    };
    let mut buf = String::new();
    let mut failures = Vec::new();
    let mut total_events = 0u64;
    for kind in TwinKind::ALL {
        let client = ServeClient::connect(addr, tenant, kind.name(), false)
            .map_err(|e| CliError::Invalid(format!("{addr_text}: {e}")))?;
        let (memory, bytes) = CaptureSink::memory();
        let sink = CaptureSink::tee(memory, CaptureSink::serve(client));
        let report = run_twin(kind, sink, config)
            .map_err(|e| CliError::Invalid(format!("{}: {e}", kind.name())))?;
        total_events += report.events;
        let wire = report
            .serve_reports
            .first()
            .ok_or_else(|| CliError::Invalid(format!("{}: no daemon report", kind.name())))?;
        let stb = bytes.lock().expect("memory sink").clone();
        let trace = smarttrack_trace::binary::from_stb_bytes(&stb).map_err(|e| {
            CliError::Invalid(format!("{}: captured stream invalid: {e}", kind.name()))
        })?;
        let expected = kind.expected_static();
        buf.push_str(&format!(
            "  {}: {} event(s), expected {} static race(s)\n",
            kind.name(),
            report.events,
            expected
        ));
        for lane in &wire.lanes {
            let lane_config = lane
                .config
                .parse()
                .map_err(|e| CliError::Invalid(format!("lane `{}`: {e}", lane.name)))?;
            let offline = smarttrack::analyze(&trace, lane_config)
                .report
                .static_count();
            let live = lane.static_count as usize;
            if live != offline || offline != expected {
                failures.push(format!(
                    "{} / {}: daemon {live}, offline {offline}, expected {expected}",
                    kind.name(),
                    lane.name
                ));
            }
        }
    }
    buf.push_str(&format!(
        "captured: {} twin(s), {} event(s) streamed live\n",
        TwinKind::ALL.len(),
        total_events
    ));
    if failures.is_empty() {
        buf.push_str("  validation: daemon lanes match offline analysis and expectations\n");
        write_out(out, &buf)
    } else {
        buf.push_str(&format!("  {} divergence(s):\n", failures.len()));
        for failure in &failures {
            buf.push_str(&format!("    {failure}\n"));
        }
        write_out(out, &buf)?;
        Err(CliError::Invalid(format!(
            "{} captured twin lane(s) diverged",
            failures.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn missing_address_is_a_usage_error() {
        let mut out = Vec::new();
        let err = run(&args(&[]), &mut out).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn unresolvable_address_is_a_usage_error() {
        let mut out = Vec::new();
        let err = run(&args(&["not an address"]), &mut out).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn oversized_chunk_bytes_is_a_usage_error_not_a_panic() {
        // 10 MB exceeds the 8 MiB frame cap; pre-validation this reached
        // encode_frame's assert and crashed the client.
        let mut out = Vec::new();
        let err = run(
            &args(&["127.0.0.1:9", "--chunk-bytes", "10000000"]),
            &mut out,
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("chunk-bytes"), "{err}");
    }

    #[test]
    fn round_trips_against_a_live_server() {
        let server = smarttrack_serve::Server::bind(
            "127.0.0.1:0",
            smarttrack_serve::ServerConfig {
                analyses: vec!["st-wdc".parse().unwrap()],
                workers: Some(2),
                ..Default::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr().to_string();

        let mut out = Vec::new();
        run(
            &args(&[&addr, "--clients", "2", "--scale", "1e-5", "--seeds", "1"]),
            &mut out,
        )
        .expect("load run succeeds against live server");
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("validation: reports match offline analysis"));
        server.shutdown();
    }

    #[test]
    fn nudge_parses_period_and_phase() {
        assert_eq!(
            parse_nudge("3").unwrap(),
            Nudge {
                period: 3,
                phase: 0
            }
        );
        assert_eq!(
            parse_nudge("5/2").unwrap(),
            Nudge {
                period: 5,
                phase: 2
            }
        );
        assert_eq!(parse_nudge("0").unwrap_err().exit_code(), 2);
        assert_eq!(parse_nudge("x/y").unwrap_err().exit_code(), 2);
    }

    #[test]
    fn captured_twins_round_trip_against_a_live_server() {
        let server = smarttrack_serve::Server::bind(
            "127.0.0.1:0",
            smarttrack_serve::ServerConfig {
                analyses: vec!["fto-hb".parse().unwrap(), "st-wdc".parse().unwrap()],
                workers: Some(2),
                ..Default::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr().to_string();

        let mut out = Vec::new();
        run(&args(&[&addr, "--captured", "--nudge", "2/1"]), &mut out)
            .expect("captured load run succeeds against live server");
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("validation: daemon lanes match offline analysis and expectations"),
            "{text}"
        );
        server.shutdown();
    }
}
