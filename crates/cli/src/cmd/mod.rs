//! One module per CLI command. Each command builds its report into a
//! `String` (formatting into strings is infallible) and emits it with a
//! single write, keeping the I/O error surface to one place.

pub mod analyze;
pub mod batch;
pub mod convert;
pub mod deadlock;
pub mod figure;
pub mod generate;
pub mod list;
pub mod load;
pub mod render;
pub mod serve;
pub mod stats;
pub mod two_phase;
pub mod vindicate;
pub mod windowed;

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    use smarttrack_trace::Trace;

    static NEXT: AtomicU32 = AtomicU32::new(0);

    /// A temp file that removes itself; `path_str()` feeds CLI args.
    pub struct TempTrace {
        path: PathBuf,
    }

    impl TempTrace {
        pub fn write(trace: &Trace) -> Self {
            let path = std::env::temp_dir().join(format!(
                "smarttrack-cli-test-{}-{}.trace",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            smarttrack_trace::fmt::write_file(trace, &path).expect("write temp trace");
            TempTrace { path }
        }

        pub fn path_str(&self) -> String {
            self.path.display().to_string()
        }
    }

    impl Drop for TempTrace {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }

    /// Runs a command function and returns its output.
    pub fn capture<F>(run: F, args: &[&str]) -> Result<String, crate::CliError>
    where
        F: Fn(&[String], &mut dyn std::io::Write) -> Result<(), crate::CliError>,
    {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).expect("utf-8 output"))
    }
}
