//! `smarttrack windowed` — bounded-window predictable-race detection (the
//! SMT-window related work of the paper's §6), for contrast with the
//! unbounded `analyze` command.

use std::fmt::Write as _;
use std::io::Write;

use smarttrack_vindicate::{WindowedConfig, WindowedRaceAnalysis};

use crate::{load_trace, trace_arg, write_out, CliError, Opts};

const USAGE: &str = "smarttrack windowed <trace> [--window N] [--stride N] [--budget N]";
const VALUES: &[&str] = &["window", "stride", "budget"];

pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = Opts::parse(args, &[], VALUES)?;
    let path = trace_arg(&opts, USAGE)?;
    let trace = load_trace(path)?;

    let window: usize = opts.parsed_or("window", 1_000)?;
    if window == 0 {
        return Err(CliError::Usage("--window must be positive".to_string()));
    }
    let config = WindowedConfig {
        window,
        stride: opts.parsed_or("stride", (window / 2).max(1))?,
        budget_per_query: opts.parsed_or("budget", 200_000)?,
    };
    if config.stride == 0 {
        return Err(CliError::Usage("--stride must be positive".to_string()));
    }

    let report = WindowedRaceAnalysis::new(&trace, config.clone()).analyze();
    let mut buf = String::new();
    let _ = writeln!(
        buf,
        "{path}: window {} (stride {}), {} windows, {} queries ({} unknown), {} states explored",
        config.window,
        config.stride,
        report.windows(),
        report.queries(),
        report.unknown_queries(),
        report.states_explored()
    );
    for &(a, b) in report.races() {
        let (ea, eb) = (trace.event(a), trace.event(b));
        let _ = writeln!(
            buf,
            "  race: {} by {} at {}  <->  {} by {} at {}",
            ea.op, ea.tid, a, eb.op, eb.tid, b
        );
    }
    if report.races().is_empty() {
        let _ = writeln!(
            buf,
            "  no races within any {}-event window (races farther apart are invisible here — \
             run `smarttrack analyze` for the unbounded predictive analyses)",
            config.window
        );
    }
    write_out(out, &buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::testutil::{capture, TempTrace};
    use smarttrack_trace::paper;
    use smarttrack_workloads::distant_race_trace;

    #[test]
    fn finds_the_figure1_race_when_the_window_covers_it() {
        let file = TempTrace::write(&paper::figure1());
        let text = capture(run, &[&file.path_str(), "--window", "8"]).unwrap();
        assert!(text.contains("race: rd(x0) by T0"), "{text}");
    }

    #[test]
    fn reports_the_miss_when_the_race_is_distant() {
        let (trace, _, _) = distant_race_trace(300);
        let file = TempTrace::write(&trace);
        let text = capture(run, &[&file.path_str(), "--window", "64"]).unwrap();
        assert!(
            text.contains("no races within any 64-event window"),
            "{text}"
        );
    }

    #[test]
    fn zero_window_is_a_usage_error() {
        let file = TempTrace::write(&paper::figure1());
        let err = capture(run, &[&file.path_str(), "--window", "0"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }
}
