//! `smarttrack windowed` — bounded-window predictable-race detection (the
//! SMT-window related work of the paper's §6), for contrast with the
//! unbounded `analyze` command.
//!
//! STB binary input streams through the incremental
//! [`WindowedDetector`] lane — windows run the moment the stream fills
//! them, and only the current window is resident. (Race lines from a
//! streamed input carry event ids but not operation details, which would
//! require the discarded events.)

use std::fmt::Write as _;
use std::io::Write;

use smarttrack::Session;
use smarttrack_trace::Trace;
use smarttrack_vindicate::{WindowedConfig, WindowedDetector, WindowedReport};

use crate::{feed_stb, open_trace, trace_arg, write_out, CliError, Opts, TraceSource};

const USAGE: &str =
    "smarttrack windowed <trace> [--window N] [--stride N] [--budget N] [--format FMT]";
const VALUES: &[&str] = &["window", "stride", "budget", "format"];

pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = Opts::parse(args, &[], VALUES)?;
    let path = trace_arg(&opts, USAGE)?;
    let source = open_trace(path, &opts)?;

    let window: usize = opts.parsed_or("window", 1_000)?;
    if window == 0 {
        return Err(CliError::Usage("--window must be positive".to_string()));
    }
    let config = WindowedConfig {
        window,
        stride: opts.parsed_or("stride", (window / 2).max(1))?,
        budget_per_query: opts.parsed_or("budget", 200_000)?,
    };
    if config.stride == 0 {
        return Err(CliError::Usage("--stride must be positive".to_string()));
    }

    // Both faces drive the same streaming WindowedDetector lane; the
    // whole-trace face just also keeps the events around for nicer race
    // lines.
    let (report, trace): (WindowedReport, Option<Trace>) = match source {
        TraceSource::Whole(trace) => {
            let mut det = WindowedDetector::new(config.clone());
            let session = Session::from_detector(&mut det);
            feed_events(session, &trace, path)?;
            (det.into_report(), Some(trace))
        }
        TraceSource::Stb(reader) => {
            let mut det = WindowedDetector::new(config.clone());
            let session = feed_stb(Session::from_detector(&mut det), reader, path)?;
            session.finish();
            (det.into_report(), None)
        }
    };

    let mut buf = String::new();
    let _ = writeln!(
        buf,
        "{path}: window {} (stride {}), {} windows, {} queries ({} unknown), {} states explored",
        config.window,
        config.stride,
        report.windows(),
        report.queries(),
        report.unknown_queries(),
        report.states_explored()
    );
    for &(a, b) in report.races() {
        match &trace {
            Some(trace) => {
                let (ea, eb) = (trace.event(a), trace.event(b));
                let _ = writeln!(
                    buf,
                    "  race: {} by {} at {}  <->  {} by {} at {}",
                    ea.op, ea.tid, a, eb.op, eb.tid, b
                );
            }
            None => {
                let _ = writeln!(buf, "  race: {a}  <->  {b}");
            }
        }
    }
    if report.races().is_empty() {
        let _ = writeln!(
            buf,
            "  no races within any {}-event window (races farther apart are invisible here — \
             run `smarttrack analyze` for the unbounded predictive analyses)",
            config.window
        );
    }
    write_out(out, &buf)
}

/// Feeds a whole trace into a session and finishes it, mapping errors.
fn feed_events(mut session: Session<'_>, trace: &Trace, path: &str) -> Result<(), CliError> {
    session
        .feed_trace(trace)
        .map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
    session.finish();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::testutil::{capture, TempTrace};
    use smarttrack_trace::paper;
    use smarttrack_workloads::distant_race_trace;

    #[test]
    fn finds_the_figure1_race_when_the_window_covers_it() {
        let file = TempTrace::write(&paper::figure1());
        let text = capture(run, &[&file.path_str(), "--window", "8"]).unwrap();
        assert!(text.contains("race: rd(x0) by T0"), "{text}");
    }

    #[test]
    fn reports_the_miss_when_the_race_is_distant() {
        let (trace, _, _) = distant_race_trace(300);
        let file = TempTrace::write(&trace);
        let text = capture(run, &[&file.path_str(), "--window", "64"]).unwrap();
        assert!(
            text.contains("no races within any 64-event window"),
            "{text}"
        );
    }

    #[test]
    fn stb_input_streams_through_the_windowed_detector() {
        let path =
            std::env::temp_dir().join(format!("smarttrack-windowed-{}.stb", std::process::id()));
        smarttrack_trace::binary::write_stb_file(&paper::figure1(), &path).unwrap();
        let text = capture(run, &[&path.display().to_string(), "--window", "8"]).unwrap();
        // Streamed input reports the same race, by event id.
        assert!(text.contains("race: e"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_window_is_a_usage_error() {
        let file = TempTrace::write(&paper::figure1());
        let err = capture(run, &[&file.path_str(), "--window", "0"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }
}
