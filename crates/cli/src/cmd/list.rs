//! `smarttrack list` — the catalog: analyses (Table 1), workload profiles
//! (Table 2), and paper figures.

use std::fmt::Write as _;
use std::io::Write;

use smarttrack::AnalysisConfig;
use smarttrack_trace::paper;
use smarttrack_workloads::profiles;

use crate::{write_out, CliError, Opts};

pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let _ = Opts::parse(args, &[], &[])?;
    let mut buf = String::new();

    let _ = writeln!(buf, "analyses (Table 1):");
    let table1 = AnalysisConfig::table1();
    for config in AnalysisConfig::extended() {
        let marker = if table1.contains(&config) {
            ""
        } else {
            "  [repro extension, not a Table 1 cell]"
        };
        let _ = writeln!(buf, "  {config}{marker}");
    }

    let _ = writeln!(buf, "\nworkload profiles (Table 2 calibration targets):");
    let paper_names: Vec<&str> = profiles::all().iter().map(|w| w.name).collect();
    for w in profiles::extended() {
        let marker = if paper_names.contains(&w.name) {
            ""
        } else {
            "  [repro extension, not one of the paper's ten]"
        };
        let _ = writeln!(
            buf,
            "  {:<9} {} threads, {:>6.0}M events, {:>5.1}% NSEAs hold >=1 lock{marker}",
            w.name, w.paper.threads, w.paper.events_m, w.paper.pct_ge1
        );
    }

    let _ = writeln!(buf, "\npaper figures:");
    for (name, trace) in paper::all_figures() {
        let _ = writeln!(buf, "  {:<9} {} events", name, trace.len());
    }
    write_out(out, &buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::testutil::capture;

    #[test]
    fn lists_all_three_catalogs() {
        let text = capture(run, &[]).unwrap();
        assert!(text.contains("ST-WDC"));
        assert!(text.contains("SyncP  [repro extension"));
        assert!(text.contains("OSR  [repro extension"));
        assert!(text.contains("xalan"));
        assert!(text.contains("figure4d"));
    }
}
