//! `smarttrack figure` — emit the paper's example executions (Figures 1–4)
//! as trace files, ready for `analyze`/`vindicate`/`render`.

use std::io::Write;

use smarttrack_trace::paper;

use crate::{CliError, Opts};

const USAGE: &str =
    "smarttrack figure <figure1|figure2|figure3|figure4a..figure4d> [--out FILE] [--format FMT]";
const VALUES: &[&str] = &["out", "format"];

pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = Opts::parse(args, &[], VALUES)?;
    let name = opts
        .positional(0)
        .ok_or_else(|| CliError::Usage(format!("missing figure name; usage: {USAGE}")))?;
    let trace = paper::all_figures()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, t)| t)
        .ok_or_else(|| {
            let known: Vec<&str> = paper::all_figures().iter().map(|(n, _)| *n).collect();
            CliError::Invalid(format!(
                "unknown figure `{name}`; available: {}",
                known.join(", ")
            ))
        })?;
    super::generate::emit(&trace, &opts, out, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::testutil::capture;

    #[test]
    fn every_figure_round_trips_through_the_text_format() {
        for (name, original) in paper::all_figures() {
            let text = capture(run, &[name]).unwrap();
            let reparsed = smarttrack_trace::fmt::parse(&text).unwrap();
            assert_eq!(reparsed.len(), original.len(), "{name}");
        }
    }

    #[test]
    fn unknown_figure_lists_the_catalog() {
        let err = capture(run, &["figure9"]).unwrap_err();
        assert!(err.to_string().contains("figure4d"), "{err}");
    }
}
