//! `smarttrack batch` — analyze a whole corpus of trace files in parallel.
//!
//! Each positional argument is a directory (its trace files, by
//! extension), a `*`-glob, or one explicit file
//! ([`smarttrack_trace::formats::corpus_paths`]). Every file becomes one
//! job of an [`EnginePool`](smarttrack::EnginePool): a fixed worker pool
//! (default: the machine's cores, `--jobs N` or `SMARTTRACK_WORKERS`
//! override) pulls jobs from a shared queue and runs each as a streaming
//! session — STB inputs decode chunk by chunk and are never held whole.
//! A corrupt or truncated file fails its own row of the report, never the
//! batch; `--strict` turns any failed job into a nonzero exit.
//!
//! The aggregated [`CorpusReport`](smarttrack::CorpusReport) deduplicates
//! statically distinct races across the corpus. `--out report.json`
//! writes the machine-readable rendering (schema
//! `smarttrack-corpus-report/v1`, documented in `docs/ARCHITECTURE.md`);
//! `--json` prints it to stdout instead of the human table.

use std::io::Write;

use smarttrack::{AnalysisConfig, BatchJob, Engine, EnginePool};

use crate::{write_out, CliError, Opts};

const USAGE: &str = "smarttrack batch <dir|glob|file>... [--analysis CFG]... [--all] \
                     [--jobs N] [--out FILE] [--json] [--strict]";
const SWITCHES: &[&str] = &["all", "json", "strict"];
const VALUES: &[&str] = &["analysis", "jobs", "out"];

/// Default selection, matching `analyze`: the HB baseline plus the three
/// SmartTrack-optimized predictive analyses.
const DEFAULT_ANALYSES: &[&str] = &["fto-hb", "st-wcp", "st-dc", "st-wdc"];

pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = Opts::parse(args, SWITCHES, VALUES)?;
    if opts.positionals().is_empty() {
        return Err(CliError::Usage(format!(
            "missing corpus arguments; usage: {USAGE}"
        )));
    }

    let configs: Vec<AnalysisConfig> = if opts.switch("all") {
        AnalysisConfig::table1()
    } else {
        let names = opts.all_values("analysis");
        let names: Vec<&str> = if names.is_empty() {
            DEFAULT_ANALYSES.to_vec()
        } else {
            names.iter().map(String::as_str).collect()
        };
        names
            .into_iter()
            .map(|n| n.parse().map_err(|e| CliError::Usage(format!("{e}"))))
            .collect::<Result<_, _>>()?
    };
    let engine = Engine::builder()
        .fanout(configs)
        .build()
        .map_err(|e| CliError::Usage(e.to_string()))?;

    // Expand every corpus argument; ordering is deterministic (each
    // expansion is sorted, arguments keep their order).
    let mut paths = Vec::new();
    for arg in opts.positionals() {
        let expanded =
            smarttrack_trace::formats::corpus_paths(arg).map_err(|source| CliError::Io {
                path: arg.clone(),
                source,
            })?;
        if expanded.is_empty() {
            return Err(CliError::Invalid(format!("{arg}: no trace files matched")));
        }
        paths.extend(expanded);
    }

    let mut pool = EnginePool::new(engine);
    if let Some(text) = opts.value("jobs") {
        let workers: usize = text
            .parse()
            .map_err(|e| CliError::Usage(format!("invalid value `{text}` for `--jobs`: {e}")))?;
        pool = pool.with_workers(workers);
    }
    let jobs: Vec<BatchJob> = paths.into_iter().map(BatchJob::from_path).collect();
    let total = jobs.len();
    let (report, stats) = pool.run_with_stats(jobs);

    let json = report.to_json();
    if let Some(path) = opts.value("out") {
        std::fs::write(path, &json).map_err(|source| CliError::Io {
            path: path.to_string(),
            source,
        })?;
    }
    if opts.switch("json") {
        write_out(out, &json)?;
    } else {
        let mut buf = format!("batch: {total} jobs over {} worker(s)\n", stats.workers);
        buf.push_str(&report.to_string());
        if let Some(path) = opts.value("out") {
            buf.push_str(&format!("\nwrote JSON report to {path}\n"));
        }
        write_out(out, &buf)?;
    }

    if opts.switch("strict") && report.failed() > 0 {
        let first = report
            .failures()
            .next()
            .expect("failed() > 0 implies a failure row");
        return Err(CliError::Invalid(format!(
            "{} of {} jobs failed (first: {}: {}); rerun without --strict to tolerate",
            report.failed(),
            total,
            first.label,
            first.result.as_ref().unwrap_err()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::testutil::capture;
    use smarttrack_trace::paper;
    use std::path::PathBuf;

    /// A self-cleaning corpus directory holding the three DC-relevant
    /// paper figures in mixed formats.
    struct CorpusDir(PathBuf);

    impl CorpusDir {
        fn figures(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("st-cli-batch-{}-{tag}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            smarttrack_trace::binary::write_stb_file(&paper::figure1(), dir.join("fig1.stb"))
                .unwrap();
            smarttrack_trace::fmt::write_file(&paper::figure2(), dir.join("fig2.trace")).unwrap();
            smarttrack_trace::fmt::write_file(&paper::figure4a(), dir.join("fig4a.trace")).unwrap();
            CorpusDir(dir)
        }

        fn arg(&self) -> String {
            self.0.display().to_string()
        }
    }

    impl Drop for CorpusDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn batch_over_directory_aggregates_all_files() {
        let dir = CorpusDir::figures("dir");
        let text = capture(run, &[&dir.arg(), "--analysis", "st-wdc"]).unwrap();
        assert!(text.contains("3 jobs"), "{text}");
        assert!(text.contains("fig1.stb"), "{text}");
        // Figures 1 and 2 race under WDC; 4a does not.
        let totals = text
            .lines()
            .find(|l| l.starts_with("SmartTrack-WDC"))
            .unwrap();
        assert!(totals.split_whitespace().any(|w| w == "2"), "{totals}");
    }

    #[test]
    fn glob_and_jobs_flags_are_honored() {
        let dir = CorpusDir::figures("glob");
        let glob = format!("{}/fig*.trace", dir.arg());
        let text = capture(run, &[&glob, "--jobs", "4", "--analysis", "st-dc"]).unwrap();
        assert!(text.contains("2 jobs"), "{text}");
        assert!(!text.contains("fig1.stb"), "glob excludes the STB file");
    }

    #[test]
    fn json_flag_emits_the_machine_report() {
        let dir = CorpusDir::figures("json");
        let text = capture(run, &[&dir.arg(), "--json", "--analysis", "st-wdc"]).unwrap();
        assert!(text.starts_with('{'), "{text}");
        assert!(text.contains("\"schema\": \"smarttrack-corpus-report/v1\""));
        assert!(text.contains("\"succeeded\": 3"), "{text}");
    }

    #[test]
    fn strict_fails_on_corrupt_member_but_default_tolerates() {
        let dir = CorpusDir::figures("strict");
        let stb = std::fs::read(dir.0.join("fig1.stb")).unwrap();
        std::fs::write(dir.0.join("cut.stb"), &stb[..stb.len() - 2]).unwrap();

        let text = capture(run, &[&dir.arg(), "--analysis", "st-wdc"]).unwrap();
        assert!(text.contains("1 failed"), "{text}");
        assert!(text.contains("truncated"), "{text}");

        let err = capture(run, &[&dir.arg(), "--analysis", "st-wdc", "--strict"]).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("cut.stb"), "{err}");
    }

    #[test]
    fn empty_corpus_and_missing_args_are_errors() {
        let err = capture(run, &[]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let dir = std::env::temp_dir().join(format!("st-cli-batch-{}-empty", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = capture(run, &[&dir.display().to_string()]).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("no trace files matched"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
