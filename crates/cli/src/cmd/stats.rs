//! `smarttrack stats` — the paper's Table 2 run-time characteristics for
//! one trace.

use std::fmt::Write as _;
use std::io::Write;

use smarttrack_trace::stats::TraceStats;

use crate::{load_trace, trace_arg, write_out, CliError, Opts};

const USAGE: &str = "smarttrack stats <trace> [--format FMT]";
const VALUES: &[&str] = &["format"];

pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = Opts::parse(args, &[], VALUES)?;
    let path = trace_arg(&opts, USAGE)?;
    let trace = load_trace(path, &opts)?;
    let stats = TraceStats::compute(&trace);

    let mut buf = String::new();
    let _ = writeln!(buf, "{path}");
    let _ = writeln!(
        buf,
        "  threads            {} ({} max live)",
        stats.threads_total, stats.threads_max_live
    );
    let _ = writeln!(buf, "  events             {}", stats.total_events);
    let _ = writeln!(
        buf,
        "  accesses           {} ({} sync events)",
        stats.access_count, stats.sync_count
    );
    let _ = writeln!(
        buf,
        "  non-same-epoch     {} ({:.1}% of accesses)",
        stats.nsea_count,
        stats.nsea_fraction() * 100.0
    );
    let _ = writeln!(
        buf,
        "  locks held at NSEAs  >=1: {:.2}%   >=2: {:.2}%   >=3: {:.2}%",
        stats.pct_nsea_holding(1),
        stats.pct_nsea_holding(2),
        stats.pct_nsea_holding(3)
    );
    write_out(out, &buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::testutil::{capture, TempTrace};
    use smarttrack_trace::paper;

    #[test]
    fn reports_table2_columns() {
        let file = TempTrace::write(&paper::figure2());
        let text = capture(run, &[&file.path_str()]).unwrap();
        let threads = text.lines().find(|l| l.contains("threads")).unwrap();
        assert!(threads.ends_with("3 (3 max live)"), "{threads}");
        let events = text.lines().find(|l| l.contains("events")).unwrap();
        assert!(events.ends_with("12"), "{events}");
        assert!(text.contains("locks held at NSEAs"));
    }

    #[test]
    fn missing_argument_is_usage() {
        let err = capture(run, &[]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }
}
