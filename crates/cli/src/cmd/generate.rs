//! `smarttrack generate` — emit synthetic workload traces: the ten
//! DaCapo-calibrated profiles (§5.2/Table 2) or the distant-race stress
//! pattern (§6). Output format follows `--format`, or the `--out`
//! extension (`.stb` emits the binary format directly).

use std::fmt::Write as _;
use std::io::Write;

use smarttrack_trace::formats;
use smarttrack_trace::Trace;
use smarttrack_workloads::{distant_race_trace, profiles};

use crate::{requested_format, write_out, CliError, Opts};

const USAGE: &str =
    "smarttrack generate <profile|distant:N> [--scale F] [--seed N] [--out FILE] [--format FMT]";
const VALUES: &[&str] = &["scale", "seed", "out", "format"];

pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = Opts::parse(args, &[], VALUES)?;
    let name = opts
        .positional(0)
        .ok_or_else(|| CliError::Usage(format!("missing workload name; usage: {USAGE}")))?;
    let scale: f64 = opts.parsed_or("scale", 2e-5)?;
    let seed: u64 = opts.parsed_or("seed", 42)?;

    let trace = build(name, scale, seed)?;
    emit(&trace, &opts, out, name)
}

/// Builds the requested trace (shared with `figure`'s output path).
fn build(name: &str, scale: f64, seed: u64) -> Result<Trace, CliError> {
    if let Some(distance) = name.strip_prefix("distant:") {
        let distance: usize = distance.parse().map_err(|_| {
            CliError::Usage(format!(
                "`distant:N` takes an event count, got `{distance}`"
            ))
        })?;
        return Ok(distant_race_trace(distance).0);
    }
    profiles::extended()
        .into_iter()
        .find(|w| w.name == name)
        .map(|w| w.trace(scale, seed))
        .ok_or_else(|| {
            let known: Vec<&str> = profiles::extended().iter().map(|w| w.name).collect();
            CliError::Invalid(format!(
                "unknown workload `{name}`; available: {}, distant:N",
                known.join(", ")
            ))
        })
}

/// Writes the trace to `--out` (format from `--format`, else the file
/// extension) or stdout (format from `--format`, else native text).
pub(super) fn emit(
    trace: &Trace,
    opts: &Opts,
    out: &mut dyn Write,
    what: &str,
) -> Result<(), CliError> {
    let requested = requested_format(opts)?;
    match opts.value("out") {
        Some(path) => {
            let format = requested.unwrap_or_else(|| formats::format_of_path(path));
            std::fs::write(path, formats::render_bytes(trace, format)).map_err(|source| {
                CliError::Io {
                    path: path.to_string(),
                    source,
                }
            })?;
            let mut buf = String::new();
            let _ = writeln!(
                buf,
                "wrote {what}: {} events, {} threads -> {path} ({format})",
                trace.len(),
                trace.num_threads()
            );
            write_out(out, &buf)
        }
        // Raw bytes to stdout (binary-safe, so `--format stb` can be
        // redirected into a file or a pipe).
        None => out
            .write_all(&formats::render_bytes(trace, requested.unwrap_or_default()))
            .map_err(|source| CliError::Io {
                path: "<stdout>".to_string(),
                source,
            }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::testutil::capture;

    #[test]
    fn stdout_output_is_reparsable() {
        let text = capture(run, &["avrora", "--scale", "2e-6", "--seed", "7"]).unwrap();
        let reparsed = smarttrack_trace::fmt::parse(&text).expect("round-trips");
        assert_eq!(reparsed.num_threads(), 7, "avrora runs 7 threads (Table 2)");
    }

    #[test]
    fn distant_pattern_parses_its_distance() {
        let text = capture(run, &["distant:30"]).unwrap();
        let trace = smarttrack_trace::fmt::parse(&text).unwrap();
        assert_eq!(trace.len(), 38);
    }

    #[test]
    fn unknown_profile_lists_the_available_ones() {
        let err = capture(run, &["dacapo-zxy"]).unwrap_err();
        assert!(err.to_string().contains("xalan"), "{err}");
        assert!(err.to_string().contains("condsync"), "{err}");
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn condsync_profile_emits_condvar_and_barrier_ops() {
        use smarttrack_trace::Op;
        let path = std::env::temp_dir().join(format!(
            "smarttrack-cli-condsync-{}.stb",
            std::process::id()
        ));
        let path_str = path.display().to_string();
        let text = capture(run, &["condsync", "--scale", "2e-5", "--out", &path_str]).unwrap();
        assert!(text.contains("wrote condsync"), "{text}");
        // The file is STB v2 (it carries wait/notify/barrier op tags) and
        // round-trips through the reader.
        let trace = smarttrack_trace::binary::read_stb_file(&path).unwrap();
        assert!(trace.num_condvars() > 0 && trace.num_barriers() > 0);
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e.op, Op::Wait(..) | Op::BarrierEnter(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rwmix_profile_emits_reader_writer_ops_as_stb_v3() {
        use smarttrack_trace::Op;
        let path =
            std::env::temp_dir().join(format!("smarttrack-cli-rwmix-{}.stb", std::process::id()));
        let path_str = path.display().to_string();
        let text = capture(run, &["rwmix", "--scale", "5e-5", "--out", &path_str]).unwrap();
        assert!(text.contains("wrote rwmix"), "{text}");
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[4], 3, "reader/writer op tags require STB v3");
        let trace = smarttrack_trace::binary::read_stb_file(&path).unwrap();
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e.op, Op::AcqRead(_))));
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e.op, Op::TryAcqFail(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn out_flag_writes_a_loadable_file() {
        let path =
            std::env::temp_dir().join(format!("smarttrack-cli-gen-{}.trace", std::process::id()));
        let path_str = path.display().to_string();
        let text = capture(run, &["h2", "--scale", "2e-6", "--out", &path_str]).unwrap();
        assert!(text.contains("wrote h2"));
        let trace = smarttrack_trace::fmt::read_file(&path).unwrap();
        assert!(trace.len() > 100);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stb_extension_emits_the_binary_format() {
        let path =
            std::env::temp_dir().join(format!("smarttrack-cli-gen-{}.stb", std::process::id()));
        let path_str = path.display().to_string();
        let text = capture(run, &["avrora", "--scale", "2e-6", "--out", &path_str]).unwrap();
        assert!(text.contains("(stb)"), "{text}");
        let trace = smarttrack_trace::binary::read_stb_file(&path).unwrap();
        assert_eq!(trace.num_threads(), 7, "avrora runs 7 threads (Table 2)");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn format_flag_beats_the_out_extension() {
        // `.trace` extension but `--format stb`: the flag wins, and the
        // loader's magic sniffing still reads it back correctly.
        let path = std::env::temp_dir().join(format!(
            "smarttrack-cli-gen-ovr-{}.trace",
            std::process::id()
        ));
        let path_str = path.display().to_string();
        let text = capture(run, &["distant:30", "--out", &path_str, "--format", "stb"]).unwrap();
        assert!(text.contains("(stb)"), "{text}");
        let trace = smarttrack_trace::formats::read_file(&path).unwrap();
        assert_eq!(trace.len(), 38);
        let _ = std::fs::remove_file(&path);
    }
}
