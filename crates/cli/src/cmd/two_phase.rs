//! `smarttrack two-phase` — the paper's §4.3 deployment architecture:
//! fast graph-free SmartTrack detection online, and a graph-building replay
//! plus vindication only if races were reported.
//!
//! STB binary input runs phase 1 *streamed* (bounded memory, like a real
//! online deployment); the recording is materialized only if races were
//! reported and the replay phase actually runs — in the common race-free
//! case the whole trace is never resident.

use std::fmt::Write as _;
use std::io::Write;

use smarttrack::two_phase::{detect_then_check, replay_and_check, TwoPhaseOutcome};
use smarttrack::{AnalysisConfig, Engine, OptLevel, Relation, StreamHint};

use crate::{feed_stb, load_trace, open_trace, trace_arg, write_out, CliError, Opts, TraceSource};

const USAGE: &str = "smarttrack two-phase <trace> [--relation dc|wdc] [--format FMT]";
const VALUES: &[&str] = &["relation", "format"];

pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = Opts::parse(args, &[], VALUES)?;
    let path = trace_arg(&opts, USAGE)?;
    let relation = match opts.value("relation").unwrap_or("wdc") {
        "dc" => Relation::Dc,
        "wdc" => Relation::Wdc,
        other => {
            return Err(CliError::Usage(format!(
                "--relation must be dc or wdc (the unsound relations that need \
                 checking; WCP is sound, HB is not predictive), got `{other}`"
            )))
        }
    };

    let outcome = match open_trace(path, &opts)? {
        TraceSource::Whole(trace) => detect_then_check(&trace, relation),
        TraceSource::Stb(reader) => {
            // Phase 1, streamed: the production shape — detection runs over
            // the chunked stream without materializing the recording.
            let engine = Engine::builder()
                .config(AnalysisConfig::new(relation, OptLevel::SmartTrack))
                .hint(StreamHint::of_stb_header(reader.header()))
                .build()
                .map_err(|e| CliError::Usage(e.to_string()))?;
            let session = feed_stb(engine.open(), reader, path)?;
            let detection = session.finish_one();
            if detection.report.is_empty() {
                TwoPhaseOutcome {
                    detection,
                    checked: Vec::new(),
                    replayed: false,
                }
            } else {
                // Races reported: only now load the recording for the
                // offline replay + vindication phase.
                let trace = load_trace(path, &opts)?;
                let checked = replay_and_check(&trace, relation);
                TwoPhaseOutcome {
                    detection,
                    checked,
                    replayed: true,
                }
            }
        }
    };
    let mut buf = String::new();
    let _ = writeln!(
        buf,
        "phase 1 ({}): {} static / {} dynamic races",
        outcome.detection.name,
        outcome.detection.report.static_count(),
        outcome.detection.report.dynamic_count()
    );
    if !outcome.replayed {
        let _ = writeln!(buf, "phase 2: skipped (no races — no replay cost at all)");
        return write_out(out, &buf);
    }
    let _ = writeln!(
        buf,
        "phase 2 (replay w/ graph + vindication): {} verified, {} unverified",
        outcome.verified(),
        outcome.unverified()
    );
    for checked in &outcome.checked {
        let verdict = match &checked.witness {
            Some(w) => format!("VERIFIED (witness of {} events)", w.order.len()),
            None => "unverified (possibly a false race)".to_string(),
        };
        let _ = writeln!(buf, "  race at {}: {verdict}", checked.event);
    }
    write_out(out, &buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::testutil::{capture, TempTrace};
    use smarttrack_trace::paper;

    #[test]
    fn figure1_verifies_on_replay() {
        let file = TempTrace::write(&paper::figure1());
        let text = capture(run, &[&file.path_str(), "--relation", "dc"]).unwrap();
        assert!(text.contains("1 verified, 0 unverified"), "{text}");
    }

    #[test]
    fn race_free_input_skips_the_replay_phase() {
        let file = TempTrace::write(&paper::figure4b());
        let text = capture(run, &[&file.path_str()]).unwrap();
        assert!(text.contains("phase 2: skipped"), "{text}");
    }

    #[test]
    fn figure3_false_wdc_race_is_flagged_unverified() {
        let file = TempTrace::write(&paper::figure3());
        let text = capture(run, &[&file.path_str(), "--relation", "wdc"]).unwrap();
        assert!(text.contains("0 verified, 1 unverified"), "{text}");
    }

    #[test]
    fn stb_input_streams_phase1_and_replays_only_on_races() {
        let dir = std::env::temp_dir();
        let racy = dir.join(format!("smarttrack-2p-racy-{}.stb", std::process::id()));
        smarttrack_trace::binary::write_stb_file(&paper::figure1(), &racy).unwrap();
        let text = capture(run, &[&racy.display().to_string(), "--relation", "dc"]).unwrap();
        assert!(text.contains("1 verified, 0 unverified"), "{text}");
        let _ = std::fs::remove_file(&racy);

        let clean = dir.join(format!("smarttrack-2p-clean-{}.stb", std::process::id()));
        smarttrack_trace::binary::write_stb_file(&paper::figure4b(), &clean).unwrap();
        let text = capture(run, &[&clean.display().to_string()]).unwrap();
        assert!(text.contains("phase 2: skipped"), "{text}");
        let _ = std::fs::remove_file(&clean);
    }

    #[test]
    fn wcp_is_rejected_with_an_explanation() {
        let file = TempTrace::write(&paper::figure1());
        let err = capture(run, &[&file.path_str(), "--relation", "wcp"]).unwrap_err();
        assert!(err.to_string().contains("sound"), "{err}");
    }
}
