//! `smarttrack two-phase` — the paper's §4.3 deployment architecture:
//! fast graph-free SmartTrack detection online, and a graph-building replay
//! plus vindication only if races were reported.

use std::fmt::Write as _;
use std::io::Write;

use smarttrack::two_phase::detect_then_check;
use smarttrack::Relation;

use crate::{load_trace, trace_arg, write_out, CliError, Opts};

const USAGE: &str = "smarttrack two-phase <trace> [--relation dc|wdc]";
const VALUES: &[&str] = &["relation"];

pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = Opts::parse(args, &[], VALUES)?;
    let path = trace_arg(&opts, USAGE)?;
    let trace = load_trace(path)?;
    let relation = match opts.value("relation").unwrap_or("wdc") {
        "dc" => Relation::Dc,
        "wdc" => Relation::Wdc,
        other => {
            return Err(CliError::Usage(format!(
                "--relation must be dc or wdc (the unsound relations that need \
                 checking; WCP is sound, HB is not predictive), got `{other}`"
            )))
        }
    };

    let outcome = detect_then_check(&trace, relation);
    let mut buf = String::new();
    let _ = writeln!(
        buf,
        "phase 1 ({}): {} static / {} dynamic races",
        outcome.detection.name,
        outcome.detection.report.static_count(),
        outcome.detection.report.dynamic_count()
    );
    if !outcome.replayed {
        let _ = writeln!(buf, "phase 2: skipped (no races — no replay cost at all)");
        return write_out(out, &buf);
    }
    let _ = writeln!(
        buf,
        "phase 2 (replay w/ graph + vindication): {} verified, {} unverified",
        outcome.verified(),
        outcome.unverified()
    );
    for checked in &outcome.checked {
        let verdict = match &checked.witness {
            Some(w) => format!("VERIFIED (witness of {} events)", w.order.len()),
            None => "unverified (possibly a false race)".to_string(),
        };
        let _ = writeln!(buf, "  race at {}: {verdict}", checked.event);
    }
    write_out(out, &buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::testutil::{capture, TempTrace};
    use smarttrack_trace::paper;

    #[test]
    fn figure1_verifies_on_replay() {
        let file = TempTrace::write(&paper::figure1());
        let text = capture(run, &[&file.path_str(), "--relation", "dc"]).unwrap();
        assert!(text.contains("1 verified, 0 unverified"), "{text}");
    }

    #[test]
    fn race_free_input_skips_the_replay_phase() {
        let file = TempTrace::write(&paper::figure4b());
        let text = capture(run, &[&file.path_str()]).unwrap();
        assert!(text.contains("phase 2: skipped"), "{text}");
    }

    #[test]
    fn figure3_false_wdc_race_is_flagged_unverified() {
        let file = TempTrace::write(&paper::figure3());
        let text = capture(run, &[&file.path_str(), "--relation", "wdc"]).unwrap();
        assert!(text.contains("0 verified, 1 unverified"), "{text}");
    }

    #[test]
    fn wcp_is_rejected_with_an_explanation() {
        let file = TempTrace::write(&paper::figure1());
        let err = capture(run, &[&file.path_str(), "--relation", "wcp"]).unwrap_err();
        assert!(err.to_string().contains("sound"), "{err}");
    }
}
