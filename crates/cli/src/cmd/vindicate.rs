//! `smarttrack vindicate` — check each reported race for a true
//! predictable-race witness (the paper's §2.4/§4.3 soundness story).

use std::collections::HashSet;
use std::fmt::Write as _;
use std::io::Write;

use smarttrack::{analyze, AnalysisConfig};
use smarttrack_vindicate::{find_prior_access, vindicate_pair, VindicationResult};

use crate::{load_trace, trace_arg, write_out, CliError, Opts};

const USAGE: &str = "smarttrack vindicate <trace> [--analysis CFG] [--show-witness] [--format FMT]";
const SWITCHES: &[&str] = &["show-witness"];
const VALUES: &[&str] = &["analysis", "format"];

pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = Opts::parse(args, SWITCHES, VALUES)?;
    let path = trace_arg(&opts, USAGE)?;
    let trace = load_trace(path, &opts)?;
    let config: AnalysisConfig = opts
        .value("analysis")
        .unwrap_or("st-wdc")
        .parse()
        .map_err(|e| CliError::Usage(format!("{e}")))?;

    let outcome = analyze(&trace, config);
    let mut buf = String::new();
    let _ = writeln!(
        buf,
        "{path}: {} reports {} static / {} dynamic races",
        outcome.name,
        outcome.report.static_count(),
        outcome.report.dynamic_count()
    );

    let mut seen_locs = HashSet::new();
    let mut verified = 0usize;
    let mut unknown = 0usize;
    for race in outcome.report.races() {
        if !seen_locs.insert(race.loc) {
            continue; // one vindication per statically distinct race
        }
        let prior = race
            .prior_threads
            .first()
            .and_then(|&u| find_prior_access(&trace, race.event, race.var, u));
        let Some(prior) = prior else {
            unknown += 1;
            let _ = writeln!(buf, "  {race}: prior access not identified");
            continue;
        };
        match vindicate_pair(&trace, prior, race.event) {
            VindicationResult::Race(witness) => {
                verified += 1;
                let _ = writeln!(
                    buf,
                    "  {race}: VERIFIED (witness of {} events)",
                    witness.order.len()
                );
                if opts.switch("show-witness") {
                    let reordered = witness.to_trace(&trace);
                    for line in smarttrack_trace::fmt::render_columns(&reordered).lines() {
                        let _ = writeln!(buf, "      {line}");
                    }
                }
            }
            VindicationResult::Unknown => {
                unknown += 1;
                let _ = writeln!(
                    buf,
                    "  {race}: unknown (no witness; possibly a false {} race)",
                    config.relation
                );
            }
        }
    }
    let _ = writeln!(buf, "verified {verified}, unknown {unknown}");
    write_out(out, &buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::testutil::{capture, TempTrace};
    use smarttrack_trace::paper;

    #[test]
    fn figure1_race_verifies_with_a_witness() {
        let file = TempTrace::write(&paper::figure1());
        let text = capture(run, &[&file.path_str(), "--show-witness"]).unwrap();
        assert!(text.contains("VERIFIED"), "{text}");
        assert!(text.contains("verified 1, unknown 0"));
    }

    #[test]
    fn figure3_false_wdc_race_stays_unknown() {
        let file = TempTrace::write(&paper::figure3());
        let text = capture(run, &[&file.path_str()]).unwrap();
        assert!(text.contains("unknown"), "{text}");
        assert!(text.contains("verified 0, unknown 1"));
    }

    #[test]
    fn race_free_traces_have_nothing_to_vindicate() {
        let file = TempTrace::write(&paper::figure4a());
        let text = capture(run, &[&file.path_str()]).unwrap();
        assert!(text.contains("verified 0, unknown 0"));
    }
}
