//! `smarttrack serve` — run the race-detection daemon.
//!
//! Binds a TCP listener and analyzes STB streams pushed by clients over
//! the serve protocol (`docs/SERVE_PROTOCOL.md`). Sessions are keyed by
//! tenant + name, survive disconnects until `--idle-timeout` elapses, and
//! share a fixed pool of analysis workers. `--connections N` serves that
//! many connections to completion and then drains — the knob the test
//! suite and scripted smoke runs use; without it the daemon runs until
//! killed.

use std::io::Write;
use std::time::Duration;

use smarttrack::AnalysisConfig;
use smarttrack_serve::{Server, ServerConfig};

use crate::{write_out, CliError, Opts};

const USAGE: &str = "smarttrack serve [--listen ADDR] [--analysis CFG]... [--all] \
                     [--workers N] [--idle-timeout SECS] [--queue-bytes N] [--connections N]";
const SWITCHES: &[&str] = &["all"];
const VALUES: &[&str] = &[
    "listen",
    "analysis",
    "workers",
    "idle-timeout",
    "queue-bytes",
    "connections",
];

/// Default bind address; loopback only — exposing the daemon wider is a
/// deliberate `--listen` decision.
const DEFAULT_LISTEN: &str = "127.0.0.1:7420";

/// Parses the shared `--analysis`/`--all` selection (the `batch`
/// defaults).
pub(crate) fn analysis_selection(opts: &Opts) -> Result<Vec<AnalysisConfig>, CliError> {
    if opts.switch("all") {
        return Ok(AnalysisConfig::table1());
    }
    let names = opts.all_values("analysis");
    let names: Vec<&str> = if names.is_empty() {
        vec!["fto-hb", "st-wcp", "st-dc", "st-wdc"]
    } else {
        names.iter().map(String::as_str).collect()
    };
    names
        .into_iter()
        .map(|n| n.parse().map_err(|e| CliError::Usage(format!("{e}"))))
        .collect()
}

pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = Opts::parse(args, SWITCHES, VALUES)?;
    if let Some(extra) = opts.positional(0) {
        return Err(CliError::Usage(format!(
            "unexpected argument `{extra}`; usage: {USAGE}"
        )));
    }

    let analyses = analysis_selection(&opts)?;
    let workers = match opts.value("workers") {
        None => None,
        Some(text) => Some(text.parse::<usize>().map_err(|e| {
            CliError::Usage(format!("invalid value `{text}` for `--workers`: {e}"))
        })?),
    };
    let idle_secs: u64 = opts.parsed_or("idle-timeout", 60)?;
    let mut config = ServerConfig {
        analyses,
        workers,
        idle_timeout: Duration::from_secs(idle_secs),
        ..ServerConfig::default()
    };
    config.session_queue_bytes = opts.parsed_or("queue-bytes", config.session_queue_bytes)?;
    let connections: u64 = opts.parsed_or("connections", 0)?;

    let listen = opts.value("listen").unwrap_or(DEFAULT_LISTEN);
    let server = Server::bind(listen, config).map_err(|e| match e {
        smarttrack_serve::ServeError::Io(source) => CliError::Io {
            path: listen.to_string(),
            source,
        },
        other => CliError::Invalid(other.to_string()),
    })?;

    let mut banner = format!(
        "serving on {} ({} worker(s), idle timeout {idle_secs}s)\n",
        server.local_addr(),
        server.workers(),
    );
    for lane in server.lanes() {
        banner.push_str(&format!("  lane {}\n", lane.name));
    }
    write_out(out, &banner)?;
    out.flush().map_err(|source| CliError::Io {
        path: "<stdout>".to_string(),
        source,
    })?;

    // Serve until the connection quota is met (0 = forever).
    loop {
        std::thread::sleep(Duration::from_millis(20));
        if connections > 0 && server.connections_closed() >= connections {
            break;
        }
    }
    let served = server.connections_closed();
    server.shutdown();
    write_out(out, &format!("served {served} connection(s); drained\n"))
}

#[cfg(test)]
mod tests {
    use std::io::Write;
    use std::sync::{Arc, Mutex};

    /// A `Write` the test can observe while `run` is still blocking in
    /// another thread — how we learn the ephemeral port.
    #[derive(Clone, Default)]
    struct SharedOut(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedOut {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedOut {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn rejects_unknown_analysis_and_stray_positionals() {
        let mut out = Vec::new();
        assert!(super::run(&args(&["--analysis", "nope"]), &mut out).is_err());
        assert!(super::run(&args(&["stray"]), &mut out).is_err());
    }

    #[test]
    fn serves_one_connection_then_drains() {
        let shared = SharedOut::default();
        let mut thread_out = shared.clone();
        let handle = std::thread::spawn(move || {
            super::run(
                &args(&[
                    "--listen",
                    "127.0.0.1:0",
                    "--analysis",
                    "st-wdc",
                    "--workers",
                    "1",
                    "--connections",
                    "1",
                ]),
                &mut thread_out,
            )
        });

        // Poll the banner for the bound address.
        let addr = loop {
            if let Some(line) = shared.text().lines().next().map(String::from) {
                if let Some(rest) = line.strip_prefix("serving on ") {
                    break rest.split(' ').next().unwrap().to_string();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };

        let trace = smarttrack_trace::paper::figure1();
        let mut client = smarttrack_serve::ServeClient::connect(
            addr.parse::<std::net::SocketAddr>().unwrap(),
            "cli-test",
            "s1",
            false,
        )
        .expect("connect to cli server");
        client.stream_trace(&trace, 0).expect("stream");
        let report = client.finish().expect("finish");
        assert_eq!(report.events, trace.len() as u64);
        drop(client);

        handle.join().unwrap().expect("serve run completes");
        assert!(shared.text().contains("drained"));
    }
}
