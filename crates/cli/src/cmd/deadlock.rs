//! `smarttrack deadlock` — exhaustive predictable-deadlock search on small
//! traces (the "or a predictable deadlock" disjunct of WCP's soundness
//! guarantee, paper §2.4 footnote 4).

use std::fmt::Write as _;
use std::io::Write;

use smarttrack_vindicate::{DeadlockResult, PredictableRaceOracle};

use crate::{load_trace, trace_arg, write_out, CliError, Opts};

const USAGE: &str = "smarttrack deadlock <trace> [--budget N] [--format FMT]";
const VALUES: &[&str] = &["budget", "format"];

pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = Opts::parse(args, &[], VALUES)?;
    let path = trace_arg(&opts, USAGE)?;
    let trace = load_trace(path, &opts)?;
    let budget: usize = opts.parsed_or("budget", 500_000)?;

    let oracle = PredictableRaceOracle::new(&trace).with_budget(budget);
    let mut buf = String::new();
    match oracle.any_predictable_deadlock() {
        DeadlockResult::Deadlock(threads) => {
            let cycle: Vec<String> = threads.iter().map(|t| t.to_string()).collect();
            let _ = writeln!(
                buf,
                "{path}: PREDICTABLE DEADLOCK — wait cycle {}",
                cycle.join(" -> ")
            );
        }
        DeadlockResult::NoDeadlock => {
            let _ = writeln!(
                buf,
                "{path}: no predictable deadlock (proven exhaustively over all \
                 correct reorderings)"
            );
        }
        DeadlockResult::Unknown => {
            let _ = writeln!(
                buf,
                "{path}: unknown — state budget {budget} exhausted (raise --budget; \
                 the search is exponential and meant for small traces)"
            );
        }
    }
    write_out(out, &buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::testutil::{capture, TempTrace};
    use smarttrack_trace::{paper, LockId, Op, ThreadId, TraceBuilder};

    #[test]
    fn inverted_nesting_reports_the_wait_cycle() {
        let mut b = TraceBuilder::new();
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let (m, n) = (LockId::new(0), LockId::new(1));
        for (t, outer, inner) in [(t0, m, n), (t1, n, m)] {
            b.push(t, Op::Acquire(outer)).unwrap();
            b.push(t, Op::Acquire(inner)).unwrap();
            b.push(t, Op::Release(inner)).unwrap();
            b.push(t, Op::Release(outer)).unwrap();
        }
        let file = TempTrace::write(&b.finish());
        let text = capture(run, &[&file.path_str()]).unwrap();
        assert!(text.contains("PREDICTABLE DEADLOCK"), "{text}");
        assert!(text.contains("->"), "{text}");
    }

    #[test]
    fn figure1_has_no_deadlock() {
        let file = TempTrace::write(&paper::figure1());
        let text = capture(run, &[&file.path_str()]).unwrap();
        assert!(text.contains("no predictable deadlock"), "{text}");
    }

    #[test]
    fn tiny_budget_reports_unknown() {
        let file = TempTrace::write(&paper::figure2());
        let text = capture(run, &[&file.path_str(), "--budget", "2"]).unwrap();
        assert!(text.contains("unknown"), "{text}");
    }
}
