//! `smarttrack render` — pretty-print a trace as per-thread columns (the
//! layout the paper's figures use).

use std::io::Write;

use crate::{load_trace, trace_arg, write_out, CliError, Opts};

const USAGE: &str = "smarttrack render <trace> [--format FMT]";
const VALUES: &[&str] = &["format"];

pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = Opts::parse(args, &[], VALUES)?;
    let path = trace_arg(&opts, USAGE)?;
    let trace = load_trace(path, &opts)?;
    write_out(out, &smarttrack_trace::fmt::render_columns(&trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::testutil::{capture, TempTrace};
    use smarttrack_trace::paper;

    #[test]
    fn renders_column_layout() {
        let file = TempTrace::write(&paper::figure1());
        let text = capture(run, &[&file.path_str()]).unwrap();
        assert!(text.contains("Thread 1"), "{text}");
        assert!(text.contains("Thread 2"), "{text}");
        assert!(text.contains("rd(x0)"), "{text}");
    }
}
