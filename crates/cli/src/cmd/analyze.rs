//! `smarttrack analyze` — run race detectors over a trace file.
//!
//! All selected analyses run as fan-out lanes of one streaming
//! [`Session`](smarttrack::Session): a single pass over the event stream,
//! however many Table 1 cells are selected. Text-format input is parsed
//! whole; STB binary input is *streamed* into the session chunk by chunk
//! — memory stays bounded however long the recording, and the STB
//! header's hint pre-sizes the session (see `docs/TRACE_FORMATS.md`).

use std::fmt::Write as _;
use std::io::Write;

use smarttrack::{AnalysisConfig, Engine, StreamHint};

use crate::{feed_stb, open_trace, trace_arg, write_out, CliError, Opts, TraceSource};

const USAGE: &str =
    "smarttrack analyze <trace> [--analysis CFG]... [--all] [--max-races N] [--format FMT]";
const SWITCHES: &[&str] = &["all"];
const VALUES: &[&str] = &["analysis", "max-races", "format"];

/// The default selection: the state-of-the-art HB baseline plus the three
/// SmartTrack-optimized predictive analyses (the paper's headline
/// comparison).
const DEFAULT_ANALYSES: &[&str] = &["fto-hb", "st-wcp", "st-dc", "st-wdc"];

pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = Opts::parse(args, SWITCHES, VALUES)?;
    let path = trace_arg(&opts, USAGE)?;
    let source = open_trace(path, &opts)?;
    let max_races: usize = opts.parsed_or("max-races", 10)?;

    let configs: Vec<AnalysisConfig> = if opts.switch("all") {
        AnalysisConfig::table1()
    } else {
        let names = opts.all_values("analysis");
        let names: Vec<&str> = if names.is_empty() {
            DEFAULT_ANALYSES.to_vec()
        } else {
            names.iter().map(String::as_str).collect()
        };
        names
            .into_iter()
            .map(|n| n.parse().map_err(|e| CliError::Usage(format!("{e}"))))
            .collect::<Result<_, _>>()?
    };

    let mut buf = String::new();
    // One fan-out session: every selected analysis in a single pass.
    let session = match source {
        TraceSource::Whole(trace) => {
            let _ = writeln!(
                buf,
                "{path}: {} events, {} threads, {} variables, {} locks",
                trace.len(),
                trace.num_threads(),
                trace.num_vars(),
                trace.num_locks()
            );
            let engine = Engine::builder()
                .fanout(configs)
                .build()
                .map_err(|e| CliError::Usage(e.to_string()))?;
            let mut session = engine.open();
            session
                .feed_trace(&trace)
                .map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
            session
        }
        TraceSource::Stb(reader) => {
            // Stream the binary trace straight into the session — events
            // decode a chunk at a time, the whole trace is never resident.
            let engine = Engine::builder()
                .fanout(configs)
                .hint(StreamHint::of_stb_header(reader.header()))
                .build()
                .map_err(|e| CliError::Usage(e.to_string()))?;
            let session = feed_stb(engine.open(), reader, path)?;
            let _ = writeln!(buf, "{path}: {} events (streamed STB)", session.events());
            session
        }
    };
    for outcome in session.finish() {
        let _ = writeln!(
            buf,
            "\n{:<14} {} static / {} dynamic races, peak metadata {} bytes",
            outcome.name,
            outcome.report.static_count(),
            outcome.report.dynamic_count(),
            outcome.summary.peak_footprint_bytes
        );
        for race in outcome.report.races().iter().take(max_races) {
            let _ = writeln!(buf, "    {race}");
        }
        let suppressed = outcome.report.dynamic_count().saturating_sub(max_races);
        if suppressed > 0 {
            let _ = writeln!(buf, "    … and {suppressed} more (raise --max-races)");
        }
    }
    write_out(out, &buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::testutil::{capture, TempTrace};
    use smarttrack_trace::paper;

    #[test]
    fn default_selection_separates_hb_from_predictive() {
        let file = TempTrace::write(&paper::figure1());
        let text = capture(run, &[&file.path_str()]).unwrap();
        let hb_line = text.lines().find(|l| l.contains("FTO-HB")).unwrap();
        assert!(hb_line.contains("0 static / 0 dynamic"), "{hb_line}");
        let wdc_line = text.lines().find(|l| l.contains("SmartTrack-WDC")).unwrap();
        assert!(wdc_line.contains("1 static / 1 dynamic"), "{wdc_line}");
    }

    #[test]
    fn all_flag_runs_the_full_table1_matrix() {
        let file = TempTrace::write(&paper::figure3());
        let text = capture(run, &[&file.path_str(), "--all"]).unwrap();
        for name in ["Unopt-HB", "FT2", "Unopt-DC w/G", "SmartTrack-WCP"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn explicit_analyses_are_respected() {
        let file = TempTrace::write(&paper::figure2());
        let text = capture(run, &[&file.path_str(), "--analysis", "st-dc"]).unwrap();
        assert!(text.contains("SmartTrack-DC"));
        assert!(!text.contains("FTO-HB"));
    }

    #[test]
    fn stb_input_streams_and_matches_text_verdicts() {
        let trace = paper::figure1();
        let text_file = TempTrace::write(&trace);
        let stb_path =
            std::env::temp_dir().join(format!("smarttrack-analyze-{}.stb", std::process::id()));
        smarttrack_trace::binary::write_stb_file(&trace, &stb_path).unwrap();
        let stb_str = stb_path.display().to_string();

        let from_text = capture(run, &[&text_file.path_str()]).unwrap();
        let from_stb = capture(run, &[&stb_str]).unwrap();
        assert!(from_stb.contains("streamed STB"), "{from_stb}");
        // Identical verdict lines, whatever the container format.
        let verdicts = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| l.contains("static /"))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(verdicts(&from_text), verdicts(&from_stb));
        let _ = std::fs::remove_file(&stb_path);
    }

    #[test]
    fn format_flag_overrides_the_extension() {
        // STD bytes in a file with a native-looking extension.
        let path = std::env::temp_dir().join(format!(
            "smarttrack-analyze-ovr-{}.trace",
            std::process::id()
        ));
        std::fs::write(
            &path,
            smarttrack_trace::formats::render_std(&paper::figure1()),
        )
        .unwrap();
        let path_str = path.display().to_string();
        assert!(
            capture(run, &[&path_str]).is_err(),
            "native parse must fail"
        );
        let text = capture(run, &[&path_str, "--format", "std"]).unwrap();
        assert!(text.contains("SmartTrack-WDC"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bogus_analysis_name_is_a_usage_error() {
        let file = TempTrace::write(&paper::figure1());
        let err = capture(run, &[&file.path_str(), "--analysis", "magic"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn max_races_truncates_output() {
        // xalan-style workloads report plenty of dynamic races.
        let trace = smarttrack_workloads::profiles::xalan().trace(2e-6, 3);
        let file = TempTrace::write(&trace);
        let text = capture(
            run,
            &[&file.path_str(), "--analysis", "st-wdc", "--max-races", "1"],
        )
        .unwrap();
        assert!(text.contains("more (raise --max-races)"));
    }
}
