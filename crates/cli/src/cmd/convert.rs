//! `smarttrack convert` — translate traces between the native line format
//! and the interchange formats (STD/`RAPID`, CSV), so recorded executions
//! from other race-detection tooling can be analyzed here and vice versa.

use std::fmt::Write as _;
use std::io::Write;
use std::str::FromStr;

use smarttrack_trace::formats::{self, TraceFormat};

use crate::{format_of_path, trace_arg, write_out, CliError, Opts};

const USAGE: &str =
    "smarttrack convert <trace> [--from FMT] --to FMT [--out FILE]   (FMT: native|std|csv)";
const VALUES: &[&str] = &["from", "to", "out"];

pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = Opts::parse(args, &[], VALUES)?;
    let path = trace_arg(&opts, USAGE)?;

    let from = match opts.value("from") {
        Some(name) => TraceFormat::from_str(name).map_err(CliError::Usage)?,
        None => format_of_path(path),
    };
    let to = match opts.value("to") {
        Some(name) => TraceFormat::from_str(name).map_err(CliError::Usage)?,
        None => match opts.value("out") {
            // Infer from the output extension when given.
            Some(out_path) => format_of_path(out_path),
            None => return Err(CliError::Usage(format!("missing --to; usage: {USAGE}"))),
        },
    };

    let text = std::fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.to_string(),
        source,
    })?;
    let trace =
        formats::parse_as(&text, from).map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
    let rendered = formats::render_as(&trace, to);

    match opts.value("out") {
        Some(out_path) => {
            std::fs::write(out_path, rendered).map_err(|source| CliError::Io {
                path: out_path.to_string(),
                source,
            })?;
            let mut buf = String::new();
            let _ = writeln!(
                buf,
                "converted {path} ({from}) -> {out_path} ({to}): {} events",
                trace.len()
            );
            write_out(out, &buf)
        }
        None => write_out(out, &rendered),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::testutil::{capture, TempTrace};
    use smarttrack_trace::paper;

    #[test]
    fn converts_native_to_std_on_stdout() {
        let file = TempTrace::write(&paper::figure1());
        let text = capture(run, &[&file.path_str(), "--to", "std"]).unwrap();
        let back = formats::parse_std(&text).expect("valid STD output");
        assert_eq!(back, paper::figure1());
    }

    #[test]
    fn converts_to_csv_and_back() {
        let file = TempTrace::write(&paper::figure2());
        let csv = capture(run, &[&file.path_str(), "--to", "csv"]).unwrap();
        let back = formats::parse_csv(&csv).expect("valid CSV output");
        assert_eq!(back, paper::figure2());
    }

    #[test]
    fn infers_target_format_from_out_extension() {
        let file = TempTrace::write(&paper::figure1());
        let out_path =
            std::env::temp_dir().join(format!("smarttrack-convert-{}.std", std::process::id()));
        let out_str = out_path.display().to_string();
        let msg = capture(run, &[&file.path_str(), "--out", &out_str]).unwrap();
        assert!(msg.contains("(std)"), "{msg}");
        let text = std::fs::read_to_string(&out_path).unwrap();
        assert_eq!(formats::parse_std(&text).unwrap(), paper::figure1());
        let _ = std::fs::remove_file(&out_path);
    }

    #[test]
    fn missing_target_format_is_a_usage_error() {
        let file = TempTrace::write(&paper::figure1());
        let err = capture(run, &[&file.path_str()]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--to"));
    }

    #[test]
    fn bad_format_name_is_a_usage_error() {
        let file = TempTrace::write(&paper::figure1());
        let err = capture(run, &[&file.path_str(), "--to", "xml"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }
}
