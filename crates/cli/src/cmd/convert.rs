//! `smarttrack convert` — translate traces between the native line format,
//! the text interchange formats (STD/`RAPID`, CSV), and the STB binary
//! format, so recorded executions from other race-detection tooling can be
//! analyzed here and vice versa (and text recordings can be compacted to
//! STB for fast re-analysis).

use std::fmt::Write as _;
use std::io::Write;
use std::str::FromStr;

use smarttrack_trace::formats::{self, TraceFormat};

use crate::{trace_arg, write_out, CliError, Opts};

const USAGE: &str =
    "smarttrack convert <trace> [--from FMT] --to FMT [--out FILE]   (FMT: native|std|csv|stb)";
const VALUES: &[&str] = &["from", "to", "out"];

pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = Opts::parse(args, &[], VALUES)?;
    let path = trace_arg(&opts, USAGE)?;

    let to = match opts.value("to") {
        Some(name) => TraceFormat::from_str(name).map_err(CliError::Usage)?,
        None => match opts.value("out") {
            // Infer from the output extension when given.
            Some(out_path) => formats::format_of_path(out_path),
            None => return Err(CliError::Usage(format!("missing --to; usage: {USAGE}"))),
        },
    };

    let bytes = std::fs::read(path).map_err(|source| CliError::Io {
        path: path.to_string(),
        source,
    })?;
    let from = match opts.value("from") {
        Some(name) => TraceFormat::from_str(name).map_err(CliError::Usage)?,
        // Auto-detect from the bytes just read: magic-byte sniffing, then
        // the extension.
        None => formats::sniff(&bytes).unwrap_or_else(|| formats::format_of_path(path)),
    };
    let trace = formats::parse_bytes(&bytes, from)
        .map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
    let rendered = formats::render_bytes(&trace, to);

    match opts.value("out") {
        Some(out_path) => {
            std::fs::write(out_path, rendered).map_err(|source| CliError::Io {
                path: out_path.to_string(),
                source,
            })?;
            let mut buf = String::new();
            let _ = writeln!(
                buf,
                "converted {path} ({from}) -> {out_path} ({to}): {} events",
                trace.len()
            );
            write_out(out, &buf)
        }
        // Raw bytes to stdout (binary-safe: STB output can be redirected).
        None => out.write_all(&rendered).map_err(|source| CliError::Io {
            path: "<stdout>".to_string(),
            source,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::testutil::{capture, TempTrace};
    use smarttrack_trace::paper;

    #[test]
    fn converts_native_to_std_on_stdout() {
        let file = TempTrace::write(&paper::figure1());
        let text = capture(run, &[&file.path_str(), "--to", "std"]).unwrap();
        let back = formats::parse_std(&text).expect("valid STD output");
        assert_eq!(back, paper::figure1());
    }

    #[test]
    fn converts_to_csv_and_back() {
        let file = TempTrace::write(&paper::figure2());
        let csv = capture(run, &[&file.path_str(), "--to", "csv"]).unwrap();
        let back = formats::parse_csv(&csv).expect("valid CSV output");
        assert_eq!(back, paper::figure2());
    }

    #[test]
    fn infers_target_format_from_out_extension() {
        let file = TempTrace::write(&paper::figure1());
        let out_path =
            std::env::temp_dir().join(format!("smarttrack-convert-{}.std", std::process::id()));
        let out_str = out_path.display().to_string();
        let msg = capture(run, &[&file.path_str(), "--out", &out_str]).unwrap();
        assert!(msg.contains("(std)"), "{msg}");
        let text = std::fs::read_to_string(&out_path).unwrap();
        assert_eq!(formats::parse_std(&text).unwrap(), paper::figure1());
        let _ = std::fs::remove_file(&out_path);
    }

    #[test]
    fn converts_to_stb_and_back() {
        let file = TempTrace::write(&paper::figure3());
        let dir = std::env::temp_dir();
        let stb_path = dir.join(format!("smarttrack-convert-{}.stb", std::process::id()));
        let stb_str = stb_path.display().to_string();
        let msg = capture(run, &[&file.path_str(), "--out", &stb_str]).unwrap();
        assert!(msg.contains("(stb)"), "{msg}");
        assert_eq!(
            smarttrack_trace::binary::read_stb_file(&stb_path).unwrap(),
            paper::figure3()
        );

        // Back to native — the source format is sniffed from the magic.
        let back_path = dir.join(format!("smarttrack-convert-{}.trace", std::process::id()));
        let back_str = back_path.display().to_string();
        let msg = capture(run, &[&stb_str, "--to", "native", "--out", &back_str]).unwrap();
        assert!(msg.contains("(stb) ->"), "{msg}");
        assert_eq!(
            smarttrack_trace::fmt::read_file(&back_path).unwrap(),
            paper::figure3()
        );
        let _ = std::fs::remove_file(&stb_path);
        let _ = std::fs::remove_file(&back_path);
    }

    #[test]
    fn missing_target_format_is_a_usage_error() {
        let file = TempTrace::write(&paper::figure1());
        let err = capture(run, &[&file.path_str()]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--to"));
    }

    #[test]
    fn bad_format_name_is_a_usage_error() {
        let file = TempTrace::write(&paper::figure1());
        let err = capture(run, &[&file.path_str(), "--to", "xml"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }
}
