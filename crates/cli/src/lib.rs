#![warn(missing_docs)]

//! `smarttrack` — the command-line front end of the SmartTrack
//! reproduction.
//!
//! The binary drives the whole system over traces in the repository's text
//! format (see `smarttrack_trace::fmt`):
//!
//! ```text
//! smarttrack analyze  race.trace --analysis st-wdc --analysis fto-hb
//! smarttrack stats    race.trace
//! smarttrack render   race.trace
//! smarttrack vindicate race.trace --show-witness
//! smarttrack windowed race.trace --window 512
//! smarttrack generate xalan --scale 2e-5 --out xalan.trace
//! smarttrack figure   figure1 --out fig1.trace
//! smarttrack list
//! ```
//!
//! Every command is a thin formatter over the library crates, so anything
//! the CLI does is equally available through the public API. [`run`] is the
//! embeddable entry point (the binary's `main` is three lines); commands
//! write to the supplied writer, which keeps them unit-testable.

use std::fmt;
use std::io::Write;

mod cmd;
mod opts;

pub use opts::{Opts, OptsError};

/// Errors surfaced to the user by the CLI.
#[derive(Debug)]
pub enum CliError {
    /// Wrong invocation (unknown command, bad flags, missing args). The
    /// string is a complete message, usually ending with a usage hint.
    Usage(String),
    /// An I/O failure, annotated with the path involved.
    Io {
        /// The file being read or written.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A well-formed invocation whose input was semantically invalid
    /// (unparsable trace, unknown profile, N/A analysis, …).
    Invalid(String),
}

impl CliError {
    /// Process exit code: 2 for usage errors (matching common CLI
    /// conventions), 1 otherwise.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<OptsError> for CliError {
    fn from(err: OptsError) -> Self {
        CliError::Usage(err.to_string())
    }
}

const HELP: &str = "\
smarttrack — predictive data-race detection (SmartTrack, PLDI 2020)

USAGE:
    smarttrack <COMMAND> [ARGS]

COMMANDS:
    analyze   <trace> [--analysis CFG]... [--all] [--max-races N]
              run race detectors over a trace file
    stats     <trace>
              run-time characteristics (the paper's Table 2 metrics)
    render    <trace>
              pretty-print the trace as per-thread columns
    convert   <trace> [--from FMT] --to FMT [--out FILE]
              translate between native, STD/RAPID, and CSV trace formats
    vindicate <trace> [--analysis CFG] [--show-witness]
              check each reported race for a predictable-race witness
    two-phase <trace> [--relation dc|wdc]
              detect fast, replay w/ graph + vindicate only on races (§4.3)
    deadlock  <trace> [--budget N]
              exhaustive predictable-deadlock search (small traces)
    windowed  <trace> [--window N] [--stride N] [--budget N]
              bounded-window analysis (the SMT-window approach of §6)
    generate  <profile|distant:N> [--scale F] [--seed N] [--out FILE]
              emit a DaCapo-calibrated synthetic workload trace
    figure    <figure1|figure2|figure3|figure4a..figure4d> [--out FILE]
              emit one of the paper's example executions
    list      available analyses, workload profiles, and figures
    help      this message

ANALYSES (CFG):
    ft2, unopt-hb, fto-hb, and <unopt|fto|st>-<wcp|dc|wdc>;
    append +g for the graph-recording variants (unopt-dc+g, unopt-wdc+g).

TRACE FILES:
    input format is chosen by extension: .std/.rapid (the RAPID pipe
    format), .csv, anything else the native line format.
";

/// Runs one CLI invocation, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for malformed invocations (exit code 2) and
/// [`CliError::Io`]/[`CliError::Invalid`] for runtime failures (exit
/// code 1).
///
/// # Examples
///
/// ```
/// let mut out = Vec::new();
/// smarttrack_cli::run(&["list".to_string()], &mut out)?;
/// assert!(String::from_utf8(out)?.contains("ST-WDC"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        write_out(out, HELP)?;
        return Ok(());
    };
    let rest = &args[1..];
    match command.as_str() {
        "analyze" => cmd::analyze::run(rest, out),
        "convert" => cmd::convert::run(rest, out),
        "stats" => cmd::stats::run(rest, out),
        "render" => cmd::render::run(rest, out),
        "vindicate" => cmd::vindicate::run(rest, out),
        "two-phase" => cmd::two_phase::run(rest, out),
        "deadlock" => cmd::deadlock::run(rest, out),
        "windowed" => cmd::windowed::run(rest, out),
        "generate" => cmd::generate::run(rest, out),
        "figure" => cmd::figure::run(rest, out),
        "list" => cmd::list::run(rest, out),
        "help" | "--help" | "-h" => {
            write_out(out, HELP)?;
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`; run `smarttrack help`"
        ))),
    }
}

/// Picks a trace format from a path's extension: `.std`/`.rapid` → STD,
/// `.csv` → CSV, anything else → the native line format.
fn format_of_path(path: &str) -> smarttrack_trace::formats::TraceFormat {
    use smarttrack_trace::formats::TraceFormat;
    match std::path::Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .map(str::to_ascii_lowercase)
        .as_deref()
    {
        Some("std") | Some("rapid") => TraceFormat::Std,
        Some("csv") => TraceFormat::Csv,
        _ => TraceFormat::Native,
    }
}

/// Loads a trace file (format chosen by extension), mapping errors to
/// [`CliError`].
fn load_trace(path: &str) -> Result<smarttrack_trace::Trace, CliError> {
    let text = std::fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.to_string(),
        source,
    })?;
    smarttrack_trace::formats::parse_as(&text, format_of_path(path))
        .map_err(|e| CliError::Invalid(format!("{path}: {e}")))
}

/// The required trace-file positional of most commands.
fn trace_arg<'a>(opts: &'a Opts, usage: &str) -> Result<&'a str, CliError> {
    opts.positional(0)
        .ok_or_else(|| CliError::Usage(format!("missing <trace> argument; usage: {usage}")))
}

fn write_out(out: &mut dyn Write, text: &str) -> Result<(), CliError> {
    out.write_all(text.as_bytes())
        .map_err(|source| CliError::Io {
            path: "<stdout>".to_string(),
            source,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn run_ok(list: &[&str]) -> String {
        let mut out = Vec::new();
        run(&args(list), &mut out).expect("command succeeds");
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn no_args_prints_help() {
        assert!(run_ok(&[]).contains("USAGE"));
    }

    #[test]
    fn help_aliases_work() {
        for alias in ["help", "--help", "-h"] {
            assert!(run_ok(&[alias]).contains("COMMANDS"));
        }
    }

    #[test]
    fn unknown_command_is_a_usage_error() {
        let mut out = Vec::new();
        let err = run(&args(&["frobnicate"]), &mut out).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn missing_trace_file_is_an_io_error() {
        let mut out = Vec::new();
        let err = run(&args(&["analyze", "/nonexistent/never.trace"]), &mut out).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("never.trace"));
    }
}
