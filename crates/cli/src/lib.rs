#![warn(missing_docs)]

//! `smarttrack` — the command-line front end of the SmartTrack
//! reproduction.
//!
//! The binary drives the whole system over trace files in any of the four
//! supported formats — the native line format, STD/`RAPID`, CSV, and the
//! STB binary format (see `docs/TRACE_FORMATS.md`). Input format is
//! auto-detected (magic-byte sniffing, then file extension) and can be
//! forced with `--format`; STB input streams into the analyses chunk by
//! chunk, in bounded memory:
//!
//! ```text
//! smarttrack analyze  race.trace --analysis st-wdc --analysis fto-hb
//! smarttrack analyze  recording.stb --all
//! smarttrack batch    corpus/ --jobs 8 --out report.json
//! smarttrack convert  race.trace --to stb --out race.stb
//! smarttrack stats    race.trace
//! smarttrack render   race.trace
//! smarttrack vindicate race.trace --show-witness
//! smarttrack windowed race.trace --window 512
//! smarttrack generate xalan --scale 2e-5 --out xalan.stb
//! smarttrack serve    --listen 127.0.0.1:7420 --workers 8
//! smarttrack load     127.0.0.1:7420 --clients 8 --scale 2e-5
//! smarttrack figure   figure1 --out fig1.trace
//! smarttrack list
//! ```
//!
//! Every command is a thin formatter over the library crates, so anything
//! the CLI does is equally available through the public API. [`run`] is the
//! embeddable entry point (the binary's `main` is three lines); commands
//! write to the supplied writer, which keeps them unit-testable.

use std::fmt;
use std::io::Write;

mod cmd;
mod opts;

pub use opts::{Opts, OptsError};

/// Errors surfaced to the user by the CLI.
#[derive(Debug)]
pub enum CliError {
    /// Wrong invocation (unknown command, bad flags, missing args). The
    /// string is a complete message, usually ending with a usage hint.
    Usage(String),
    /// An I/O failure, annotated with the path involved.
    Io {
        /// The file being read or written.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A well-formed invocation whose input was semantically invalid
    /// (unparsable trace, unknown profile, N/A analysis, …).
    Invalid(String),
}

impl CliError {
    /// Process exit code: 2 for usage errors (matching common CLI
    /// conventions), 1 otherwise.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<OptsError> for CliError {
    fn from(err: OptsError) -> Self {
        CliError::Usage(err.to_string())
    }
}

const HELP: &str = "\
smarttrack — predictive data-race detection (SmartTrack, PLDI 2020)

USAGE:
    smarttrack <COMMAND> [ARGS]

COMMANDS:
    analyze   <trace> [--analysis CFG]... [--all] [--max-races N] [--format FMT]
              run race detectors over a trace file (STB input streams)
    batch     <dir|glob|file>... [--analysis CFG]... [--all] [--jobs N]
              [--out FILE] [--json] [--strict]
              analyze a corpus of trace files on a parallel worker pool,
              aggregating one deduplicated corpus report (JSON via --out)
    stats     <trace> [--format FMT]
              run-time characteristics (the paper's Table 2 metrics)
    render    <trace> [--format FMT]
              pretty-print the trace as per-thread columns
    convert   <trace> [--from FMT] --to FMT [--out FILE]
              translate between the native, STD/RAPID, CSV, and STB formats
    vindicate <trace> [--analysis CFG] [--show-witness] [--format FMT]
              check each reported race for a predictable-race witness
    two-phase <trace> [--relation dc|wdc] [--format FMT]
              detect fast, replay w/ graph + vindicate only on races (§4.3)
    deadlock  <trace> [--budget N] [--format FMT]
              exhaustive predictable-deadlock search (small traces)
    windowed  <trace> [--window N] [--stride N] [--budget N] [--format FMT]
              bounded-window analysis (the SMT-window approach of §6)
    generate  <profile|distant:N> [--scale F] [--seed N] [--out FILE] [--format FMT]
              emit a calibrated synthetic workload trace (the ten DaCapo
              profiles, plus the condvar/barrier-heavy `condsync`)
    serve     [--listen ADDR] [--analysis CFG]... [--all] [--workers N]
              [--idle-timeout SECS] [--queue-bytes N] [--connections N]
              run the race-detection daemon: clients stream STB traces
              over TCP (docs/SERVE_PROTOCOL.md) into pooled sessions
    load      <addr> [--clients N] [--scale F] [--seeds N] [--chunk-bytes N]
              [--tenant NAME] [--no-validate] [--captured] [--nudge PERIOD[/PHASE]]
              replay a generated corpus against a running serve daemon
              over N connections, validating reports against offline runs;
              --captured instead records real threaded pattern-twin
              executions (smarttrack-capture) streamed live to the daemon,
              cross-checked against offline analysis and expectations, with
              --nudge injecting schedule-perturbing yields (docs/CAPTURE.md)
    figure    <figure1|figure2|figure3|figure4a..figure4d> [--out FILE] [--format FMT]
              emit one of the paper's example executions
    list      available analyses, workload profiles, and figures
    help      this message

ANALYSES (CFG):
    ft2, unopt-hb, fto-hb, and <unopt|fto|st>-<wcp|dc|wdc>;
    append +g for the graph-recording variants (unopt-dc+g, unopt-wdc+g).
    Beyond Table 1: syncp, the sync-preserving race predictor (sound by
    construction; every report carries a lock-order-preserving witness),
    and osr, the optimistic sync-reversal predictor (a strict superset of
    syncp: it may reorder same-lock critical sections, and every report
    carries a replay-validated reversal-tolerant witness). Neither has a
    +g variant, and both buffer the trace — state grows with events, so
    keep serve sessions carrying a syncp or osr lane bounded.

TRACE FILES (FMT: native|std|csv|stb):
    input format is auto-detected — magic-byte sniffing first (the STB
    binary format announces itself), then the extension: .stb (binary),
    .std/.rapid (the RAPID pipe format), .csv, anything else the native
    line format. --format FMT overrides both. STB input streams into
    analyze/batch/windowed/two-phase chunk by chunk in bounded memory; the
    spec for all four formats is docs/TRACE_FORMATS.md.
";

/// Runs one CLI invocation, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for malformed invocations (exit code 2) and
/// [`CliError::Io`]/[`CliError::Invalid`] for runtime failures (exit
/// code 1).
///
/// # Examples
///
/// ```
/// let mut out = Vec::new();
/// smarttrack_cli::run(&["list".to_string()], &mut out)?;
/// assert!(String::from_utf8(out)?.contains("ST-WDC"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        write_out(out, HELP)?;
        return Ok(());
    };
    let rest = &args[1..];
    match command.as_str() {
        "analyze" => cmd::analyze::run(rest, out),
        "batch" => cmd::batch::run(rest, out),
        "convert" => cmd::convert::run(rest, out),
        "stats" => cmd::stats::run(rest, out),
        "render" => cmd::render::run(rest, out),
        "vindicate" => cmd::vindicate::run(rest, out),
        "two-phase" => cmd::two_phase::run(rest, out),
        "deadlock" => cmd::deadlock::run(rest, out),
        "windowed" => cmd::windowed::run(rest, out),
        "generate" => cmd::generate::run(rest, out),
        "serve" => cmd::serve::run(rest, out),
        "load" => cmd::load::run(rest, out),
        "figure" => cmd::figure::run(rest, out),
        "list" => cmd::list::run(rest, out),
        "help" | "--help" | "-h" => {
            write_out(out, HELP)?;
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`; run `smarttrack help`"
        ))),
    }
}

/// Parses the `--format` override flag, for commands that declare it.
fn requested_format(
    opts: &Opts,
) -> Result<Option<smarttrack_trace::formats::TraceFormat>, CliError> {
    opts.value("format")
        .map(|name| name.parse().map_err(CliError::Usage))
        .transpose()
}

/// An opened trace input: either fully materialized (the text formats) or
/// a streaming STB decoder, which commands feed into an analysis session
/// without ever holding the whole trace.
enum TraceSource {
    /// All events in memory, as every text format requires.
    Whole(smarttrack_trace::Trace),
    /// A chunk-at-a-time STB stream.
    Stb(smarttrack_trace::binary::StbReader<std::io::BufReader<std::fs::File>>),
}

/// Opens a trace file for reading, honoring the command's `--format`
/// override and otherwise auto-detecting (magic-byte sniffing, then the
/// extension). STB inputs come back as a stream; everything else is parsed
/// eagerly. The file is opened exactly once — the sniff probe seeks back
/// rather than reopening, so format decision and data come from the same
/// file version.
fn open_trace(path: &str, opts: &Opts) -> Result<TraceSource, CliError> {
    use smarttrack_trace::formats::{self, TraceFormat};
    use std::io::{Read as _, Seek as _, SeekFrom};

    let io_err = |source| CliError::Io {
        path: path.to_string(),
        source,
    };
    let mut file = std::fs::File::open(path).map_err(io_err)?;
    let format = match requested_format(opts)? {
        Some(format) => format,
        None => {
            let mut probe = Vec::with_capacity(4);
            (&file).take(4).read_to_end(&mut probe).map_err(io_err)?;
            file.seek(SeekFrom::Start(0)).map_err(io_err)?;
            formats::sniff(&probe).unwrap_or_else(|| formats::format_of_path(path))
        }
    };
    if format == TraceFormat::Stb {
        let reader = smarttrack_trace::binary::StbReader::new(std::io::BufReader::new(file))
            .map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
        return Ok(TraceSource::Stb(reader));
    }
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(io_err)?;
    let trace = formats::parse_bytes(&bytes, format)
        .map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
    Ok(TraceSource::Whole(trace))
}

/// Streams every event of an STB reader into an analysis session, mapping
/// decode and well-formedness failures to [`CliError`]. Returns the
/// session for the caller to finish.
fn feed_stb<'d, R: std::io::Read>(
    mut session: smarttrack::Session<'d>,
    reader: smarttrack_trace::binary::StbReader<R>,
    path: &str,
) -> Result<smarttrack::Session<'d>, CliError> {
    for event in reader {
        let event = event.map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
        session
            .feed(event)
            .map_err(|e| CliError::Invalid(format!("{path}: malformed trace: {e}")))?;
    }
    Ok(session)
}

/// Loads a whole trace whatever the format (a streaming STB input is
/// materialized), mapping errors to [`CliError`].
fn load_trace(path: &str, opts: &Opts) -> Result<smarttrack_trace::Trace, CliError> {
    match open_trace(path, opts)? {
        TraceSource::Whole(trace) => Ok(trace),
        TraceSource::Stb(reader) => {
            let mut builder = smarttrack_trace::TraceBuilder::new();
            for event in reader {
                let event = event.map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
                builder
                    .push_event(event)
                    .map_err(|e| CliError::Invalid(format!("{path}: malformed trace: {e}")))?;
            }
            Ok(builder.finish())
        }
    }
}

/// The required trace-file positional of most commands.
fn trace_arg<'a>(opts: &'a Opts, usage: &str) -> Result<&'a str, CliError> {
    opts.positional(0)
        .ok_or_else(|| CliError::Usage(format!("missing <trace> argument; usage: {usage}")))
}

fn write_out(out: &mut dyn Write, text: &str) -> Result<(), CliError> {
    out.write_all(text.as_bytes())
        .map_err(|source| CliError::Io {
            path: "<stdout>".to_string(),
            source,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn run_ok(list: &[&str]) -> String {
        let mut out = Vec::new();
        run(&args(list), &mut out).expect("command succeeds");
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn no_args_prints_help() {
        assert!(run_ok(&[]).contains("USAGE"));
    }

    #[test]
    fn help_aliases_work() {
        for alias in ["help", "--help", "-h"] {
            assert!(run_ok(&[alias]).contains("COMMANDS"));
        }
    }

    #[test]
    fn unknown_command_is_a_usage_error() {
        let mut out = Vec::new();
        let err = run(&args(&["frobnicate"]), &mut out).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn missing_trace_file_is_an_io_error() {
        let mut out = Vec::new();
        let err = run(&args(&["analyze", "/nonexistent/never.trace"]), &mut out).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("never.trace"));
    }
}
