use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match smarttrack_cli::run(&args, &mut out) {
        Ok(()) => {}
        Err(err) => {
            let _ = out.flush();
            eprintln!("smarttrack: {err}");
            std::process::exit(err.exit_code());
        }
    }
}
