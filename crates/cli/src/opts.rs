//! A small, dependency-free command-line option parser.
//!
//! Supports `--flag` (boolean), `--key value`, `--key=value`, repeated
//! value flags, and positional arguments. Unknown flags are errors so typos
//! surface instead of being silently ignored.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// Error produced while parsing command-line options.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OptsError {
    /// A flag not declared by the command.
    UnknownFlag(String),
    /// A value flag at the end of the argument list.
    MissingValue(String),
    /// A value that failed its typed conversion.
    InvalidValue {
        /// The flag (or positional name).
        flag: String,
        /// The offending text.
        value: String,
        /// The conversion error.
        message: String,
    },
}

impl fmt::Display for OptsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptsError::UnknownFlag(flag) => write!(f, "unknown flag `{flag}`"),
            OptsError::MissingValue(flag) => write!(f, "flag `{flag}` expects a value"),
            OptsError::InvalidValue {
                flag,
                value,
                message,
            } => {
                write!(f, "invalid value `{value}` for `{flag}`: {message}")
            }
        }
    }
}

impl std::error::Error for OptsError {}

/// Parsed options: positionals in order plus flag values.
#[derive(Clone, Debug, Default)]
pub struct Opts {
    positionals: Vec<String>,
    values: HashMap<&'static str, Vec<String>>,
    switches: Vec<&'static str>,
}

impl Opts {
    /// Parses `args` against the declared `switches` (boolean `--flag`s)
    /// and `value_flags` (`--key value` / `--key=value`).
    ///
    /// # Errors
    ///
    /// Returns [`OptsError`] for undeclared flags and for value flags
    /// without a value.
    pub fn parse(
        args: &[String],
        switches: &'static [&'static str],
        value_flags: &'static [&'static str],
    ) -> Result<Opts, OptsError> {
        let mut opts = Opts::default();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                opts.positionals.push(arg.clone());
                continue;
            };
            let (name, inline) = match name.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (name, None),
            };
            if let Some(&flag) = switches.iter().find(|&&s| s == name) {
                if let Some(value) = inline {
                    return Err(OptsError::InvalidValue {
                        flag: format!("--{name}"),
                        value,
                        message: "this flag takes no value".to_string(),
                    });
                }
                opts.switches.push(flag);
            } else if let Some(&flag) = value_flags.iter().find(|&&s| s == name) {
                let value = match inline {
                    Some(v) => v,
                    None => iter
                        .next()
                        .cloned()
                        .ok_or_else(|| OptsError::MissingValue(format!("--{name}")))?,
                };
                opts.values.entry(flag).or_default().push(value);
            } else {
                return Err(OptsError::UnknownFlag(format!("--{name}")));
            }
        }
        Ok(opts)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// All positional arguments.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.contains(&name)
    }

    /// The last value of a value flag, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name)?.last().map(String::as_str)
    }

    /// All values of a repeatable value flag.
    pub fn all_values(&self, name: &str) -> &[String] {
        self.values.get(name).map(Vec::as_slice).unwrap_or_default()
    }

    /// Parses a flag value into `T`, or returns `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`OptsError::InvalidValue`] when the text does not parse.
    pub fn parsed_or<T>(&self, name: &str, default: T) -> Result<T, OptsError>
    where
        T: FromStr,
        T::Err: fmt::Display,
    {
        match self.value(name) {
            None => Ok(default),
            Some(text) => text.parse().map_err(|e: T::Err| OptsError::InvalidValue {
                flag: format!("--{name}"),
                value: text.to_string(),
                message: e.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    const SWITCHES: &[&str] = &["all", "show-witness"];
    const VALUES: &[&str] = &["analysis", "window", "seed"];

    #[test]
    fn mixes_positionals_switches_and_values() {
        let opts = Opts::parse(
            &args(&["trace.txt", "--all", "--window", "64", "--analysis=st-dc"]),
            SWITCHES,
            VALUES,
        )
        .unwrap();
        assert_eq!(opts.positional(0), Some("trace.txt"));
        assert!(opts.switch("all"));
        assert_eq!(opts.value("window"), Some("64"));
        assert_eq!(opts.value("analysis"), Some("st-dc"));
    }

    #[test]
    fn repeatable_flags_collect_in_order() {
        let opts = Opts::parse(
            &args(&["--analysis", "fto-hb", "--analysis", "st-wdc"]),
            SWITCHES,
            VALUES,
        )
        .unwrap();
        assert_eq!(opts.all_values("analysis"), ["fto-hb", "st-wdc"]);
    }

    #[test]
    fn unknown_flags_error() {
        let err = Opts::parse(&args(&["--bogus"]), SWITCHES, VALUES).unwrap_err();
        assert_eq!(err, OptsError::UnknownFlag("--bogus".to_string()));
    }

    #[test]
    fn missing_value_errors() {
        let err = Opts::parse(&args(&["--window"]), SWITCHES, VALUES).unwrap_err();
        assert_eq!(err, OptsError::MissingValue("--window".to_string()));
    }

    #[test]
    fn switch_with_inline_value_errors() {
        let err = Opts::parse(&args(&["--all=yes"]), SWITCHES, VALUES).unwrap_err();
        assert!(matches!(err, OptsError::InvalidValue { .. }));
    }

    #[test]
    fn typed_parsing_with_default() {
        let opts = Opts::parse(&args(&["--window", "128"]), SWITCHES, VALUES).unwrap();
        assert_eq!(opts.parsed_or("window", 0usize).unwrap(), 128);
        assert_eq!(opts.parsed_or("seed", 42u64).unwrap(), 42);
        let bad = Opts::parse(&args(&["--window", "many"]), SWITCHES, VALUES).unwrap();
        assert!(bad.parsed_or("window", 0usize).is_err());
    }
}
