//! Property-based tests for the clock lattice.

use proptest::prelude::*;
use smarttrack_clock::{Epoch, ReadMeta, ThreadId, VectorClock};

fn arb_vc() -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0u32..50, 0..8).prop_map(|vals| {
        vals.into_iter()
            .enumerate()
            .map(|(i, c)| (ThreadId::new(i as u32), c))
            .collect()
    })
}

proptest! {
    #[test]
    fn join_is_upper_bound(a in arb_vc(), b in arb_vc()) {
        let mut j = a.clone();
        j.join(&b);
        prop_assert!(a.leq(&j));
        prop_assert!(b.leq(&j));
    }

    #[test]
    fn join_is_least_upper_bound(a in arb_vc(), b in arb_vc(), c in arb_vc()) {
        // If c is an upper bound of a and b then join(a, b) ⊑ c.
        let mut ub = c.clone();
        ub.join(&a);
        ub.join(&b);
        let mut j = a.clone();
        j.join(&b);
        prop_assert!(j.leq(&ub));
    }

    #[test]
    fn join_commutes(a in arb_vc(), b in arb_vc()) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        for i in 0..8u32 {
            prop_assert_eq!(ab.get(ThreadId::new(i)), ba.get(ThreadId::new(i)));
        }
    }

    #[test]
    fn join_is_idempotent(a in arb_vc()) {
        let mut aa = a.clone();
        aa.join(&a);
        prop_assert!(aa.leq(&a) && a.leq(&aa));
    }

    #[test]
    fn leq_is_transitive(a in arb_vc(), b in arb_vc(), c in arb_vc()) {
        if a.leq(&b) && b.leq(&c) {
            prop_assert!(a.leq(&c));
        }
    }

    #[test]
    fn leq_antisymmetric_up_to_entries(a in arb_vc(), b in arb_vc()) {
        if a.leq(&b) && b.leq(&a) {
            for i in 0..8u32 {
                prop_assert_eq!(a.get(ThreadId::new(i)), b.get(ThreadId::new(i)));
            }
        }
    }

    #[test]
    fn epoch_leq_agrees_with_singleton_vc(tid in 0u32..8, c in 0u32..50, vc in arb_vc()) {
        let e = Epoch::new(ThreadId::new(tid), c);
        let singleton: VectorClock = [(ThreadId::new(tid), c)].into_iter().collect();
        prop_assert_eq!(e.leq_vc(&vc), singleton.leq(&vc));
    }

    #[test]
    fn share_never_loses_access_times(tid1 in 0u32..4, c1 in 1u32..50, tid2 in 0u32..4, c2 in 1u32..50) {
        let mut rx = ReadMeta::from(Epoch::new(ThreadId::new(tid1), c1));
        rx.share(Epoch::new(ThreadId::new(tid2), c2));
        // After sharing, the recorded clock per thread is the newest value.
        if tid1 != tid2 {
            prop_assert_eq!(rx.clock_of(ThreadId::new(tid1)), c1);
        }
        prop_assert_eq!(rx.clock_of(ThreadId::new(tid2)), c2);
    }

    #[test]
    fn readmeta_leq_vector_form_is_conjunction(vals in proptest::collection::vec(0u32..20, 1..5), vc in arb_vc()) {
        let mut rx = ReadMeta::none();
        for (i, &c) in vals.iter().enumerate() {
            if c > 0 {
                rx.share(Epoch::new(ThreadId::new(i as u32), c));
            }
        }
        let expected = vals
            .iter()
            .enumerate()
            .all(|(i, &c)| c == 0 || Epoch::new(ThreadId::new(i as u32), c).leq_vc(&vc));
        // Only meaningful once in vector form.
        if rx.as_vc().is_some() {
            prop_assert_eq!(rx.leq_vc(&vc), expected);
        }
    }
}
