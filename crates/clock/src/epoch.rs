use std::fmt;

use crate::{ClockValue, ThreadId, VectorClock};

/// A FastTrack *epoch* `c@t`: a scalar logical time made of a clock value `c`
/// and the id `t` of the thread it belongs to (Flanagan & Freund 2009).
///
/// The paper writes `⊥ₑ` for the uninitialized epoch; here that is
/// [`Epoch::NONE`]. An epoch `c@t` is ordered before a vector clock `C`
/// (written `c@t ⪯ C`) iff `c ≤ C(t)` — see [`Epoch::leq_vc`].
///
/// # Examples
///
/// ```
/// use smarttrack_clock::{Epoch, ThreadId};
///
/// let e = Epoch::new(ThreadId::new(2), 41);
/// assert_eq!(e.tid().index(), 2);
/// assert_eq!(e.clock(), 41);
/// assert!(!e.is_none());
/// assert!(Epoch::NONE.is_none());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Epoch(u64);

impl Epoch {
    /// The uninitialized epoch `⊥ₑ`.
    ///
    /// `⊥ₑ ⪯ C` holds for every clock `C` (an absent access is ordered before
    /// everything), matching the FastTrack convention.
    pub const NONE: Epoch = Epoch(u64::MAX);

    /// Creates the epoch `clock@tid`.
    #[inline]
    pub const fn new(tid: ThreadId, clock: ClockValue) -> Self {
        Epoch(((tid.raw() as u64) << 32) | clock as u64)
    }

    /// The thread component `t` of `c@t`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if called on [`Epoch::NONE`].
    #[inline]
    pub fn tid(self) -> ThreadId {
        debug_assert!(!self.is_none(), "tid() on Epoch::NONE");
        ThreadId::new((self.0 >> 32) as u32)
    }

    /// The clock component `c` of `c@t`.
    #[inline]
    pub fn clock(self) -> ClockValue {
        self.0 as ClockValue
    }

    /// Returns `true` for the uninitialized epoch `⊥ₑ`.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == u64::MAX
    }

    /// The ordering check `c@t ⪯ C`, i.e. `c ≤ C(t)`.
    ///
    /// [`Epoch::NONE`] is ordered before every clock.
    #[inline]
    pub fn leq_vc(self, vc: &VectorClock) -> bool {
        self.is_none() || self.clock() <= vc.get(self.tid())
    }

    /// Returns `true` if this epoch belongs to thread `t` (and is not `⊥ₑ`).
    #[inline]
    pub fn is_owned_by(self, t: ThreadId) -> bool {
        !self.is_none() && self.tid() == t
    }
}

impl Default for Epoch {
    fn default() -> Self {
        Epoch::NONE
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "⊥ₑ")
        } else {
            write!(f, "{}@{}", self.clock(), self.tid())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn packs_and_unpacks() {
        let e = Epoch::new(t(7), 123_456);
        assert_eq!(e.tid(), t(7));
        assert_eq!(e.clock(), 123_456);
    }

    #[test]
    fn none_is_before_everything() {
        let vc = VectorClock::new();
        assert!(Epoch::NONE.leq_vc(&vc));
    }

    #[test]
    fn leq_vc_compares_thread_entry() {
        let vc: VectorClock = [(t(1), 5)].into_iter().collect();
        assert!(Epoch::new(t(1), 5).leq_vc(&vc));
        assert!(Epoch::new(t(1), 4).leq_vc(&vc));
        assert!(!Epoch::new(t(1), 6).leq_vc(&vc));
        assert!(!Epoch::new(t(0), 1).leq_vc(&vc));
        assert!(Epoch::new(t(0), 0).leq_vc(&vc));
    }

    #[test]
    fn ownership_check() {
        assert!(Epoch::new(t(2), 1).is_owned_by(t(2)));
        assert!(!Epoch::new(t(2), 1).is_owned_by(t(3)));
        assert!(!Epoch::NONE.is_owned_by(t(0)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Epoch::new(t(1), 3).to_string(), "3@T1");
        assert_eq!(Epoch::NONE.to_string(), "⊥ₑ");
    }
}
