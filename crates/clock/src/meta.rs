use std::fmt;

use crate::{ClockValue, Epoch, ThreadId, VectorClock};

/// Which same-epoch fast path a read hit (see [`ReadMeta::same_epoch`]):
/// the paper's `[Read Same Epoch]` vs `[Shared Same Epoch]` cases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SameEpoch {
    /// `Rx` is the epoch of this very access (`[Read Same Epoch]`).
    Exclusive,
    /// `Rx` is a vector already holding this thread's current clock
    /// (`[Shared Same Epoch]`).
    Shared,
}

/// The adaptive representation of read metadata `Rx` used by the FTO and
/// SmartTrack algorithms (paper §4.1).
///
/// `Rx` is either an [`Epoch`] (a single last reader/writer) or a
/// [`VectorClock`] of per-thread last-access times after a read share. The
/// vector form maps threads to *clock values*; an entry of `0` means "no
/// access recorded" (the paper's `⊥`), which is valid because thread clocks
/// start at 1.
///
/// # Examples
///
/// ```
/// use smarttrack_clock::{Epoch, ReadMeta, ThreadId};
///
/// let t0 = ThreadId::new(0);
/// let t1 = ThreadId::new(1);
/// let mut rx = ReadMeta::from(Epoch::new(t0, 4));
/// rx.share(Epoch::new(t1, 2)); // [Read Share]: upgrade to a vector
/// assert!(rx.as_vc().is_some());
/// assert_eq!(rx.as_vc().unwrap().get(t0), 4);
/// assert_eq!(rx.as_vc().unwrap().get(t1), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadMeta {
    /// A single last access `c@t`.
    Epoch(Epoch),
    /// Per-thread last-access clock values (shared reads).
    Vc(VectorClock),
}

impl ReadMeta {
    /// Uninitialized metadata (`⊥ₑ`).
    #[inline]
    pub fn none() -> Self {
        ReadMeta::Epoch(Epoch::NONE)
    }

    /// Returns the epoch if this metadata is in epoch form.
    #[inline]
    pub fn as_epoch(&self) -> Option<Epoch> {
        match self {
            ReadMeta::Epoch(e) => Some(*e),
            ReadMeta::Vc(_) => None,
        }
    }

    /// Returns the vector clock if this metadata is in shared (vector) form.
    #[inline]
    pub fn as_vc(&self) -> Option<&VectorClock> {
        match self {
            ReadMeta::Epoch(_) => None,
            ReadMeta::Vc(vc) => Some(vc),
        }
    }

    /// Upgrades an epoch `Rx` to a vector containing both the previous epoch
    /// and `new` (the paper's `Rx ← {c@u, Ct(t)}` in [Read Share]).
    ///
    /// If the metadata is already a vector, `new` is simply recorded.
    pub fn share(&mut self, new: Epoch) {
        match self {
            ReadMeta::Epoch(old) => {
                let mut vc = VectorClock::new();
                if !old.is_none() {
                    vc.set(old.tid(), old.clock());
                }
                if !new.is_none() {
                    vc.set(new.tid(), new.clock());
                }
                *self = ReadMeta::Vc(vc);
            }
            ReadMeta::Vc(vc) => {
                if !new.is_none() {
                    vc.set(new.tid(), new.clock());
                }
            }
        }
    }

    /// The epoch fast-path check shared by every FTO/SmartTrack read
    /// handler: is this read in the *same epoch* as the recorded last
    /// read by thread `t` with local clock `c`? Answers without touching
    /// any full vector clock (the vector form reads one entry).
    ///
    /// Returns which fast-path case applies, or `None` when the slow path
    /// must run.
    #[inline]
    pub fn same_epoch(&self, t: ThreadId, c: ClockValue) -> Option<SameEpoch> {
        match self {
            ReadMeta::Epoch(e) => (*e == Epoch::new(t, c)).then_some(SameEpoch::Exclusive),
            ReadMeta::Vc(vc) => (vc.get(t) == c).then_some(SameEpoch::Shared),
        }
    }

    /// The combined ordering check `Rx ⪯/⊑ Ct`: epoch form uses `⪯`, vector
    /// form uses pointwise `⊑`.
    #[inline]
    pub fn leq_vc(&self, vc: &VectorClock) -> bool {
        match self {
            ReadMeta::Epoch(e) => e.leq_vc(vc),
            ReadMeta::Vc(r) => r.leq(vc),
        }
    }

    /// Returns the recorded last-access clock for thread `t` (`0` if none, in
    /// either representation).
    #[inline]
    pub fn clock_of(&self, t: ThreadId) -> u32 {
        match self {
            ReadMeta::Epoch(e) => {
                if e.is_owned_by(t) {
                    e.clock()
                } else {
                    0
                }
            }
            ReadMeta::Vc(vc) => vc.get(t),
        }
    }

    /// Approximate heap bytes held beyond the enum's own `size_of` (for
    /// memory-usage experiments; zero for epochs and inline vectors, so
    /// containers counting `size_of::<ReadMeta>()` do not double-count).
    #[inline]
    pub fn footprint_bytes(&self) -> usize {
        match self {
            ReadMeta::Epoch(_) => 0,
            ReadMeta::Vc(vc) => vc.heap_bytes(),
        }
    }
}

impl Default for ReadMeta {
    fn default() -> Self {
        ReadMeta::none()
    }
}

impl From<Epoch> for ReadMeta {
    fn from(e: Epoch) -> Self {
        ReadMeta::Epoch(e)
    }
}

impl fmt::Display for ReadMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadMeta::Epoch(e) => write!(f, "{e}"),
            ReadMeta::Vc(vc) => write!(f, "{vc}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn starts_uninitialized() {
        let rx = ReadMeta::default();
        assert_eq!(rx.as_epoch(), Some(Epoch::NONE));
    }

    #[test]
    fn share_preserves_both_accesses() {
        let mut rx = ReadMeta::from(Epoch::new(t(0), 3));
        rx.share(Epoch::new(t(1), 5));
        let vc = rx.as_vc().expect("vector form after share");
        assert_eq!(vc.get(t(0)), 3);
        assert_eq!(vc.get(t(1)), 5);
        rx.share(Epoch::new(t(2), 7));
        assert_eq!(rx.as_vc().unwrap().get(t(2)), 7);
    }

    #[test]
    fn leq_matches_representation() {
        let c: VectorClock = [(t(0), 2), (t(1), 2)].into_iter().collect();
        assert!(ReadMeta::from(Epoch::new(t(0), 2)).leq_vc(&c));
        assert!(!ReadMeta::from(Epoch::new(t(0), 3)).leq_vc(&c));
        let mut shared = ReadMeta::from(Epoch::new(t(0), 2));
        shared.share(Epoch::new(t(1), 3));
        assert!(!shared.leq_vc(&c));
    }

    #[test]
    fn clock_of_both_forms() {
        let rx = ReadMeta::from(Epoch::new(t(1), 4));
        assert_eq!(rx.clock_of(t(1)), 4);
        assert_eq!(rx.clock_of(t(0)), 0);
        let mut shared = rx.clone();
        shared.share(Epoch::new(t(0), 9));
        assert_eq!(shared.clock_of(t(0)), 9);
        assert_eq!(shared.clock_of(t(1)), 4);
    }
}
