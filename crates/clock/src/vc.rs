use std::fmt;
use std::hash::{Hash, Hasher};

use crate::{Epoch, ThreadId};

/// A single component of a vector clock.
pub type ClockValue = u32;

/// Clock value used for the release time of a critical section that has not
/// been released yet.
///
/// SmartTrack's critical-section lists store *references* to release-time
/// vector clocks that are filled in when the release happens (paper §4.2,
/// Algorithm 3 lines 3–5). Until then the owner entry is `∞`, which makes
/// every "is this release ordered before the current access?" query answer
/// *no*.
pub const INFINITY: ClockValue = ClockValue::MAX;

/// Number of entries a [`VectorClock`] stores inline before spilling to the
/// heap.
///
/// Chosen to cover every calibrated workload's live-thread count (the
/// paper's benchmarks run 2–16 threads; xalan has 9, avrora 7), so the hot
/// analysis paths — cloning `Ct` at a non-same-epoch access, publishing a
/// release time, joining lock clocks — never allocate for typical programs.
pub const INLINE_CLOCKS: usize = 12;

/// Storage of a [`VectorClock`]: inline for ≤ [`INLINE_CLOCKS`] dimensions,
/// a heap vector beyond that. The representation is an implementation
/// detail: equality, hashing, and every operation act on the logical entry
/// sequence only.
#[derive(Clone, Debug)]
enum Repr {
    Inline {
        len: u8,
        vals: [ClockValue; INLINE_CLOCKS],
    },
    Heap(Vec<ClockValue>),
}

/// A vector clock `C : Tid ↦ Val` (Mattern 1988).
///
/// The vector grows on demand; absent entries are implicitly `0`. All
/// operations are total over any pair of clocks regardless of their stored
/// dimensions.
///
/// Small clocks (up to [`INLINE_CLOCKS`] entries — every calibrated
/// workload) are stored inline: cloning, creating, and dropping them never
/// touches the heap, which is what keeps the analyses' non-same-epoch paths
/// allocation-free.
///
/// # Examples
///
/// ```
/// use smarttrack_clock::{ThreadId, VectorClock};
///
/// let mut a = VectorClock::new();
/// a.set(ThreadId::new(0), 2);
/// let mut b = VectorClock::new();
/// b.set(ThreadId::new(1), 4);
///
/// assert!(!a.leq(&b));
/// b.join(&a);
/// assert!(a.leq(&b));
/// assert_eq!(b.get(ThreadId::new(0)), 2);
/// ```
#[derive(Clone, Debug)]
pub struct VectorClock {
    repr: Repr,
}

impl VectorClock {
    /// Creates an empty clock (all entries `0`).
    #[inline]
    pub fn new() -> Self {
        VectorClock {
            repr: Repr::Inline {
                len: 0,
                vals: [0; INLINE_CLOCKS],
            },
        }
    }

    /// Creates a clock with capacity reserved for `threads` entries.
    #[inline]
    pub fn with_capacity(threads: usize) -> Self {
        if threads <= INLINE_CLOCKS {
            VectorClock::new()
        } else {
            VectorClock {
                repr: Repr::Heap(Vec::with_capacity(threads)),
            }
        }
    }

    /// The stored entries (trailing entries beyond [`dim`](Self::dim) are
    /// implicitly zero).
    #[inline]
    pub fn as_slice(&self) -> &[ClockValue] {
        match &self.repr {
            Repr::Inline { len, vals } => &vals[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [ClockValue] {
        match &mut self.repr {
            Repr::Inline { len, vals } => &mut vals[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Grows the stored dimension to at least `need` entries (zero-filled),
    /// spilling to the heap past [`INLINE_CLOCKS`].
    #[inline]
    fn grow_to(&mut self, need: usize) {
        match &mut self.repr {
            Repr::Inline { len, .. } if need <= INLINE_CLOCKS => {
                if need > *len as usize {
                    *len = need as u8;
                }
            }
            Repr::Inline { len, vals } => {
                let mut v = Vec::with_capacity(need.max(2 * INLINE_CLOCKS));
                v.extend_from_slice(&vals[..*len as usize]);
                v.resize(need, 0);
                self.repr = Repr::Heap(v);
            }
            Repr::Heap(v) => {
                if need > v.len() {
                    v.resize(need, 0);
                }
            }
        }
    }

    /// Returns the entry for thread `t` (implicitly `0` when unset).
    #[inline]
    pub fn get(&self, t: ThreadId) -> ClockValue {
        self.as_slice().get(t.index()).copied().unwrap_or(0)
    }

    /// Sets the entry for thread `t` to `value`, growing the vector if needed.
    #[inline]
    pub fn set(&mut self, t: ThreadId, value: ClockValue) {
        let i = t.index();
        self.grow_to(i + 1);
        self.as_mut_slice()[i] = value;
    }

    /// Increments the entry for thread `t` by one and returns the *previous*
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if the entry is [`INFINITY`], which would indicate state
    /// corruption (thread clocks never reach `∞`).
    #[inline]
    pub fn increment(&mut self, t: ThreadId) -> ClockValue {
        let old = self.get(t);
        assert_ne!(old, INFINITY, "thread clock overflow");
        self.set(t, old + 1);
        old
    }

    /// Pointwise comparison `self ⊑ other`.
    #[inline]
    pub fn leq(&self, other: &VectorClock) -> bool {
        let o = other.as_slice();
        for (i, &c) in self.as_slice().iter().enumerate() {
            if c != 0 && c > o.get(i).copied().unwrap_or(0) {
                return false;
            }
        }
        true
    }

    /// Pointwise join `self ← self ⊔ other`.
    #[inline]
    pub fn join(&mut self, other: &VectorClock) {
        let o = other.as_slice();
        if o.is_empty() {
            return;
        }
        self.grow_to(o.len());
        let s = self.as_mut_slice();
        for (si, &oi) in s.iter_mut().zip(o) {
            if oi > *si {
                *si = oi;
            }
        }
    }

    /// Replaces the contents of `self` with those of `other`, reusing the
    /// existing allocation where possible.
    #[inline]
    pub fn assign(&mut self, other: &VectorClock) {
        let o = other.as_slice();
        match &mut self.repr {
            Repr::Heap(v) => {
                v.clear();
                v.extend_from_slice(o);
            }
            Repr::Inline { len, vals } if o.len() <= INLINE_CLOCKS => {
                vals[..o.len()].copy_from_slice(o);
                // Entries past the stored length must stay zero: grow_to
                // exposes them without re-zeroing.
                if o.len() < *len as usize {
                    vals[o.len()..*len as usize].fill(0);
                }
                *len = o.len() as u8;
            }
            Repr::Inline { .. } => {
                self.repr = Repr::Heap(o.to_vec());
            }
        }
    }

    /// Returns the epoch `C(t)@t` for thread `t`.
    #[inline]
    pub fn epoch_of(&self, t: ThreadId) -> Epoch {
        Epoch::new(t, self.get(t))
    }

    /// Number of stored (possibly zero) entries.
    #[inline]
    pub fn dim(&self) -> usize {
        self.as_slice().len()
    }

    /// Iterates over `(thread, value)` pairs with non-zero values.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (ThreadId, ClockValue)> + '_ {
        self.as_slice()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (ThreadId::new(i as u32), c))
    }

    /// Heap bytes held by this clock beyond its own `size_of` (zero while
    /// the entries are stored inline — the point of the small-size
    /// representation). Use this when the clock is embedded in a structure
    /// whose size is counted separately, so nothing is double-counted.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Inline { .. } => 0,
            Repr::Heap(v) => v.capacity() * std::mem::size_of::<ClockValue>(),
        }
    }

    /// Approximate number of bytes held by this clock including its own
    /// `size_of` (for the paper's memory-usage experiments).
    #[inline]
    pub fn footprint_bytes(&self) -> usize {
        self.heap_bytes() + std::mem::size_of::<Self>()
    }

    /// Whether this clock's entries are stored inline (no heap allocation).
    #[inline]
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }
}

impl Default for VectorClock {
    #[inline]
    fn default() -> Self {
        VectorClock::new()
    }
}

/// Equality is over the logical entry sequence, independent of
/// representation (an inline clock equals a spilled clock with the same
/// entries).
impl PartialEq for VectorClock {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for VectorClock {}

impl Hash for VectorClock {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl FromIterator<(ThreadId, ClockValue)> for VectorClock {
    fn from_iter<I: IntoIterator<Item = (ThreadId, ClockValue)>>(iter: I) -> Self {
        let mut vc = VectorClock::new();
        for (t, c) in iter {
            vc.set(t, c);
        }
        vc
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, &c) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if c == INFINITY {
                write!(f, "∞")?;
            } else {
                write!(f, "{c}")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn unset_entries_are_zero() {
        let vc = VectorClock::new();
        assert_eq!(vc.get(t(9)), 0);
    }

    #[test]
    fn set_get_round_trip() {
        let mut vc = VectorClock::new();
        vc.set(t(2), 7);
        assert_eq!(vc.get(t(2)), 7);
        assert_eq!(vc.get(t(0)), 0);
        assert_eq!(vc.dim(), 3);
    }

    #[test]
    fn leq_is_pointwise() {
        let a: VectorClock = [(t(0), 1), (t(1), 2)].into_iter().collect();
        let b: VectorClock = [(t(0), 1), (t(1), 3), (t(2), 1)].into_iter().collect();
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        assert!(a.leq(&a));
    }

    #[test]
    fn leq_handles_differing_dims() {
        let a: VectorClock = [(t(3), 1)].into_iter().collect();
        let b = VectorClock::new();
        assert!(!a.leq(&b));
        assert!(b.leq(&a));
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a: VectorClock = [(t(0), 5), (t(1), 1)].into_iter().collect();
        let b: VectorClock = [(t(0), 3), (t(1), 4), (t(2), 2)].into_iter().collect();
        a.join(&b);
        assert_eq!(a.get(t(0)), 5);
        assert_eq!(a.get(t(1)), 4);
        assert_eq!(a.get(t(2)), 2);
    }

    #[test]
    fn increment_returns_previous() {
        let mut vc = VectorClock::new();
        assert_eq!(vc.increment(t(1)), 0);
        assert_eq!(vc.increment(t(1)), 1);
        assert_eq!(vc.get(t(1)), 2);
    }

    #[test]
    fn epoch_of_reads_entry() {
        let vc: VectorClock = [(t(1), 9)].into_iter().collect();
        let e = vc.epoch_of(t(1));
        assert_eq!(e.tid(), t(1));
        assert_eq!(e.clock(), 9);
    }

    #[test]
    fn display_marks_infinity() {
        let mut vc = VectorClock::new();
        vc.set(t(0), INFINITY);
        vc.set(t(1), 3);
        assert_eq!(vc.to_string(), "[∞, 3]");
    }

    #[test]
    fn spills_past_inline_capacity_transparently() {
        let mut vc = VectorClock::new();
        assert!(vc.is_inline());
        for i in 0..INLINE_CLOCKS as u32 {
            vc.set(t(i), i + 1);
        }
        assert!(vc.is_inline(), "exactly INLINE_CLOCKS entries stay inline");
        vc.set(t(INLINE_CLOCKS as u32), 99);
        assert!(!vc.is_inline());
        for i in 0..INLINE_CLOCKS as u32 {
            assert_eq!(vc.get(t(i)), i + 1, "spill preserves entries");
        }
        assert_eq!(vc.get(t(INLINE_CLOCKS as u32)), 99);
    }

    #[test]
    fn equality_ignores_representation() {
        let mut big: VectorClock = VectorClock::with_capacity(INLINE_CLOCKS + 4);
        assert!(!big.is_inline());
        let mut small = VectorClock::new();
        big.set(t(1), 5);
        small.set(t(1), 5);
        assert_eq!(big, small, "heap vs inline with equal entries");
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |vc: &VectorClock| {
            let mut h = DefaultHasher::new();
            vc.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&big), hash(&small));
    }

    #[test]
    fn assign_into_inline_clears_stale_entries() {
        let mut a: VectorClock = [(t(0), 1), (t(1), 2), (t(2), 3)].into_iter().collect();
        let b: VectorClock = [(t(0), 9)].into_iter().collect();
        a.assign(&b);
        assert_eq!(a, b);
        assert_eq!(a.dim(), 1);
        assert_eq!(a.get(t(2)), 0);
    }

    #[test]
    fn join_from_spilled_into_inline_spills() {
        let wide: VectorClock = (0..INLINE_CLOCKS as u32 + 2)
            .map(|i| (t(i), i + 1))
            .collect();
        let mut narrow: VectorClock = [(t(0), 7)].into_iter().collect();
        narrow.join(&wide);
        assert_eq!(narrow.get(t(0)), 7);
        assert_eq!(
            narrow.get(t(INLINE_CLOCKS as u32 + 1)),
            INLINE_CLOCKS as u32 + 2
        );
    }
}
