use std::fmt;

use crate::{Epoch, ThreadId};

/// A single component of a vector clock.
pub type ClockValue = u32;

/// Clock value used for the release time of a critical section that has not
/// been released yet.
///
/// SmartTrack's critical-section lists store *references* to release-time
/// vector clocks that are filled in when the release happens (paper §4.2,
/// Algorithm 3 lines 3–5). Until then the owner entry is `∞`, which makes
/// every "is this release ordered before the current access?" query answer
/// *no*.
pub const INFINITY: ClockValue = ClockValue::MAX;

/// A vector clock `C : Tid ↦ Val` (Mattern 1988).
///
/// The vector grows on demand; absent entries are implicitly `0`. All
/// operations are total over any pair of clocks regardless of their stored
/// dimensions.
///
/// # Examples
///
/// ```
/// use smarttrack_clock::{ThreadId, VectorClock};
///
/// let mut a = VectorClock::new();
/// a.set(ThreadId::new(0), 2);
/// let mut b = VectorClock::new();
/// b.set(ThreadId::new(1), 4);
///
/// assert!(!a.leq(&b));
/// b.join(&a);
/// assert!(a.leq(&b));
/// assert_eq!(b.get(ThreadId::new(0)), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct VectorClock {
    clocks: Vec<ClockValue>,
}

impl VectorClock {
    /// Creates an empty clock (all entries `0`).
    #[inline]
    pub fn new() -> Self {
        VectorClock { clocks: Vec::new() }
    }

    /// Creates a clock with capacity reserved for `threads` entries.
    #[inline]
    pub fn with_capacity(threads: usize) -> Self {
        VectorClock {
            clocks: Vec::with_capacity(threads),
        }
    }

    /// Returns the entry for thread `t` (implicitly `0` when unset).
    #[inline]
    pub fn get(&self, t: ThreadId) -> ClockValue {
        self.clocks.get(t.index()).copied().unwrap_or(0)
    }

    /// Sets the entry for thread `t` to `value`, growing the vector if needed.
    #[inline]
    pub fn set(&mut self, t: ThreadId, value: ClockValue) {
        let i = t.index();
        if i >= self.clocks.len() {
            self.clocks.resize(i + 1, 0);
        }
        self.clocks[i] = value;
    }

    /// Increments the entry for thread `t` by one and returns the *previous*
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if the entry is [`INFINITY`], which would indicate state
    /// corruption (thread clocks never reach `∞`).
    #[inline]
    pub fn increment(&mut self, t: ThreadId) -> ClockValue {
        let old = self.get(t);
        assert_ne!(old, INFINITY, "thread clock overflow");
        self.set(t, old + 1);
        old
    }

    /// Pointwise comparison `self ⊑ other`.
    #[inline]
    pub fn leq(&self, other: &VectorClock) -> bool {
        for (i, &c) in self.clocks.iter().enumerate() {
            if c != 0 && c > other.clocks.get(i).copied().unwrap_or(0) {
                return false;
            }
        }
        true
    }

    /// Pointwise join `self ← self ⊔ other`.
    #[inline]
    pub fn join(&mut self, other: &VectorClock) {
        if other.clocks.len() > self.clocks.len() {
            self.clocks.resize(other.clocks.len(), 0);
        }
        for (i, &c) in other.clocks.iter().enumerate() {
            if c > self.clocks[i] {
                self.clocks[i] = c;
            }
        }
    }

    /// Replaces the contents of `self` with those of `other`, reusing the
    /// existing allocation where possible.
    #[inline]
    pub fn assign(&mut self, other: &VectorClock) {
        self.clocks.clear();
        self.clocks.extend_from_slice(&other.clocks);
    }

    /// Returns the epoch `C(t)@t` for thread `t`.
    #[inline]
    pub fn epoch_of(&self, t: ThreadId) -> Epoch {
        Epoch::new(t, self.get(t))
    }

    /// Number of stored (possibly zero) entries.
    #[inline]
    pub fn dim(&self) -> usize {
        self.clocks.len()
    }

    /// Iterates over `(thread, value)` pairs with non-zero values.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (ThreadId, ClockValue)> + '_ {
        self.clocks
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (ThreadId::new(i as u32), c))
    }

    /// Approximate number of heap bytes held by this clock (for the paper's
    /// memory-usage experiments).
    #[inline]
    pub fn footprint_bytes(&self) -> usize {
        self.clocks.capacity() * std::mem::size_of::<ClockValue>() + std::mem::size_of::<Self>()
    }
}

impl FromIterator<(ThreadId, ClockValue)> for VectorClock {
    fn from_iter<I: IntoIterator<Item = (ThreadId, ClockValue)>>(iter: I) -> Self {
        let mut vc = VectorClock::new();
        for (t, c) in iter {
            vc.set(t, c);
        }
        vc
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, &c) in self.clocks.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if c == INFINITY {
                write!(f, "∞")?;
            } else {
                write!(f, "{c}")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn unset_entries_are_zero() {
        let vc = VectorClock::new();
        assert_eq!(vc.get(t(9)), 0);
    }

    #[test]
    fn set_get_round_trip() {
        let mut vc = VectorClock::new();
        vc.set(t(2), 7);
        assert_eq!(vc.get(t(2)), 7);
        assert_eq!(vc.get(t(0)), 0);
        assert_eq!(vc.dim(), 3);
    }

    #[test]
    fn leq_is_pointwise() {
        let a: VectorClock = [(t(0), 1), (t(1), 2)].into_iter().collect();
        let b: VectorClock = [(t(0), 1), (t(1), 3), (t(2), 1)].into_iter().collect();
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        assert!(a.leq(&a));
    }

    #[test]
    fn leq_handles_differing_dims() {
        let a: VectorClock = [(t(3), 1)].into_iter().collect();
        let b = VectorClock::new();
        assert!(!a.leq(&b));
        assert!(b.leq(&a));
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a: VectorClock = [(t(0), 5), (t(1), 1)].into_iter().collect();
        let b: VectorClock = [(t(0), 3), (t(1), 4), (t(2), 2)].into_iter().collect();
        a.join(&b);
        assert_eq!(a.get(t(0)), 5);
        assert_eq!(a.get(t(1)), 4);
        assert_eq!(a.get(t(2)), 2);
    }

    #[test]
    fn increment_returns_previous() {
        let mut vc = VectorClock::new();
        assert_eq!(vc.increment(t(1)), 0);
        assert_eq!(vc.increment(t(1)), 1);
        assert_eq!(vc.get(t(1)), 2);
    }

    #[test]
    fn epoch_of_reads_entry() {
        let vc: VectorClock = [(t(1), 9)].into_iter().collect();
        let e = vc.epoch_of(t(1));
        assert_eq!(e.tid(), t(1));
        assert_eq!(e.clock(), 9);
    }

    #[test]
    fn display_marks_infinity() {
        let mut vc = VectorClock::new();
        vc.set(t(0), INFINITY);
        vc.set(t(1), 3);
        assert_eq!(vc.to_string(), "[∞, 3]");
    }
}
