use std::fmt;

/// Identifier of a thread in an execution trace.
///
/// Thread ids are small dense integers assigned in creation order, which lets
/// analyses index vector clocks and per-thread tables directly.
///
/// # Examples
///
/// ```
/// use smarttrack_clock::ThreadId;
///
/// let t = ThreadId::new(3);
/// assert_eq!(t.index(), 3);
/// assert_eq!(t.to_string(), "T3");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(u32);

impl ThreadId {
    /// Creates a thread id from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        ThreadId(index)
    }

    /// Returns the dense index of this thread id.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` representation.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for ThreadId {
    fn from(index: u32) -> Self {
        ThreadId(index)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_index() {
        for i in [0u32, 1, 7, 65_535] {
            assert_eq!(ThreadId::new(i).index(), i as usize);
            assert_eq!(ThreadId::from(i).raw(), i);
        }
    }

    #[test]
    fn orders_by_index() {
        assert!(ThreadId::new(1) < ThreadId::new(2));
    }
}
