#![warn(missing_docs)]

//! Logical-time primitives for the SmartTrack reproduction.
//!
//! This crate provides the three representations of logical time used by the
//! race-detection analyses in the paper *SmartTrack: Efficient Predictive Race
//! Detection* (PLDI 2020):
//!
//! * [`VectorClock`] — a classic vector clock `C : Tid ↦ Val` (Mattern 1988)
//!   with pointwise comparison (`⊑`, [`VectorClock::leq`]) and pointwise join
//!   (`⊔`, [`VectorClock::join`]).
//! * [`Epoch`] — FastTrack's scalar `c@t` representation of a last-access time
//!   (Flanagan & Freund 2009), packing a clock value and a thread id into one
//!   machine word.
//! * [`ReadMeta`] — the adaptive epoch-or-vector representation used for read
//!   metadata `Rx` by the FTO and SmartTrack algorithms.
//!
//! # Examples
//!
//! ```
//! use smarttrack_clock::{Epoch, ThreadId, VectorClock};
//!
//! let t0 = ThreadId::new(0);
//! let t1 = ThreadId::new(1);
//! let mut c = VectorClock::new();
//! c.set(t0, 3);
//! c.set(t1, 5);
//!
//! // The epoch 2@t1 is ordered before c because c(t1) = 5 >= 2.
//! assert!(Epoch::new(t1, 2).leq_vc(&c));
//! // The epoch 7@t0 is not.
//! assert!(!Epoch::new(t0, 7).leq_vc(&c));
//! ```

mod epoch;
mod meta;
mod tid;
mod vc;

pub use epoch::Epoch;
pub use meta::{ReadMeta, SameEpoch};
pub use tid::ThreadId;
pub use vc::{ClockValue, VectorClock, INFINITY, INLINE_CLOCKS};
