//! The concurrent-program model: per-thread operation lists.

use smarttrack_clock::ThreadId;
use smarttrack_trace::{Loc, LockId, Op, VarId};

/// One operation of a thread's program, with its static location.
///
/// `Wait` models Java's `wait()`: "Each analysis treats wait() as a release
/// followed by an acquire" (§5.1) — the scheduler expands it accordingly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgramOp {
    /// Read a shared variable.
    Read(VarId),
    /// Write a shared variable.
    Write(VarId),
    /// Acquire a lock (blocks while held elsewhere).
    Acquire(LockId),
    /// Release a held lock.
    Release(LockId),
    /// Read a volatile variable.
    VolatileRead(VarId),
    /// Write a volatile variable.
    VolatileWrite(VarId),
    /// Start another thread (must not have run yet).
    Fork(ThreadId),
    /// Wait for another thread to finish (blocks).
    Join(ThreadId),
    /// Release then re-acquire a lock (`wait()`, §5.1).
    Wait(LockId),
}

/// A single thread's program: operations plus their locations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadSpec {
    ops: Vec<(ProgramOp, Loc)>,
    next_loc: u32,
}

impl ThreadSpec {
    /// Creates an empty thread program.
    pub fn new() -> Self {
        ThreadSpec::default()
    }

    /// Appends an operation with an automatically assigned location
    /// (sequential per thread — each syntactic operation is its own source
    /// site, like a program line).
    pub fn op(mut self, op: ProgramOp) -> Self {
        let loc = Loc::new(self.next_loc);
        self.next_loc += 1;
        self.ops.push((op, loc));
        self
    }

    /// Appends an operation at an explicit location (for modelling loops:
    /// repeated dynamic events from one source site).
    pub fn op_at(mut self, op: ProgramOp, loc: Loc) -> Self {
        self.ops.push((op, loc));
        self
    }

    /// Appends `rd(x)`.
    pub fn read(self, x: VarId) -> Self {
        self.op(ProgramOp::Read(x))
    }

    /// Appends `wr(x)`.
    pub fn write(self, x: VarId) -> Self {
        self.op(ProgramOp::Write(x))
    }

    /// Appends `acq(m)`.
    pub fn acquire(self, m: LockId) -> Self {
        self.op(ProgramOp::Acquire(m))
    }

    /// Appends `rel(m)`.
    pub fn release(self, m: LockId) -> Self {
        self.op(ProgramOp::Release(m))
    }

    /// Appends a volatile read.
    pub fn volatile_read(self, v: VarId) -> Self {
        self.op(ProgramOp::VolatileRead(v))
    }

    /// Appends a volatile write.
    pub fn volatile_write(self, v: VarId) -> Self {
        self.op(ProgramOp::VolatileWrite(v))
    }

    /// Appends a fork of `t`.
    pub fn fork(self, t: ThreadId) -> Self {
        self.op(ProgramOp::Fork(t))
    }

    /// Appends a join of `t`.
    pub fn join(self, t: ThreadId) -> Self {
        self.op(ProgramOp::Join(t))
    }

    /// Appends a `wait()` on `m`.
    pub fn wait(self, m: LockId) -> Self {
        self.op(ProgramOp::Wait(m))
    }

    /// The operations.
    pub fn ops(&self) -> &[(ProgramOp, Loc)] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A whole multithreaded program: one [`ThreadSpec`] per thread id.
///
/// Threads that are the target of a `Fork` start blocked until forked; all
/// other threads are runnable immediately.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    threads: Vec<ThreadSpec>,
}

impl Program {
    /// Creates a program from per-thread specs (index = thread id).
    pub fn new(threads: Vec<ThreadSpec>) -> Self {
        Program { threads }
    }

    /// The thread programs.
    pub fn threads(&self) -> &[ThreadSpec] {
        &self.threads
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Total operation count (before `Wait` expansion).
    pub fn total_ops(&self) -> usize {
        self.threads.iter().map(ThreadSpec::len).sum()
    }

    /// Threads that are fork targets (start blocked).
    pub fn fork_targets(&self) -> Vec<ThreadId> {
        let mut out = Vec::new();
        for spec in &self.threads {
            for &(op, _) in spec.ops() {
                if let ProgramOp::Fork(t) = op {
                    if !out.contains(&t) {
                        out.push(t);
                    }
                }
            }
        }
        out
    }
}

/// Converts a program operation into the trace-level operations it emits
/// (one, or two for `Wait`).
pub(crate) fn lower(op: ProgramOp) -> [Option<Op>; 2] {
    match op {
        ProgramOp::Read(x) => [Some(Op::Read(x)), None],
        ProgramOp::Write(x) => [Some(Op::Write(x)), None],
        ProgramOp::Acquire(m) => [Some(Op::Acquire(m)), None],
        ProgramOp::Release(m) => [Some(Op::Release(m)), None],
        ProgramOp::VolatileRead(v) => [Some(Op::VolatileRead(v)), None],
        ProgramOp::VolatileWrite(v) => [Some(Op::VolatileWrite(v)), None],
        ProgramOp::Fork(t) => [Some(Op::Fork(t)), None],
        ProgramOp::Join(t) => [Some(Op::Join(t)), None],
        ProgramOp::Wait(m) => [Some(Op::Release(m)), Some(Op::Acquire(m))],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_locations() {
        let spec = ThreadSpec::new()
            .read(VarId::new(0))
            .write(VarId::new(1))
            .acquire(LockId::new(0));
        assert_eq!(spec.len(), 3);
        assert_eq!(spec.ops()[0].1, Loc::new(0));
        assert_eq!(spec.ops()[2].1, Loc::new(2));
    }

    #[test]
    fn explicit_locations_model_loops() {
        let loc = Loc::new(9);
        let spec = ThreadSpec::new()
            .op_at(ProgramOp::Write(VarId::new(0)), loc)
            .op_at(ProgramOp::Write(VarId::new(0)), loc);
        assert_eq!(spec.ops()[0].1, spec.ops()[1].1);
    }

    #[test]
    fn fork_targets_are_detected() {
        let p = Program::new(vec![
            ThreadSpec::new()
                .fork(ThreadId::new(1))
                .join(ThreadId::new(1)),
            ThreadSpec::new().write(VarId::new(0)),
        ]);
        assert_eq!(p.fork_targets(), vec![ThreadId::new(1)]);
        assert_eq!(p.total_ops(), 3);
    }

    #[test]
    fn wait_lowers_to_release_acquire() {
        let [a, b] = lower(ProgramOp::Wait(LockId::new(2)));
        assert_eq!(a, Some(Op::Release(LockId::new(2))));
        assert_eq!(b, Some(Op::Acquire(LockId::new(2))));
    }
}
