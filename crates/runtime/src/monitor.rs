//! Online race detection: feed events to a detector *during* execution, the
//! way RoadRunner's instrumented programs drive the paper's analyses.

use smarttrack_detect::Detector;
use smarttrack_trace::{EventId, Trace};

use crate::{ExecError, Program, SchedulePolicy, Scheduler};

/// Executes `program` under `policy`, feeding every event to `detector` as
/// it is produced, and returns the recorded trace.
///
/// # Errors
///
/// Propagates scheduler failures ([`ExecError`]); the detector keeps
/// whatever it saw up to the failure.
///
/// # Examples
///
/// ```
/// use smarttrack_detect::{Detector, FtoHb};
/// use smarttrack_runtime::{monitor, Program, SchedulePolicy, ThreadSpec};
/// use smarttrack_trace::VarId;
///
/// let program = Program::new(vec![
///     ThreadSpec::new().write(VarId::new(0)),
///     ThreadSpec::new().write(VarId::new(0)),
/// ]);
/// let mut det = FtoHb::new();
/// monitor::run_with_detector(&program, SchedulePolicy::ProgramOrder, &mut det)?;
/// assert_eq!(det.report().dynamic_count(), 1);
/// # Ok::<(), smarttrack_runtime::ExecError>(())
/// ```
pub fn run_with_detector<D: Detector + ?Sized>(
    program: &Program,
    policy: SchedulePolicy,
    detector: &mut D,
) -> Result<Trace, ExecError> {
    Scheduler::new(program, policy).run(|idx, event| {
        detector.process(EventId::new(idx as u32), event);
    })
}

/// Executes `program` under `policy`, feeding every event to *all* detectors
/// (the paper's per-trial methodology runs one analysis per execution; this
/// helper exists for exact same-interleaving comparisons).
///
/// # Errors
///
/// Propagates scheduler failures ([`ExecError`]).
pub fn run_with_detectors(
    program: &Program,
    policy: SchedulePolicy,
    detectors: &mut [&mut dyn Detector],
) -> Result<Trace, ExecError> {
    Scheduler::new(program, policy).run(|idx, event| {
        for det in detectors.iter_mut() {
            det.process(EventId::new(idx as u32), event);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadSpec;
    use smarttrack_detect::{FtoHb, SmartTrackDc, SmartTrackWcp, UnoptHb};
    use smarttrack_trace::{LockId, VarId};

    fn figure1_program() -> Program {
        let (x, y, z) = (VarId::new(0), VarId::new(1), VarId::new(2));
        let m = LockId::new(0);
        Program::new(vec![
            ThreadSpec::new().read(x).acquire(m).write(y).release(m),
            ThreadSpec::new().acquire(m).read(z).release(m).write(x),
        ])
    }

    #[test]
    fn online_analysis_matches_offline() {
        let program = figure1_program();
        let mut online = SmartTrackDc::new();
        let trace = run_with_detector(&program, SchedulePolicy::ProgramOrder, &mut online).unwrap();
        let mut offline = SmartTrackDc::new();
        smarttrack_detect::run_detector(&mut offline, &trace);
        assert_eq!(online.report(), offline.report());
        assert_eq!(online.report().dynamic_count(), 1);
    }

    #[test]
    fn multiple_detectors_see_the_same_interleaving() {
        let program = figure1_program();
        let mut hb = FtoHb::new();
        let mut hb2 = UnoptHb::new();
        let mut wcp = SmartTrackWcp::new();
        run_with_detectors(
            &program,
            SchedulePolicy::ProgramOrder,
            &mut [&mut hb, &mut hb2, &mut wcp],
        )
        .unwrap();
        assert!(hb.report().is_empty());
        assert!(hb2.report().is_empty());
        assert_eq!(wcp.report().dynamic_count(), 1, "WCP predicts the race");
    }
}
