//! Schedule exploration: run a program under many seeds and aggregate races.
//!
//! The paper (§6): "Schedule exploration is complementary with predictive
//! analysis, which enables finding more races in each explored schedule."
//! This module quantifies that synergy: the same exploration budget finds
//! more distinct race sites with a predictive detector than with HB.

use std::collections::BTreeSet;

use smarttrack_detect::Detector;
use smarttrack_trace::Loc;

use crate::{monitor, ExecError, Program, SchedulePolicy};

/// Aggregated results of exploring several schedules.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExplorationReport {
    /// Statically distinct race locations found across all schedules.
    pub race_sites: BTreeSet<Loc>,
    /// Schedules in which at least one race was detected.
    pub racy_schedules: usize,
    /// Schedules executed (deadlocked seeds are skipped and not counted).
    pub schedules: usize,
}

impl ExplorationReport {
    /// Number of statically distinct races found.
    pub fn distinct_races(&self) -> usize {
        self.race_sites.len()
    }
}

/// Runs `program` under `seeds.len()` random schedules, instantiating a fresh
/// detector per schedule via `make_detector`, and aggregates statically
/// distinct races.
///
/// Deadlocking interleavings are skipped (exploration continues), matching
/// how stress-testing tools treat them.
///
/// # Examples
///
/// ```
/// use smarttrack_detect::{FtoHb, SmartTrackDc};
/// use smarttrack_runtime::{explore::explore_schedules, Program, ThreadSpec};
/// use smarttrack_trace::{LockId, VarId};
///
/// let (x, y, z) = (VarId::new(0), VarId::new(1), VarId::new(2));
/// let m = LockId::new(0);
/// let program = Program::new(vec![
///     ThreadSpec::new().read(x).acquire(m).write(y).release(m),
///     ThreadSpec::new().acquire(m).read(z).release(m).write(x),
/// ]);
/// let hb = explore_schedules(&program, &[1, 2, 3], || FtoHb::new());
/// let dc = explore_schedules(&program, &[1, 2, 3], || SmartTrackDc::new());
/// // Prediction finds the race in every schedule; HB only in lucky ones.
/// assert_eq!(dc.racy_schedules, 3);
/// assert!(hb.racy_schedules <= dc.racy_schedules);
/// ```
pub fn explore_schedules<D: Detector>(
    program: &Program,
    seeds: &[u64],
    mut make_detector: impl FnMut() -> D,
) -> ExplorationReport {
    let mut report = ExplorationReport::default();
    for &seed in seeds {
        let mut det = make_detector();
        match monitor::run_with_detector(program, SchedulePolicy::Random(seed), &mut det) {
            Ok(_) => {
                report.schedules += 1;
                if !det.report().is_empty() {
                    report.racy_schedules += 1;
                }
                for race in det.report().races() {
                    report.race_sites.insert(race.loc);
                }
            }
            Err(ExecError::Deadlock { .. }) => continue,
            Err(e) => panic!("ill-formed program under exploration: {e}"),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadSpec;
    use smarttrack_detect::{FtoHb, SmartTrackWcp};
    use smarttrack_trace::{LockId, VarId};

    #[test]
    fn predictive_exploration_dominates_hb() {
        // Figure 1 program: HB's detection is schedule-dependent, WCP's is
        // not; over any seed set, WCP ≥ HB in both metrics.
        let (x, y, z) = (VarId::new(0), VarId::new(1), VarId::new(2));
        let m = LockId::new(0);
        let program = Program::new(vec![
            ThreadSpec::new().read(x).acquire(m).write(y).release(m),
            ThreadSpec::new().acquire(m).read(z).release(m).write(x),
        ]);
        let seeds: Vec<u64> = (0..25).collect();
        let hb = explore_schedules(&program, &seeds, FtoHb::new);
        let wcp = explore_schedules(&program, &seeds, SmartTrackWcp::new);
        assert_eq!(wcp.racy_schedules, 25);
        assert!(
            hb.racy_schedules < 25,
            "HB misses the race in some schedules"
        );
        assert!(hb.race_sites.is_subset(&wcp.race_sites));
        assert_eq!(wcp.schedules, 25);
    }

    #[test]
    fn deadlocking_schedules_are_skipped() {
        let (m0, m1) = (LockId::new(0), LockId::new(1));
        let program = Program::new(vec![
            ThreadSpec::new()
                .acquire(m0)
                .acquire(m1)
                .release(m1)
                .release(m0),
            ThreadSpec::new()
                .acquire(m1)
                .acquire(m0)
                .release(m0)
                .release(m1),
        ]);
        let seeds: Vec<u64> = (0..30).collect();
        let report = explore_schedules(&program, &seeds, FtoHb::new);
        assert!(report.schedules < 30, "some seed deadlocks");
        assert!(report.schedules > 0, "some seed completes");
        assert_eq!(report.distinct_races(), 0);
    }
}
