//! Deterministic execution of [`Program`]s into well-formed traces.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smarttrack_clock::ThreadId;
use smarttrack_trace::{Event, LockId, Op, Trace, TraceBuilder};

use crate::program::{lower, Program};

/// How the scheduler interleaves runnable threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Run the lowest-id runnable thread to completion (or until it blocks);
    /// for unsynchronized programs this yields the program-order
    /// linearization the paper's figures use.
    ProgramOrder,
    /// Round-robin with the given quantum (operations per turn).
    RoundRobin(usize),
    /// Seeded uniformly random choice per step (different seeds explore
    /// different interleavings, like the paper's 10-trial methodology).
    Random(u64),
}

/// Execution failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// All unfinished threads are blocked (lock cycle or join cycle).
    Deadlock {
        /// Threads still having operations to run.
        blocked: Vec<ThreadId>,
    },
    /// A thread released a lock it does not hold, double-forked, etc.
    IllFormed(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Deadlock { blocked } => {
                write!(f, "deadlock: threads {blocked:?} are blocked")
            }
            ExecError::IllFormed(msg) => write!(f, "ill-formed program: {msg}"),
        }
    }
}

impl Error for ExecError {}

/// Steps a [`Program`] to produce a [`Trace`], calling an observer per event
/// (the hook the online monitor uses).
pub struct Scheduler<'a> {
    program: &'a Program,
    policy: SchedulePolicy,
    /// Per-thread: index of the next op, plus a pending second half of a
    /// lowered `Wait`.
    positions: Vec<usize>,
    pending: Vec<Option<Op>>,
    started: Vec<bool>,
    lock_holder: HashMap<LockId, ThreadId>,
    rng: SmallRng,
    rr_current: usize,
    rr_left: usize,
}

impl<'a> Scheduler<'a> {
    /// Prepares an execution.
    pub fn new(program: &'a Program, policy: SchedulePolicy) -> Self {
        let n = program.num_threads();
        let fork_targets = program.fork_targets();
        let started = (0..n)
            .map(|t| !fork_targets.contains(&ThreadId::new(t as u32)))
            .collect();
        let seed = match policy {
            SchedulePolicy::Random(s) => s,
            _ => 0,
        };
        Scheduler {
            program,
            policy,
            positions: vec![0; n],
            pending: vec![None; n],
            started,
            lock_holder: HashMap::new(),
            rng: SmallRng::seed_from_u64(seed ^ 0x0dd5_eed5),
            rr_current: 0,
            rr_left: match policy {
                SchedulePolicy::RoundRobin(q) => q.max(1),
                _ => 0,
            },
        }
    }

    /// Runs to completion, returning the trace.
    ///
    /// # Errors
    ///
    /// [`ExecError::Deadlock`] if unfinished threads all block;
    /// [`ExecError::IllFormed`] for programs violating lock/fork discipline.
    pub fn run(mut self, mut observer: impl FnMut(usize, &Event)) -> Result<Trace, ExecError> {
        let mut builder = TraceBuilder::new();
        loop {
            let runnable = self.runnable_threads();
            if runnable.is_empty() {
                let blocked: Vec<ThreadId> = (0..self.program.num_threads())
                    .filter(|&t| !self.finished(t))
                    .map(|t| ThreadId::new(t as u32))
                    .collect();
                if blocked.is_empty() {
                    return Ok(builder.finish());
                }
                return Err(ExecError::Deadlock { blocked });
            }
            let t = self.pick(&runnable);
            let (op, loc) = self.next_op(t).expect("runnable thread has an op");
            let event = Event::with_loc(ThreadId::new(t as u32), op, loc);
            let id = builder
                .push_event(event)
                .map_err(|e| ExecError::IllFormed(e.to_string()))?;
            observer(id.index(), &event);
            self.apply(t, op);
        }
    }

    fn finished(&self, t: usize) -> bool {
        self.pending[t].is_none() && self.positions[t] >= self.program.threads()[t].len()
    }

    fn peek(&self, t: usize) -> Option<Op> {
        if let Some(op) = self.pending[t] {
            return Some(op);
        }
        let (pop, _) = *self.program.threads()[t].ops().get(self.positions[t])?;
        lower(pop)[0]
    }

    fn runnable_threads(&self) -> Vec<usize> {
        (0..self.program.num_threads())
            .filter(|&t| self.started[t] && !self.finished(t))
            .filter(|&t| match self.peek(t) {
                Some(Op::Acquire(m)) => !self.lock_holder.contains_key(&m),
                Some(Op::Join(u)) => self.finished(u.index()),
                Some(_) => true,
                None => false,
            })
            .collect()
    }

    fn pick(&mut self, runnable: &[usize]) -> usize {
        match self.policy {
            SchedulePolicy::ProgramOrder => runnable[0],
            SchedulePolicy::Random(_) => runnable[self.rng.gen_range(0..runnable.len())],
            SchedulePolicy::RoundRobin(q) => {
                if !runnable.contains(&self.rr_current) || self.rr_left == 0 {
                    let next = runnable
                        .iter()
                        .copied()
                        .find(|&t| t > self.rr_current)
                        .unwrap_or(runnable[0]);
                    self.rr_current = next;
                    self.rr_left = q.max(1);
                }
                self.rr_left -= 1;
                self.rr_current
            }
        }
    }

    fn next_op(&mut self, t: usize) -> Option<(Op, smarttrack_trace::Loc)> {
        if let Some(op) = self.pending[t].take() {
            let (_, loc) = self.program.threads()[t].ops()[self.positions[t] - 1];
            return Some((op, loc));
        }
        let (pop, loc) = *self.program.threads()[t].ops().get(self.positions[t])?;
        self.positions[t] += 1;
        let [first, second] = lower(pop);
        self.pending[t] = second;
        Some((
            first.expect("every program op lowers to at least one event"),
            loc,
        ))
    }

    fn apply(&mut self, t: usize, op: Op) {
        let tid = ThreadId::new(t as u32);
        match op {
            Op::Acquire(m) => {
                self.lock_holder.insert(m, tid);
            }
            Op::Release(m) => {
                self.lock_holder.remove(&m);
            }
            Op::Fork(u) => {
                self.started[u.index()] = true;
            }
            _ => {}
        }
    }
}

/// Convenience: executes a program and returns the trace.
///
/// # Errors
///
/// See [`Scheduler::run`].
pub fn execute(program: &Program, policy: SchedulePolicy) -> Result<Trace, ExecError> {
    Scheduler::new(program, policy).run(|_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadSpec;
    use smarttrack_trace::VarId;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }

    #[test]
    fn program_order_runs_threads_sequentially() {
        let p = Program::new(vec![
            ThreadSpec::new().write(x(0)).write(x(1)),
            ThreadSpec::new().read(x(0)),
        ]);
        let tr = execute(&p, SchedulePolicy::ProgramOrder).unwrap();
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.events()[0].tid, t(0));
        assert_eq!(tr.events()[2].tid, t(1));
    }

    #[test]
    fn locks_block_until_released() {
        let p = Program::new(vec![
            ThreadSpec::new().acquire(m(0)).write(x(0)).release(m(0)),
            ThreadSpec::new().acquire(m(0)).write(x(0)).release(m(0)),
        ]);
        for policy in [
            SchedulePolicy::ProgramOrder,
            SchedulePolicy::RoundRobin(1),
            SchedulePolicy::Random(7),
        ] {
            let tr = execute(&p, policy).unwrap();
            assert_eq!(tr.len(), 6, "{policy:?}");
        }
    }

    #[test]
    fn random_schedules_are_deterministic_per_seed() {
        let p = Program::new(vec![
            ThreadSpec::new().write(x(0)).write(x(1)).write(x(2)),
            ThreadSpec::new().read(x(0)).read(x(1)).read(x(2)),
        ]);
        let a = execute(&p, SchedulePolicy::Random(3)).unwrap();
        let b = execute(&p, SchedulePolicy::Random(3)).unwrap();
        assert_eq!(a, b);
        let c = execute(&p, SchedulePolicy::Random(4)).unwrap();
        assert!(a == c || a != c, "either way is legal; both well-formed");
    }

    #[test]
    fn fork_join_structure_is_respected() {
        let p = Program::new(vec![
            ThreadSpec::new()
                .write(x(0))
                .fork(t(1))
                .join(t(1))
                .read(x(0)),
            ThreadSpec::new().write(x(0)),
        ]);
        let tr = execute(&p, SchedulePolicy::Random(11)).unwrap();
        let order: Vec<&str> = tr
            .events()
            .iter()
            .map(|e| match e.op {
                Op::Fork(_) => "fork",
                Op::Join(_) => "join",
                Op::Write(_) if e.tid == t(1) => "child",
                _ => "parent",
            })
            .collect();
        let fork = order.iter().position(|&s| s == "fork").unwrap();
        let join = order.iter().position(|&s| s == "join").unwrap();
        let child = order.iter().position(|&s| s == "child").unwrap();
        assert!(fork < child && child < join);
    }

    #[test]
    fn wait_expands_to_release_acquire() {
        let p = Program::new(vec![ThreadSpec::new()
            .acquire(m(0))
            .wait(m(0))
            .release(m(0))]);
        let tr = execute(&p, SchedulePolicy::ProgramOrder).unwrap();
        let ops: Vec<Op> = tr.events().iter().map(|e| e.op).collect();
        assert_eq!(
            ops,
            vec![
                Op::Acquire(m(0)),
                Op::Release(m(0)),
                Op::Acquire(m(0)),
                Op::Release(m(0))
            ]
        );
    }

    #[test]
    fn wait_allows_another_thread_in() {
        // The whole point of wait(): another thread can take the lock.
        let p = Program::new(vec![
            ThreadSpec::new().acquire(m(0)).wait(m(0)).release(m(0)),
            ThreadSpec::new().acquire(m(0)).write(x(0)).release(m(0)),
        ]);
        let tr = execute(&p, SchedulePolicy::RoundRobin(1)).unwrap();
        assert_eq!(tr.len(), 7);
    }

    #[test]
    fn deadlock_is_reported() {
        let p = Program::new(vec![
            ThreadSpec::new()
                .acquire(m(0))
                .acquire(m(1))
                .release(m(1))
                .release(m(0)),
            ThreadSpec::new()
                .acquire(m(1))
                .acquire(m(0))
                .release(m(0))
                .release(m(1)),
        ]);
        // Round-robin with quantum 1 drives both threads into the cycle.
        let err = execute(&p, SchedulePolicy::RoundRobin(1)).unwrap_err();
        assert!(matches!(err, ExecError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn join_of_unfinished_thread_blocks_until_done() {
        let p = Program::new(vec![
            ThreadSpec::new().fork(t(1)).join(t(1)).read(x(0)),
            ThreadSpec::new().write(x(0)).write(x(0)),
        ]);
        let tr = execute(&p, SchedulePolicy::RoundRobin(1)).unwrap();
        let join_pos = tr
            .events()
            .iter()
            .position(|e| matches!(e.op, Op::Join(_)))
            .unwrap();
        let last_child = tr.events().iter().rposition(|e| e.tid == t(1)).unwrap();
        assert!(last_child < join_pos);
    }
}
