#![warn(missing_docs)]

//! A concurrent-program execution simulator — the reproduction's substitute
//! for the RoadRunner dynamic-analysis framework (paper §5.1).
//!
//! The paper instruments JVM programs with RoadRunner to observe a linearized
//! event stream and feed it to the race-detection analyses. This crate plays
//! that role for the reproduction: programs are described as per-thread
//! operation lists ([`Program`]), a deterministic seeded [`Scheduler`]
//! interleaves them while honoring lock blocking and fork/join semantics, and
//! the resulting well-formed [`Trace`](smarttrack_trace::Trace) is either recorded for offline
//! analysis or fed event-by-event to an online [`monitor`].
//!
//! # Examples
//!
//! Build the two-thread program of the paper's Figure 1 and find its
//! predictable race online with SmartTrack-DC:
//!
//! ```
//! use smarttrack_detect::{Detector, SmartTrackDc};
//! use smarttrack_runtime::{monitor, Program, SchedulePolicy, ThreadSpec};
//! use smarttrack_trace::{LockId, VarId};
//!
//! let (x, y, z) = (VarId::new(0), VarId::new(1), VarId::new(2));
//! let m = LockId::new(0);
//! let program = Program::new(vec![
//!     ThreadSpec::new().read(x).acquire(m).write(y).release(m),
//!     ThreadSpec::new().acquire(m).read(z).release(m).write(x),
//! ]);
//! let mut det = SmartTrackDc::new();
//! let trace = monitor::run_with_detector(&program, SchedulePolicy::ProgramOrder, &mut det)
//!     .expect("program executes without deadlock");
//! assert_eq!(trace.len(), 8);
//! assert_eq!(det.report().dynamic_count(), 1);
//! ```

pub mod explore;
pub mod monitor;
mod program;
mod scheduler;

pub use program::{Program, ProgramOp, ThreadSpec};
pub use scheduler::{execute, ExecError, SchedulePolicy, Scheduler};
