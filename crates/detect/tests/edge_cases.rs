//! Edge-case and failure-injection tests for the detectors: inputs a
//! downstream user will eventually feed them.

use smarttrack_detect::{
    make_detector, run_detector, table1_configs, Detector, SmartTrackDc, UnoptDc,
};
use smarttrack_trace::{LockId, Op, ThreadId, Trace, TraceBuilder, VarId};

fn t(i: u32) -> ThreadId {
    ThreadId::new(i)
}
fn x(i: u32) -> VarId {
    VarId::new(i)
}
fn m(i: u32) -> LockId {
    LockId::new(i)
}

fn all_detectors() -> Vec<Box<dyn Detector>> {
    table1_configs()
        .into_iter()
        .map(|(r, l, g)| make_detector(r, l, g).expect("valid cell"))
        .collect()
}

#[test]
fn empty_trace_is_no_op() {
    let trace = Trace::default();
    for mut det in all_detectors() {
        let summary = run_detector(det.as_mut(), &trace);
        assert_eq!(summary.events, 0, "{}", det.name());
        assert!(det.report().is_empty());
    }
}

#[test]
fn single_thread_traces_never_race() {
    let mut b = TraceBuilder::new();
    for i in 0..50 {
        b.push(t(0), Op::Write(x(i % 5))).unwrap();
        if i % 7 == 0 {
            b.push(t(0), Op::Acquire(m(0))).unwrap();
            b.push(t(0), Op::Read(x(i % 5))).unwrap();
            b.push(t(0), Op::Release(m(0))).unwrap();
        }
    }
    let trace = b.finish();
    for mut det in all_detectors() {
        run_detector(det.as_mut(), &trace);
        assert!(det.report().is_empty(), "{}", det.name());
    }
}

#[test]
fn sparse_ids_grow_tables_safely() {
    // Large, non-contiguous thread/var/lock ids exercise the growable
    // tables (a downstream embedder may hash pointers into ids).
    let mut b = TraceBuilder::new();
    b.push(t(90), Op::Acquire(m(70))).unwrap();
    b.push(t(90), Op::Write(x(5_000))).unwrap();
    b.push(t(90), Op::Release(m(70))).unwrap();
    b.push(t(3), Op::Acquire(m(70))).unwrap();
    b.push(t(3), Op::Read(x(5_000))).unwrap();
    b.push(t(3), Op::Release(m(70))).unwrap();
    b.push(t(3), Op::Write(x(9_999))).unwrap();
    b.push(t(90), Op::Write(x(9_999))).unwrap(); // race
    let trace = b.finish();
    for mut det in all_detectors() {
        run_detector(det.as_mut(), &trace);
        assert_eq!(det.report().dynamic_count(), 1, "{}", det.name());
    }
}

#[test]
fn non_lifo_unlocking_is_handled() {
    // Lock-object APIs allow releasing in any order; the CS-list release
    // path must resolve the right pending entry.
    let mut b = TraceBuilder::new();
    b.push(t(0), Op::Acquire(m(0))).unwrap();
    b.push(t(0), Op::Acquire(m(1))).unwrap();
    b.push(t(0), Op::Write(x(0))).unwrap();
    b.push(t(0), Op::Release(m(0))).unwrap(); // outer released first
    b.push(t(0), Op::Write(x(1))).unwrap(); // still holds m1
    b.push(t(0), Op::Release(m(1))).unwrap();
    b.push(t(1), Op::Acquire(m(0))).unwrap();
    b.push(t(1), Op::Write(x(0))).unwrap(); // ordered via CCS on m0
    b.push(t(1), Op::Release(m(0))).unwrap();
    let trace = b.finish();
    for mut det in all_detectors() {
        run_detector(det.as_mut(), &trace);
        assert!(
            det.report().is_empty(),
            "{}: conflicting critical sections on m0 order the writes",
            det.name()
        );
    }
}

#[test]
fn many_threads_share_one_variable() {
    // 64 threads, all properly synchronized: forces Rx into wide vector
    // form and exercises per-pair queue growth without races.
    let mut b = TraceBuilder::new();
    for i in 0..64 {
        b.push(t(i), Op::Acquire(m(0))).unwrap();
        b.push(t(i), Op::Read(x(0))).unwrap();
        b.push(t(i), Op::Write(x(0))).unwrap();
        b.push(t(i), Op::Release(m(0))).unwrap();
    }
    let trace = b.finish();
    for mut det in all_detectors() {
        run_detector(det.as_mut(), &trace);
        assert!(det.report().is_empty(), "{}", det.name());
    }
}

#[test]
fn unsynchronized_readers_then_writer_reports_all_threads() {
    let mut b = TraceBuilder::new();
    for i in 0..6 {
        b.push(t(i), Op::Read(x(0))).unwrap();
    }
    b.push(t(6), Op::Write(x(0))).unwrap();
    let trace = b.finish();
    let mut det = UnoptDc::new();
    run_detector(&mut det, &trace);
    assert_eq!(det.report().dynamic_count(), 1, "one race at the write");
    assert_eq!(
        det.report().races()[0].prior_threads.len(),
        6,
        "all six readers are racing partners"
    );
}

#[test]
fn detection_is_deterministic_across_runs() {
    let spec = smarttrack_trace::gen::RandomTraceSpec {
        events: 600,
        threads: 5,
        ..smarttrack_trace::gen::RandomTraceSpec::default()
    };
    let trace = spec.generate(99);
    for (r, l, g) in table1_configs() {
        let mut a = make_detector(r, l, g).unwrap();
        let mut b = make_detector(r, l, g).unwrap();
        run_detector(a.as_mut(), &trace);
        run_detector(b.as_mut(), &trace);
        assert_eq!(a.report(), b.report(), "{}", a.name());
    }
}

#[test]
fn interleaved_critical_sections_consume_queues() {
    // Ping-pong critical sections with conflicting accesses: rule (b)
    // queues must keep consuming (regression guard for unbounded growth of
    // ordered entries once a thread bound is declared).
    let mut b = TraceBuilder::new();
    for round in 0..200 {
        let owner = t(round % 2);
        b.push(owner, Op::Acquire(m(0))).unwrap();
        b.push(owner, Op::Write(x(0))).unwrap();
        b.push(owner, Op::Release(m(0))).unwrap();
    }
    let trace = b.finish();
    let mut det = SmartTrackDc::new();
    let summary = run_detector(&mut det, &trace);
    assert!(det.report().is_empty());
    // With the thread bound declared by prepare(), fully consumed prefixes
    // compact: footprint stays small relative to 200 critical sections of
    // growth (each release entry is a clock of 2 entries ≈ tens of bytes).
    assert!(
        summary.peak_footprint_bytes < 64 * 1024,
        "queues should compact: peak {} bytes",
        summary.peak_footprint_bytes
    );
}

#[test]
fn volatile_only_synchronization_suffices() {
    // A flag-based publication idiom: fully ordered via volatiles.
    let mut b = TraceBuilder::new();
    b.push(t(0), Op::Write(x(0))).unwrap();
    b.push(t(0), Op::VolatileWrite(x(0))).unwrap(); // volatile namespace
    b.push(t(1), Op::VolatileRead(x(0))).unwrap();
    b.push(t(1), Op::Write(x(0))).unwrap();
    let trace = b.finish();
    for mut det in all_detectors() {
        run_detector(det.as_mut(), &trace);
        assert!(det.report().is_empty(), "{}", det.name());
    }
}
