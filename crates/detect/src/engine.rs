//! The streaming ingestion API: a builder-configured [`Engine`] that opens
//! incremental [`Session`]s.
//!
//! The paper's deployment story (§5.1) is *online*: analysis hooks run
//! inside application threads over an unbounded event stream. This module
//! is the single event-ingestion code path that every driver in the
//! workspace sits on — the one-shot [`crate::analyze`] /
//! [`crate::analyze_all`] wrappers, the CLI commands, the deterministic
//! feed of `smarttrack-parallel`, and the windowed analysis of
//! `smarttrack-vindicate`.
//!
//! A session owns one *lane* per analysis. Fan-out sessions process every
//! lane in the same pass over the stream, replacing N whole-trace passes
//! with one; a [`RaceSink`] surfaces races the moment a lane detects them
//! rather than at end-of-stream.
//!
//! # Examples
//!
//! Stream the paper's Figure 1 into an HB + SmartTrack-DC fan-out and watch
//! the predictive race surface mid-stream:
//!
//! ```
//! use smarttrack_detect::{AnalysisConfig, Engine, OptLevel, Relation};
//! use smarttrack_trace::paper;
//!
//! let engine = Engine::builder()
//!     .relation(Relation::Dc)
//!     .opt_level(OptLevel::SmartTrack)
//!     .fanout([AnalysisConfig::new(Relation::Hb, OptLevel::Fto)])
//!     .build()?;
//!
//! let mut session = engine.open();
//! for event in paper::figure1().events() {
//!     session.feed(*event)?;
//! }
//! assert_eq!(session.races().len(), 1, "only the DC lane fires");
//!
//! let outcomes = session.finish();
//! assert_eq!(outcomes.len(), 2);
//! assert_eq!(outcomes[0].name, "SmartTrack-DC");
//! assert_eq!(outcomes[0].report.dynamic_count(), 1);
//! assert_eq!(outcomes[1].report.dynamic_count(), 0, "no HB race");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;

use smarttrack_trace::{Event, EventId, StreamValidator, Trace, TraceError};

use crate::intern::Interner;
use crate::{
    AnalysisConfig, AnalysisOutcome, Detector, FootprintSampler, FtoCaseCounters, HotPathStats,
    OptLevel, RaceReport, Relation, Report, RunSummary, StreamHint,
};

/// A race surfaced by a [`Session`], paired with the lane that found it.
#[derive(Clone, Copy, Debug)]
pub struct RaceNotice<'a> {
    /// Name of the detecting analysis (as in the paper's tables).
    pub analysis: &'a str,
    /// The lane's Table 1 configuration; `None` for custom detector lanes.
    pub config: Option<AnalysisConfig>,
    /// The race itself.
    pub race: &'a RaceReport,
}

/// Observer receiving races as they are detected, instead of (only) from
/// the end-of-stream report — the paper's "deployed" shape, where a race is
/// acted on while the application still runs.
///
/// Any `FnMut(&RaceNotice)` closure is a sink.
///
/// # Examples
///
/// ```
/// use std::cell::RefCell;
/// use std::rc::Rc;
/// use smarttrack_detect::{Engine, RaceNotice, Relation};
/// use smarttrack_trace::paper;
///
/// let engine = Engine::builder().relation(Relation::Wdc).build()?;
/// let mut session = engine.open();
///
/// let live: Rc<RefCell<Vec<String>>> = Rc::default();
/// let sink = Rc::clone(&live);
/// session.set_sink(move |notice: &RaceNotice<'_>| {
///     sink.borrow_mut()
///         .push(format!("{} at {}", notice.analysis, notice.race.event));
/// });
/// session.feed_trace(&paper::figure1())?;
/// session.finish();
/// assert_eq!(*live.borrow(), ["SmartTrack-WDC at e7"]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait RaceSink {
    /// Called once per dynamic race, in detection order, possibly many
    /// events after the session was opened but always before
    /// [`Session::feed`] for the detecting event returns (or during
    /// [`Session::finish`] for races found while flushing).
    fn on_race(&mut self, notice: &RaceNotice<'_>);
}

impl<F: FnMut(&RaceNotice<'_>)> RaceSink for F {
    fn on_race(&mut self, notice: &RaceNotice<'_>) {
        self(notice)
    }
}

/// Errors from [`EngineBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A requested configuration is an N/A cell of Table 1.
    Unavailable(AnalysisConfig),
    /// No analysis was selected.
    Empty,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Unavailable(cfg) => {
                write!(f, "{cfg} is an N/A cell of Table 1")
            }
            EngineError::Empty => write!(
                f,
                "no analysis selected (use relation()/config()/fanout()/table1())"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Configures an [`Engine`].
///
/// The *primary* analysis is described by [`relation`](EngineBuilder::relation)
/// / [`opt_level`](EngineBuilder::opt_level) / [`graph`](EngineBuilder::graph);
/// additional fan-out lanes come from [`config`](EngineBuilder::config),
/// [`fanout`](EngineBuilder::fanout), or [`table1`](EngineBuilder::table1).
#[derive(Clone, Debug, Default)]
pub struct EngineBuilder {
    relation: Option<Relation>,
    level: Option<OptLevel>,
    graph: bool,
    lanes: Vec<AnalysisConfig>,
    hint: StreamHint,
}

impl EngineBuilder {
    /// Selects the primary analysis' relation.
    pub fn relation(mut self, relation: Relation) -> Self {
        self.relation = Some(relation);
        self
    }

    /// Selects the primary analysis' optimization level. Defaults to the
    /// strongest column available for the relation (SmartTrack; FTO for HB,
    /// whose SmartTrack cell is N/A).
    pub fn opt_level(mut self, level: OptLevel) -> Self {
        self.level = Some(level);
        self
    }

    /// Enables constraint-graph recording for the primary analysis (valid
    /// for Unopt DC/WDC).
    pub fn graph(mut self, graph: bool) -> Self {
        self.graph = graph;
        self
    }

    /// Adds one fan-out lane.
    pub fn config(mut self, config: AnalysisConfig) -> Self {
        self.lanes.push(config);
        self
    }

    /// Adds fan-out lanes, analyzed in the same single pass as the primary.
    pub fn fanout<I: IntoIterator<Item = AnalysisConfig>>(mut self, configs: I) -> Self {
        self.lanes.extend(configs);
        self
    }

    /// Adds every Table 1 cell as a fan-out lane (the paper's full analysis
    /// matrix in one pass).
    pub fn table1(self) -> Self {
        self.fanout(AnalysisConfig::table1())
    }

    /// Declares an upper bound on the number of threads sessions will see,
    /// enabling streaming-mode optimizations that otherwise need a whole
    /// trace up front (sound compaction of DC rule (b) queues).
    pub fn expect_threads(mut self, threads: usize) -> Self {
        self.hint.threads = Some(threads);
        self
    }

    /// Declares the total number of events sessions will see, upgrading
    /// footprint sampling from the adaptive policy to the cheaper
    /// fixed-stride one (see `FootprintSampler`).
    pub fn expect_events(mut self, events: usize) -> Self {
        self.hint.events = Some(events);
        self
    }

    /// Installs a whole [`StreamHint`] at once — the natural call when the
    /// hint arrives pre-assembled, e.g. decoded from an STB binary trace
    /// header ([`StreamHint::of_stb_header`]). Fields already set by
    /// [`expect_threads`](EngineBuilder::expect_threads) /
    /// [`expect_events`](EngineBuilder::expect_events) are kept when the
    /// incoming hint leaves them `None`.
    pub fn hint(mut self, hint: StreamHint) -> Self {
        self.hint = hint.or(self.hint);
        self
    }

    /// Validates the selection and builds the engine.
    ///
    /// # Errors
    ///
    /// [`EngineError::Unavailable`] if any selected cell is N/A;
    /// [`EngineError::Empty`] if nothing was selected.
    pub fn build(self) -> Result<Engine, EngineError> {
        let mut lanes = Vec::new();
        if let Some(relation) = self.relation {
            let level = self.level.unwrap_or(match relation {
                Relation::Hb => OptLevel::Fto,
                // The SyncP/OSR extension rows have a single implementation
                // each, addressed as Unopt (no Table 1 opt columns).
                Relation::SyncP | Relation::Osr => OptLevel::Unopt,
                _ => OptLevel::SmartTrack,
            });
            let mut primary = AnalysisConfig::new(relation, level);
            if self.graph {
                primary = primary.with_graph();
            }
            lanes.push(primary);
        }
        lanes.extend(self.lanes);
        if lanes.is_empty() {
            return Err(EngineError::Empty);
        }
        for &config in &lanes {
            if !config.is_available() {
                return Err(EngineError::Unavailable(config));
            }
        }
        Ok(Engine {
            configs: lanes,
            hint: self.hint,
        })
    }
}

/// A validated, reusable analysis selection; [`open`](Engine::open) starts
/// independent streaming [`Session`]s over it.
///
/// # Examples
///
/// One engine, many sessions — each session analyzes its own stream:
///
/// ```
/// use smarttrack_detect::{Engine, Relation};
/// use smarttrack_trace::paper;
///
/// let engine = Engine::builder().relation(Relation::Dc).build()?;
/// for (name, trace) in paper::all_figures() {
///     let mut session = engine.open();
///     session.feed_trace(&trace)?;
///     println!("{name}: {} races", session.finish_one().report.dynamic_count());
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Engine {
    configs: Vec<AnalysisConfig>,
    hint: StreamHint,
}

impl Engine {
    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// A single-analysis engine for `config`.
    ///
    /// # Errors
    ///
    /// [`EngineError::Unavailable`] if `config` is an N/A cell.
    pub fn for_config(config: AnalysisConfig) -> Result<Engine, EngineError> {
        EngineBuilder::default().config(config).build()
    }

    /// The lane configurations, in session lane order (primary first).
    pub fn configs(&self) -> &[AnalysisConfig] {
        &self.configs
    }

    /// Opens a fresh session: new detectors, empty report, zero events.
    pub fn open(&self) -> Session<'static> {
        self.open_with_hint(StreamHint::default())
    }

    /// Opens a session with stream facts known only now — e.g. the
    /// [`StreamHint`] decoded from one STB file's header when a single
    /// engine analyzes many files ([`crate::EnginePool`] uses this per
    /// job). Fields the per-stream hint leaves `None` fall back to the
    /// builder-level hint.
    pub fn open_with_hint(&self, hint: StreamHint) -> Session<'static> {
        let merged = hint.or(self.hint);
        let lanes = self
            .configs
            .iter()
            .map(|&config| {
                let det = config
                    .detector()
                    .expect("availability was validated by build()");
                Lane::new(Some(config), det)
            })
            .collect();
        Session::with_lanes(lanes, merged, Some(Interner::with_hint(&merged)))
    }
}

/// One analysis running inside a session.
struct Lane<'d> {
    config: Option<AnalysisConfig>,
    det: Box<dyn Detector + 'd>,
    sampler: FootprintSampler,
    /// Mirror of the detector's report with original (pre-interning) ids —
    /// what every session-level read (`races`, `snapshot`, `finish`, sink
    /// notices) serves. Its length doubles as the sink watermark.
    report: Report,
}

impl<'d> Lane<'d> {
    fn new(config: Option<AnalysisConfig>, det: Box<dyn Detector + 'd>) -> Self {
        Lane {
            config,
            det,
            sampler: FootprintSampler::adaptive(),
            report: Report::new(),
        }
    }

    fn snapshot(&self, events: usize) -> LaneSnapshot {
        let footprint = self.det.footprint_bytes();
        LaneSnapshot {
            name: self.det.name().to_string(),
            config: self.config,
            report: self.report.clone(),
            cases: self.det.case_counters().cloned(),
            hot_path: self.det.hot_path_stats(),
            footprint_bytes: footprint,
            peak_footprint_bytes: self.sampler.peak().max(footprint),
            events,
        }
    }

    /// Mirrors races the detector found since the last call (restoring
    /// original ids) and delivers them to `sink`. Called after processing
    /// an event and after the end-of-stream flush.
    fn drain_new_races(
        &mut self,
        sink: &mut Option<Box<dyn RaceSink + '_>>,
        interner: Option<&Interner>,
    ) {
        let det_report = self.det.report();
        let known = self.report.dynamic_count();
        if det_report.dynamic_count() > known {
            for race in &det_report.races()[known..] {
                let restored = match interner {
                    Some(i) => i.restore_race(race),
                    None => race.clone(),
                };
                self.report.push(restored);
            }
            if let Some(sink) = sink.as_mut() {
                let name = self.det.name();
                for race in &self.report.races()[known..] {
                    sink.on_race(&RaceNotice {
                        analysis: name,
                        config: self.config,
                        race,
                    });
                }
            }
        }
    }
}

/// Point-in-time state of one [`Session`] lane, from
/// [`Session::snapshot`].
#[derive(Clone, Debug)]
pub struct LaneSnapshot {
    /// Analysis name (as in the paper's tables).
    pub name: String,
    /// Table 1 cell, or `None` for custom detector lanes.
    pub config: Option<AnalysisConfig>,
    /// Races detected so far.
    pub report: Report,
    /// FTO case frequencies so far, when tracked.
    pub cases: Option<FtoCaseCounters>,
    /// Fast-path/slow-path hit counts and resident state bytes so far.
    pub hot_path: HotPathStats,
    /// Exact live metadata bytes right now (full walk).
    pub footprint_bytes: usize,
    /// Peak sampled metadata bytes so far (including the current state).
    pub peak_footprint_bytes: usize,
    /// Events processed so far.
    pub events: usize,
}

/// Point-in-time state of a whole [`Session`].
#[derive(Clone, Debug)]
pub struct SessionSnapshot {
    /// Events ingested so far.
    pub events: usize,
    /// Heap bytes held by the session's id interner (shared by all lanes,
    /// so counted once here rather than in any lane's footprint).
    pub interner_bytes: usize,
    /// One snapshot per lane, in lane order.
    pub lanes: Vec<LaneSnapshot>,
}

/// An open incremental analysis over one event stream.
///
/// Feed events with [`feed`](Session::feed) / [`feed_batch`](Session::feed_batch)
/// / [`feed_trace`](Session::feed_trace); observe mid-stream state with
/// [`races`](Session::races) and [`snapshot`](Session::snapshot) (or a
/// [`RaceSink`] for push-style delivery); close with
/// [`finish`](Session::finish).
///
/// The lifetime parameter tracks borrowed custom detectors
/// ([`from_detectors`](Session::from_detectors)); engine-opened sessions
/// are `Session<'static>`.
///
/// # Examples
///
/// Incremental ingest — events arrive one at a time (e.g. decoded from a
/// streaming trace reader), and state is observable mid-stream:
///
/// ```
/// use smarttrack_detect::{Engine, Relation};
/// use smarttrack_trace::paper;
///
/// let trace = paper::figure1();
/// let engine = Engine::builder().relation(Relation::Dc).build()?;
/// let mut session = engine.open();
/// for &event in trace.events() {
///     session.feed(event)?;
/// }
/// assert_eq!(session.events(), trace.len());
/// assert_eq!(session.snapshot().lanes[0].report.dynamic_count(), 1);
/// assert_eq!(session.finish_one().report.dynamic_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Session<'d> {
    lanes: Vec<Lane<'d>>,
    validator: StreamValidator,
    sink: Option<Box<dyn RaceSink + 'd>>,
    /// Id interner for engine-opened sessions. Custom-detector sessions
    /// ([`Session::from_detectors`]) run un-interned: their detectors are
    /// externally owned, and callers read reports straight off them after
    /// the session ends.
    interner: Option<Interner>,
}

impl<'d> Session<'d> {
    fn with_lanes(mut lanes: Vec<Lane<'d>>, hint: StreamHint, interner: Option<Interner>) -> Self {
        for lane in &mut lanes {
            lane.det.begin_stream(hint);
            if let Some(events) = hint.events {
                // A known length upgrades footprint sampling from the
                // adaptive policy to the cheaper fixed-stride one.
                lane.sampler = FootprintSampler::for_len(events);
            }
        }
        Session {
            lanes,
            validator: StreamValidator::new(),
            sink: None,
            interner,
        }
    }

    /// A session over caller-supplied detectors (custom lanes, `config =
    /// None`). Detectors may be borrowed — `&mut D` implements
    /// [`Detector`] — so the caller can inspect detector-specific state
    /// after [`finish`](Session::finish). Such sessions do not intern ids
    /// (the caller reads reports directly from the borrowed detectors).
    pub fn from_detectors(detectors: Vec<Box<dyn Detector + 'd>>) -> Self {
        Session::with_lanes(
            detectors
                .into_iter()
                .map(|det| Lane::new(None, det))
                .collect(),
            StreamHint::default(),
            None,
        )
    }

    /// A single custom-detector session (see
    /// [`from_detectors`](Session::from_detectors)).
    pub fn from_detector<D: Detector + 'd>(detector: D) -> Self {
        Session::from_detectors(vec![Box::new(detector)])
    }

    /// Installs a [`RaceSink`] that receives every *future* race as it is
    /// detected (races already in [`races`](Session::races) are not
    /// replayed).
    pub fn set_sink<S: RaceSink + 'd>(&mut self, sink: S) {
        self.sink = Some(Box::new(sink));
    }

    /// Number of events ingested so far.
    pub fn events(&self) -> usize {
        self.validator.len()
    }

    /// Validates and analyzes one event on every lane.
    ///
    /// # Errors
    ///
    /// Returns the [`TraceError`] if the event violates stream
    /// well-formedness; the event is then not analyzed and the session
    /// state is unchanged (the caller may skip it and continue).
    pub fn feed(&mut self, event: Event) -> Result<EventId, TraceError> {
        let id = self.validator.admit(&event)?;
        // Intern ids once per event; every lane indexes by the compact
        // slot (see the `intern` module).
        let event = match &mut self.interner {
            Some(interner) => interner.intern_event(event),
            None => event,
        };
        let sink = &mut self.sink;
        let interner = self.interner.as_ref();
        for lane in &mut self.lanes {
            lane.det.process(id, &event);
            // The sampling stride reads the cheap running estimate; the
            // exact walk runs once at finish (see RunSummary).
            lane.sampler.observe(|| lane.det.state_bytes());
            lane.drain_new_races(sink, interner);
        }
        Ok(id)
    }

    /// Feeds a slice of events in order.
    ///
    /// # Errors
    ///
    /// Stops at the first malformed event: the preceding prefix has been
    /// ingested, the offending event and everything after it have not.
    pub fn feed_batch(&mut self, events: &[Event]) -> Result<(), TraceError> {
        for &event in events {
            self.feed(event)?;
        }
        Ok(())
    }

    /// Feeds a whole recorded trace. If the session is still empty, the
    /// trace's stream facts (thread count, length) are announced to the
    /// lanes first, exactly like the whole-trace [`crate::run_detector`]
    /// driver — so `analyze ≡ open + feed_trace + finish`.
    ///
    /// # Errors
    ///
    /// A validated [`Trace`] cannot fail on an empty session; feeding a
    /// second trace can (its lock/thread usage continues the first
    /// stream's).
    pub fn feed_trace(&mut self, trace: &Trace) -> Result<(), TraceError> {
        if self.validator.is_empty() {
            for lane in &mut self.lanes {
                lane.det.begin_stream(StreamHint::of_trace(trace));
                lane.sampler = FootprintSampler::for_len(trace.len());
            }
        }
        self.feed_batch(trace.events())
    }

    /// All races detected so far, across lanes (lane order, detection order
    /// within a lane).
    pub fn races(&self) -> Vec<RaceNotice<'_>> {
        self.lanes
            .iter()
            .flat_map(|lane| {
                lane.report.races().iter().map(move |race| RaceNotice {
                    analysis: lane.det.name(),
                    config: lane.config,
                    race,
                })
            })
            .collect()
    }

    /// Point-in-time state of every lane: report, case counters, live and
    /// peak footprint, events so far. Cheap relative to analysis (clones
    /// reports, walks live metadata once per lane).
    pub fn snapshot(&self) -> SessionSnapshot {
        let events = self.events();
        SessionSnapshot {
            events,
            interner_bytes: self.interner.as_ref().map_or(0, Interner::heap_bytes),
            lanes: self
                .lanes
                .iter()
                .map(|lane| lane.snapshot(events))
                .collect(),
        }
    }

    /// Closes the stream: lanes flush deferred work
    /// ([`Detector::finish_stream`]), flushed races reach the sink, and
    /// each *engine-configured* lane yields an [`AnalysisOutcome`] (lane
    /// order). Custom detector lanes ([`from_detectors`](Session::from_detectors))
    /// carry no [`AnalysisConfig`] and yield no outcome — read their state
    /// through the borrowed detector after this returns.
    pub fn finish(mut self) -> Vec<AnalysisOutcome> {
        let events = self.validator.len();
        let sink = &mut self.sink;
        let interner = self.interner.as_ref();
        for lane in &mut self.lanes {
            lane.det.finish_stream();
            lane.drain_new_races(sink, interner);
        }
        self.lanes
            .into_iter()
            .filter_map(|mut lane| {
                let config = lane.config?;
                let final_state_bytes = lane.det.footprint_bytes();
                let peak = lane.sampler.finish(final_state_bytes);
                let hot = lane.det.hot_path_stats();
                Some(AnalysisOutcome {
                    name: lane.det.name().to_string(),
                    config,
                    report: lane.report,
                    summary: RunSummary {
                        events,
                        peak_footprint_bytes: peak,
                        final_state_bytes,
                        fast_path_hits: hot.fast_hits,
                        slow_path_hits: hot.slow_hits,
                    },
                    cases: lane.det.case_counters().cloned(),
                })
            })
            .collect()
    }

    /// [`finish`](Session::finish) for single-analysis sessions.
    ///
    /// # Panics
    ///
    /// Panics if the session does not have exactly one engine-configured
    /// lane.
    pub fn finish_one(self) -> AnalysisOutcome {
        let mut outcomes = self.finish();
        assert_eq!(
            outcomes.len(),
            1,
            "finish_one requires exactly one configured lane"
        );
        outcomes.pop().expect("length checked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_detector;
    use smarttrack_trace::{paper, Op, ThreadId, VarId};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn builder_primary_defaults_to_strongest_available_column() {
        let engine = Engine::builder().relation(Relation::Wdc).build().unwrap();
        assert_eq!(
            engine.configs(),
            &[AnalysisConfig::new(Relation::Wdc, OptLevel::SmartTrack)]
        );
        // HB's SmartTrack cell is N/A; the default degrades to FTO.
        let engine = Engine::builder().relation(Relation::Hb).build().unwrap();
        assert_eq!(
            engine.configs(),
            &[AnalysisConfig::new(Relation::Hb, OptLevel::Fto)]
        );
    }

    #[test]
    fn builder_rejects_na_cells_and_empty_selection() {
        let err = Engine::builder()
            .relation(Relation::Hb)
            .opt_level(OptLevel::SmartTrack)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::Unavailable(AnalysisConfig::new(Relation::Hb, OptLevel::SmartTrack))
        );
        assert_eq!(Engine::builder().build().unwrap_err(), EngineError::Empty);
    }

    #[test]
    fn feed_matches_whole_trace_run() {
        let trace = paper::figure1();
        let engine =
            Engine::for_config(AnalysisConfig::new(Relation::Dc, OptLevel::SmartTrack)).unwrap();
        let mut session = engine.open();
        session.feed_trace(&trace).unwrap();
        let outcome = session.finish_one();

        let mut det = AnalysisConfig::new(Relation::Dc, OptLevel::SmartTrack)
            .detector()
            .unwrap();
        let summary = run_detector(det.as_mut(), &trace);
        assert_eq!(outcome.report, *det.report());
        assert_eq!(outcome.summary.events, summary.events);
    }

    #[test]
    fn fanout_runs_every_lane_in_one_pass() {
        let trace = paper::figure2();
        let engine = Engine::builder().table1().build().unwrap();
        let mut session = engine.open();
        session.feed_trace(&trace).unwrap();
        let outcomes = session.finish();
        assert_eq!(outcomes.len(), 14);
        for outcome in &outcomes {
            let direct = crate::analyze(&trace, outcome.config);
            assert_eq!(outcome.report, direct.report, "{}", outcome.name);
        }
    }

    #[test]
    fn malformed_event_is_rejected_and_skippable() {
        let engine = Engine::builder().relation(Relation::Dc).build().unwrap();
        let mut session = engine.open();
        let t0 = ThreadId::new(0);
        session
            .feed(Event::new(t0, Op::Write(VarId::new(0))))
            .unwrap();
        // Releasing an unheld lock: rejected, then the stream continues.
        let err = session
            .feed(Event::new(
                t0,
                Op::Release(smarttrack_trace::LockId::new(0)),
            ))
            .unwrap_err();
        assert!(matches!(err, TraceError::ReleaseUnheldLock { .. }));
        session
            .feed(Event::new(ThreadId::new(1), Op::Write(VarId::new(0))))
            .unwrap();
        assert_eq!(session.events(), 2);
        assert_eq!(session.races().len(), 1);
    }

    #[test]
    fn sink_sees_races_as_they_happen() {
        let seen: Rc<RefCell<Vec<(String, EventId)>>> = Rc::default();
        let engine = Engine::builder()
            .relation(Relation::Wdc)
            .fanout([AnalysisConfig::new(Relation::Hb, OptLevel::Fto)])
            .build()
            .unwrap();
        let mut session = engine.open();
        let seen2 = Rc::clone(&seen);
        session.set_sink(move |notice: &RaceNotice<'_>| {
            seen2
                .borrow_mut()
                .push((notice.analysis.to_string(), notice.race.event));
        });

        let trace = paper::figure1();
        let events = trace.events();
        // The WDC race is detected at the last event; before it, silence.
        session.feed_batch(&events[..events.len() - 1]).unwrap();
        assert!(seen.borrow().is_empty());
        session.feed(events[events.len() - 1]).unwrap();
        {
            let seen = seen.borrow();
            assert_eq!(seen.len(), 1);
            assert_eq!(seen[0].0, "SmartTrack-WDC");
            assert_eq!(seen[0].1, EventId::new((events.len() - 1) as u32));
        }
        session.finish();
        assert_eq!(seen.borrow().len(), 1, "finish does not re-deliver");
    }

    #[test]
    fn snapshot_exposes_incremental_state() {
        let engine = Engine::builder().relation(Relation::Dc).build().unwrap();
        let mut session = engine.open();
        let trace = paper::figure1();
        session.feed_batch(&trace.events()[..4]).unwrap();
        let mid = session.snapshot();
        assert_eq!(mid.events, 4);
        assert_eq!(mid.lanes.len(), 1);
        assert!(mid.lanes[0].report.is_empty());
        assert!(mid.lanes[0].footprint_bytes > 0);
        assert!(mid.lanes[0].peak_footprint_bytes >= mid.lanes[0].footprint_bytes / 2);

        session.feed_batch(&trace.events()[4..]).unwrap();
        let end = session.snapshot();
        assert_eq!(end.lanes[0].report.dynamic_count(), 1);
        assert!(end.lanes[0].peak_footprint_bytes >= mid.lanes[0].peak_footprint_bytes);
    }

    #[test]
    fn custom_detector_lanes_are_borrowable() {
        let mut det = crate::SmartTrackDc::new();
        {
            let mut session = Session::from_detector(&mut det);
            session.feed_trace(&paper::figure1()).unwrap();
            assert_eq!(session.races().len(), 1);
            assert!(session.finish().is_empty(), "custom lanes yield no outcome");
        }
        assert_eq!(
            det.report().dynamic_count(),
            1,
            "state survives the session"
        );
    }

    #[test]
    fn sessions_from_one_engine_are_independent() {
        let engine = Engine::builder().relation(Relation::Dc).build().unwrap();
        let mut a = engine.open();
        let mut b = engine.open();
        a.feed_trace(&paper::figure1()).unwrap();
        b.feed_trace(&paper::figure4a()).unwrap();
        assert_eq!(a.finish_one().report.dynamic_count(), 1);
        assert_eq!(b.finish_one().report.dynamic_count(), 0);
    }
}
