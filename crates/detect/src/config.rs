use std::fmt;

use smarttrack_trace::Trace;

use crate::{
    make_detector, Detector, Engine, FtoCaseCounters, OptLevel, Relation, Report, RunSummary,
};

/// Selects one analysis from the paper's Table 1.
///
/// # Examples
///
/// ```
/// use smarttrack_detect::{AnalysisConfig, OptLevel, Relation};
///
/// let cfg = AnalysisConfig::new(Relation::Wcp, OptLevel::SmartTrack);
/// assert_eq!(cfg.to_string(), "ST-WCP");
/// assert!(cfg.is_available());
/// // HB has no SmartTrack variant (no conflicting critical sections to
/// // optimize): an N/A cell.
/// assert!(!AnalysisConfig::new(Relation::Hb, OptLevel::SmartTrack).is_available());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AnalysisConfig {
    /// The relation (Table 1 row).
    pub relation: Relation,
    /// The optimization level (Table 1 column).
    pub level: OptLevel,
    /// Build a constraint graph during analysis ("w/ G"; Unopt DC/WDC only).
    pub graph: bool,
}

impl AnalysisConfig {
    /// Creates a configuration without graph building.
    pub fn new(relation: Relation, level: OptLevel) -> Self {
        AnalysisConfig {
            relation,
            level,
            graph: false,
        }
    }

    /// Enables constraint-graph recording (valid for Unopt DC/WDC).
    pub fn with_graph(mut self) -> Self {
        self.graph = true;
        self
    }

    /// Whether this cell of Table 1 exists.
    pub fn is_available(&self) -> bool {
        make_detector(self.relation, self.level, self.graph).is_some()
    }

    /// Instantiates the detector, or `None` for N/A cells.
    pub fn detector(&self) -> Option<Box<dyn Detector>> {
        make_detector(self.relation, self.level, self.graph)
    }

    /// All eleven valid analyses plus the two "w/ G" variants, in the
    /// paper's Table 1 order.
    pub fn table1() -> Vec<AnalysisConfig> {
        crate::table1_configs()
            .into_iter()
            .map(|(relation, level, graph)| AnalysisConfig {
                relation,
                level,
                graph,
            })
            .collect()
    }

    /// [`AnalysisConfig::table1`] plus this repro's extension rows that are
    /// not cells of the source paper's matrix (the sync-preserving `SyncP`
    /// analysis and its synchronization-reversal refinement `OSR`). The
    /// `list` subcommand and tooling that wants "every runnable analysis"
    /// should use this; Table-1-shaped consumers (the paper-table benches,
    /// `analyze_all`) stay on [`AnalysisConfig::table1`].
    pub fn extended() -> Vec<AnalysisConfig> {
        let mut all = AnalysisConfig::table1();
        all.push(AnalysisConfig::new(Relation::SyncP, OptLevel::Unopt));
        all.push(AnalysisConfig::new(Relation::Osr, OptLevel::Unopt));
        all
    }
}

impl fmt::Display for AnalysisConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let base = match (self.relation, self.level) {
            (Relation::Hb, OptLevel::Epochs) => "FT2".to_string(),
            // The SyncP and OSR rows have one implementation each, not a
            // Table 1 opt column, so they go by the bare relation name.
            (Relation::SyncP, _) => "SyncP".to_string(),
            (Relation::Osr, _) => "OSR".to_string(),
            (r, l) => format!("{l}-{r}"),
        };
        if self.graph {
            write!(f, "{base} w/G")
        } else {
            write!(f, "{base}")
        }
    }
}

/// Error returned when parsing an [`AnalysisConfig`] from a string fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAnalysisConfigError {
    input: String,
    /// A targeted explanation for inputs that name a real analysis but an
    /// unavailable variant of it (e.g. `syncp+g`).
    detail: Option<&'static str>,
}

impl fmt::Display for ParseAnalysisConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(detail) = self.detail {
            return write!(f, "analysis `{}`: {detail}", self.input);
        }
        write!(
            f,
            "unknown analysis `{}` (expected ft2, syncp, osr, or \
             <unopt|fto|st>-<hb|wcp|dc|wdc>, optionally +g for graph recording; \
             st-hb and <unopt-*>+g outside dc/wdc are N/A cells of Table 1)",
            self.input
        )
    }
}

impl std::error::Error for ParseAnalysisConfigError {}

impl std::str::FromStr for AnalysisConfig {
    type Err = ParseAnalysisConfigError;

    /// Parses the paper's table names, case-insensitively: `ft2`,
    /// `unopt-hb`, `fto-wcp`, `st-dc` / `smarttrack-dc`, …; a `+g` suffix
    /// selects the graph-recording ("w/ G") variants. Only cells that exist
    /// in Table 1 parse successfully.
    ///
    /// # Examples
    ///
    /// ```
    /// use smarttrack_detect::{AnalysisConfig, OptLevel, Relation};
    ///
    /// let cfg: AnalysisConfig = "st-wdc".parse()?;
    /// assert_eq!(cfg, AnalysisConfig::new(Relation::Wdc, OptLevel::SmartTrack));
    /// let cfg: AnalysisConfig = "unopt-dc+g".parse()?;
    /// assert!(cfg.graph);
    /// assert!("st-hb".parse::<AnalysisConfig>().is_err()); // N/A cell
    /// # Ok::<(), smarttrack_detect::ParseAnalysisConfigError>(())
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseAnalysisConfigError {
            input: s.to_string(),
            detail: None,
        };
        let mut norm = s.trim().to_ascii_lowercase();
        let mut graph = false;
        for suffix in ["+g", " w/g"] {
            if let Some(stripped) = norm.strip_suffix(suffix) {
                graph = true;
                norm = stripped.trim_end().to_string();
                break;
            }
        }
        let config = if norm == "ft2" {
            AnalysisConfig::new(Relation::Hb, OptLevel::Epochs)
        } else if norm == "syncp" || norm == "sync-preserving" {
            if graph {
                // Fail here with a targeted message rather than via the
                // generic is_available() check, whose error only explains
                // the Table 1 N/A cells.
                return Err(ParseAnalysisConfigError {
                    input: s.to_string(),
                    detail: Some(
                        "syncp has no graph-recording (+g) variant — constraint \
                         graphs belong to the Unopt DC/WDC rows",
                    ),
                });
            }
            AnalysisConfig::new(Relation::SyncP, OptLevel::Unopt)
        } else if norm == "osr" || norm == "sync-reversal" {
            if graph {
                // Same targeted treatment as syncp+g: name the real reason
                // instead of the generic Table 1 N/A explanation.
                return Err(ParseAnalysisConfigError {
                    input: s.to_string(),
                    detail: Some(
                        "osr has no graph-recording (+g) variant — constraint \
                         graphs belong to the Unopt DC/WDC rows",
                    ),
                });
            }
            AnalysisConfig::new(Relation::Osr, OptLevel::Unopt)
        } else {
            let (level, relation) = norm.split_once('-').ok_or_else(err)?;
            let level = match level {
                "unopt" => OptLevel::Unopt,
                "ft2" => OptLevel::Epochs,
                "fto" => OptLevel::Fto,
                "st" | "smarttrack" => OptLevel::SmartTrack,
                _ => return Err(err()),
            };
            let relation = match relation {
                "hb" => Relation::Hb,
                "wcp" => Relation::Wcp,
                "dc" => Relation::Dc,
                "wdc" => Relation::Wdc,
                _ => return Err(err()),
            };
            AnalysisConfig::new(relation, level)
        };
        let config = if graph { config.with_graph() } else { config };
        if config.is_available() {
            Ok(config)
        } else {
            Err(err())
        }
    }
}

/// The result of running one analysis over one event stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalysisOutcome {
    /// Analysis name (as in the paper's tables).
    pub name: String,
    /// The configuration that produced this outcome.
    pub config: AnalysisConfig,
    /// All detected races.
    pub report: Report,
    /// Events processed and peak metadata footprint.
    pub summary: RunSummary,
    /// FTO case frequencies, when the analysis tracks them.
    pub cases: Option<FtoCaseCounters>,
}

/// Runs one analysis over a trace.
///
/// This is the one-shot convenience wrapper over the streaming
/// [`Engine`]/[`crate::Session`] API — equivalent to opening a
/// single-lane session, feeding the whole trace, and finishing. Prefer the
/// session API for incremental ingestion, fan-out over several analyses in
/// one pass, or race callbacks.
///
/// # Panics
///
/// Panics if `config` selects an N/A cell of Table 1 (check
/// [`AnalysisConfig::is_available`] first for dynamic configurations).
pub fn analyze(trace: &Trace, config: AnalysisConfig) -> AnalysisOutcome {
    let engine =
        Engine::for_config(config).unwrap_or_else(|_| panic!("{config} is an N/A cell of Table 1"));
    let mut session = engine.open();
    session
        .feed_trace(trace)
        .expect("a validated Trace re-admits cleanly");
    session.finish_one()
}

/// Runs every Table 1 analysis over the trace — in a *single pass* over the
/// event stream (one fan-out [`crate::Session`] with fourteen lanes), not
/// one pass per analysis.
pub fn analyze_all(trace: &Trace) -> Vec<AnalysisOutcome> {
    let engine = Engine::builder()
        .table1()
        .build()
        .expect("every Table 1 cell is available");
    let mut session = engine.open();
    session
        .feed_trace(trace)
        .expect("a validated Trace re-admits cleanly");
    session.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_detector;
    use smarttrack_trace::paper;

    #[test]
    fn table1_has_fourteen_runnable_configs() {
        // 11 analyses + w/G variants for Unopt-DC and Unopt-WDC, minus the
        // FT2-only Epochs column for predictive relations.
        let configs = AnalysisConfig::table1();
        assert_eq!(configs.len(), 14);
        for cfg in configs {
            assert!(cfg.is_available(), "{cfg}");
        }
    }

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(
            AnalysisConfig::new(Relation::Hb, OptLevel::Epochs).to_string(),
            "FT2"
        );
        assert_eq!(
            AnalysisConfig::new(Relation::Dc, OptLevel::Unopt)
                .with_graph()
                .to_string(),
            "Unopt-DC w/G"
        );
        assert_eq!(
            AnalysisConfig::new(Relation::Wdc, OptLevel::SmartTrack).to_string(),
            "ST-WDC"
        );
    }

    #[test]
    fn parsing_accepts_all_table1_names_and_rejects_na_cells() {
        for cfg in AnalysisConfig::table1() {
            let round_tripped: AnalysisConfig = cfg.to_string().parse().unwrap();
            assert_eq!(round_tripped, cfg, "{cfg}");
        }
        for bad in ["st-hb", "ft2-wcp", "fto-hb+g", "epoch-dc", "wdc", ""] {
            assert!(bad.parse::<AnalysisConfig>().is_err(), "{bad:?}");
        }
        assert_eq!(
            "SmartTrack-DC".parse::<AnalysisConfig>().unwrap(),
            AnalysisConfig::new(Relation::Dc, OptLevel::SmartTrack)
        );
    }

    #[test]
    fn syncp_graph_variant_is_rejected_with_a_targeted_message() {
        for bad in ["syncp+g", "SyncP w/g", "sync-preserving+g"] {
            let err = bad.parse::<AnalysisConfig>().unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("no graph-recording"),
                "{bad:?} should explain the missing +g variant, got: {msg}"
            );
        }
        // The plain name still parses.
        assert!("syncp".parse::<AnalysisConfig>().is_ok());
    }

    #[test]
    fn osr_graph_variant_is_rejected_with_a_targeted_message() {
        for bad in ["osr+g", "OSR w/g", "sync-reversal+g"] {
            let err = bad.parse::<AnalysisConfig>().unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("no graph-recording"),
                "{bad:?} should explain the missing +g variant, got: {msg}"
            );
        }
        assert!("osr".parse::<AnalysisConfig>().is_ok());
    }

    #[test]
    fn extended_rows_display_and_round_trip() {
        let extended = AnalysisConfig::extended();
        assert_eq!(extended.len(), 16, "Table 1 plus SyncP and OSR");
        for cfg in &extended[14..] {
            assert!(cfg.is_available(), "{cfg}");
            let round_tripped: AnalysisConfig = cfg.to_string().parse().unwrap();
            assert_eq!(round_tripped, *cfg, "{cfg}");
        }
        assert_eq!(
            AnalysisConfig::new(Relation::Osr, OptLevel::Unopt).to_string(),
            "OSR"
        );
    }

    #[test]
    fn analyze_all_is_consistent_on_figure3() {
        let outcomes = analyze_all(&paper::figure3());
        assert_eq!(outcomes.len(), 14, "one outcome per Table 1 cell");
        for o in outcomes {
            let expect_race = o.config.relation == Relation::Wdc;
            assert_eq!(
                o.report.dynamic_count() > 0,
                expect_race,
                "{}: figure 3 is a WDC-only (false) race",
                o.name
            );
        }
    }

    #[test]
    fn analyze_matches_direct_detector_run() {
        for trace in [paper::figure1(), paper::figure2()] {
            for config in AnalysisConfig::table1() {
                let outcome = analyze(&trace, config);
                let mut det = config.detector().unwrap();
                let summary = run_detector(det.as_mut(), &trace);
                assert_eq!(outcome.report, *det.report(), "{config}");
                assert_eq!(outcome.summary, summary, "{config}");
                assert_eq!(outcome.name, det.name());
            }
        }
    }

    #[test]
    fn graph_variants_expose_graphs() {
        let cfg = AnalysisConfig::new(Relation::Dc, OptLevel::Unopt).with_graph();
        let mut det = cfg.detector().unwrap();
        run_detector(det.as_mut(), &paper::figure3());
        assert!(det.graph().is_some());
        assert!(!det.graph().unwrap().is_empty());
    }
}
