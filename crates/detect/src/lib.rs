#![warn(missing_docs)]

//! The eleven race-detection analyses evaluated by the SmartTrack paper.
//!
//! This crate implements every cell of the paper's Table 1:
//!
//! | relation | Unopt (w/ or w/o graph) | Epochs | + Ownership | + CCS optimizations |
//! |----------|------------------------|--------|-------------|---------------------|
//! | HB       | [`UnoptHb`]            | [`Ft2`]| [`FtoHb`]   | N/A                 |
//! | WCP      | [`UnoptWcp`]           | —      | [`FtoWcp`]  | [`SmartTrackWcp`]   |
//! | DC       | [`UnoptDc`]            | —      | [`FtoDc`]   | [`SmartTrackDc`]    |
//! | WDC      | [`UnoptWdc`]           | —      | [`FtoWdc`]  | [`SmartTrackWdc`]   |
//!
//! Plus two extension rows beyond the paper's matrix: [`SyncP`], the
//! sync-preserving race predictor of Mathur, Pavlogiannis & Viswanathan
//! (arXiv 2010.16385) — sound by construction (every reported race carries
//! a witness reordering that keeps lock acquisitions in observed order)
//! and strictly more predictive than HB — and [`Osr`], the optimistic
//! synchronization-reversal predictor of Shi, Mathur & Pavlogiannis
//! (arXiv 2401.05642), which additionally permits bounded critical-section
//! reversals (SyncP ⊆ OSR; every report carries a replay-scheduled
//! witness). They are configured as
//! `AnalysisConfig::new(Relation::SyncP, OptLevel::Unopt)` / parsed from
//! `"syncp"` (resp. `Relation::Osr` / `"osr"`), and listed by
//! [`AnalysisConfig::extended`].
//!
//! All detectors implement the incremental [`Detector`] trait. The one
//! event-ingestion code path is the streaming [`Engine`]/[`Session`] API
//! ([`engine`] module): sessions validate the stream, fan any number of
//! analyses out over a single pass, sample peak metadata footprint (the
//! paper's memory-usage metric), and surface races as they are detected
//! (via [`RaceSink`]) rather than only at end-of-stream. [`analyze`] /
//! [`analyze_all`] are one-shot wrappers over it, and [`run_detector`] the
//! low-level whole-trace driver for a single borrowed detector. Races are
//! collected in a [`Report`] that counts both *dynamic* races (one per
//! access event that fails at least one race check, §5.1) and *statically
//! distinct* races (distinct program locations, §5.6).
//!
//! Above the single-stream API sits the corpus layer ([`pool`] module): an
//! [`EnginePool`] schedules many [`BatchJob`]s over a fixed worker pool,
//! one streaming session per job, and aggregates a deterministic
//! [`CorpusReport`] with statically distinct races deduplicated across the
//! whole corpus.
//!
//! # Examples
//!
//! Detect the predictable race of the paper's Figure 1, which HB analysis
//! misses:
//!
//! ```
//! use smarttrack_detect::{run_detector, Detector, FtoHb, SmartTrackDc};
//! use smarttrack_trace::paper;
//!
//! let trace = paper::figure1();
//! let mut hb = FtoHb::new();
//! run_detector(&mut hb, &trace);
//! assert_eq!(hb.report().dynamic_count(), 0);
//!
//! let mut dc = SmartTrackDc::new();
//! run_detector(&mut dc, &trace);
//! assert_eq!(dc.report().dynamic_count(), 1);
//! ```
//!
//! Or stream events through a fan-out [`Session`] — see the [`engine`]
//! module for the full lifecycle.

mod api;
mod common;
mod config;
mod counters;
pub mod engine;
mod graph;
mod intern;
pub mod pool;
mod queues;
mod report;

mod ccs;
mod dc;
mod hb;
mod lockset;
mod osr;
mod syncp;
mod wcp;

pub use api::{
    run_detector, Detector, FootprintSampler, OptLevel, Relation, RunSummary, StreamHint,
};
pub use ccs::{CcsFidelity, CsEntry, CsList};
pub use common::{BarrierRendezvous, LTime, LockVarTable};
pub use config::{analyze, analyze_all, AnalysisConfig, AnalysisOutcome, ParseAnalysisConfigError};
pub use counters::{FtoCase, FtoCaseCounters, HotPathStats};
pub use dc::{FtoDc, FtoWdc, SmartTrackDc, SmartTrackWdc, UnoptDc, UnoptWdc};
pub use engine::{
    Engine, EngineBuilder, EngineError, LaneSnapshot, RaceNotice, RaceSink, Session,
    SessionSnapshot,
};
pub use graph::{ConstraintGraph, EdgeKind};
pub use hb::{Ft2, FtoHb, RoadRunnerFt2, UnoptHb};
pub use lockset::EraserLockset;
pub use pool::{
    worker_count, BatchJob, CorpusAnalysisTotal, CorpusRace, CorpusReport, EnginePool, JobError,
    JobOutcome, JobSuccess, PoolStats,
};
pub use osr::{osr_pair_witness, Osr};
pub use report::{AccessKind, RaceReport, Report};
pub use syncp::{syncp_pair_ideal, SyncP};
pub use wcp::{FtoWcp, SmartTrackWcp, UnoptWcp};

/// Constructs a boxed detector for a (relation, optimization level) pair.
///
/// Returns `None` for the paper's N/A cells (SmartTrack-HB does not exist —
/// HB analysis has no conflicting critical sections to optimize — and "Epochs"
/// without ownership exists only for HB as FastTrack2).
///
/// `with_graph` selects the Unopt "w/ G" variants that additionally build a
/// constraint graph for vindication (only available for DC and WDC, per
/// Table 1).
pub fn make_detector(
    relation: Relation,
    level: OptLevel,
    with_graph: bool,
) -> Option<Box<dyn Detector>> {
    use {OptLevel::*, Relation::*};
    match (relation, level, with_graph) {
        (Hb, Unopt, false) => Some(Box::new(UnoptHb::new())),
        (Hb, Epochs, false) => Some(Box::new(Ft2::new())),
        (Hb, Fto, false) => Some(Box::new(FtoHb::new())),
        (Wcp, Unopt, false) => Some(Box::new(UnoptWcp::new())),
        (Wcp, Fto, false) => Some(Box::new(FtoWcp::new())),
        (Wcp, SmartTrack, false) => Some(Box::new(SmartTrackWcp::new())),
        (Dc, Unopt, g) => Some(Box::new(UnoptDc::with_graph_recording(g))),
        (Dc, Fto, false) => Some(Box::new(FtoDc::new())),
        (Dc, SmartTrack, false) => Some(Box::new(SmartTrackDc::new())),
        (Wdc, Unopt, g) => Some(Box::new(UnoptWdc::with_graph_recording(g))),
        (Wdc, Fto, false) => Some(Box::new(FtoWdc::new())),
        (Wdc, SmartTrack, false) => Some(Box::new(SmartTrackWdc::new())),
        // The sync-preserving row (a repro extension, not a Table 1 cell)
        // has a single implementation; it is addressed as (SyncP, Unopt)
        // and ignores the Table 1 opt columns. Same for its optimistic
        // synchronization-reversal refinement, (Osr, Unopt).
        (SyncP, Unopt, false) => Some(Box::new(syncp::SyncP::new())),
        (Osr, Unopt, false) => Some(Box::new(osr::Osr::new())),
        _ => None,
    }
}

/// All valid `(relation, level, with_graph)` combinations of Table 1, in the
/// paper's presentation order.
pub fn table1_configs() -> Vec<(Relation, OptLevel, bool)> {
    use {OptLevel::*, Relation::*};
    vec![
        (Hb, Unopt, false),
        (Hb, Epochs, false),
        (Hb, Fto, false),
        (Wcp, Unopt, false),
        (Wcp, Fto, false),
        (Wcp, SmartTrack, false),
        (Dc, Unopt, true),
        (Dc, Unopt, false),
        (Dc, Fto, false),
        (Dc, SmartTrack, false),
        (Wdc, Unopt, true),
        (Wdc, Unopt, false),
        (Wdc, Fto, false),
        (Wdc, SmartTrack, false),
    ]
}
