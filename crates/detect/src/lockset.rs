//! Eraser-style lockset analysis — the classic related-work baseline.
//!
//! The paper's §6 contrasts partial-order race detection with "lockset
//! analysis, which detects races that violate a lock set discipline, but
//! inherently reports false races" (Savage et al. 1997). This module
//! implements the Eraser state machine so that claim is checkable in this
//! repository: on executions ordered only by fork/join or by the ordering
//! the predictive relations track, lockset analysis reports races that no
//! HB/WCP/DC/WDC analysis reports and that the exhaustive oracle refutes.
//!
//! [`EraserLockset`] deliberately does *not* implement [`Detector`]: it
//! computes no partial order and belongs to none of the paper's Table 1
//! cells. It mirrors the detector calling convention (`process`, `report`,
//! `footprint_bytes`) so harnesses can run it side by side.
//!
//! [`Detector`]: crate::Detector
//!
//! # Examples
//!
//! Eraser finds the paper's Figure 1 race (no lock protects `x`), but also
//! falsely reports the fork/join-ordered handoff that every happens-before
//! and predictive analysis correctly ignores:
//!
//! ```
//! use smarttrack_detect::EraserLockset;
//! use smarttrack_trace::{paper, Op, ThreadId, TraceBuilder, VarId};
//!
//! let mut eraser = EraserLockset::new();
//! eraser.run(&paper::figure1());
//! assert_eq!(eraser.report().dynamic_count(), 1);
//!
//! let mut b = TraceBuilder::new();
//! let (parent, child) = (ThreadId::new(0), ThreadId::new(1));
//! let x = VarId::new(0);
//! b.push(parent, Op::Write(x))?;
//! b.push(parent, Op::Fork(child))?;
//! b.push(child, Op::Write(x))?; // ordered by the fork: not a race
//! let mut eraser = EraserLockset::new();
//! eraser.run(&b.finish());
//! assert_eq!(eraser.report().dynamic_count(), 1); // false positive
//! # Ok::<(), smarttrack_trace::TraceError>(())
//! ```

use smarttrack_clock::ThreadId;
use smarttrack_trace::{Event, EventId, Loc, LockId, Op, Trace, VarId};

use crate::common::{slot, HeldLocks};
use crate::report::{AccessKind, RaceReport, Report};

/// A candidate lockset: the locks that have protected every access to a
/// variable so far, kept sorted for cheap intersection.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct LockSet(Vec<LockId>);

impl LockSet {
    fn from_held(held: &[LockId]) -> Self {
        let mut locks = held.to_vec();
        locks.sort_unstable();
        locks.dedup();
        LockSet(locks)
    }

    /// Intersects with the locks currently held (`C(x) := C(x) ∩ held`).
    fn intersect_held(&mut self, held: &[LockId]) {
        self.0.retain(|l| held.contains(l));
    }

    fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Eraser's per-variable ownership state machine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
enum VarState {
    /// Never accessed.
    #[default]
    Virgin,
    /// Accessed by a single thread so far; no lockset refinement yet (the
    /// first thread may initialize without locks).
    Exclusive(ThreadId),
    /// Read by multiple threads, never written since becoming shared;
    /// lockset refined but an empty set is not yet reported.
    Shared(LockSet),
    /// Written while shared: an empty lockset is a discipline violation.
    SharedModified(LockSet),
    /// Violation already reported; Eraser reports once per variable.
    Reported,
}

/// Eraser lockset analysis (Savage et al. 1997), the §6 baseline.
///
/// Tracks a candidate lockset per variable and reports a discipline
/// violation when it empties. Not a [`Detector`]: it computes no partial
/// order and sits outside the paper's Table 1 — see the example below for
/// the false positive that distinction buys.
///
/// [`Detector`]: crate::Detector
#[derive(Clone, Debug, Default)]
pub struct EraserLockset {
    held: HeldLocks,
    states: Vec<VarState>,
    report: Report,
}

impl EraserLockset {
    /// Creates the analysis with every variable Virgin.
    pub fn new() -> Self {
        EraserLockset::default()
    }

    /// Processes one event. Lock operations update held-lock state; plain
    /// accesses drive the per-variable state machine. Fork/join and
    /// volatile operations are ignored — Eraser tracks no ordering, which
    /// is exactly where its false positives come from.
    pub fn process(&mut self, id: EventId, event: &Event) {
        match event.op {
            Op::Acquire(m) | Op::AcqWrite(m) => self.held.acquire(event.tid, m),
            Op::AcqRead(m) => self.held.acquire_read(event.tid, m),
            Op::Release(m) => {
                self.held.release(event.tid, m);
            }
            Op::Read(x) => self.access(id, event, x, AccessKind::Read),
            Op::Write(x) => self.access(id, event, x, AccessKind::Write),
            // Wait keeps its monitor held (atomic release-and-reacquire),
            // so the held set is unchanged; a failed trylock changes
            // nothing at all; Eraser tracks no ordering, so notify and
            // barrier operations are ignored like fork/join.
            Op::Fork(_)
            | Op::Join(_)
            | Op::VolatileRead(_)
            | Op::VolatileWrite(_)
            | Op::Wait(..)
            | Op::Notify(_)
            | Op::NotifyAll(_)
            | Op::BarrierEnter(_)
            | Op::BarrierExit(_)
            | Op::TryAcqFail(_) => {}
        }
    }

    /// Runs the analysis over a whole trace.
    pub fn run(&mut self, trace: &Trace) {
        for (id, event) in trace.iter() {
            self.process(id, event);
        }
    }

    /// The discipline violations reported so far (one per variable, at the
    /// access where the candidate lockset first became empty).
    pub fn report(&self) -> &Report {
        &self.report
    }

    /// Approximate live metadata bytes (state machine + locksets).
    pub fn footprint_bytes(&self) -> usize {
        self.states.capacity() * std::mem::size_of::<VarState>()
            + self
                .states
                .iter()
                .map(|s| match s {
                    VarState::Shared(c) | VarState::SharedModified(c) => {
                        c.0.capacity() * std::mem::size_of::<LockId>()
                    }
                    _ => 0,
                })
                .sum::<usize>()
            + self.held.footprint_bytes()
    }

    fn access(&mut self, id: EventId, event: &Event, x: VarId, kind: AccessKind) {
        let t = event.tid;
        // Eraser's rwlock refinement (Savage et al. §2.3): a read is
        // protected by any-mode holds (`locks_held`), a write only by
        // write-mode holds (`write_locks_held`) — a read-mode hold does not
        // exclude concurrent readers of the candidate set's variable.
        let held: Vec<LockId> = self
            .held
            .of(t)
            .iter()
            .filter(|&&(_, w)| w || kind == AccessKind::Read)
            .map(|&(l, _)| l)
            .collect();
        let state = slot(&mut self.states, x.index());
        *state = match std::mem::take(state) {
            VarState::Virgin => VarState::Exclusive(t),
            VarState::Exclusive(owner) if owner == t => VarState::Exclusive(t),
            VarState::Exclusive(_) => {
                // Second thread: start refining from the locks it holds.
                let candidates = LockSet::from_held(&held);
                match kind {
                    AccessKind::Read => VarState::Shared(candidates),
                    AccessKind::Write => {
                        Self::check(&mut self.report, &candidates, id, event.loc, t, x, kind)
                    }
                }
            }
            VarState::Shared(mut candidates) => {
                candidates.intersect_held(&held);
                match kind {
                    // Read-only sharing is allowed even with an empty
                    // lockset (Eraser's read-share refinement).
                    AccessKind::Read => VarState::Shared(candidates),
                    AccessKind::Write => {
                        Self::check(&mut self.report, &candidates, id, event.loc, t, x, kind)
                    }
                }
            }
            VarState::SharedModified(mut candidates) => {
                candidates.intersect_held(&held);
                Self::check(&mut self.report, &candidates, id, event.loc, t, x, kind)
            }
            VarState::Reported => VarState::Reported,
        };
    }

    /// Reports a violation if the candidate set is empty, and returns the
    /// variable's next state.
    fn check(
        report: &mut Report,
        candidates: &LockSet,
        id: EventId,
        loc: Loc,
        t: ThreadId,
        x: VarId,
        kind: AccessKind,
    ) -> VarState {
        if candidates.is_empty() {
            report.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind,
                prior_threads: Vec::new(),
            });
            VarState::Reported
        } else {
            VarState::SharedModified(candidates.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarttrack_trace::{paper, TraceBuilder};

    fn run(trace: &Trace) -> usize {
        let mut eraser = EraserLockset::new();
        eraser.run(trace);
        eraser.report().dynamic_count()
    }

    #[test]
    fn detects_figure1s_unprotected_race() {
        assert_eq!(run(&paper::figure1()), 1);
    }

    #[test]
    fn consistent_lock_discipline_is_silent() {
        // Two threads, every access to x under m: no violation.
        let mut b = TraceBuilder::new();
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let x = VarId::new(0);
        let m = LockId::new(0);
        for &t in &[t0, t1, t0, t1] {
            b.push(t, Op::Acquire(m)).unwrap();
            b.push(t, Op::Write(x)).unwrap();
            b.push(t, Op::Read(x)).unwrap();
            b.push(t, Op::Release(m)).unwrap();
        }
        assert_eq!(run(&b.finish()), 0);
    }

    #[test]
    fn candidate_set_refines_to_the_common_lock() {
        // t0 holds {m, n}; t1 holds {m}: candidate set shrinks to {m} but
        // stays non-empty, so no report.
        let mut b = TraceBuilder::new();
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let x = VarId::new(0);
        let (m, n) = (LockId::new(0), LockId::new(1));
        b.push(t0, Op::Acquire(m)).unwrap();
        b.push(t0, Op::Acquire(n)).unwrap();
        b.push(t0, Op::Write(x)).unwrap();
        b.push(t0, Op::Release(n)).unwrap();
        b.push(t0, Op::Release(m)).unwrap();
        b.push(t1, Op::Acquire(m)).unwrap();
        b.push(t1, Op::Write(x)).unwrap();
        b.push(t1, Op::Release(m)).unwrap();
        let mut eraser = EraserLockset::new();
        eraser.run(&b.finish());
        assert_eq!(eraser.report().dynamic_count(), 0);
        assert_eq!(
            eraser.states[x.index()],
            VarState::SharedModified(LockSet(vec![m]))
        );
    }

    #[test]
    fn fork_join_ordering_is_a_false_positive() {
        // wr(x); fork(u); u: wr(x); join(u); wr(x) — fully ordered, race
        // free (and reported as such by every Detector), but Eraser has no
        // ordering and reports a violation at the child's write.
        let mut b = TraceBuilder::new();
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let x = VarId::new(0);
        b.push(t0, Op::Write(x)).unwrap();
        b.push(t0, Op::Fork(t1)).unwrap();
        b.push(t1, Op::Write(x)).unwrap();
        b.push(t0, Op::Join(t1)).unwrap();
        b.push(t0, Op::Write(x)).unwrap();
        let trace = b.finish();
        assert_eq!(run(&trace), 1);

        // Ground truth and the full analysis matrix agree: no race.
        for relation in crate::Relation::ALL {
            for opt in [crate::OptLevel::Unopt, crate::OptLevel::Fto] {
                if let Some(mut det) = crate::make_detector(relation, opt, false) {
                    crate::run_detector(det.as_mut(), &trace);
                    assert_eq!(
                        det.report().dynamic_count(),
                        0,
                        "{relation}/{opt} must not report the ordered handoff"
                    );
                }
            }
        }
    }

    #[test]
    fn read_only_sharing_is_allowed_until_a_write() {
        // One writer initializes, many lock-free readers: fine (Shared).
        // A later unprotected write makes it a violation.
        let mut b = TraceBuilder::new();
        let x = VarId::new(0);
        b.push(ThreadId::new(0), Op::Write(x)).unwrap();
        b.push(ThreadId::new(1), Op::Read(x)).unwrap();
        b.push(ThreadId::new(2), Op::Read(x)).unwrap();
        let readers_only = b.len();
        b.push(ThreadId::new(0), Op::Write(x)).unwrap();
        let trace = b.finish();

        let mut eraser = EraserLockset::new();
        for (id, event) in trace.iter().take(readers_only) {
            eraser.process(id, event);
        }
        assert_eq!(eraser.report().dynamic_count(), 0, "read sharing tolerated");
        for (id, event) in trace.iter().skip(readers_only) {
            eraser.process(id, event);
        }
        assert_eq!(eraser.report().dynamic_count(), 1, "write while shared");
    }

    #[test]
    fn reports_once_per_variable() {
        let mut b = TraceBuilder::new();
        let x = VarId::new(0);
        for i in 0..6 {
            b.push(ThreadId::new(i % 2), Op::Write(x)).unwrap();
        }
        assert_eq!(run(&b.finish()), 1);
    }

    #[test]
    fn exclusive_owner_may_reaccess_without_locks() {
        let mut b = TraceBuilder::new();
        let x = VarId::new(0);
        for _ in 0..4 {
            b.push(ThreadId::new(0), Op::Write(x)).unwrap();
            b.push(ThreadId::new(0), Op::Read(x)).unwrap();
        }
        assert_eq!(run(&b.finish()), 0);
    }

    #[test]
    fn figure3_is_a_lockset_false_positive_too() {
        // Figure 3 has no predictable race (the oracle proves it; DC's
        // rule (b) suppresses it), but T3's wr(x) holds no lock while T1
        // read x under m: Eraser reports it.
        assert_eq!(run(&paper::figure3()), 1);
    }

    #[test]
    fn misses_the_write_then_read_race_that_hb_reports() {
        // The other half of Eraser's imprecision: a lock-free write followed
        // by a lock-free read from another thread is an HB-race (nothing
        // orders the pair), but Eraser's Exclusive→Shared transition treats
        // it as benign initialization and stays silent.
        let mut b = TraceBuilder::new();
        let x = VarId::new(0);
        b.push(ThreadId::new(0), Op::Write(x)).unwrap();
        b.push(ThreadId::new(1), Op::Read(x)).unwrap();
        let trace = b.finish();
        assert_eq!(run(&trace), 0, "Eraser misses it");

        use crate::Detector as _;
        let mut hb = crate::FtoHb::new();
        crate::run_detector(&mut hb, &trace);
        assert_eq!(hb.report().dynamic_count(), 1, "HB analysis reports it");
    }

    #[test]
    fn rwlock_discipline_splits_read_and_write_locksets() {
        // Writers take the rwlock in write mode, readers in read mode:
        // consistent discipline, no violation.
        let mut b = TraceBuilder::new();
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let x = VarId::new(0);
        let m = LockId::new(0);
        b.push(t0, Op::AcqWrite(m)).unwrap();
        b.push(t0, Op::Write(x)).unwrap();
        b.push(t0, Op::Release(m)).unwrap();
        b.push(t1, Op::AcqRead(m)).unwrap();
        b.push(t1, Op::Read(x)).unwrap();
        b.push(t1, Op::Release(m)).unwrap();
        b.push(t0, Op::AcqWrite(m)).unwrap();
        b.push(t0, Op::Write(x)).unwrap();
        b.push(t0, Op::Release(m)).unwrap();
        assert_eq!(run(&b.finish()), 0, "write-mode writes + read-mode reads");

        // A write under a *read-mode* hold does not count as protected:
        // the write lockset empties and the violation is reported.
        let mut b = TraceBuilder::new();
        b.push(t0, Op::AcqWrite(m)).unwrap();
        b.push(t0, Op::Write(x)).unwrap();
        b.push(t0, Op::Release(m)).unwrap();
        b.push(t1, Op::AcqRead(m)).unwrap();
        b.push(t1, Op::Write(x)).unwrap();
        b.push(t1, Op::Release(m)).unwrap();
        assert_eq!(
            run(&b.finish()),
            1,
            "read-mode hold does not protect writes"
        );
    }

    #[test]
    fn footprint_grows_with_tracked_variables() {
        let mut eraser = EraserLockset::new();
        let before = eraser.footprint_bytes();
        let mut b = TraceBuilder::new();
        for v in 0..64 {
            b.push(ThreadId::new(0), Op::Write(VarId::new(v))).unwrap();
        }
        eraser.run(&b.finish());
        assert!(eraser.footprint_bytes() > before);
    }
}
