//! WCP analyses at all three optimization levels.
//!
//! WCP (weak-causally-precedes, Kini et al. 2017) is the sound predictive
//! relation: it differs from DC by composing with HB instead of PO (§2.4).
//! The analyses therefore track *two* clocks per thread — an HB clock `Ht`
//! and a WCP clock `Pt` — and exploit HB composition in two ways:
//!
//! * release→acquire lock clocks propagate both HB and WCP knowledge
//!   (right-composition with HB);
//! * rule (a) and rule (b) join the *HB* clocks of the earlier releases into
//!   `Pt` (left-composition with HB);
//! * rule (b) needs only per-lock per-acquiring-thread queues instead of
//!   per-pair queues (footnote 6).
//!
//! The race check is `metadata ⊑ Pt` with the current thread's own component
//! compared against `Ht` (conflicting accesses are cross-thread, but own
//! entries must pass trivially — PO is part of neither clock's cross
//! entries).

mod fto;
mod st;
mod unopt;

pub use fto::FtoWcp;
pub use st::SmartTrackWcp;
pub use unopt::UnoptWcp;

use smarttrack_clock::{ClockValue, Epoch, ThreadId, VectorClock};
use smarttrack_trace::{BarrierId, CondId, LockId, VarId};

use crate::common::{
    barrier_table_bytes, barrier_table_resident_bytes, slot, vc_table_bytes,
    vc_table_resident_bytes, BarrierRendezvous,
};

/// Dual HB/WCP clock state shared by the WCP analyses.
#[derive(Clone, Debug, Default)]
pub(crate) struct WcpClocks {
    hb: Vec<VectorClock>,
    wcp: Vec<VectorClock>,
    hb_lock: Vec<VectorClock>,
    wcp_lock: Vec<VectorClock>,
    hb_vol: Vec<VectorClock>,
    /// Per condvar: the join of the notifiers' *HB* clocks (hard edges
    /// absorb the earlier thread's full HB clock into both `Ht` and `Pt`,
    /// like fork and volatile reads).
    hb_cond: Vec<VectorClock>,
    barriers: Vec<BarrierRendezvous>,
    /// Per lock: reader-aggregate HB clock `HRm` — the join of the HB
    /// release times of *read-mode* critical sections. Empty for plain
    /// mutexes.
    hb_read_lock: Vec<VectorClock>,
    /// Per lock: reader-aggregate WCP clock `PRm`.
    wcp_read_lock: Vec<VectorClock>,
}

impl WcpClocks {
    pub fn new() -> Self {
        WcpClocks::default()
    }

    /// The HB clock `Ht`, initializing `Ht(t) = 1` on first use.
    pub fn hb(&mut self, t: ThreadId) -> &mut VectorClock {
        let c = slot(&mut self.hb, t.index());
        if c.get(t) == 0 {
            c.set(t, 1);
        }
        c
    }

    /// The WCP clock `Pt` (own entry is *not* mirrored from `Ht`; WCP does
    /// not include PO).
    pub fn wcp(&mut self, t: ThreadId) -> &mut VectorClock {
        slot(&mut self.wcp, t.index())
    }

    /// Read-only view of `Pt`.
    pub fn wcp_ref(&self, t: ThreadId) -> &VectorClock {
        &self.wcp[t.index()]
    }

    /// `Ht(t)` — the local clock used for epochs and same-epoch checks.
    pub fn local(&mut self, t: ThreadId) -> ClockValue {
        self.hb(t).get(t)
    }

    /// `acq(m)` (exclusive, including write-mode on an rwlock):
    /// `Ht ⊔= Hm ⊔ HRm; Pt ⊔= Pm ⊔ PRm` (right HB composition through the
    /// lock; a writer is HB-after every completed read section), then
    /// increment (predictive analyses increment at acquires, §5.1).
    pub fn acquire(&mut self, t: ThreadId, m: LockId) {
        let hm = slot(&mut self.hb_lock, m.index()).clone();
        let pm = slot(&mut self.wcp_lock, m.index()).clone();
        let hrm = slot(&mut self.hb_read_lock, m.index()).clone();
        let prm = slot(&mut self.wcp_read_lock, m.index()).clone();
        let ht = self.hb(t);
        ht.join(&hm);
        ht.join(&hrm);
        let pt = self.wcp(t);
        pt.join(&pm);
        pt.join(&prm);
        self.increment(t);
    }

    /// `acqr(m)` (read mode): `Ht ⊔= Hm; Pt ⊔= Pm` only — a reader is
    /// ordered after the last write release but not after other readers.
    pub fn acquire_read(&mut self, t: ThreadId, m: LockId) {
        let hm = slot(&mut self.hb_lock, m.index()).clone();
        let pm = slot(&mut self.wcp_lock, m.index()).clone();
        self.hb(t).join(&hm);
        self.wcp(t).join(&pm);
        self.increment(t);
    }

    /// Publishes `Hm ← Ht; Pm ← Pt` at `rel(m)` (after rule (b) consumption)
    /// and increments.
    pub fn release_publish(&mut self, t: ThreadId, m: LockId) {
        let ht = self.hb(t).clone();
        let pt = self.wcp(t).clone();
        slot(&mut self.hb_lock, m.index()).assign(&ht);
        slot(&mut self.wcp_lock, m.index()).assign(&pt);
        self.increment(t);
    }

    /// Publishes a *read-mode* release: joins into the reader aggregates
    /// (`HRm ⊔= Ht; PRm ⊔= Pt`) instead of assigning the exclusive lock
    /// clocks — assignment would let one reader's release erase another's.
    pub fn release_publish_read(&mut self, t: ThreadId, m: LockId) {
        let ht = self.hb(t).clone();
        let pt = self.wcp(t).clone();
        slot(&mut self.hb_read_lock, m.index()).join(&ht);
        slot(&mut self.wcp_read_lock, m.index()).join(&pt);
        self.increment(t);
    }

    /// `Ht(t) += 1`.
    pub fn increment(&mut self, t: ThreadId) {
        self.hb(t).increment(t);
    }

    /// Fork: hard edge — the child's HB *and* WCP clocks absorb the parent's
    /// full HB clock (everything HB-before the fork is ordered before the
    /// child in every relation, §5.1).
    pub fn fork(&mut self, t: ThreadId, u: ThreadId) {
        let ht = self.hb(t).clone();
        self.hb(u).join(&ht);
        self.wcp(u).join(&ht);
        self.increment(t);
    }

    /// Join: hard edge from the child's last event.
    pub fn join(&mut self, t: ThreadId, u: ThreadId) {
        let hu = self.hb(u).clone();
        self.hb(t).join(&hu);
        self.wcp(t).join(&hu);
        self.increment(t);
    }

    /// Volatile read: hard edge from the last volatile write.
    pub fn volatile_read(&mut self, t: ThreadId, v: VarId) {
        let hv = slot(&mut self.hb_vol, v.index()).clone();
        self.hb(t).join(&hv);
        self.wcp(t).join(&hv);
        self.increment(t);
    }

    /// Volatile write: hard edge plus publication.
    pub fn volatile_write(&mut self, t: ThreadId, v: VarId) {
        let hv = slot(&mut self.hb_vol, v.index()).clone();
        self.hb(t).join(&hv);
        self.wcp(t).join(&hv);
        let ht = self.hb(t).clone();
        slot(&mut self.hb_vol, v.index()).assign(&ht);
        self.increment(t);
    }

    /// `ntf(c)` / `nfa(c)`: publish-only hard edge — the notifier's HB
    /// clock joins the condvar clock; notifies do not absorb it (two
    /// notifiers are not thereby ordered with each other).
    pub fn notify(&mut self, t: ThreadId, c: CondId) {
        let ht = self.hb(t).clone();
        slot(&mut self.hb_cond, c.index()).join(&ht);
        self.increment(t);
    }

    /// The condvar-ordering half of `wait(c, m)`: a hard edge from the
    /// notifies seen so far (`Ht ⊔= Nc; Pt ⊔= Nc`). The callers compose
    /// the full wait as release(m) → `wait_absorb` → acquire(m), so the
    /// monitor's release/acquire machinery (rule (b) queues, CCS
    /// bookkeeping) runs exactly as for an explicit release and acquire.
    pub fn wait_absorb(&mut self, t: ThreadId, c: CondId) {
        let nc = slot(&mut self.hb_cond, c.index()).clone();
        self.hb(t).join(&nc);
        self.wcp(t).join(&nc);
    }

    /// `bent(b)`: publish the HB clock into the round's rendezvous clock.
    pub fn barrier_enter(&mut self, t: ThreadId, b: BarrierId) {
        let ht = self.hb(t).clone();
        slot(&mut self.barriers, b.index()).enter(&ht);
        self.increment(t);
    }

    /// `bext(b)`: hard edge from every enter of the round.
    pub fn barrier_exit(&mut self, t: ThreadId, b: BarrierId) {
        let open = slot(&mut self.barriers, b.index()).exit().clone();
        self.hb(t).join(&open);
        self.wcp(t).join(&open);
        self.increment(t);
    }

    /// Approximate heap bytes (exact: includes per-clock heap spill).
    pub fn footprint_bytes(&self) -> usize {
        vc_table_bytes(&self.hb)
            + vc_table_bytes(&self.wcp)
            + vc_table_bytes(&self.hb_lock)
            + vc_table_bytes(&self.wcp_lock)
            + vc_table_bytes(&self.hb_vol)
            + vc_table_bytes(&self.hb_cond)
            + barrier_table_bytes(&self.barriers)
            + vc_table_bytes(&self.hb_read_lock)
            + vc_table_bytes(&self.wcp_read_lock)
    }

    /// Cheap resident bytes (capacities only, O(1)).
    pub fn resident_bytes(&self) -> usize {
        vc_table_resident_bytes(&self.hb)
            + vc_table_resident_bytes(&self.wcp)
            + vc_table_resident_bytes(&self.hb_lock)
            + vc_table_resident_bytes(&self.wcp_lock)
            + vc_table_resident_bytes(&self.hb_vol)
            + vc_table_resident_bytes(&self.hb_cond)
            + barrier_table_resident_bytes(&self.barriers)
            + vc_table_resident_bytes(&self.hb_read_lock)
            + vc_table_resident_bytes(&self.wcp_read_lock)
    }

    /// Pre-sizes the clock tables from a [`crate::StreamHint`] (clamped,
    /// see [`crate::StreamHint::presize`]).
    pub fn reserve(&mut self, hint: &crate::StreamHint) {
        use crate::StreamHint;
        self.hb
            .reserve(StreamHint::presize(hint.threads, self.hb.len()));
        self.wcp
            .reserve(StreamHint::presize(hint.threads, self.wcp.len()));
        self.hb_lock
            .reserve(StreamHint::presize(hint.locks, self.hb_lock.len()));
        self.wcp_lock
            .reserve(StreamHint::presize(hint.locks, self.wcp_lock.len()));
        self.hb_vol
            .reserve(StreamHint::presize(hint.volatiles, self.hb_vol.len()));
        self.hb_cond
            .reserve(StreamHint::presize(hint.condvars, self.hb_cond.len()));
        self.barriers
            .reserve(StreamHint::presize(hint.barriers, self.barriers.len()));
    }
}

/// The WCP ordering check for an epoch `c@u` against thread `t`'s clocks:
/// own-thread entries are PO-ordered (compared against `Ht(t)`), cross-thread
/// entries against `Pt(u)`.
#[inline]
pub(crate) fn wcp_epoch_ordered(e: Epoch, t: ThreadId, h_own: ClockValue, p: &VectorClock) -> bool {
    if e.is_none() {
        return true;
    }
    if e.tid() == t {
        e.clock() <= h_own
    } else {
        e.clock() <= p.get(e.tid())
    }
}

/// Threads whose recorded accesses in `meta` are *not* WCP-ordered before the
/// current access (the racing threads).
pub(crate) fn wcp_racing_threads(
    meta: &VectorClock,
    t: ThreadId,
    h_own: ClockValue,
    p: &VectorClock,
) -> Vec<ThreadId> {
    meta.iter_nonzero()
        .filter(|&(u, c)| if u == t { c > h_own } else { c > p.get(u) })
        .map(|(u, _)| u)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn wcp_clock_does_not_mirror_po() {
        let mut c = WcpClocks::new();
        c.hb(t(0)).set(t(0), 5);
        assert_eq!(c.wcp(t(0)).get(t(0)), 0, "Pt must not include own PO");
    }

    #[test]
    fn lock_transfer_carries_wcp_knowledge() {
        let mut c = WcpClocks::new();
        let m = LockId::new(0);
        c.wcp(t(0)).set(t(2), 9);
        c.release_publish(t(0), m);
        c.acquire(t(1), m);
        assert_eq!(
            c.wcp(t(1)).get(t(2)),
            9,
            "WCP-before-release composes through HB to the next acquire"
        );
    }

    #[test]
    fn epoch_check_uses_hb_for_own_thread() {
        let p = VectorClock::new();
        assert!(wcp_epoch_ordered(Epoch::new(t(0), 4), t(0), 5, &p));
        assert!(!wcp_epoch_ordered(Epoch::new(t(1), 1), t(0), 5, &p));
        assert!(wcp_epoch_ordered(Epoch::NONE, t(0), 0, &p));
    }

    #[test]
    fn racing_threads_excludes_ordered_entries() {
        let meta: VectorClock = [(t(0), 3), (t(1), 2), (t(2), 8)].into_iter().collect();
        let p: VectorClock = [(t(1), 2)].into_iter().collect();
        // current thread t0 with h_own = 3: own entry ordered; t1 ordered via
        // P; t2 races.
        assert_eq!(wcp_racing_threads(&meta, t(0), 3, &p), vec![t(2)]);
    }
}
