//! Unoptimized WCP analysis (Kini et al. 2017): vector-clock last-access
//! metadata, per-(lock, variable) CCS tables storing HB release times, and
//! per-lock per-thread rule (b) queues.

use smarttrack_clock::{ThreadId, VectorClock};
use smarttrack_trace::{Event, EventId, Loc, LockId, Op, VarId};

use crate::common::{
    slot, vc_table_bytes, vc_table_resident_bytes, HeldLocks, LockVarTable, ReadSectionTable,
};
use crate::counters::PathCounters;
use crate::queues::WcpRuleBQueues;
use crate::report::{AccessKind, RaceReport, Report};
use crate::wcp::{wcp_racing_threads, WcpClocks};
use crate::{Detector, HotPathStats, OptLevel, Relation};

/// Unoptimized WCP analysis (`Unopt-WCP` in the paper's tables).
///
/// # Examples
///
/// ```
/// use smarttrack_detect::{run_detector, Detector, UnoptWcp};
/// use smarttrack_trace::paper;
///
/// let mut det = UnoptWcp::new();
/// run_detector(&mut det, &paper::figure1());
/// assert_eq!(det.report().dynamic_count(), 1, "figure 1 is a WCP-race");
///
/// let mut det = UnoptWcp::new();
/// run_detector(&mut det, &paper::figure2());
/// assert!(det.report().is_empty(), "figure 2 is not a WCP-race");
/// ```
#[derive(Clone, Debug, Default)]
pub struct UnoptWcp {
    clocks: WcpClocks,
    held: HeldLocks,
    lockvar: LockVarTable,
    read_sections: ReadSectionTable,
    queues: WcpRuleBQueues,
    write_vc: Vec<VectorClock>,
    read_vc: Vec<VectorClock>,
    report: Report,
    paths: PathCounters,
}

impl UnoptWcp {
    /// Creates the analysis with empty state.
    pub fn new() -> Self {
        UnoptWcp::default()
    }

    /// Diagnostic view of the WCP clock of `t` (for tests).
    pub fn wcp_clock(&self, t: ThreadId) -> &VectorClock {
        self.clocks.wcp_ref(t)
    }

    /// Rule (a): join the HB release times of prior conflicting critical
    /// sections into `Pt` (left HB composition). Rwlock gating: prior
    /// *read-mode* section times (`Lr_r`/`Lw_r`) apply only when the current
    /// hold is write-mode — a read section never conflicts with another read
    /// section, only with write-involved pairs.
    fn rule_a(&mut self, t: ThreadId, x: VarId, p: &mut VectorClock, write: bool) {
        for &(m, held_write) in self.held.of(t) {
            if write {
                if let Some(lt) = self.lockvar.read_time(m, x) {
                    p.join(&lt.clock);
                }
            }
            if let Some(lt) = self.lockvar.write_time(m, x) {
                p.join(&lt.clock);
            }
            if !self.read_sections.is_empty() && held_write {
                if write {
                    if let Some(lt) = self.read_sections.read_time(m, x) {
                        p.join(&lt.clock);
                    }
                }
                if let Some(lt) = self.read_sections.write_time(m, x) {
                    p.join(&lt.clock);
                }
            }
            if held_write {
                if write {
                    self.lockvar.mark_write(m, x);
                } else {
                    self.lockvar.mark_read(m, x);
                }
            } else if write {
                self.read_sections.mark_write(t, m, x);
            } else {
                self.read_sections.mark_read(t, m, x);
            }
        }
    }

    fn read(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let h_own = self.clocks.local(t);
        let rx = slot(&mut self.read_vc, x.index());
        if rx.get(t) == h_own && h_own != 0 {
            self.paths.fast += 1;
            return;
        }
        self.paths.slow += 1;
        let mut p = self.clocks.wcp(t).clone();
        self.rule_a(t, x, &mut p, false);
        let wx = slot(&mut self.write_vc, x.index());
        let prior = wcp_racing_threads(wx, t, h_own, &p);
        slot(&mut self.read_vc, x.index()).set(t, h_own);
        self.clocks.wcp(t).assign(&p);
        if !prior.is_empty() {
            self.report.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Read,
                prior_threads: prior,
            });
        }
    }

    fn write(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let h_own = self.clocks.local(t);
        let wx = slot(&mut self.write_vc, x.index());
        if wx.get(t) == h_own && h_own != 0 {
            self.paths.fast += 1;
            return;
        }
        self.paths.slow += 1;
        let mut p = self.clocks.wcp(t).clone();
        self.rule_a(t, x, &mut p, true);
        let wx = slot(&mut self.write_vc, x.index());
        let mut prior = wcp_racing_threads(wx, t, h_own, &p);
        wx.set(t, h_own);
        let rx = slot(&mut self.read_vc, x.index());
        for u in wcp_racing_threads(rx, t, h_own, &p) {
            if !prior.contains(&u) {
                prior.push(u);
            }
        }
        self.clocks.wcp(t).assign(&p);
        if !prior.is_empty() {
            self.report.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Write,
                prior_threads: prior,
            });
        }
    }

    fn acquire(&mut self, t: ThreadId, m: LockId) {
        // Enqueue the acquire's local HB time before the clock increment
        // performed inside `acquire`.
        let local = self.clocks.hb(t).get(t);
        self.queues.on_acquire(m, t, local, true);
        self.clocks.acquire(t, m);
        self.held.acquire(t, m);
    }

    fn acquire_read(&mut self, t: ThreadId, m: LockId) {
        let local = self.clocks.hb(t).get(t);
        self.queues.on_acquire(m, t, local, false);
        self.clocks.acquire_read(t, m);
        self.held.acquire_read(t, m);
        self.read_sections.open(t, m);
    }

    fn release(&mut self, id: EventId, t: ThreadId, m: LockId) {
        let write_mode = self.held.release(t, m);
        let mut p = self.clocks.wcp(t).clone();
        self.queues.consume(m, t, &mut p, write_mode, |_| {});
        self.clocks.wcp(t).assign(&p);
        let hb = self.clocks.hb(t).clone();
        self.queues.on_release_publish(m, t, &hb, id);
        if write_mode {
            self.lockvar.on_release(t, m, &hb, id);
            self.clocks.release_publish(t, m);
        } else {
            self.read_sections.close(t, m, &hb, id);
            self.clocks.release_publish_read(t, m);
        }
    }
}

impl Detector for UnoptWcp {
    fn name(&self) -> &'static str {
        "Unopt-WCP"
    }

    fn relation(&self) -> Relation {
        Relation::Wcp
    }

    fn opt_level(&self) -> OptLevel {
        OptLevel::Unopt
    }

    fn begin_stream(&mut self, hint: crate::StreamHint) {
        self.clocks.reserve(&hint);
        if let Some(locks) = hint.locks {
            self.lockvar.reserve_locks(locks);
        }
        self.write_vc
            .reserve(crate::StreamHint::presize(hint.vars, self.write_vc.len()));
        self.read_vc
            .reserve(crate::StreamHint::presize(hint.vars, self.read_vc.len()));
    }

    fn process(&mut self, id: EventId, event: &Event) {
        let t = event.tid;
        match event.op {
            Op::Read(x) => self.read(id, t, x, event.loc),
            Op::Write(x) => self.write(id, t, x, event.loc),
            Op::Acquire(m) | Op::AcqWrite(m) => self.acquire(t, m),
            Op::AcqRead(m) => self.acquire_read(t, m),
            Op::Release(m) => self.release(id, t, m),
            // A failed trylock establishes no ordering in any direction.
            Op::TryAcqFail(_) => {}
            Op::Fork(u) => self.clocks.fork(t, u),
            Op::Join(u) => self.clocks.join(t, u),
            Op::VolatileRead(v) => self.clocks.volatile_read(t, v),
            Op::VolatileWrite(v) => self.clocks.volatile_write(t, v),
            Op::Wait(c, m) => {
                // Wait is an atomic release-and-reacquire of the monitor
                // with the condvar hard edge in between, composed from this
                // detector's own release/acquire machinery (rule (a)/(b)
                // bookkeeping runs exactly as for explicit rel/acq).
                self.release(id, t, m);
                self.clocks.wait_absorb(t, c);
                self.acquire(t, m);
            }
            Op::Notify(c) | Op::NotifyAll(c) => self.clocks.notify(t, c),
            Op::BarrierEnter(b) => self.clocks.barrier_enter(t, b),
            Op::BarrierExit(b) => self.clocks.barrier_exit(t, b),
        }
    }

    fn report(&self) -> &Report {
        &self.report
    }

    fn footprint_bytes(&self) -> usize {
        self.clocks.footprint_bytes()
            + self.held.footprint_bytes()
            + self.lockvar.footprint_bytes()
            + self.read_sections.footprint_bytes()
            + self.queues.footprint_bytes()
            + vc_table_bytes(&self.write_vc)
            + vc_table_bytes(&self.read_vc)
            + self.report.footprint_bytes()
    }

    fn state_bytes(&self) -> usize {
        self.clocks.resident_bytes()
            + self.held.footprint_bytes()
            + self.lockvar.resident_bytes()
            + self.read_sections.resident_bytes()
            + self.queues.resident_bytes()
            + vc_table_resident_bytes(&self.write_vc)
            + vc_table_resident_bytes(&self.read_vc)
            + self.report.footprint_bytes()
    }

    fn hot_path_stats(&self) -> HotPathStats {
        HotPathStats {
            fast_hits: self.paths.fast,
            slow_hits: self.paths.slow,
            state_bytes: self.state_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_detector, UnoptDc, UnoptHb};
    use smarttrack_trace::{gen::RandomTraceSpec, paper, LockId, Trace, TraceBuilder};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }

    fn wcp_races(tr: &Trace) -> Report {
        let mut det = UnoptWcp::new();
        run_detector(&mut det, tr);
        det.report().clone()
    }

    #[test]
    fn figure1_is_a_wcp_race() {
        assert_eq!(wcp_races(&paper::figure1()).dynamic_count(), 1);
    }

    #[test]
    fn figure2_is_ordered_by_hb_composition() {
        assert!(wcp_races(&paper::figure2()).is_empty());
    }

    #[test]
    fn figure3_is_ordered_by_wcp_rule_b() {
        assert!(wcp_races(&paper::figure3()).is_empty());
    }

    #[test]
    fn figure4_traces_have_no_wcp_races() {
        for f in [
            paper::figure4a(),
            paper::figure4b(),
            paper::figure4c(),
            paper::figure4d(),
        ] {
            assert!(wcp_races(&f).is_empty());
        }
    }

    #[test]
    fn conflicting_critical_sections_order_in_wcp() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Acquire(m(0))).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap();
        b.push(t(1), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        assert!(wcp_races(&b.finish()).is_empty());
    }

    #[test]
    fn race_set_is_between_hb_and_dc() {
        // HB-races ⊆ WCP-races ⊆ DC-races, checked on random traces by
        // comparing which events detect races.
        for seed in 0..40 {
            let tr = RandomTraceSpec {
                events: 250,
                threads: 3,
                vars: 5,
                locks: 3,
                ..RandomTraceSpec::default()
            }
            .generate(seed);
            let mut hb = UnoptHb::new();
            let mut wcp = UnoptWcp::new();
            let mut dc = UnoptDc::new();
            run_detector(&mut hb, &tr);
            run_detector(&mut wcp, &tr);
            run_detector(&mut dc, &tr);
            // Compare only up to the first WCP race: beyond the first race,
            // metadata updates may legitimately diverge (§5.6).
            let hb_first = hb.report().first_race_event();
            let wcp_first = wcp.report().first_race_event();
            let dc_first = dc.report().first_race_event();
            if let Some(h) = hb_first {
                let w = wcp_first.expect("HB-race implies WCP-race (seed)");
                assert!(w <= h, "WCP detects no later than HB (seed {seed})");
            }
            if let Some(w) = wcp_first {
                let d = dc_first.expect("WCP-race implies DC-race");
                assert!(d <= w, "DC detects no later than WCP (seed {seed})");
            }
        }
    }
}
