//! FTO-WCP analysis: epoch + ownership optimizations applied to WCP
//! (Algorithm 2's structure with the WCP clock rules of this module's
//! parent).

use smarttrack_clock::{Epoch, ReadMeta, SameEpoch, ThreadId, VectorClock};
use smarttrack_trace::{Event, EventId, Loc, LockId, Op, VarId};

use crate::common::{slot, HeldLocks, LockVarTable, ReadSectionTable};
use crate::counters::{FtoCase, FtoCaseCounters};
use crate::queues::WcpRuleBQueues;
use crate::report::{AccessKind, RaceReport, Report};
use crate::wcp::{wcp_epoch_ordered, WcpClocks};
use crate::{Detector, OptLevel, Relation};

#[derive(Clone, Debug, Default)]
struct VarState {
    write: Epoch,
    read: ReadMeta,
}

/// FTO-WCP analysis (`FTO-WCP` in the paper's tables).
///
/// Epochs record HB-local times; ordering checks compare cross-thread
/// entries against the WCP clock and own entries against the HB clock.
#[derive(Clone, Debug, Default)]
pub struct FtoWcp {
    clocks: WcpClocks,
    held: HeldLocks,
    lockvar: LockVarTable,
    read_sections: ReadSectionTable,
    queues: WcpRuleBQueues,
    vars: Vec<VarState>,
    report: Report,
    counters: FtoCaseCounters,
}

impl FtoWcp {
    /// Creates the analysis with empty state.
    pub fn new() -> Self {
        FtoWcp::default()
    }

    /// Rwlock gating: prior *read-mode* section times apply only when the
    /// current hold is write-mode (read/read section pairs never conflict).
    fn rule_a(&mut self, t: ThreadId, x: VarId, p: &mut VectorClock, write: bool) {
        for &(m, held_write) in self.held.of(t) {
            if write {
                if let Some(lt) = self.lockvar.read_time(m, x) {
                    p.join(&lt.clock);
                }
            }
            if let Some(lt) = self.lockvar.write_time(m, x) {
                p.join(&lt.clock);
            }
            if !self.read_sections.is_empty() && held_write {
                if write {
                    if let Some(lt) = self.read_sections.read_time(m, x) {
                        p.join(&lt.clock);
                    }
                }
                if let Some(lt) = self.read_sections.write_time(m, x) {
                    p.join(&lt.clock);
                }
            }
            if held_write {
                self.lockvar.mark_read(m, x);
                if write {
                    self.lockvar.mark_write(m, x);
                }
            } else {
                self.read_sections.mark_read(t, m, x);
                if write {
                    self.read_sections.mark_write(t, m, x);
                }
            }
        }
    }

    fn write(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let h_own = self.clocks.local(t);
        let e = Epoch::new(t, h_own);
        if slot(&mut self.vars, x.index()).write == e {
            self.counters.hit(FtoCase::WriteSameEpoch);
            return;
        }
        let mut p = self.clocks.wcp(t).clone();
        self.rule_a(t, x, &mut p, true);
        let vs = slot(&mut self.vars, x.index());
        let mut prior: Vec<ThreadId> = Vec::new();
        match &vs.read {
            ReadMeta::Epoch(r) if r.is_owned_by(t) => {
                self.counters.hit(FtoCase::WriteOwned);
            }
            ReadMeta::Epoch(r) => {
                self.counters.hit(FtoCase::WriteExclusive);
                if !wcp_epoch_ordered(*r, t, h_own, &p) {
                    prior.push(r.tid());
                }
            }
            ReadMeta::Vc(vc) => {
                self.counters.hit(FtoCase::WriteShared);
                for (u, c) in vc.iter_nonzero() {
                    let ordered = if u == t { c <= h_own } else { c <= p.get(u) };
                    if !ordered {
                        prior.push(u);
                    }
                }
            }
        }
        vs.write = e;
        vs.read = ReadMeta::Epoch(e);
        self.clocks.wcp(t).assign(&p);
        if !prior.is_empty() {
            self.report.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Write,
                prior_threads: prior,
            });
        }
    }

    fn read(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let h_own = self.clocks.local(t);
        let e = Epoch::new(t, h_own);
        match slot(&mut self.vars, x.index()).read.same_epoch(t, h_own) {
            Some(SameEpoch::Exclusive) => {
                self.counters.hit(FtoCase::ReadSameEpoch);
                return;
            }
            Some(SameEpoch::Shared) => {
                self.counters.hit(FtoCase::SharedSameEpoch);
                return;
            }
            None => {}
        }
        let mut p = self.clocks.wcp(t).clone();
        self.rule_a(t, x, &mut p, false);
        let vs = slot(&mut self.vars, x.index());
        let mut race_with_write = false;
        match &mut vs.read {
            ReadMeta::Epoch(r) if r.is_owned_by(t) => {
                self.counters.hit(FtoCase::ReadOwned);
                vs.read = ReadMeta::Epoch(e);
            }
            ReadMeta::Epoch(r) => {
                if wcp_epoch_ordered(*r, t, h_own, &p) {
                    self.counters.hit(FtoCase::ReadExclusive);
                    vs.read = ReadMeta::Epoch(e);
                } else {
                    self.counters.hit(FtoCase::ReadShare);
                    race_with_write = !wcp_epoch_ordered(vs.write, t, h_own, &p);
                    vs.read.share(e);
                }
            }
            ReadMeta::Vc(vc) => {
                if vc.get(t) != 0 {
                    self.counters.hit(FtoCase::ReadSharedOwned);
                    vc.set(t, h_own);
                } else {
                    self.counters.hit(FtoCase::ReadShared);
                    race_with_write = !wcp_epoch_ordered(vs.write, t, h_own, &p);
                    vc.set(t, h_own);
                }
            }
        }
        let write_tid = (!vs.write.is_none()).then(|| vs.write.tid());
        self.clocks.wcp(t).assign(&p);
        if race_with_write {
            self.report.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Read,
                prior_threads: write_tid.into_iter().collect(),
            });
        }
    }

    fn acquire(&mut self, t: ThreadId, m: LockId) {
        let local = self.clocks.hb(t).get(t);
        self.queues.on_acquire(m, t, local, true);
        self.clocks.acquire(t, m);
        self.held.acquire(t, m);
    }

    fn acquire_read(&mut self, t: ThreadId, m: LockId) {
        let local = self.clocks.hb(t).get(t);
        self.queues.on_acquire(m, t, local, false);
        self.clocks.acquire_read(t, m);
        self.held.acquire_read(t, m);
        self.read_sections.open(t, m);
    }

    fn release(&mut self, id: EventId, t: ThreadId, m: LockId) {
        let write_mode = self.held.release(t, m);
        let mut p = self.clocks.wcp(t).clone();
        self.queues.consume(m, t, &mut p, write_mode, |_| {});
        self.clocks.wcp(t).assign(&p);
        let hb = self.clocks.hb(t).clone();
        self.queues.on_release_publish(m, t, &hb, id);
        if write_mode {
            self.lockvar.on_release(t, m, &hb, id);
            self.clocks.release_publish(t, m);
        } else {
            self.read_sections.close(t, m, &hb, id);
            self.clocks.release_publish_read(t, m);
        }
    }
}

impl Detector for FtoWcp {
    fn name(&self) -> &'static str {
        "FTO-WCP"
    }

    fn relation(&self) -> Relation {
        Relation::Wcp
    }

    fn opt_level(&self) -> OptLevel {
        OptLevel::Fto
    }

    fn begin_stream(&mut self, hint: crate::StreamHint) {
        self.clocks.reserve(&hint);
        if let Some(locks) = hint.locks {
            self.lockvar.reserve_locks(locks);
        }
        self.vars
            .reserve(crate::StreamHint::presize(hint.vars, self.vars.len()));
    }

    fn process(&mut self, id: EventId, event: &Event) {
        let t = event.tid;
        match event.op {
            Op::Read(x) => self.read(id, t, x, event.loc),
            Op::Write(x) => self.write(id, t, x, event.loc),
            Op::Acquire(m) | Op::AcqWrite(m) => self.acquire(t, m),
            Op::AcqRead(m) => self.acquire_read(t, m),
            Op::Release(m) => self.release(id, t, m),
            // A failed trylock establishes no ordering in any direction.
            Op::TryAcqFail(_) => {}
            Op::Fork(u) => self.clocks.fork(t, u),
            Op::Join(u) => self.clocks.join(t, u),
            Op::VolatileRead(v) => self.clocks.volatile_read(t, v),
            Op::VolatileWrite(v) => self.clocks.volatile_write(t, v),
            Op::Wait(c, m) => {
                // Wait is an atomic release-and-reacquire of the monitor
                // with the condvar hard edge in between, composed from this
                // detector's own release/acquire machinery (rule (a)/(b)
                // bookkeeping runs exactly as for explicit rel/acq).
                self.release(id, t, m);
                self.clocks.wait_absorb(t, c);
                self.acquire(t, m);
            }
            Op::Notify(c) | Op::NotifyAll(c) => self.clocks.notify(t, c),
            Op::BarrierEnter(b) => self.clocks.barrier_enter(t, b),
            Op::BarrierExit(b) => self.clocks.barrier_exit(t, b),
        }
    }

    fn report(&self) -> &Report {
        &self.report
    }

    fn footprint_bytes(&self) -> usize {
        self.clocks.footprint_bytes()
            + self.held.footprint_bytes()
            + self.lockvar.footprint_bytes()
            + self.read_sections.footprint_bytes()
            + self.queues.footprint_bytes()
            + self.vars.capacity() * std::mem::size_of::<VarState>()
            + self
                .vars
                .iter()
                .map(|v| v.read.footprint_bytes())
                .sum::<usize>()
            + self.report.footprint_bytes()
    }

    fn state_bytes(&self) -> usize {
        self.clocks.resident_bytes()
            + self.held.footprint_bytes()
            + self.lockvar.resident_bytes()
            + self.read_sections.resident_bytes()
            + self.queues.resident_bytes()
            + self.vars.capacity() * std::mem::size_of::<VarState>()
            + self.report.footprint_bytes()
    }

    fn case_counters(&self) -> Option<&FtoCaseCounters> {
        Some(&self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_detector, UnoptWcp};
    use smarttrack_trace::{gen::RandomTraceSpec, paper, Trace};

    fn first_race<D: Detector>(mut det: D, tr: &Trace) -> Option<EventId> {
        run_detector(&mut det, tr);
        det.report().first_race_event()
    }

    #[test]
    fn figures_match_unopt_wcp() {
        for (name, tr) in paper::all_figures() {
            assert_eq!(
                first_race(FtoWcp::new(), &tr),
                first_race(UnoptWcp::new(), &tr),
                "FTO-WCP vs Unopt-WCP on {name}"
            );
        }
    }

    #[test]
    fn random_traces_first_race_matches_unopt() {
        for seed in 0..60 {
            let tr = RandomTraceSpec {
                events: 300,
                threads: 3,
                vars: 6,
                locks: 3,
                ..RandomTraceSpec::default()
            }
            .generate(seed);
            assert_eq!(
                first_race(FtoWcp::new(), &tr),
                first_race(UnoptWcp::new(), &tr),
                "seed {seed}"
            );
        }
    }
}
