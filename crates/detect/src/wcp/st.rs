//! SmartTrack-WCP analysis: Algorithm 3's CCS optimizations applied to WCP
//! ("Applying SmartTrack to WDC and WCP analyses is analogous and
//! straightforward", §4.2).
//!
//! CS lists store references to *HB* release-time clocks (rule (a) for WCP
//! joins the HB clock of the earlier release, left-composing with HB);
//! `MultiCheck` runs against the WCP clock; rule (b) keeps WCP's per-lock
//! per-thread queues, whose acquire entries are already epochs.

use smarttrack_clock::{Epoch, ReadMeta, SameEpoch, ThreadId, VectorClock};
use smarttrack_trace::{Event, EventId, Loc, LockId, Op, VarId};

use crate::ccs::{
    multi_check, release_clock_bytes, stash_residual, CcsFidelity, CsEntry, CsList, Extras, LrMeta,
    PtrSet,
};
use crate::common::slot;
use crate::counters::{FtoCase, FtoCaseCounters};
use crate::queues::WcpRuleBQueues;
use crate::report::{AccessKind, RaceReport, Report};
use crate::wcp::{wcp_epoch_ordered, WcpClocks};
use crate::{Detector, OptLevel, Relation};

#[derive(Clone, Debug, Default)]
struct StVar {
    write: Epoch,
    read: ReadMeta,
    lw: Option<CsList>,
    lr: LrMeta,
    extras: Option<Box<Extras>>,
}

/// SmartTrack-WCP analysis (`ST-WCP` in the paper's tables).
///
/// # Examples
///
/// ```
/// use smarttrack_detect::{run_detector, Detector, SmartTrackWcp};
/// use smarttrack_trace::paper;
///
/// let mut det = SmartTrackWcp::new();
/// run_detector(&mut det, &paper::figure1());
/// assert_eq!(det.report().dynamic_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct SmartTrackWcp {
    clocks: WcpClocks,
    ht: Vec<Vec<CsEntry>>,
    /// Cached shared snapshot of `Ht` per thread, invalidated at
    /// acquire/release (makes `Lrx ← Ht` an O(1) reference copy, the paper's
    /// shared-structure CS list).
    ht_cache: Vec<Option<CsList>>,
    queues: WcpRuleBQueues,
    vars: Vec<StVar>,
    report: Report,
    counters: FtoCaseCounters,
    fidelity: CcsFidelity,
}

impl Default for SmartTrackWcp {
    fn default() -> Self {
        Self::new()
    }
}

impl SmartTrackWcp {
    /// Creates the analysis in [`CcsFidelity::Strict`] mode.
    pub fn new() -> Self {
        Self::with_fidelity(CcsFidelity::Strict)
    }

    /// Creates the analysis with an explicit CCS fidelity mode.
    pub fn with_fidelity(fidelity: CcsFidelity) -> Self {
        SmartTrackWcp {
            clocks: WcpClocks::new(),
            ht: Vec::new(),
            ht_cache: Vec::new(),
            queues: WcpRuleBQueues::new(),
            vars: Vec::new(),
            report: Report::new(),
            counters: FtoCaseCounters::new(),
            fidelity,
        }
    }

    fn held_of(ht: &[Vec<CsEntry>], t: ThreadId) -> Vec<(LockId, bool)> {
        ht.get(t.index())
            .map(|l| l.iter().map(|e| (e.lock, e.write)).collect())
            .unwrap_or_default()
    }

    /// `Ht` as a shared CS list (cached; rebuilding only after lock
    /// operations).
    fn snapshot_ht(&mut self, t: ThreadId) -> CsList {
        let cache = slot(&mut self.ht_cache, t.index());
        if cache.is_none() {
            *cache = Some(CsList::from_entries(
                t,
                self.ht.get(t.index()).cloned().unwrap_or_default(),
            ));
        }
        cache.clone().expect("just filled")
    }

    fn acquire(&mut self, t: ThreadId, m: LockId) {
        let local = self.clocks.hb(t).get(t);
        self.queues.on_acquire(m, t, local, true);
        slot(&mut self.ht, t.index()).push(CsEntry::pending(m, t));
        *slot(&mut self.ht_cache, t.index()) = None;
        self.clocks.acquire(t, m);
    }

    fn acquire_read(&mut self, t: ThreadId, m: LockId) {
        let local = self.clocks.hb(t).get(t);
        self.queues.on_acquire(m, t, local, false);
        slot(&mut self.ht, t.index()).push(CsEntry::pending_read(m, t));
        *slot(&mut self.ht_cache, t.index()) = None;
        self.clocks.acquire_read(t, m);
    }

    fn release(&mut self, id: EventId, t: ThreadId, m: LockId) {
        // Pop the innermost section on `m` first — its mode gates both the
        // rule (b) consumption and the clock publication below.
        *slot(&mut self.ht_cache, t.index()) = None;
        let stack = slot(&mut self.ht, t.index());
        let entry = stack
            .iter()
            .rposition(|e| e.lock == m)
            .map(|pos| stack.remove(pos));
        let write_mode = entry.as_ref().is_none_or(|e| e.write);
        let mut p = self.clocks.wcp(t).clone();
        self.queues.consume(m, t, &mut p, write_mode, |_| {});
        self.clocks.wcp(t).assign(&p);
        let hb = self.clocks.hb(t).clone();
        self.queues.on_release_publish(m, t, &hb, id);
        // Resolve the deferred release time with the *HB* clock: rule (a)
        // for WCP joins HB release times.
        if let Some(entry) = entry {
            *entry.release.borrow_mut() = hb.clone();
        }
        if write_mode {
            self.clocks.release_publish(t, m);
        } else {
            self.clocks.release_publish_read(t, m);
        }
    }

    fn absorb_extras_at_write(&mut self, t: ThreadId, x: VarId, p: &mut VectorClock) {
        if self.vars[x.index()].extras.is_none() {
            return;
        }
        let held = Self::held_of(&self.ht, t);
        let strict = self.fidelity == CcsFidelity::Strict;
        let Some(ex) = self.vars[x.index()].extras.as_mut() else {
            return;
        };
        let er_nonempty = !ex.read.is_empty();
        let ew_nonempty = !ex.write.is_empty();
        if !(er_nonempty || (strict && ew_nonempty)) {
            return;
        }
        for &(m, held_write) in &held {
            for (u, map) in ex.read.iter() {
                if u != t {
                    for rc in map.conflicting(m, held_write) {
                        p.join(&rc.borrow());
                    }
                }
            }
            if strict {
                for (u, map) in ex.write.iter() {
                    if u != t {
                        for rc in map.conflicting(m, held_write) {
                            p.join(&rc.borrow());
                        }
                    }
                }
            }
            for (u, map) in ex.read.iter_mut() {
                if u != t {
                    map.remove_conflicting(m, held_write);
                }
            }
            for (u, map) in ex.write.iter_mut() {
                if u != t {
                    map.remove_conflicting(m, held_write);
                }
            }
        }
        ex.read.remove_thread(t);
        ex.write.remove_thread(t);
        if ex.is_empty() {
            self.vars[x.index()].extras = None;
        }
    }

    fn absorb_extras_at_read(&mut self, t: ThreadId, x: VarId, p: &mut VectorClock) {
        if self.vars[x.index()].extras.is_none() {
            return;
        }
        let held = Self::held_of(&self.ht, t);
        let Some(ex) = self.vars[x.index()].extras.as_ref() else {
            return;
        };
        if ex.write.is_empty() {
            return;
        }
        for &(m, held_write) in &held {
            for (u, map) in ex.write.iter() {
                if u != t {
                    for rc in map.conflicting(m, held_write) {
                        p.join(&rc.borrow());
                    }
                }
            }
        }
    }

    fn write(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let h_own = self.clocks.local(t);
        let e = Epoch::new(t, h_own);
        slot(&mut self.vars, x.index());
        if self.vars[x.index()].write == e {
            self.counters.hit(FtoCase::WriteSameEpoch);
            return;
        }
        let mut p = self.clocks.wcp(t).clone();
        self.absorb_extras_at_write(t, x, &mut p);
        let held = Self::held_of(&self.ht, t);
        let fidelity = self.fidelity;
        let check = move |a: Epoch, now: &VectorClock| wcp_epoch_ordered(a, t, h_own, now);
        let snapshot = self.snapshot_ht(t);
        let vs = &mut self.vars[x.index()];
        let mut prior: Vec<ThreadId> = Vec::new();

        match &vs.read {
            ReadMeta::Epoch(r) if r.is_owned_by(t) => {
                self.counters.hit(FtoCase::WriteOwned);
            }
            ReadMeta::Epoch(r) if r.is_none() => {
                // First access to x: nothing to check.
                self.counters.hit(FtoCase::WriteExclusive);
            }
            ReadMeta::Epoch(r) => {
                self.counters.hit(FtoCase::WriteExclusive);
                let u = r.tid();
                let lr = match &vs.lr {
                    LrMeta::Single(l) => l.as_ref(),
                    LrMeta::PerThread(_) => unreachable!("epoch Rx implies single Lrx"),
                };
                let (residual, raced) = multi_check(&mut p, &held, lr, *r, check);
                if raced {
                    prior.push(u);
                }
                if !residual.is_empty() {
                    let ex = vs.extras.get_or_insert_with(Default::default);
                    stash_residual(&mut ex.read, u, residual, fidelity);
                    if vs.lw.as_ref().is_some_and(|l| l.owner == u) {
                        let (wres, _) =
                            multi_check(&mut p, &held, vs.lw.as_ref(), Epoch::NONE, check);
                        let ex = vs.extras.get_or_insert_with(Default::default);
                        stash_residual(&mut ex.write, u, wres, fidelity);
                    }
                }
            }
            ReadMeta::Vc(rvc) => {
                self.counters.hit(FtoCase::WriteShared);
                let rvc = rvc.clone();
                for (u, c) in rvc.iter_nonzero() {
                    if u == t {
                        continue;
                    }
                    let lr = vs.lr.of(u);
                    let (residual, raced) = multi_check(&mut p, &held, lr, Epoch::new(u, c), check);
                    if raced {
                        prior.push(u);
                    }
                    if !residual.is_empty() {
                        let ex = vs.extras.get_or_insert_with(Default::default);
                        stash_residual(&mut ex.read, u, residual, fidelity);
                        if vs.lw.as_ref().is_some_and(|l| l.owner == u) {
                            let (wres, _) =
                                multi_check(&mut p, &held, vs.lw.as_ref(), Epoch::NONE, check);
                            let ex = vs.extras.get_or_insert_with(Default::default);
                            stash_residual(&mut ex.write, u, wres, fidelity);
                        }
                    }
                }
            }
        }

        vs.lw = Some(snapshot.clone());
        vs.lr = LrMeta::Single(Some(snapshot));
        vs.write = e;
        vs.read = ReadMeta::Epoch(e);
        self.clocks.wcp(t).assign(&p);
        if !prior.is_empty() {
            self.report.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Write,
                prior_threads: prior,
            });
        }
    }

    fn read(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let h_own = self.clocks.local(t);
        let e = Epoch::new(t, h_own);
        slot(&mut self.vars, x.index());
        match self.vars[x.index()].read.same_epoch(t, h_own) {
            Some(SameEpoch::Exclusive) => {
                self.counters.hit(FtoCase::ReadSameEpoch);
                return;
            }
            Some(SameEpoch::Shared) => {
                self.counters.hit(FtoCase::SharedSameEpoch);
                return;
            }
            None => {}
        }
        let mut p = self.clocks.wcp(t).clone();
        self.absorb_extras_at_read(t, x, &mut p);
        let held = Self::held_of(&self.ht, t);
        let strict = self.fidelity == CcsFidelity::Strict;
        let check = move |a: Epoch, now: &VectorClock| wcp_epoch_ordered(a, t, h_own, now);
        let snapshot = self.snapshot_ht(t);
        let vs = &mut self.vars[x.index()];
        let mut raced_with_write = false;

        match &mut vs.read {
            ReadMeta::Epoch(r) if r.is_owned_by(t) => {
                self.counters.hit(FtoCase::ReadOwned);
                vs.lr = LrMeta::Single(Some(snapshot));
                vs.read = ReadMeta::Epoch(e);
            }
            ReadMeta::Epoch(r) if r.is_none() => {
                // First access to x: trivially ordered ([Read Exclusive]).
                self.counters.hit(FtoCase::ReadExclusive);
                vs.lr = LrMeta::Single(Some(snapshot));
                vs.read = ReadMeta::Epoch(e);
            }
            ReadMeta::Epoch(r) => {
                let u = r.tid();
                let prior_epoch = *r;
                let lr_list = match &vs.lr {
                    LrMeta::Single(l) => l.as_ref(),
                    LrMeta::PerThread(_) => unreachable!("epoch Rx implies single Lrx"),
                };
                let ordered = match lr_list.and_then(CsList::outermost) {
                    Some(outer) => outer.release.borrow().get(u) <= p.get(u),
                    None => check(prior_epoch, &p),
                };
                if ordered {
                    self.counters.hit(FtoCase::ReadExclusive);
                    vs.lr = LrMeta::Single(Some(snapshot));
                    vs.read = ReadMeta::Epoch(e);
                } else {
                    self.counters.hit(FtoCase::ReadShare);
                    let (_, raced) = multi_check(&mut p, &held, vs.lw.as_ref(), vs.write, check);
                    raced_with_write = raced;
                    let old = match std::mem::take(&mut vs.lr) {
                        LrMeta::Single(l) => l.unwrap_or_else(|| CsList::empty(u)),
                        LrMeta::PerThread(_) => unreachable!(),
                    };
                    vs.lr = LrMeta::PerThread(vec![(u, old), (t, snapshot)]);
                    vs.read.share(e);
                }
            }
            ReadMeta::Vc(rvc) => {
                if rvc.get(t) != 0 {
                    self.counters.hit(FtoCase::ReadSharedOwned);
                    if strict && vs.lw.as_ref().is_some_and(|l| l.owner != t) {
                        let _ = multi_check(&mut p, &held, vs.lw.as_ref(), Epoch::NONE, check);
                    }
                    rvc.set(t, h_own);
                } else {
                    self.counters.hit(FtoCase::ReadShared);
                    let write = vs.write;
                    let (_, raced) = multi_check(&mut p, &held, vs.lw.as_ref(), write, check);
                    raced_with_write = raced;
                    if let ReadMeta::Vc(rvc) = &mut vs.read {
                        rvc.set(t, h_own);
                    }
                }
                vs.lr.set(t, snapshot);
            }
        }
        let write_tid = (!vs.write.is_none()).then(|| vs.write.tid());
        self.clocks.wcp(t).assign(&p);
        if raced_with_write {
            self.report.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Read,
                prior_threads: write_tid.into_iter().collect(),
            });
        }
    }
}

impl Detector for SmartTrackWcp {
    fn name(&self) -> &'static str {
        "SmartTrack-WCP"
    }

    fn relation(&self) -> Relation {
        Relation::Wcp
    }

    fn opt_level(&self) -> OptLevel {
        OptLevel::SmartTrack
    }

    fn begin_stream(&mut self, hint: crate::StreamHint) {
        self.clocks.reserve(&hint);
        self.vars
            .reserve(crate::StreamHint::presize(hint.vars, self.vars.len()));
        self.ht
            .reserve(crate::StreamHint::presize(hint.threads, self.ht.len()));
        self.ht_cache.reserve(crate::StreamHint::presize(
            hint.threads,
            self.ht_cache.len(),
        ));
    }

    fn process(&mut self, id: EventId, event: &Event) {
        let t = event.tid;
        match event.op {
            Op::Read(x) => self.read(id, t, x, event.loc),
            Op::Write(x) => self.write(id, t, x, event.loc),
            Op::Acquire(m) | Op::AcqWrite(m) => self.acquire(t, m),
            Op::AcqRead(m) => self.acquire_read(t, m),
            Op::Release(m) => self.release(id, t, m),
            // A failed trylock establishes no ordering in any direction.
            Op::TryAcqFail(_) => {}
            Op::Fork(u) => self.clocks.fork(t, u),
            Op::Join(u) => self.clocks.join(t, u),
            Op::VolatileRead(v) => self.clocks.volatile_read(t, v),
            Op::VolatileWrite(v) => self.clocks.volatile_write(t, v),
            Op::Wait(c, m) => {
                // Wait is an atomic release-and-reacquire of the monitor
                // with the condvar hard edge in between, composed from this
                // detector's own release/acquire machinery (rule (a)/(b)
                // bookkeeping runs exactly as for explicit rel/acq).
                self.release(id, t, m);
                self.clocks.wait_absorb(t, c);
                self.acquire(t, m);
            }
            Op::Notify(c) | Op::NotifyAll(c) => self.clocks.notify(t, c),
            Op::BarrierEnter(b) => self.clocks.barrier_enter(t, b),
            Op::BarrierExit(b) => self.clocks.barrier_exit(t, b),
        }
    }

    fn report(&self) -> &Report {
        &self.report
    }

    fn footprint_bytes(&self) -> usize {
        let mut seen = PtrSet::default();
        let mut bytes = self.clocks.footprint_bytes()
            + self.queues.footprint_bytes()
            + self.report.footprint_bytes();
        for stack in &self.ht {
            for e in stack {
                bytes += release_clock_bytes(&e.release, &mut seen);
            }
            bytes += stack.capacity() * std::mem::size_of::<CsEntry>();
        }
        let mut list_vecs = PtrSet::default();
        let mut list_bytes = |l: &CsList, seen: &mut PtrSet| {
            let mut b = std::mem::size_of::<CsList>();
            if list_vecs.insert(std::rc::Rc::as_ptr(&l.entries) as usize) {
                b += l.entries.capacity() * std::mem::size_of::<CsEntry>();
                for e in l.entries.iter() {
                    b += release_clock_bytes(&e.release, seen);
                }
            }
            b
        };
        bytes += self.vars.capacity() * std::mem::size_of::<StVar>();
        for v in &self.vars {
            bytes += v.read.footprint_bytes();
            if let Some(l) = &v.lw {
                bytes += list_bytes(l, &mut seen);
            }
            match &v.lr {
                LrMeta::Single(Some(l)) => bytes += list_bytes(l, &mut seen),
                LrMeta::PerThread(map) => {
                    for (_, l) in map {
                        bytes += list_bytes(l, &mut seen);
                    }
                }
                LrMeta::Single(None) => {}
            }
            if let Some(ex) = &v.extras {
                for side in [&ex.read, &ex.write] {
                    for (_, map) in side.iter() {
                        for rc in map.clocks() {
                            bytes += release_clock_bytes(rc, &mut seen);
                        }
                    }
                    bytes += side.heap_bytes();
                }
            }
        }
        bytes
    }

    fn state_bytes(&self) -> usize {
        // Cheap running estimate: table capacities only (see the DC
        // SmartTrack variant for the accounting contract).
        self.clocks.resident_bytes()
            + self.queues.resident_bytes()
            + self.report.footprint_bytes()
            + self
                .ht
                .iter()
                .map(|s| s.capacity() * std::mem::size_of::<CsEntry>())
                .sum::<usize>()
            + self.vars.capacity() * std::mem::size_of::<StVar>()
    }

    fn case_counters(&self) -> Option<&FtoCaseCounters> {
        Some(&self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_detector, FtoWcp, UnoptWcp};
    use smarttrack_trace::{gen::RandomTraceSpec, paper, Trace};

    fn first_race<D: Detector>(mut det: D, tr: &Trace) -> Option<EventId> {
        run_detector(&mut det, tr);
        det.report().first_race_event()
    }

    #[test]
    fn figures_match_fto_and_unopt() {
        for (name, tr) in paper::all_figures() {
            let st = first_race(SmartTrackWcp::new(), &tr);
            assert_eq!(st, first_race(FtoWcp::new(), &tr), "ST vs FTO on {name}");
            assert_eq!(
                st,
                first_race(UnoptWcp::new(), &tr),
                "ST vs Unopt on {name}"
            );
        }
    }

    #[test]
    fn random_traces_first_race_matches_fto() {
        for seed in 0..120 {
            let tr = RandomTraceSpec {
                events: 300,
                threads: 3,
                vars: 6,
                locks: 3,
                ..RandomTraceSpec::default()
            }
            .generate(seed);
            assert_eq!(
                first_race(SmartTrackWcp::new(), &tr),
                first_race(FtoWcp::new(), &tr),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn rwlock_traces_first_race_matches_fto_and_unopt() {
        for seed in 0..120 {
            let tr = RandomTraceSpec::tiny_rw().generate(seed);
            let st = first_race(SmartTrackWcp::new(), &tr);
            assert_eq!(st, first_race(FtoWcp::new(), &tr), "ST vs FTO seed {seed}");
            assert_eq!(
                st,
                first_race(UnoptWcp::new(), &tr),
                "ST vs Unopt seed {seed}"
            );
        }
    }
}
