//! SmartTrack's conflicting-critical-section (CCS) machinery: critical-
//! section lists, the `MultiCheck` combined CCS-and-race check, and the
//! "extra" fall-back metadata (paper §4.2).

use std::cell::RefCell;
use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;

use smarttrack_clock::{Epoch, ThreadId, VectorClock, INFINITY};
use smarttrack_trace::LockId;

/// A shared, deferred-update release-time clock.
///
/// Allocated at the acquire with the owner's entry set to `∞`; assigned the
/// real release time when the release happens. Every CS list holding a
/// reference observes the update (Algorithm 3 lines 3–5 and 13–15).
pub type ReleaseClock = Rc<RefCell<VectorClock>>;

/// One element `⟨C, m⟩` of a CS list: a lock and a reference to the release
/// time of the critical section on that lock.
#[derive(Clone, Debug)]
pub struct CsEntry {
    /// The lock of the critical section.
    pub lock: LockId,
    /// Whether the section holds the lock exclusively (plain acquires and
    /// write-mode rwlock acquires). Read-mode sections only conflict with
    /// write-involved holds — two read sections on the same lock never do.
    pub write: bool,
    /// Reference to the (possibly still pending) release-time clock.
    pub release: ReleaseClock,
}

impl CsEntry {
    /// Creates a pending *exclusive* entry for an acquire by `owner`
    /// (release time `∞`).
    pub fn pending(lock: LockId, owner: ThreadId) -> Self {
        Self::pending_mode(lock, owner, true)
    }

    /// Creates a pending *read-mode* entry for a shared acquire by `owner`.
    pub fn pending_read(lock: LockId, owner: ThreadId) -> Self {
        Self::pending_mode(lock, owner, false)
    }

    fn pending_mode(lock: LockId, owner: ThreadId, write: bool) -> Self {
        let mut vc = VectorClock::new();
        vc.set(owner, INFINITY);
        CsEntry {
            lock,
            write,
            release: Rc::new(RefCell::new(vc)),
        }
    }
}

/// A critical-section list: the active critical sections of `owner` at some
/// access, **outermost first** (the paper's list is innermost-first; its
/// "tail-to-head" traversal order is our forward order).
///
/// Entries live behind an `Rc`: assigning `Lrx ← Ht` is a reference copy,
/// exactly the paper's `⟨C,m⟩ ⊕ Ht` shared-structure list (Algorithm 3
/// line 5) — cloning a CS list is O(1).
///
/// The owning thread is stored in the list so that release-ordering checks
/// always compare the release's own clock entry — the only reading of
/// Algorithm 3's `C(u) ⪯ Ct` check under which the deferred-`∞` trick works
/// (see DESIGN.md §5.3).
#[derive(Clone, Debug)]
pub struct CsList {
    /// The thread whose critical sections these are.
    pub owner: ThreadId,
    /// Entries, outermost first (shared between `Ht` snapshots and the
    /// per-variable metadata referencing them).
    pub entries: Rc<Vec<CsEntry>>,
}

impl CsList {
    /// An empty list owned by `owner`.
    pub fn empty(owner: ThreadId) -> Self {
        CsList {
            owner,
            entries: Rc::new(Vec::new()),
        }
    }

    /// A list from explicit entries.
    pub fn from_entries(owner: ThreadId, entries: Vec<CsEntry>) -> Self {
        CsList {
            owner,
            entries: Rc::new(entries),
        }
    }

    /// The outermost entry (the paper's `tail(Lrx)`), if any.
    pub fn outermost(&self) -> Option<&CsEntry> {
        self.entries.first()
    }
}

/// Fidelity mode for the CCS optimizations (see DESIGN.md §5).
///
/// `Paper` reproduces Algorithm 3 verbatim. `Strict` (the default) adds two
/// conservative refinements that keep SmartTrack's computed relation exactly
/// equal to FTO's before the first race:
///
/// 1. `[Read Shared Owned]` also performs a race-check-free `MultiCheck`
///    against `Lwx` (verbatim Algorithm 3 can skip a rule (a) join when the
///    last write's critical sections resolve after the reader's previous
///    access);
/// 2. "extra" metadata residuals are merged per lock instead of replacing the
///    per-thread map, and writes absorb both `Erx` and `Ewx` entries for held
///    locks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CcsFidelity {
    /// Algorithm 3 exactly as printed.
    Paper,
    /// Algorithm 3 plus the conservative refinements (default).
    #[default]
    Strict,
}

/// Read-side CS metadata of one variable, mirroring the representation of
/// `Rx`: a single CS list while `Rx` is an epoch, per-thread CS lists once
/// `Rx` is a vector clock (an association list — shared-read thread sets
/// are tiny, and linear probes beat hashing at that size). Shared by the
/// SmartTrack DC/WDC and WCP variants.
#[derive(Clone, Debug)]
pub(crate) enum LrMeta {
    Single(Option<CsList>),
    PerThread(Vec<(ThreadId, CsList)>),
}

impl Default for LrMeta {
    fn default() -> Self {
        LrMeta::Single(None)
    }
}

impl LrMeta {
    /// The per-thread list recorded for `u` (`None` in single form — the
    /// epoch-form callers handle `Single` themselves).
    pub fn of(&self, u: ThreadId) -> Option<&CsList> {
        match self {
            LrMeta::PerThread(map) => map.iter().find(|(w, _)| *w == u).map(|(_, l)| l),
            LrMeta::Single(_) => None,
        }
    }

    /// Inserts or replaces `t`'s list in the per-thread form.
    ///
    /// # Panics
    ///
    /// Panics in single form (vector `Rx` implies per-thread `Lrx`).
    pub fn set(&mut self, t: ThreadId, list: CsList) {
        match self {
            LrMeta::PerThread(map) => match map.iter_mut().find(|(w, _)| *w == t) {
                Some(entry) => entry.1 = list,
                None => map.push((t, list)),
            },
            LrMeta::Single(_) => unreachable!("vector Rx implies per-thread Lrx"),
        }
    }
}

/// Per-lock extra CCS entries of one thread: a tiny association list
/// (threads hold a handful of locks; linear scans beat hashing at this
/// size, and iteration order — insertion order — is deterministic).
///
/// Entries are keyed by `(lock, mode)` — a thread can stash both a
/// read-mode and a write-mode residual section on the same rwlock, and only
/// write-involved pairs conflict when a later access absorbs them.
#[derive(Clone, Debug, Default)]
pub(crate) struct ExtraLocks {
    entries: Vec<(LockId, bool, ReleaseClock)>,
}

impl ExtraLocks {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts or replaces the entry for `(m, write)`.
    pub fn insert(&mut self, m: LockId, write: bool, rc: ReleaseClock) {
        match self
            .entries
            .iter_mut()
            .find(|(l, w, _)| *l == m && *w == write)
        {
            Some(entry) => entry.2 = rc,
            None => self.entries.push((m, write, rc)),
        }
    }

    /// The stashed sections on `m` that conflict with a hold of mode
    /// `held_write` (write-involved pairs only).
    pub fn conflicting(&self, m: LockId, held_write: bool) -> impl Iterator<Item = &ReleaseClock> {
        self.entries
            .iter()
            .filter(move |(l, w, _)| *l == m && (*w || held_write))
            .map(|(_, _, rc)| rc)
    }

    /// Drops the entries [`Self::conflicting`] would yield for `(m,
    /// held_write)` — they have been absorbed into the current clock.
    pub fn remove_conflicting(&mut self, m: LockId, held_write: bool) {
        self.entries
            .retain(|(l, w, _)| !(*l == m && (*w || held_write)));
    }

    pub fn clear(&mut self) {
        self.entries.clear();
    }

    pub fn clocks(&self) -> impl Iterator<Item = &ReleaseClock> {
        self.entries.iter().map(|(_, _, rc)| rc)
    }

    pub fn heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(LockId, bool, ReleaseClock)>()
    }
}

/// Per-thread, per-lock extra CCS metadata (`Erx`/`Ewx`): critical sections
/// containing accesses to the variable that are no longer captured by
/// `Lrx`/`Lwx` (paper §4.2, "Using extra metadata"). Pre-overhaul this was
/// a `HashMap<ThreadId, HashMap<LockId, _>>`; extras are rare and tiny
/// ("empty in most cases", §4.2), so nested association lists drop the
/// per-access hashing entirely.
#[derive(Clone, Debug, Default)]
pub(crate) struct ExtraMap {
    by_thread: Vec<(ThreadId, ExtraLocks)>,
}

impl ExtraMap {
    pub fn is_empty(&self) -> bool {
        self.by_thread.iter().all(|(_, l)| l.is_empty())
    }

    /// The extra locks recorded for thread `t`, if any (tests and
    /// diagnostics).
    #[cfg(test)]
    pub fn of(&self, t: ThreadId) -> Option<&ExtraLocks> {
        self.by_thread.iter().find(|(u, _)| *u == t).map(|(_, l)| l)
    }

    pub fn of_mut_or_insert(&mut self, t: ThreadId) -> &mut ExtraLocks {
        if let Some(i) = self.by_thread.iter().position(|(u, _)| *u == t) {
            return &mut self.by_thread[i].1;
        }
        self.by_thread.push((t, ExtraLocks::default()));
        &mut self.by_thread.last_mut().expect("just pushed").1
    }

    pub fn remove_thread(&mut self, t: ThreadId) {
        self.by_thread.retain(|(u, _)| *u != t);
    }

    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, &ExtraLocks)> {
        self.by_thread.iter().map(|(u, l)| (*u, l))
    }

    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ThreadId, &mut ExtraLocks)> {
        self.by_thread.iter_mut().map(|(u, l)| (*u, l))
    }

    pub fn heap_bytes(&self) -> usize {
        self.by_thread.capacity() * std::mem::size_of::<(ThreadId, ExtraLocks)>()
            + self
                .by_thread
                .iter()
                .map(|(_, l)| l.heap_bytes())
                .sum::<usize>()
    }
}

/// The extra metadata of one variable.
#[derive(Clone, Debug, Default)]
pub(crate) struct Extras {
    /// `Erx`: read-or-write critical sections.
    pub read: ExtraMap,
    /// `Ewx`: write critical sections.
    pub write: ExtraMap,
}

impl Extras {
    pub fn is_empty(&self) -> bool {
        self.read.is_empty() && self.write.is_empty()
    }
}

/// The combined CCS-and-race check (Algorithm 3's `MultiCheck`).
///
/// Traverses `list` outermost-to-innermost looking for a critical section of
/// the list's owner that is either already ordered before `now` (subsumes
/// everything inner *and* the race check) or on a lock `held` by the current
/// thread in a conflicting mode — at least one side write-involved — (a
/// conflicting critical section: its release time is joined into `now`,
/// adding rule (a) ordering). Entries that are neither become the
/// *residual* `E`, and only if no entry matched is the race check against
/// `check` performed.
///
/// `ordered_race_check(check, now)` implements the relation-specific
/// `a ⪯ Ct` (DC uses the plain epoch check; WCP excludes the current thread's
/// entry, which is covered by the HB clock instead).
///
/// Returns `(residual, raced)`.
pub(crate) fn multi_check(
    now: &mut VectorClock,
    held: &[(LockId, bool)],
    list: Option<&CsList>,
    check: Epoch,
    ordered_race_check: impl Fn(Epoch, &VectorClock) -> bool,
) -> (Vec<CsEntry>, bool) {
    let mut residual = Vec::new();
    if let Some(l) = list {
        for entry in l.entries.iter() {
            let rel = entry.release.borrow();
            if rel.get(l.owner) <= now.get(l.owner) {
                return (residual, false);
            }
            // Write-involved pairs only: a read-mode entry against a
            // read-mode hold of the same rwlock is not a conflicting pair.
            if held
                .iter()
                .any(|&(l, w)| l == entry.lock && (w || entry.write))
            {
                debug_assert_ne!(
                    rel.get(l.owner),
                    INFINITY,
                    "cannot hold a lock whose owner has not released it"
                );
                now.join(&rel);
                return (residual, false);
            }
            drop(rel);
            residual.push(entry.clone());
        }
    }
    let raced = !ordered_race_check(check, now);
    (residual, raced)
}

/// Stores a residual into one side of the extra metadata for `owner`.
///
/// `Strict` merges per lock (a thread's newer release time on the same lock
/// dominates its older one, so overwriting per lock is exact); `Paper`
/// replaces the whole per-thread map, as Algorithm 3's `Erx(u) ← E` reads.
pub(crate) fn stash_residual(
    side: &mut ExtraMap,
    owner: ThreadId,
    residual: Vec<CsEntry>,
    fidelity: CcsFidelity,
) {
    let map = side.of_mut_or_insert(owner);
    if fidelity == CcsFidelity::Paper {
        map.clear();
    }
    for e in residual {
        map.insert(e.lock, e.write, e.release);
    }
}

/// Hashes already-well-distributed keys (pointer addresses) by identity:
/// the footprint walks deduplicate millions of `Rc` pointers, where SipHash
/// would dominate the walk.
#[derive(Default)]
pub(crate) struct PtrHasher(u64);

impl Hasher for PtrHasher {
    #[inline]
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PtrSet only hashes usize keys");
    }

    #[inline]
    fn write_usize(&mut self, p: usize) {
        // Shift out alignment zeros, then spread with a Fibonacci constant.
        self.0 = ((p >> 3) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// A set of raw pointer addresses with identity hashing, reused by the
/// exact footprint walks.
pub(crate) type PtrSet = HashSet<usize, BuildHasherDefault<PtrHasher>>;

/// Estimates unique heap bytes of a set of release clocks, deduplicating
/// shared `Rc`s via `seen`.
pub(crate) fn release_clock_bytes(rc: &ReleaseClock, seen: &mut PtrSet) -> usize {
    let ptr = Rc::as_ptr(rc) as usize;
    if seen.insert(ptr) {
        std::mem::size_of::<RefCell<VectorClock>>() + rc.borrow().heap_bytes() + 16
    } else {
        std::mem::size_of::<ReleaseClock>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }
    fn dc_check(e: Epoch, vc: &VectorClock) -> bool {
        e.leq_vc(vc)
    }

    fn list_with(owner: ThreadId, entries: Vec<CsEntry>) -> CsList {
        CsList::from_entries(owner, entries)
    }

    #[test]
    fn pending_entries_are_never_ordered() {
        let entry = CsEntry::pending(m(0), t(0));
        let mut now: VectorClock = [(t(1), 5)].into_iter().collect();
        let list = list_with(t(0), vec![entry]);
        let (residual, raced) = multi_check(&mut now, &[], Some(&list), Epoch::NONE, dc_check);
        assert_eq!(residual.len(), 1, "pending entry becomes residual");
        assert!(!raced, "⊥ never races");
    }

    #[test]
    fn ordered_outermost_subsumes_inner_and_race_check() {
        let outer = CsEntry::pending(m(0), t(0));
        *outer.release.borrow_mut() = [(t(0), 3)].into_iter().collect();
        let inner = CsEntry::pending(m(1), t(0));
        let list = list_with(t(0), vec![outer, inner]);
        let mut now: VectorClock = [(t(0), 4), (t(1), 2)].into_iter().collect();
        // check epoch 9@t0 would fail, but the ordered entry subsumes it.
        let (residual, raced) =
            multi_check(&mut now, &[], Some(&list), Epoch::new(t(0), 9), dc_check);
        assert!(residual.is_empty());
        assert!(!raced);
    }

    #[test]
    fn held_lock_joins_release_time() {
        let entry = CsEntry::pending(m(2), t(0));
        *entry.release.borrow_mut() = [(t(0), 7), (t(2), 4)].into_iter().collect();
        let list = list_with(t(0), vec![entry]);
        let mut now: VectorClock = [(t(1), 1)].into_iter().collect();
        let (residual, raced) = multi_check(
            &mut now,
            &[(m(2), true)],
            Some(&list),
            Epoch::new(t(0), 9),
            dc_check,
        );
        assert!(residual.is_empty());
        assert!(!raced, "join subsumes the race check");
        assert_eq!(now.get(t(0)), 7);
        assert_eq!(now.get(t(2)), 4);
    }

    #[test]
    fn no_match_falls_through_to_race_check() {
        let entry = CsEntry::pending(m(0), t(0));
        let list = list_with(t(0), vec![entry]);
        let mut now: VectorClock = [(t(1), 3)].into_iter().collect();
        let (residual, raced) = multi_check(
            &mut now,
            &[(m(1), true)],
            Some(&list),
            Epoch::new(t(0), 2),
            dc_check,
        );
        assert_eq!(residual.len(), 1);
        assert!(raced, "0@... < 2@t0 unordered: race");
    }

    #[test]
    fn empty_list_is_a_plain_race_check() {
        let mut now: VectorClock = [(t(0), 5)].into_iter().collect();
        let (_, ok) = multi_check(&mut now, &[], None, Epoch::new(t(0), 5), dc_check);
        assert!(!ok);
        let (_, raced) = multi_check(&mut now, &[], None, Epoch::new(t(0), 6), dc_check);
        assert!(raced);
    }

    #[test]
    fn read_read_pairs_are_not_conflicting() {
        // Prior section held m2 in *read* mode; current thread also holds
        // m2 in read mode. No write involved: the entry must fall through
        // to residual + race check instead of joining the release time.
        let entry = CsEntry::pending_read(m(2), t(0));
        *entry.release.borrow_mut() = [(t(0), 7)].into_iter().collect();
        let list = list_with(t(0), vec![entry]);
        let mut now: VectorClock = [(t(1), 1)].into_iter().collect();
        let (residual, raced) = multi_check(
            &mut now,
            &[(m(2), false)],
            Some(&list),
            Epoch::new(t(0), 9),
            dc_check,
        );
        assert_eq!(residual.len(), 1, "read-read entry becomes residual");
        assert!(raced, "no rule (a) edge between two read sections");
        assert_eq!(now.get(t(0)), 0, "release time not joined");
    }

    #[test]
    fn write_involved_pairs_still_join() {
        // Read-mode entry vs write-mode hold, and write-mode entry vs
        // read-mode hold, both conflict.
        for (entry_write, held_write) in [(false, true), (true, false)] {
            let entry = CsEntry::pending_mode(m(2), t(0), entry_write);
            *entry.release.borrow_mut() = [(t(0), 7)].into_iter().collect();
            let list = list_with(t(0), vec![entry]);
            let mut now: VectorClock = [(t(1), 1)].into_iter().collect();
            let (residual, raced) = multi_check(
                &mut now,
                &[(m(2), held_write)],
                Some(&list),
                Epoch::new(t(0), 9),
                dc_check,
            );
            assert!(residual.is_empty());
            assert!(!raced);
            assert_eq!(now.get(t(0)), 7, "release time joined");
        }
    }

    #[test]
    fn extras_key_by_lock_and_mode() {
        let mut ex = ExtraLocks::default();
        let rc =
            |v: u32| -> ReleaseClock { Rc::new(RefCell::new([(t(0), v)].into_iter().collect())) };
        ex.insert(m(0), false, rc(3));
        ex.insert(m(0), true, rc(5));
        assert_eq!(ex.clocks().count(), 2, "read and write entries coexist");
        assert_eq!(
            ex.conflicting(m(0), false).count(),
            1,
            "read hold conflicts only with the write entry"
        );
        assert_eq!(ex.conflicting(m(0), true).count(), 2);
        ex.remove_conflicting(m(0), false);
        assert_eq!(ex.clocks().count(), 1, "write entry absorbed");
        assert_eq!(ex.conflicting(m(0), true).count(), 1);
    }

    #[test]
    fn stash_paper_replaces_strict_merges() {
        let mk = |lock: u32| CsEntry::pending(m(lock), t(0));
        let mut paper = ExtraMap::default();
        stash_residual(&mut paper, t(0), vec![mk(0)], CcsFidelity::Paper);
        stash_residual(&mut paper, t(0), vec![mk(1)], CcsFidelity::Paper);
        assert_eq!(
            paper.of(t(0)).unwrap().clocks().count(),
            1,
            "paper mode replaces"
        );
        let mut strict = ExtraMap::default();
        stash_residual(&mut strict, t(0), vec![mk(0)], CcsFidelity::Strict);
        stash_residual(&mut strict, t(0), vec![mk(1)], CcsFidelity::Strict);
        assert_eq!(
            strict.of(t(0)).unwrap().clocks().count(),
            2,
            "strict mode merges"
        );
    }
}
