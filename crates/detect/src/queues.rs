//! Acquire/release queues implementing DC rule (b) and WCP rule (b).
//!
//! DC analysis needs, for each lock `m` and each *pair* of threads `(t, t')`,
//! a queue `Acq_{m,t}(t')` of the times of `t'`-acquires of `m` not yet known
//! to be DC-ordered to a `t`-release of `m`, plus the matching release times
//! `Rel_{m,t}(t')` (paper Algorithm 1; §2.5 calls this out as a significant
//! cost). WCP analysis gets away with per-lock per-*thread* queues because
//! WCP composes with HB (footnote 6).
//!
//! The DC queues are realized as one append-only acquire/release log per
//! `(lock, acquiring thread)` plus a consumption cursor per releasing thread:
//! semantically identical to the paper's per-pair queues (each releaser sees
//! exactly the suffix it has not yet ordered), but robust to threads that
//! start mid-trace, with periodic compaction of fully-consumed prefixes.
//!
//! Two acquire-entry representations exist, matching the paper's optimization
//! levels: full vector clocks (Unopt/FTO) and epochs (SmartTrack).

use smarttrack_clock::{ClockValue, ThreadId, VectorClock};
use smarttrack_trace::{EventId, LockId};

use crate::common::slot;

/// An acquire entry: the acquire's time in its thread's clock, either a full
/// vector clock (Unopt, FTO) or just the local clock value (SmartTrack).
#[derive(Clone, Debug)]
pub enum AcqEntry {
    /// Full vector clock of the acquiring thread at the acquire.
    Vc(VectorClock),
    /// The acquiring thread's local clock component (SmartTrack's epoch
    /// optimization, sound because threads increment at every acquire).
    Epoch(ClockValue),
}

impl AcqEntry {
    /// Whether the recorded acquire (by thread `owner`) is ordered before the
    /// releasing thread's current time `now`.
    #[inline]
    fn ordered_before(&self, owner: ThreadId, now: &VectorClock) -> bool {
        match self {
            AcqEntry::Vc(vc) => vc.leq(now),
            AcqEntry::Epoch(c) => *c <= now.get(owner),
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            AcqEntry::Vc(vc) => vc.heap_bytes(),
            AcqEntry::Epoch(_) => 0,
        }
    }
}

/// A release entry: the release time (always a full clock — it gets joined
/// into the consumer) plus the release's event id for graph recording.
#[derive(Clone, Debug)]
pub struct RelEntry {
    /// Clock of the releasing thread at the release.
    pub clock: VectorClock,
    /// The release event (for "w/ G" edge recording).
    pub event: EventId,
}

/// Append-only log of one thread's critical sections on one lock.
#[derive(Clone, Debug, Default)]
struct CsLog {
    /// Index of the first retained entry (earlier ones were compacted away).
    base: usize,
    acq: Vec<AcqEntry>,
    rel: Vec<RelEntry>,
    /// Hold mode per entry, aligned with `acq`: `true` for exclusive/write
    /// sections, `false` for read-mode rwlock sections.
    write: Vec<bool>,
}

impl CsLog {
    fn len_total(&self) -> usize {
        self.base + self.acq.len()
    }

    /// Cheap resident bytes: vector capacities only.
    fn resident_bytes(&self) -> usize {
        self.acq.capacity() * std::mem::size_of::<AcqEntry>()
            + self.rel.capacity() * std::mem::size_of::<RelEntry>()
            + self.write.capacity() * std::mem::size_of::<bool>()
    }

    fn footprint_bytes(&self) -> usize {
        self.acq.iter().map(AcqEntry::heap_bytes).sum::<usize>()
            + self.rel.iter().map(|r| r.clock.heap_bytes()).sum::<usize>()
            + self.resident_bytes()
    }
}

/// The DC rule (b) queues (`Acq_{m,t}(t')` / `Rel_{m,t}(t')`).
#[derive(Clone, Debug, Default)]
pub struct DcRuleBQueues {
    /// `logs[m][t']` — acquire/release log of thread `t'` on lock `m`.
    logs: Vec<Vec<CsLog>>,
    /// `cursors[m][t][t']` — how much of `logs[m][t']` releaser `t` consumed.
    cursors: Vec<Vec<Vec<usize>>>,
    /// Total thread count, if known: enables sound compaction (an entry can
    /// only be dropped once *every* possible releaser has consumed it).
    thread_bound: Option<usize>,
}

impl DcRuleBQueues {
    /// Creates empty queues.
    pub fn new() -> Self {
        DcRuleBQueues::default()
    }

    /// Declares the total number of threads the trace will ever use, which
    /// enables compaction of fully-consumed log prefixes. Without a bound,
    /// logs retain all entries (a single shared copy per entry — at most the
    /// retention of the paper's per-pair queues, which clone each entry into
    /// `T − 1` queues).
    pub fn set_thread_bound(&mut self, threads: usize) {
        self.thread_bound = Some(threads);
    }

    fn log_mut(&mut self, m: LockId, t: ThreadId) -> &mut CsLog {
        let lock = slot(&mut self.logs, m.index());
        slot(lock, t.index())
    }

    /// Handles `acq(m)` by `t` (Algorithm 1 line 2 / Algorithm 3 line 2).
    /// `write` is the hold mode: `false` for read-mode rwlock sections.
    pub fn on_acquire(&mut self, m: LockId, t: ThreadId, entry: &AcqEntry, write: bool) {
        let log = self.log_mut(m, t);
        log.acq.push(entry.clone());
        log.write.push(write);
    }

    /// Handles `rel(m)` by `t` (Algorithm 1 lines 4–8): consumes every other
    /// thread's acquires that are ordered before `now`, joining the matching
    /// release times into `now`; then appends `now` as `t`'s own release
    /// entry.
    ///
    /// `write_mode` is the mode of the section being released. A write-mode
    /// release conflicts with every prior section and consumes as usual; a
    /// *read-mode* release conflicts only with prior write-mode sections, so
    /// it joins only those — and it never advances the consumption cursor,
    /// because skipped read-mode entries may still be needed by a later
    /// write-mode release of the same thread (rule (b) applies only to
    /// write-involved section pairs; Genç et al., arXiv:1904.13088).
    ///
    /// Calls `on_rule_b(release_event)` for each rule (b) join, so
    /// graph-building variants can record edges.
    pub fn on_release(
        &mut self,
        m: LockId,
        t: ThreadId,
        now: &mut VectorClock,
        release_event: EventId,
        write_mode: bool,
        mut on_rule_b: impl FnMut(EventId),
    ) {
        let lock_logs = slot(&mut self.logs, m.index());
        let nthreads = lock_logs.len().max(t.index() + 1);
        if lock_logs.len() < nthreads {
            lock_logs.resize_with(nthreads, CsLog::default);
        }
        let lock_cursors = slot(&mut self.cursors, m.index());
        if lock_cursors.len() < nthreads {
            lock_cursors.resize_with(nthreads, Vec::new);
        }
        let row = &mut lock_cursors[t.index()];
        if row.len() < nthreads {
            row.resize(nthreads, 0);
        }
        for (u, log) in lock_logs.iter().enumerate() {
            if u == t.index() {
                continue;
            }
            let owner = ThreadId::new(u as u32);
            let cursor = &mut row[u];
            if *cursor < log.base {
                *cursor = log.base;
            }
            if write_mode {
                while *cursor < log.len_total() {
                    let i = *cursor - log.base;
                    if !log.acq[i].ordered_before(owner, now) {
                        break;
                    }
                    let rel = log
                        .rel
                        .get(i)
                        .expect("matching release precedes this release (well-formed trace)");
                    now.join(&rel.clock);
                    on_rule_b(rel.event);
                    *cursor += 1;
                }
            } else {
                // Non-destructive peek: join write-mode entries only, and
                // leave the cursor alone. An open section (acquire without a
                // matching release yet — possible for a concurrently-held
                // read section) ends the prefix.
                let mut i = *cursor - log.base;
                while i < log.acq.len() {
                    if !log.acq[i].ordered_before(owner, now) {
                        break;
                    }
                    let Some(rel) = log.rel.get(i) else { break };
                    if log.write[i] {
                        now.join(&rel.clock);
                        on_rule_b(rel.event);
                    }
                    i += 1;
                }
            }
        }
        // Publish t's own release (matching its oldest un-released acquire).
        let own = &mut lock_logs[t.index()];
        own.rel.push(RelEntry {
            clock: now.clone(),
            event: release_event,
        });
        debug_assert!(own.rel.len() <= own.acq.len(), "release without acquire");
        self.compact(m);
    }

    /// Drops log prefixes that every possible releaser has consumed.
    /// Requires [`DcRuleBQueues::set_thread_bound`]; otherwise a future
    /// thread might still need old entries (DC has no HB composition to
    /// recover them) and nothing is dropped.
    fn compact(&mut self, m: LockId) {
        const COMPACT_THRESHOLD: usize = 64;
        let Some(bound) = self.thread_bound else {
            return;
        };
        let lock_logs = &mut self.logs[m.index()];
        let lock_cursors = match self.cursors.get(m.index()) {
            Some(c) => c,
            None => return,
        };
        for (u, log) in lock_logs.iter_mut().enumerate() {
            if log.rel.len() < COMPACT_THRESHOLD {
                continue;
            }
            let min_consumed = (0..bound)
                .filter(|&t| t != u)
                .map(|t| {
                    lock_cursors
                        .get(t)
                        .and_then(|row| row.get(u))
                        .copied()
                        .unwrap_or(0)
                })
                .min()
                .unwrap_or(0);
            // Only entries that are both consumed by everyone and released
            // can be dropped.
            let drop_to = min_consumed.min(log.base + log.rel.len());
            if drop_to > log.base {
                let n = drop_to - log.base;
                log.acq.drain(..n);
                log.rel.drain(..n);
                log.write.drain(..n);
                log.base = drop_to;
            }
        }
    }

    /// Approximate heap bytes (exact: includes per-entry clock spill).
    pub fn footprint_bytes(&self) -> usize {
        self.logs
            .iter()
            .flat_map(|l| l.iter())
            .map(CsLog::footprint_bytes)
            .sum::<usize>()
            + self.cursor_bytes()
    }

    /// Cheap resident bytes (capacities only, O(#locks × #threads)).
    pub fn resident_bytes(&self) -> usize {
        self.logs
            .iter()
            .flat_map(|l| l.iter())
            .map(CsLog::resident_bytes)
            .sum::<usize>()
            + self.cursor_bytes()
    }

    fn cursor_bytes(&self) -> usize {
        self.cursors
            .iter()
            .flat_map(|l| l.iter())
            .map(|r| r.capacity() * std::mem::size_of::<usize>())
            .sum::<usize>()
    }
}

/// The WCP rule (b) queues: per lock, per *acquiring thread* (not per pair),
/// consumable by any releasing thread because WCP composes with HB.
///
/// Acquire entries are epochs of the acquirer's HB clock; release entries are
/// full HB clocks of the matching releases.
#[derive(Clone, Debug, Default)]
pub struct WcpRuleBQueues {
    /// `per_lock[m][t']` — shared acquire/release queue of `m`-critical
    /// sections by `t'`, with a single consumption cursor.
    per_lock: Vec<Vec<CsLog>>,
}

impl WcpRuleBQueues {
    /// Creates empty queues.
    pub fn new() -> Self {
        WcpRuleBQueues::default()
    }

    fn log_mut(&mut self, m: LockId, t: ThreadId) -> &mut CsLog {
        let lock = slot(&mut self.per_lock, m.index());
        slot(lock, t.index())
    }

    /// Records `acq(m)` by `t` with local HB clock value `local`.
    /// `write` is the hold mode: `false` for read-mode rwlock sections.
    pub fn on_acquire(&mut self, m: LockId, t: ThreadId, local: ClockValue, write: bool) {
        let log = self.log_mut(m, t);
        log.acq.push(AcqEntry::Epoch(local));
        log.write.push(write);
    }

    /// Records the release time matching the oldest un-matched acquire of `m`
    /// by `t` (call at `rel(m)` by `t` after [`WcpRuleBQueues::consume`]).
    pub fn on_release_publish(&mut self, m: LockId, t: ThreadId, hb: &VectorClock, event: EventId) {
        let log = self.log_mut(m, t);
        log.rel.push(RelEntry {
            clock: hb.clone(),
            event,
        });
        debug_assert!(log.rel.len() <= log.acq.len(), "release without acquire");
    }

    /// At `rel(m)` by `t`: consumes every other thread's acquires that are
    /// WCP-ordered before the current release (checked against the releaser's
    /// WCP clock `wcp`), joining the matching releases' HB clocks into `wcp`.
    ///
    /// For a *write-mode* release, consumption is destructive across
    /// releasers; that is sound for WCP because a later section of the same
    /// lock (read or write mode) is HB-after a write release and WCP
    /// left/right-composes with HB (footnote 6). A *read-mode* release
    /// conflicts only with prior write-mode sections and is **not** HB-before
    /// later sections, so it peeks without draining: it joins the ordered
    /// prefix's write-mode entries and leaves everything in place.
    pub fn consume(
        &mut self,
        m: LockId,
        t: ThreadId,
        wcp: &mut VectorClock,
        write_mode: bool,
        mut on_rule_b: impl FnMut(EventId),
    ) {
        let lock = slot(&mut self.per_lock, m.index());
        for (u, log) in lock.iter_mut().enumerate() {
            if u == t.index() {
                continue;
            }
            let owner = ThreadId::new(u as u32);
            // Consume a prefix, then drain it in one move (the entry-at-a-
            // time `remove(0)` was quadratic on lock-heavy traces).
            let mut consumed = 0;
            let limit = log.acq.len().min(log.rel.len());
            while consumed < limit && log.acq[consumed].ordered_before(owner, wcp) {
                let rel = &log.rel[consumed];
                if write_mode || log.write[consumed] {
                    wcp.join(&rel.clock);
                    on_rule_b(rel.event);
                }
                consumed += 1;
            }
            if write_mode && consumed > 0 {
                log.acq.drain(..consumed);
                log.rel.drain(..consumed);
                log.write.drain(..consumed);
            }
        }
    }

    /// Approximate heap bytes (exact: includes per-entry clock spill).
    pub fn footprint_bytes(&self) -> usize {
        self.per_lock
            .iter()
            .flat_map(|l| l.iter())
            .map(CsLog::footprint_bytes)
            .sum()
    }

    /// Cheap resident bytes (capacities only, O(#locks × #threads)).
    pub fn resident_bytes(&self) -> usize {
        self.per_lock
            .iter()
            .flat_map(|l| l.iter())
            .map(CsLog::resident_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }
    fn vc(pairs: &[(u32, u32)]) -> VectorClock {
        pairs.iter().map(|&(t0, c)| (t(t0), c)).collect()
    }

    #[test]
    fn dc_queue_joins_matching_release_when_acquire_ordered() {
        let mut q = DcRuleBQueues::new();
        // T0 acquires m at time [1,0]; releases at [3,0].
        q.on_acquire(m(0), t(0), &AcqEntry::Vc(vc(&[(0, 1)])), true);
        let mut rel0 = vc(&[(0, 3)]);
        q.on_release(m(0), t(0), &mut rel0, EventId::new(2), true, |_| {});
        // T1 releases m with a clock that dominates T0's acquire: rule (b)
        // fires and T1 absorbs T0's release time.
        q.on_acquire(m(0), t(1), &AcqEntry::Vc(vc(&[(1, 4)])), true);
        let mut now = vc(&[(0, 2), (1, 5)]);
        let mut fired = Vec::new();
        q.on_release(m(0), t(1), &mut now, EventId::new(7), true, |e| {
            fired.push(e)
        });
        assert_eq!(fired, vec![EventId::new(2)]);
        assert_eq!(now.get(t(0)), 3, "absorbed T0's release time");
    }

    #[test]
    fn dc_queue_leaves_unordered_acquires() {
        let mut q = DcRuleBQueues::new();
        q.on_acquire(m(0), t(0), &AcqEntry::Vc(vc(&[(0, 4)])), true);
        let mut rel0 = vc(&[(0, 5)]);
        q.on_release(m(0), t(0), &mut rel0, EventId::new(2), true, |_| {});
        // T1's clock does not dominate the acquire time: no join.
        q.on_acquire(m(0), t(1), &AcqEntry::Vc(vc(&[(1, 8)])), true);
        let mut now = vc(&[(1, 9)]);
        let mut fired = 0;
        q.on_release(m(0), t(1), &mut now, EventId::new(8), true, |_| fired += 1);
        assert_eq!(fired, 0);
        assert_eq!(now.get(t(0)), 0);
    }

    #[test]
    fn dc_queue_consumption_is_per_releaser() {
        let mut q = DcRuleBQueues::new();
        q.on_acquire(m(0), t(0), &AcqEntry::Vc(vc(&[(0, 1)])), true);
        let mut rel0 = vc(&[(0, 3)]);
        q.on_release(m(0), t(0), &mut rel0, EventId::new(2), true, |_| {});
        // T1 consumes the entry.
        q.on_acquire(m(0), t(1), &AcqEntry::Vc(vc(&[(1, 4)])), true);
        let mut now1 = vc(&[(0, 2), (1, 5)]);
        let mut fired1 = 0;
        q.on_release(m(0), t(1), &mut now1, EventId::new(7), true, |_| {
            fired1 += 1
        });
        assert_eq!(fired1, 1);
        // T2 must *also* see the entry (DC has no HB composition to rely on).
        q.on_acquire(m(0), t(2), &AcqEntry::Vc(vc(&[(2, 3)])), true);
        let mut now2 = vc(&[(0, 2), (2, 4)]);
        let mut fired2 = 0;
        q.on_release(m(0), t(2), &mut now2, EventId::new(11), true, |_| {
            fired2 += 1
        });
        assert_eq!(
            fired2, 1,
            "per-pair queues: each releaser consumes independently"
        );
        assert_eq!(now2.get(t(0)), 3);
    }

    #[test]
    fn dc_epoch_entries_match_vc_entries_given_acquire_increments() {
        // With increments at acquires, the epoch check c <= now(owner) agrees
        // with the full VC check on join-closed clocks.
        let mut qv = DcRuleBQueues::new();
        let mut qe = DcRuleBQueues::new();
        qv.on_acquire(m(0), t(0), &AcqEntry::Vc(vc(&[(0, 2)])), true);
        qe.on_acquire(m(0), t(0), &AcqEntry::Epoch(2), true);
        let mut r1 = vc(&[(0, 4)]);
        let mut r2 = r1.clone();
        qv.on_release(m(0), t(0), &mut r1, EventId::new(1), true, |_| {});
        qe.on_release(m(0), t(0), &mut r2, EventId::new(1), true, |_| {});
        for (q, name) in [(&mut qv, "vc"), (&mut qe, "epoch")] {
            q.on_acquire(m(0), t(1), &AcqEntry::Epoch(2), true);
            let mut now = vc(&[(0, 2), (1, 3)]);
            let mut fired = 0;
            q.on_release(m(0), t(1), &mut now, EventId::new(5), true, |_| fired += 1);
            assert_eq!(fired, 1, "{name}");
        }
    }

    #[test]
    fn wcp_queue_is_shared_across_releasers() {
        let mut q = WcpRuleBQueues::new();
        q.on_acquire(m(0), t(0), 1, true);
        q.on_release_publish(m(0), t(0), &vc(&[(0, 2)]), EventId::new(3));
        // T1 releases with WCP knowledge of T0 up to 1: consumes the entry.
        let mut wcp1 = vc(&[(0, 1)]);
        let mut fired = 0;
        q.consume(m(0), t(1), &mut wcp1, true, |_| fired += 1);
        assert_eq!(fired, 1);
        assert_eq!(wcp1.get(t(0)), 2);
        // Entry is gone for T2 (WCP relies on HB composition instead).
        let mut wcp2 = vc(&[(0, 1)]);
        let mut fired2 = 0;
        q.consume(m(0), t(2), &mut wcp2, true, |_| fired2 += 1);
        assert_eq!(fired2, 0);
    }

    #[test]
    fn dc_read_release_peeks_write_entries_without_consuming() {
        let mut q = DcRuleBQueues::new();
        // T0: a read-mode section, then a write-mode section.
        q.on_acquire(m(0), t(0), &AcqEntry::Vc(vc(&[(0, 1)])), false);
        let mut r = vc(&[(0, 2)]);
        q.on_release(m(0), t(0), &mut r, EventId::new(1), false, |_| {});
        q.on_acquire(m(0), t(0), &AcqEntry::Vc(vc(&[(0, 3)])), true);
        let mut r = vc(&[(0, 4)]);
        q.on_release(m(0), t(0), &mut r, EventId::new(3), true, |_| {});
        // T1 releases a *read* section ordered after both: only the
        // write-mode entry joins (read/read section pairs do not conflict).
        q.on_acquire(m(0), t(1), &AcqEntry::Vc(vc(&[(1, 2)])), false);
        let mut now = vc(&[(0, 5), (1, 3)]);
        let mut fired = Vec::new();
        q.on_release(m(0), t(1), &mut now, EventId::new(6), false, |e| {
            fired.push(e)
        });
        assert_eq!(fired, vec![EventId::new(3)]);
        // Nothing was consumed: a later *write* release of T1 still sees
        // both entries.
        q.on_acquire(m(0), t(1), &AcqEntry::Vc(vc(&[(1, 5)])), true);
        let mut now = vc(&[(0, 5), (1, 6)]);
        let mut fired2 = Vec::new();
        q.on_release(m(0), t(1), &mut now, EventId::new(9), true, |e| {
            fired2.push(e)
        });
        assert_eq!(fired2, vec![EventId::new(1), EventId::new(3)]);
    }

    #[test]
    fn wcp_read_release_peeks_without_draining() {
        let mut q = WcpRuleBQueues::new();
        q.on_acquire(m(0), t(0), 1, false);
        q.on_release_publish(m(0), t(0), &vc(&[(0, 2)]), EventId::new(1));
        q.on_acquire(m(0), t(0), 3, true);
        q.on_release_publish(m(0), t(0), &vc(&[(0, 4)]), EventId::new(3));
        // A read-mode release joins only the write entry and drains nothing.
        let mut wcp = vc(&[(0, 4)]);
        let mut fired = Vec::new();
        q.consume(m(0), t(1), &mut wcp, false, |e| fired.push(e));
        assert_eq!(fired, vec![EventId::new(3)]);
        // A later write-mode release still consumes both.
        let mut wcp = vc(&[(0, 4)]);
        let mut fired2 = Vec::new();
        q.consume(m(0), t(2), &mut wcp, true, |e| fired2.push(e));
        assert_eq!(fired2, vec![EventId::new(1), EventId::new(3)]);
    }

    #[test]
    fn dc_compaction_preserves_unconsumed_entries() {
        let mut q = DcRuleBQueues::new();
        // 100 critical sections by T0, none ordered for T1.
        for i in 0..100u32 {
            q.on_acquire(m(0), t(0), &AcqEntry::Epoch(1_000 + i), true);
            let mut now = vc(&[(0, 1_000 + i)]);
            q.on_release(m(0), t(0), &mut now, EventId::new(i), true, |_| {});
        }
        q.on_acquire(m(0), t(1), &AcqEntry::Epoch(2), true);
        let mut now = vc(&[(0, 1_050), (1, 3)]);
        let mut fired = 0;
        q.on_release(m(0), t(1), &mut now, EventId::new(200), true, |_| {
            fired += 1
        });
        assert_eq!(fired, 51, "entries up to local time 1050 are ordered");
    }
}
