//! The strong-clock prefilter: vector clocks over every *unconditional*
//! closure edge — program order, fork/join, notify→wait, barrier
//! rendezvous, plain and volatile reads-from — and **no lock edges**.
//!
//! No sync-preserving reordering can break these edges, so if a prior
//! access is strong-ordered before the current one, the closure is
//! guaranteed to demand it into the ideal and the pair cannot race. The
//! detector consults [`StrongState::ordered_before`] to discard such
//! candidates without running the worklist closure; everything else in
//! this module is the per-op bookkeeping that keeps those clocks current.

use smarttrack_clock::{ThreadId, VectorClock};

use crate::common::{
    barrier_table_bytes, barrier_table_resident_bytes, slot, vc_table_bytes,
    vc_table_resident_bytes, BarrierRendezvous,
};

#[derive(Clone, Debug, Default)]
pub(crate) struct StrongState {
    threads: Vec<VectorClock>,
    /// Clock *at* the latest plain write, per variable (reads-from edge).
    var_w: Vec<VectorClock>,
    /// Clock at the latest volatile write, per volatile variable.
    vol_w: Vec<VectorClock>,
    /// Join of notifier clocks, per condvar.
    conds: Vec<VectorClock>,
    barriers: Vec<BarrierRendezvous>,
}

impl StrongState {
    pub(crate) fn reserve_threads(&mut self, additional: usize) {
        self.threads.reserve(additional);
    }

    pub(crate) fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Is the event at position `tpos` of thread `tid` strong-ordered
    /// before the current point of thread `t`?
    #[inline]
    pub(crate) fn ordered_before(&self, t: usize, tid: ThreadId, tpos: u32) -> bool {
        self.threads[t].get(tid) > tpos
    }

    /// Stamps thread `t`'s own position component — the event's slot in
    /// the strong clock. Runs before any edge for the event is absorbed.
    pub(crate) fn stamp(&mut self, t: ThreadId, tpos: u32) {
        slot(&mut self.threads, t.index()).set(t, tpos + 1);
    }

    /// Reads-from: a plain read absorbs the clock at its observed writer.
    pub(crate) fn absorb_read_from(&mut self, t: ThreadId, x: usize) {
        let wclock = slot(&mut self.var_w, x).clone();
        self.threads[t.index()].join(&wclock);
    }

    /// A plain write becomes the variable's latest-writer clock.
    pub(crate) fn stamp_last_write(&mut self, t: ThreadId, x: usize) {
        let now = self.threads[t.index()].clone();
        slot(&mut self.var_w, x).assign(&now);
    }

    /// Volatile reads-from: unconditional (a volatile read always observes
    /// the latest volatile write in a correct reordering).
    pub(crate) fn absorb_volatile(&mut self, t: ThreadId, v: usize) {
        let vclock = slot(&mut self.vol_w, v).clone();
        self.threads[t.index()].join(&vclock);
    }

    pub(crate) fn stamp_volatile(&mut self, t: ThreadId, v: usize) {
        let now = self.threads[t.index()].clone();
        slot(&mut self.vol_w, v).assign(&now);
    }

    /// Fork: the child's clock starts after the parent's fork point.
    pub(crate) fn fork(&mut self, t: ThreadId, u: ThreadId) {
        let now = self.threads[t.index()].clone();
        slot(&mut self.threads, u.index()).join(&now);
    }

    /// Join: the parent absorbs the joined child's full clock.
    pub(crate) fn join_child(&mut self, t: ThreadId, u: ThreadId) {
        let cu = slot(&mut self.threads, u.index()).clone();
        self.threads[t.index()].join(&cu);
    }

    /// A wait absorbs the join of all prior notifier clocks on its condvar.
    pub(crate) fn absorb_notifies(&mut self, t: ThreadId, c: usize) {
        let nc = slot(&mut self.conds, c).clone();
        self.threads[t.index()].join(&nc);
    }

    pub(crate) fn publish_notify(&mut self, t: ThreadId, c: usize) {
        let now = self.threads[t.index()].clone();
        slot(&mut self.conds, c).join(&now);
    }

    /// Barrier rendezvous: enters accumulate into the open round; an exit
    /// absorbs the whole round's accumulated clock.
    pub(crate) fn barrier_enter(&mut self, t: ThreadId, b: usize) {
        let now = self.threads[t.index()].clone();
        slot(&mut self.barriers, b).enter(&now);
    }

    pub(crate) fn barrier_exit(&mut self, t: ThreadId, b: usize) {
        let open = slot(&mut self.barriers, b).exit().clone();
        self.threads[t.index()].join(&open);
    }

    pub(crate) fn footprint_bytes(&self) -> usize {
        vc_table_bytes(&self.threads)
            + vc_table_bytes(&self.var_w)
            + vc_table_bytes(&self.vol_w)
            + vc_table_bytes(&self.conds)
            + barrier_table_bytes(&self.barriers)
    }

    pub(crate) fn resident_bytes(&self) -> usize {
        vc_table_resident_bytes(&self.threads)
            + vc_table_resident_bytes(&self.var_w)
            + vc_table_resident_bytes(&self.vol_w)
            + vc_table_resident_bytes(&self.conds)
            + barrier_table_resident_bytes(&self.barriers)
    }
}
