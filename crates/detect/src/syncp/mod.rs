//! Sync-preserving race prediction (Mathur, Pavlogiannis & Viswanathan,
//! arXiv 2010.16385): the `SyncP` analysis row.
//!
//! A pair of conflicting accesses is a *sync-preserving race* when some
//! correct reordering of the observed trace makes them adjacent while
//! keeping every lock acquisition in its observed order. Sync-preserving
//! reorderings may *drop* whole critical sections (that is what exposes the
//! paper's Figure 1 race), but never commute two acquisitions of one lock.
//! Every report is sound by construction: the closure that certifies a race
//! simultaneously *is* a witness reordering, which
//! [`syncp_pair_ideal`] exposes so the vindication layer can replay it
//! through `validate_witness` with no search.
//!
//! # The closure check
//!
//! For a candidate pair `(e1, e2)` with `e1` trace-earlier, build the
//! smallest set `I` (an *ideal*: per-thread prefix-closed) containing the
//! proper program-order prefixes of both events and closed under the rules
//! below; the pair races iff neither endpoint is forced into `I`. All rules
//! point trace-backward, so `I` only ever contains events before `e2` and
//! the events of `I` **in original trace order, followed by `e1, e2`**, form
//! a valid predicted trace.
//!
//! Normative rules (the post-paper ops follow `docs/ARCHITECTURE.md`):
//!
//! 1. **Program order** — `I` is per-thread prefix-closed.
//! 2. **Observation** — a read in `I` keeps its observed last writer: the
//!    writer joins `I`. Volatile reads likewise (separate namespace).
//! 3. **Lock semantics** — when two acquisitions `a1 <tr a2` of one lock
//!    are both in `I` and they are not both read-mode (`acqr`), the
//!    matching release of `a1` joins `I` (an open section would otherwise
//!    block the later observed acquisition). Crucially the rule fires only
//!    when *both* acquisitions are in `I`: an acquisition alone never drags
//!    in earlier sections, which is exactly how droppable critical sections
//!    stay dropped. Two read-mode sections never constrain each other, and
//!    a failed trylock (`tryf`) constrains nothing in any direction.
//! 4. **Condvar/barrier** — a `wait` in `I` keeps the notifies that
//!    preceded it (latest per notifying thread); a barrier exit keeps its
//!    round's enters. Consecutive rounds order *conditionally*: when any
//!    event of round `r` and an enter of round `r + 1` are both in `I`,
//!    round `r`'s exits join `I` (the trace model forbids gathering a new
//!    round while one drains, so a witness interleaving them is invalid).
//!    Wholly-absent rounds stay droppable — an unconditional
//!    enter → previous-exits edge would out-order the rendezvous clocks
//!    and break HB ⊆ SyncP on thread-disjoint consecutive rounds.
//! 5. **Fork/join** — a forked thread's first event keeps its fork; a
//!    `join` keeps the joined thread's entire projection.
//!
//! # Algorithmic profile
//!
//! Unlike the vector-clock rows, [`SyncP`] buffers the stream (the closure
//! is defined over prefixes of the observed trace) and answers per-access
//! race checks against each other thread's latest conflicting access. Two
//! O(1) prefilters dismiss the overwhelmingly common ordered cases before
//! any closure runs: a *strong clock* (program order + fork/join +
//! notify→wait + barrier rendezvous + reads-from edges — every
//! unconditional closure rule, and no lock edges) and a common-lock check
//! (both accesses holding one lock in conflicting modes). Only pairs that
//! survive both run the worklist closure, with an epoch-style cache
//! skipping repeated accesses under an unchanged synchronization context
//! (the cache skips only the checks — the per-variable candidate still
//! advances, because plain writes publish reads-from edges without
//! changing the context).
//!
//! Buffering the stream means state is O(events), not O(threads × vars):
//! fine for bounded inputs (`analyze`/`batch`), but a long-running
//! `serve` session carrying a SyncP lane grows without limit — bound the
//! session's lifetime, or run SyncP offline via the windowed pipeline.
//!
//! # OSR seam
//!
//! Optimistic synchronization-reversal prediction (Shi, Mathur &
//! Pavlogiannis, arXiv 2401.05642) relaxes rule 3's
//! observed-acquisition-order constraint with a bounded search over
//! acquisition commutations. It is implemented in the sibling
//! [`crate::Osr`] module as a second rule table over this module's
//! metadata ([`SyncPCore`]: sections, observation edges, rendezvous
//! rounds) — exactly the input that search consumes.

pub(crate) mod strong;

use smarttrack_clock::ThreadId;
use smarttrack_trace::{Event, EventId, Op, Trace, VarId};

use crate::common::slot;
use crate::counters::PathCounters;
use crate::report::{AccessKind, RaceReport, Report};
use crate::{Detector, HotPathStats, OptLevel, Relation};

use strong::StrongState;

pub(crate) const NONE: u32 = u32::MAX;

/// Per-event metadata retained for closure checks. `aux` is op-specific:
/// the observed last writer (reads), the prerequisite list index
/// (wait/barrier ops), or the section index (lock ops).
#[derive(Clone, Copy, Debug)]
pub(crate) struct EventMeta {
    pub(crate) tid: u32,
    /// Position within the thread's projection.
    pub(crate) tpos: u32,
    pub(crate) op: Op,
    pub(crate) aux: u32,
}

/// One critical section on one lock.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Section {
    pub(crate) lock: u32,
    /// Event index of the acquisition.
    pub(crate) acq: u32,
    /// Event index of the matching release ([`NONE`] while open).
    pub(crate) rel: u32,
    /// Exclusive (`acq`/`acqw`) vs read-mode (`acqr`).
    pub(crate) write: bool,
}

#[derive(Clone, Debug, Default)]
pub(crate) struct ThreadState {
    /// Event indexes of this thread's events, in order.
    pub(crate) proj: Vec<u32>,
    /// Currently held locks: `(lock, write-mode, section index)`.
    pub(crate) held: Vec<(u32, bool, u32)>,
    /// Event index of the fork that created this thread ([`NONE`] = root).
    pub(crate) fork: u32,
    /// Bumped at every synchronization op by this thread; part of the
    /// epoch-style cache key that lets unchanged-context re-accesses skip
    /// the race checks entirely.
    pub(crate) ctx: u32,
}

/// The latest access to one variable by one thread, with the lock holds at
/// the access (for the common-lock prefilter). The holds vector is reused
/// in place across updates, so steady-state accesses allocate nothing.
#[derive(Clone, Debug, Default)]
pub(crate) struct Candidate {
    pub(crate) tid: u32,
    pub(crate) idx: u32,
    pub(crate) holds: Vec<(u32, bool)>,
}

#[derive(Clone, Debug)]
pub(crate) struct VarState {
    /// Latest write per thread (insertion order — small).
    pub(crate) writes: Vec<Candidate>,
    /// Latest read per thread.
    pub(crate) reads: Vec<Candidate>,
    /// Bumped whenever either candidate list changes.
    pub(crate) version: u32,
    /// `(tid, thread ctx, table version)` of the last completed read /
    /// write check — a repeat with identical context is a fast-path skip.
    pub(crate) read_check: (u32, u32, u32),
    pub(crate) write_check: (u32, u32, u32),
}

impl Default for VarState {
    fn default() -> Self {
        VarState {
            writes: Vec::new(),
            reads: Vec::new(),
            version: 0,
            // The NONE tid matches no real thread, so a fresh variable
            // never aliases a genuine (tid 0, ctx 0, version 0) check.
            read_check: (NONE, 0, 0),
            write_check: (NONE, 0, 0),
        }
    }
}

#[derive(Clone, Debug, Default)]
pub(crate) struct BarrierState {
    /// Enter event indexes of the round currently gathering.
    pub(crate) gather: Vec<u32>,
    pub(crate) drain_remaining: u32,
    /// Sealed rounds, in rendezvous order: `(enters, exits)` prereq-pool
    /// indexes. The exits pool fills in as the round drains. Barrier
    /// event `aux` is a round index into this table (for an enter of a
    /// round that never seals, the index is one past the end).
    pub(crate) rounds: Vec<(u32, u32)>,
}

/// Reusable scratch for one closure check; per-lock entries are generation
/// stamped so resets are O(threads), not O(locks ever seen).
#[derive(Clone, Debug, Default)]
struct ClosureScratch {
    /// Per thread: number of events included in the ideal.
    frontier: Vec<u32>,
    /// Per thread: how many included events have been rule-processed.
    processed: Vec<u32>,
    /// Threads with `processed < frontier`.
    dirty: Vec<u32>,
    gen: u32,
    locks: Vec<LockScratch>,
    barriers: Vec<BarrierScratch>,
}

#[derive(Clone, Debug, Default)]
struct LockScratch {
    gen: u32,
    /// Latest included acquisition (event index + 1; 0 = none).
    max_any: u32,
    /// Latest included *write-mode* acquisition (event index + 1).
    max_w: u32,
    /// Included sections whose release is not yet scheduled.
    pending: Vec<u32>,
}

/// Per-barrier closure scratch for the conditional cross-round rule: a
/// round partially in the ideal must finish draining before a later
/// round's enter (the trace model forbids gathering while a round
/// drains), but wholly-absent rounds are droppable.
#[derive(Clone, Debug, Default)]
struct BarrierScratch {
    /// Per round: stamped with the closure gen once any event of the
    /// round is in the ideal.
    touched: Vec<u32>,
    /// Per round `r`: stamped with the closure gen once an enter of
    /// round `r + 1` is in the ideal.
    enter_next: Vec<u32>,
}

/// The buffered trace metadata plus the closure engine. Split from
/// [`SyncP`] so a check can borrow the metadata immutably while mutating
/// only the scratch.
#[derive(Clone, Debug, Default)]
pub(crate) struct SyncPCore {
    pub(crate) meta: Vec<EventMeta>,
    pub(crate) threads: Vec<ThreadState>,
    pub(crate) sections: Vec<Section>,
    /// Wait / barrier prerequisite lists (and previous-round exit lists).
    pub(crate) prereqs: Vec<Vec<u32>>,
    /// Latest notify per (condvar, thread): `(tid, event index)`.
    pub(crate) cond_notifies: Vec<Vec<(u32, u32)>>,
    pub(crate) barriers: Vec<BarrierState>,
    /// Latest plain / volatile write per variable (event indexes).
    pub(crate) var_lw: Vec<u32>,
    pub(crate) vol_lw: Vec<u32>,
}

/// Grows-and-indexes for the last-writer tables, whose empty slots must be
/// [`NONE`] (a defaulted `0` would alias event 0 — `slot()` is wrong here).
pub(crate) fn lw_slot(v: &mut Vec<u32>, i: usize) -> &mut u32 {
    if i >= v.len() {
        v.resize(i + 1, NONE);
    }
    &mut v[i]
}

impl SyncPCore {
    pub(crate) fn thread(&mut self, t: usize) -> &mut ThreadState {
        if t >= self.threads.len() {
            self.threads.resize_with(t + 1, || ThreadState {
                fork: NONE,
                ..ThreadState::default()
            });
        }
        &mut self.threads[t]
    }

    /// Records `event` (already assigned index `idx`) into the metadata
    /// tables and returns its meta entry.
    pub(crate) fn ingest(&mut self, idx: u32, event: &Event) -> EventMeta {
        let t = event.tid.index();
        let aux = match event.op {
            Op::Read(x) => self.var_lw.get(x.index()).copied().unwrap_or(NONE),
            Op::Write(x) => {
                *lw_slot(&mut self.var_lw, x.index()) = idx;
                NONE
            }
            Op::VolatileRead(v) => self.vol_lw.get(v.index()).copied().unwrap_or(NONE),
            Op::VolatileWrite(v) => {
                *lw_slot(&mut self.vol_lw, v.index()) = idx;
                NONE
            }
            Op::Acquire(m) | Op::AcqWrite(m) | Op::AcqRead(m) => {
                let write = !matches!(event.op, Op::AcqRead(_));
                let sidx = self.sections.len() as u32;
                self.sections.push(Section {
                    lock: m.raw(),
                    acq: idx,
                    rel: NONE,
                    write,
                });
                self.thread(t).held.push((m.raw(), write, sidx));
                sidx
            }
            Op::Release(m) => {
                let held = &mut self.thread(t).held;
                match held.iter().rposition(|&(l, ..)| l == m.raw()) {
                    Some(pos) => {
                        let (.., sidx) = held.remove(pos);
                        self.sections[sidx as usize].rel = idx;
                        sidx
                    }
                    // Release of an unheld lock (raw unvalidated stream):
                    // benign, constrains nothing.
                    None => NONE,
                }
            }
            Op::TryAcqFail(_) => NONE,
            Op::Fork(u) => {
                self.thread(u.index()).fork = idx;
                NONE
            }
            Op::Join(_) => NONE,
            Op::Wait(c, _) => {
                let latest = self
                    .cond_notifies
                    .get(c.index())
                    .map(|l| l.iter().map(|&(_, n)| n).collect::<Vec<_>>())
                    .unwrap_or_default();
                self.prereqs.push(latest);
                (self.prereqs.len() - 1) as u32
            }
            Op::Notify(c) | Op::NotifyAll(c) => {
                let latest = slot(&mut self.cond_notifies, c.index());
                match latest.iter_mut().find(|(u, _)| *u == t as u32) {
                    Some(entry) => entry.1 = idx,
                    None => latest.push((t as u32, idx)),
                }
                NONE
            }
            // Barrier aux is a round index into `BarrierState::rounds`.
            // An enter constrains nothing unconditionally: whole rounds
            // are droppable, and surviving rounds keep their grouping and
            // ordering via the closure's exit rule and conditional
            // cross-round rule (an unconditional enter → previous-exits
            // edge would order thread-disjoint consecutive rounds,
            // breaking HB ⊆ SyncP).
            Op::BarrierEnter(b) => {
                if self.barriers.len() <= b.index() {
                    self.barriers
                        .resize_with(b.index() + 1, BarrierState::default);
                }
                let bs = &mut self.barriers[b.index()];
                if bs.drain_remaining > 0 {
                    // Out-of-protocol enter while draining (impossible on
                    // validated streams): start a fresh round benignly.
                    bs.drain_remaining = 0;
                }
                bs.gather.push(idx);
                bs.rounds.len() as u32
            }
            Op::BarrierExit(b) => {
                if self.barriers.len() <= b.index() {
                    self.barriers
                        .resize_with(b.index() + 1, BarrierState::default);
                }
                let bs = &mut self.barriers[b.index()];
                if bs.drain_remaining == 0 {
                    // First exit seals the gathering round.
                    let enters = std::mem::take(&mut bs.gather);
                    bs.drain_remaining = enters.len().max(1) as u32;
                    self.prereqs.push(enters);
                    self.prereqs.push(Vec::new());
                    let n = self.prereqs.len() as u32;
                    bs.rounds.push((n - 2, n - 1));
                }
                let r = bs.rounds.len() as u32 - 1;
                self.prereqs[bs.rounds[r as usize].1 as usize].push(idx);
                bs.drain_remaining -= 1;
                r
            }
        };
        let ts = self.thread(t);
        let tpos = ts.proj.len() as u32;
        ts.proj.push(idx);
        let meta = EventMeta {
            tid: t as u32,
            tpos,
            op: event.op,
            aux,
        };
        self.meta.push(meta);
        meta
    }

    /// Runs the sync-preserving closure for the conflicting pair at event
    /// indexes `a < b`. Returns `true` when the pair is a sync-preserving
    /// race: the closure of both proper prefixes contains neither endpoint.
    ///
    /// This is the seam an OSR-style analysis would replace: same metadata,
    /// weaker rule 3.
    fn check_pair(&self, scratch: &mut ClosureScratch, a: u32, b: u32) -> bool {
        let (ma, mb) = (self.meta[a as usize], self.meta[b as usize]);
        debug_assert_ne!(ma.tid, mb.tid);
        scratch.gen = scratch.gen.wrapping_add(1);
        let nthreads = self.threads.len();
        scratch.frontier.clear();
        scratch.frontier.resize(nthreads, 0);
        scratch.processed.clear();
        scratch.processed.resize(nthreads, 0);
        scratch.dirty.clear();

        // `raise` returns `true` as soon as a rule forces either endpoint
        // into the ideal — the pair is then synchronization-ordered, not a
        // race.
        fn raise(
            scratch: &mut ClosureScratch,
            ma: EventMeta,
            mb: EventMeta,
            t: u32,
            upto: u32,
        ) -> bool {
            if upto > scratch.frontier[t as usize] {
                if (t == ma.tid && upto > ma.tpos) || (t == mb.tid && upto > mb.tpos) {
                    return true;
                }
                scratch.frontier[t as usize] = upto;
                scratch.dirty.push(t);
            }
            false
        }
        let mut ordered =
            raise(scratch, ma, mb, ma.tid, ma.tpos) || raise(scratch, ma, mb, mb.tid, mb.tpos);
        // A racing event that is its thread's first must still be
        // enabled: its fork joins the ideal.
        for m in [ma, mb] {
            if m.tpos == 0 {
                let f = self.threads[m.tid as usize].fork;
                if f != NONE {
                    let fm = self.meta[f as usize];
                    ordered |= raise(scratch, ma, mb, fm.tid, fm.tpos + 1);
                }
            }
        }
        if ordered {
            return false;
        }

        'outer: while let Some(t) = scratch.dirty.pop() {
            while scratch.processed[t as usize] < scratch.frontier[t as usize] {
                if ordered {
                    break 'outer;
                }
                let pos = scratch.processed[t as usize];
                scratch.processed[t as usize] = pos + 1;
                let idx = self.threads[t as usize].proj[pos as usize];
                let m = self.meta[idx as usize];
                if m.tpos == 0 {
                    let f = self.threads[t as usize].fork;
                    if f != NONE {
                        let fm = self.meta[f as usize];
                        ordered |= raise(scratch, ma, mb, fm.tid, fm.tpos + 1);
                    }
                }
                match m.op {
                    Op::Read(_) | Op::VolatileRead(_) if m.aux != NONE => {
                        let lw = self.meta[m.aux as usize];
                        ordered |= raise(scratch, ma, mb, lw.tid, lw.tpos + 1);
                    }
                    Op::Wait(..) if m.aux != NONE => {
                        for &p in &self.prereqs[m.aux as usize] {
                            let pm = self.meta[p as usize];
                            ordered |= raise(scratch, ma, mb, pm.tid, pm.tpos + 1);
                        }
                    }
                    // Rule 4's barrier half. `m.aux` is the event's round
                    // index; an exit pulls its round's enters, and the
                    // conditional cross-round rule pulls round r's exits
                    // once both some event of round r and an enter of
                    // round r + 1 are included (whichever lands second
                    // fires the pull).
                    Op::BarrierEnter(b) | Op::BarrierExit(b) => {
                        let rounds = &self.barriers[b.index()].rounds;
                        let r = m.aux as usize;
                        let gen = scratch.gen;
                        let bsc = slot(&mut scratch.barriers, b.index());
                        if bsc.touched.len() < rounds.len() {
                            bsc.touched.resize(rounds.len(), 0);
                            bsc.enter_next.resize(rounds.len(), 0);
                        }
                        // Collect the prereq pools to pull, then raise
                        // (split borrows, as in the lock rule).
                        let mut pull: Vec<u32> = Vec::new();
                        if matches!(m.op, Op::BarrierExit(_)) {
                            pull.push(rounds[r].0);
                        }
                        // An enter of a still-gathering round has
                        // `r == rounds.len()`: nothing to mark or pull
                        // for its own round yet.
                        if r < rounds.len() {
                            bsc.touched[r] = gen;
                            if bsc.enter_next[r] == gen {
                                pull.push(rounds[r].1);
                            }
                        }
                        if matches!(m.op, Op::BarrierEnter(_)) && r > 0 {
                            bsc.enter_next[r - 1] = gen;
                            if bsc.touched[r - 1] == gen {
                                pull.push(rounds[r - 1].1);
                            }
                        }
                        for pool in pull {
                            for &p in &self.prereqs[pool as usize] {
                                let pm = self.meta[p as usize];
                                ordered |= raise(scratch, ma, mb, pm.tid, pm.tpos + 1);
                            }
                        }
                    }
                    Op::Join(u) => {
                        let len = self.threads[u.index()].proj.len() as u32;
                        ordered |= raise(scratch, ma, mb, u.index() as u32, len);
                    }
                    Op::Acquire(_) | Op::AcqWrite(_) | Op::AcqRead(_) => {
                        if m.aux == NONE {
                            continue;
                        }
                        let s = self.sections[m.aux as usize];
                        let ls = slot(&mut scratch.locks, s.lock as usize);
                        if ls.gen != scratch.gen {
                            ls.gen = scratch.gen;
                            ls.max_any = 0;
                            ls.max_w = 0;
                            ls.pending.clear();
                        }
                        // Gather pairwise rule-3 triggers first, then
                        // raise (split borrows: `pending` lives in
                        // `scratch.locks`, raise mutates frontiers).
                        let mut need_rel: Vec<u32> = Vec::new();
                        let later = if s.write { ls.max_any } else { ls.max_w };
                        if later > s.acq {
                            need_rel.push(m.aux);
                        } else {
                            ls.pending.push(m.aux);
                        }
                        let sections = &self.sections;
                        ls.pending.retain(|&p| {
                            let ps = sections[p as usize];
                            if p != m.aux && ps.acq < s.acq && (ps.write || s.write) {
                                need_rel.push(p);
                                false
                            } else {
                                true
                            }
                        });
                        ls.max_any = ls.max_any.max(s.acq + 1);
                        if s.write {
                            ls.max_w = ls.max_w.max(s.acq + 1);
                        }
                        for p in need_rel {
                            let rel = self.sections[p as usize].rel;
                            if rel == NONE {
                                // A demanded release that never happened
                                // (open section): the pair is not
                                // reorderable — treat as ordered.
                                // Unreachable on well-formed traces.
                                ordered = true;
                            } else {
                                let rm = self.meta[rel as usize];
                                ordered |= raise(scratch, ma, mb, rm.tid, rm.tpos + 1);
                            }
                        }
                    }
                    Op::Release(_) if m.aux != NONE => {
                        let s = self.sections[m.aux as usize];
                        let ls = slot(&mut scratch.locks, s.lock as usize);
                        if ls.gen == scratch.gen {
                            ls.pending.retain(|&p| p != m.aux);
                        }
                    }
                    _ => {}
                }
            }
        }
        !ordered
    }

    /// The ideal of the last successful [`check_pair`](Self::check_pair),
    /// as event indexes in trace order (reads the frontier left in
    /// `scratch`).
    fn ideal(&self, scratch: &ClosureScratch) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for (t, ts) in self.threads.iter().enumerate() {
            let upto = scratch.frontier.get(t).copied().unwrap_or(0) as usize;
            out.extend_from_slice(&ts.proj[..upto.min(ts.proj.len())]);
        }
        out.sort_unstable();
        out
    }

    pub(crate) fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.meta.capacity() * size_of::<EventMeta>()
            + self.sections.capacity() * size_of::<Section>()
            + self.threads.capacity() * size_of::<ThreadState>()
            + self
                .threads
                .iter()
                .map(|ts| {
                    ts.proj.capacity() * size_of::<u32>()
                        + ts.held.capacity() * size_of::<(u32, bool, u32)>()
                })
                .sum::<usize>()
            + self.prereqs.capacity() * size_of::<Vec<u32>>()
            + self.var_lw.capacity() * size_of::<u32>()
            + self.vol_lw.capacity() * size_of::<u32>()
    }

    pub(crate) fn footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        self.resident_bytes()
            + self
                .prereqs
                .iter()
                .map(|p| p.capacity() * size_of::<u32>())
                .sum::<usize>()
            + self
                .cond_notifies
                .iter()
                .map(|l| l.capacity() * size_of::<(u32, u32)>())
                .sum::<usize>()
            + self.cond_notifies.capacity() * size_of::<Vec<(u32, u32)>>()
            + self.barriers.capacity() * size_of::<BarrierState>()
            + self
                .barriers
                .iter()
                .map(|b| {
                    b.gather.capacity() * size_of::<u32>()
                        + b.rounds.capacity() * size_of::<(u32, u32)>()
                })
                .sum::<usize>()
    }
}

/// The sync-preserving race predictor (`SyncP`) — see the module docs for
/// the relation and the closure rules.
///
/// # Examples
///
/// SyncP detects the paper's Figure 1 predictable race, which HB misses:
///
/// ```
/// use smarttrack_detect::{run_detector, Detector, SyncP};
/// use smarttrack_trace::paper;
///
/// let mut det = SyncP::new();
/// run_detector(&mut det, &paper::figure1());
/// assert_eq!(det.report().dynamic_count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SyncP {
    core: SyncPCore,
    strong: StrongState,
    vars: Vec<VarState>,
    scratch: ClosureScratch,
    report: Report,
    paths: PathCounters,
}

impl SyncP {
    /// Creates the analysis with empty state.
    pub fn new() -> Self {
        SyncP::default()
    }

    /// Strong-clock order test: is the access at `idx` ordered before the
    /// current point of thread `t`?
    #[inline]
    fn strong_ordered(&self, t: usize, idx: u32) -> bool {
        let m = self.core.meta[idx as usize];
        self.strong.ordered_before(t, ThreadId::new(m.tid), m.tpos)
    }

    /// Common-lock prefilter: both endpoints hold `l` and at least one
    /// hold is write-mode ⇒ rule 3 orders them.
    #[inline]
    fn common_lock(cur: &[(u32, bool, u32)], cand: &[(u32, bool)]) -> bool {
        cur.iter()
            .any(|&(l, w, _)| cand.iter().any(|&(cl, cw)| cl == l && (w || cw)))
    }

    fn access(&mut self, id: EventId, event: &Event, x: VarId, is_write: bool) {
        let idx = (self.core.meta.len() - 1) as u32; // ingest() already ran
        let t = event.tid.index();
        let vs = slot(&mut self.vars, x.index());
        let key = (t as u32, self.core.threads[t].ctx, vs.version);
        let cached = if is_write {
            vs.write_check
        } else {
            vs.read_check
        };
        if cached == key {
            // Same thread, unchanged sync context, unchanged candidates:
            // the race-check outcome would repeat — the epoch-style fast
            // path skips the closure work. The candidate entry must still
            // advance to *this* event, though: plain writes to other
            // variables publish reads-from edges without bumping `ctx`, so
            // a peer's strong clock can come to cover the stale candidate
            // while this thread's true latest access still races.
            self.paths.fast += 1;
            let vs = &mut self.vars[x.index()];
            let list = if is_write {
                &mut vs.writes
            } else {
                &mut vs.reads
            };
            let c = list
                .iter_mut()
                .find(|c| c.tid == t as u32)
                .expect("a matching cache key implies a stored candidate");
            c.idx = idx;
            vs.version += 1;
            let key = (t as u32, self.core.threads[t].ctx, vs.version);
            if is_write {
                vs.write_check = key;
            } else {
                vs.read_check = key;
            }
            return;
        }
        self.paths.slow += 1;

        let mut prior: Vec<ThreadId> = Vec::new();
        let cur_holds = self.core.threads[t].held.clone();
        let n_writes = self.vars[x.index()].writes.len();
        let n_reads = if is_write {
            self.vars[x.index()].reads.len()
        } else {
            0
        };
        for ci in 0..n_writes + n_reads {
            let (cand_tid, cand_idx, racy);
            {
                let vs = &self.vars[x.index()];
                let c = if ci < n_writes {
                    &vs.writes[ci]
                } else {
                    &vs.reads[ci - n_writes]
                };
                if c.tid == t as u32 {
                    continue;
                }
                let tid = ThreadId::new(c.tid);
                if prior.contains(&tid) {
                    continue;
                }
                if self.strong_ordered(t, c.idx) || Self::common_lock(&cur_holds, &c.holds) {
                    continue;
                }
                racy = self.core.check_pair(&mut self.scratch, c.idx, idx);
                cand_tid = tid;
                cand_idx = c.idx;
            }
            let _ = cand_idx;
            if racy {
                prior.push(cand_tid);
            }
        }
        if !prior.is_empty() {
            self.report.push(RaceReport {
                event: id,
                loc: event.loc,
                tid: event.tid,
                var: x,
                kind: if is_write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                prior_threads: prior,
            });
        }

        // Record this access as its thread's latest candidate and refresh
        // the fast-path cache key against the bumped table version.
        let vs = &mut self.vars[x.index()];
        let list = if is_write {
            &mut vs.writes
        } else {
            &mut vs.reads
        };
        let c = match list.iter_mut().find(|c| c.tid == t as u32) {
            Some(c) => c,
            None => {
                list.push(Candidate {
                    tid: t as u32,
                    ..Candidate::default()
                });
                list.last_mut().expect("just pushed")
            }
        };
        c.idx = idx;
        c.holds.clear();
        c.holds.extend(cur_holds.iter().map(|&(l, w, _)| (l, w)));
        vs.version += 1;
        let key = (t as u32, self.core.threads[t].ctx, vs.version);
        if is_write {
            vs.write_check = key;
        } else {
            vs.read_check = key;
        }
    }
}

impl Detector for SyncP {
    fn name(&self) -> &'static str {
        "SyncP"
    }

    fn relation(&self) -> Relation {
        Relation::SyncP
    }

    fn opt_level(&self) -> OptLevel {
        OptLevel::Unopt
    }

    fn begin_stream(&mut self, hint: crate::StreamHint) {
        use crate::StreamHint;
        self.core
            .meta
            .reserve(StreamHint::presize(hint.events, self.core.meta.len()));
        self.vars
            .reserve(StreamHint::presize(hint.vars, self.vars.len()));
        self.strong.reserve_threads(StreamHint::presize(
            hint.threads,
            self.strong.thread_count(),
        ));
    }

    fn process(&mut self, id: EventId, event: &Event) {
        let t = event.tid;
        self.core.ingest(self.core.meta.len() as u32, event);
        let tpos = self.core.meta.last().expect("just ingested").tpos;
        // Position component first: the event's own slot in the strong
        // clock. Accesses run their race checks *before* absorbing their
        // reads-from edge — the racing pair itself is exempt from
        // observation (the witness validator exempts it too).
        self.strong.stamp(t, tpos);
        match event.op {
            Op::Read(x) => {
                self.access(id, event, x, false);
                let m = self.core.meta.last().expect("present");
                if m.aux != NONE {
                    self.strong.absorb_read_from(t, x.index());
                }
            }
            Op::Write(x) => {
                self.access(id, event, x, true);
                self.strong.stamp_last_write(t, x.index());
            }
            Op::VolatileRead(v) => {
                self.strong.absorb_volatile(t, v.index());
                self.core.thread(t.index()).ctx += 1;
            }
            Op::VolatileWrite(v) => {
                self.strong.stamp_volatile(t, v.index());
                self.core.thread(t.index()).ctx += 1;
            }
            Op::Fork(u) => {
                self.strong.fork(t, u);
                self.core.thread(t.index()).ctx += 1;
            }
            Op::Join(u) => {
                self.strong.join_child(t, u);
                self.core.thread(t.index()).ctx += 1;
            }
            Op::Wait(c, _) => {
                self.strong.absorb_notifies(t, c.index());
                self.core.thread(t.index()).ctx += 1;
            }
            Op::Notify(c) | Op::NotifyAll(c) => {
                self.strong.publish_notify(t, c.index());
                self.core.thread(t.index()).ctx += 1;
            }
            Op::BarrierEnter(b) => {
                self.strong.barrier_enter(t, b.index());
                self.core.thread(t.index()).ctx += 1;
            }
            Op::BarrierExit(b) => {
                self.strong.barrier_exit(t, b.index());
                self.core.thread(t.index()).ctx += 1;
            }
            Op::Acquire(_)
            | Op::AcqRead(_)
            | Op::AcqWrite(_)
            | Op::Release(_)
            | Op::TryAcqFail(_) => {
                // No strong edges (lock order is rule 3's conditional
                // business), but the sync context changed.
                self.core.thread(t.index()).ctx += 1;
            }
        }
    }

    fn report(&self) -> &Report {
        &self.report
    }

    fn footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        self.core.footprint_bytes()
            + self.strong.footprint_bytes()
            + self.vars.capacity() * size_of::<VarState>()
            + self
                .vars
                .iter()
                .map(|vs| {
                    vs.writes
                        .iter()
                        .chain(vs.reads.iter())
                        .map(|c| c.holds.capacity() * size_of::<(u32, bool)>())
                        .sum::<usize>()
                        + (vs.writes.capacity() + vs.reads.capacity()) * size_of::<Candidate>()
                })
                .sum::<usize>()
            + self.report.footprint_bytes()
    }

    fn state_bytes(&self) -> usize {
        // The buffered event log dominates — SyncP's state grows with the
        // trace, unlike the vector-clock rows. The cheap estimate skips
        // per-variable candidate walks.
        self.core.resident_bytes()
            + self.strong.resident_bytes()
            + self.vars.capacity() * std::mem::size_of::<VarState>()
            + self.report.footprint_bytes()
    }

    fn hot_path_stats(&self) -> HotPathStats {
        HotPathStats {
            fast_hits: self.paths.fast,
            slow_hits: self.paths.slow,
            state_bytes: self.state_bytes(),
        }
    }
}

/// Offline pair check exposing the witness: replays `trace` up to the later
/// of `(e1, e2)`, runs the sync-preserving closure, and — when the pair
/// races — returns the full witness reordering: the closure ideal in
/// original trace order, followed by the pair itself. The returned order
/// passes `validate_witness` (the vindication layer's §2.2 checker) by
/// construction; `None` means the pair is synchronization-ordered (not a
/// sync-preserving race).
///
/// # Panics
///
/// Panics if either id is out of bounds or the events do not conflict.
pub fn syncp_pair_ideal(trace: &Trace, e1: EventId, e2: EventId) -> Option<Vec<EventId>> {
    let (a, b) = if e1.index() <= e2.index() {
        (e1, e2)
    } else {
        (e2, e1)
    };
    assert!(
        trace.event(a).conflicts_with(trace.event(b)),
        "syncp_pair_ideal wants a conflicting pair"
    );
    let mut core = SyncPCore::default();
    for (id, event) in trace.iter() {
        if id.index() > b.index() {
            break;
        }
        core.ingest(id.index() as u32, event);
    }
    let mut scratch = ClosureScratch::default();
    if !core.check_pair(&mut scratch, a.index() as u32, b.index() as u32) {
        return None;
    }
    let mut order: Vec<EventId> = core.ideal(&scratch).into_iter().map(EventId::new).collect();
    order.push(a);
    order.push(b);
    Some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_detector;
    use smarttrack_trace::{paper, LockId, ThreadId, TraceBuilder};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }

    fn run(b: TraceBuilder) -> Report {
        let mut det = SyncP::new();
        run_detector(&mut det, &b.finish());
        det.report().clone()
    }

    #[test]
    fn detects_unsynchronized_write_write() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        let r = run(b);
        assert_eq!(r.dynamic_count(), 1);
        assert_eq!(r.races()[0].prior_threads, vec![t(0)]);
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        let mut b = TraceBuilder::new();
        for i in 0..2 {
            b.push(t(i), Op::Acquire(m(0))).unwrap();
            b.push(t(i), Op::Write(x(0))).unwrap();
            b.push(t(i), Op::Release(m(0))).unwrap();
        }
        assert!(run(b).is_empty());
    }

    #[test]
    fn detects_figure1_sync_preserving_race() {
        let mut det = SyncP::new();
        run_detector(&mut det, &paper::figure1());
        let r = det.report();
        assert_eq!(r.dynamic_count(), 1, "figure 1 is a sync-preserving race");
        // The race is on x, detected at T2's wr(x) (event 7).
        assert_eq!(r.races()[0].event, EventId::new(7));
    }

    #[test]
    fn figure1_ideal_is_the_paper_witness_shape() {
        let tr = paper::figure1();
        let order =
            syncp_pair_ideal(&tr, EventId::new(0), EventId::new(7)).expect("figure 1 pair races");
        // The ideal must drop T1's critical section entirely (events 1-3)
        // and keep T2's whole section (events 4-6), mirroring Figure 1(b).
        let ids: Vec<usize> = order.iter().map(|e| e.index()).collect();
        assert_eq!(ids, vec![4, 5, 6, 0, 7]);
    }

    #[test]
    fn misses_figure3_unpredictable_race() {
        let mut det = SyncP::new();
        run_detector(&mut det, &paper::figure3());
        assert!(
            det.report().is_empty(),
            "figure 3 has no predictable race, so sound-by-construction \
             SyncP must stay silent"
        );
    }

    #[test]
    fn observed_reads_pin_their_writers() {
        // t0 writes x under no lock; t1 reads x (observing t0's write),
        // then t0 writes again. (w1, r) race; (r, w2)… r's prefix is empty,
        // w2's prefix contains w1 and r is not pulled — the pair races too,
        // but the *reported* race at r is against w1.
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap();
        let r = run(b);
        assert_eq!(r.dynamic_count(), 1);
        assert_eq!(r.races()[0].kind, AccessKind::Read);
    }

    #[test]
    fn reads_from_edge_orders_later_accesses() {
        // t1 reads t0's write, then t1 writes a second variable that t0
        // wrote *before* its x-write: the rf edge orders them.
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(1))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap(); // rf: observes t0's wr(x0)
        b.push(t(1), Op::Write(x(1))).unwrap(); // ordered after wr(x1)? NO —
                                                // dropping rd(x0) from the ideal is not allowed (it is in t1's
                                                // prefix), and rd(x0) pins wr(x0), whose prefix contains wr(x1).
        let r = run(b);
        // rd(x0) itself races with wr(x0)'s *absence of sync* — expected:
        // the read is reported; the wr(x1) pair is ordered via the rf edge.
        assert_eq!(r.dynamic_count(), 1);
        assert_eq!(r.races()[0].kind, AccessKind::Read);
    }

    #[test]
    fn read_sections_stay_mutually_unordered() {
        // Two overlapping read-mode sections; writes inside them race
        // (the captured-RwLock bug shape).
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::AcqRead(m(0))).unwrap();
        b.push(t(1), Op::AcqRead(m(0))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Release(m(0))).unwrap();
        let r = run(b);
        assert_eq!(r.dynamic_count(), 1, "read-mode holds do not exclude");
    }

    #[test]
    fn write_mode_sections_exclude() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::AcqWrite(m(0))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::AcqRead(m(0))).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap();
        b.push(t(1), Op::Release(m(0))).unwrap();
        assert!(run(b).is_empty(), "writer/reader sections exclude");
    }

    #[test]
    fn trylock_failure_constrains_nothing() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(1), Op::TryAcqFail(m(0))).unwrap();
        b.push(t(0), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        let r = run(b);
        assert_eq!(r.dynamic_count(), 1, "tryf adds no ordering");
    }

    #[test]
    fn fast_path_refreshes_candidate_past_rf_publishing_writes() {
        // t0's second wr(x0) takes the epoch fast path (same ctx,
        // unchanged candidates for x0). The wr(x1) in between publishes a
        // reads-from edge without bumping ctx; t1's rd(x1) absorbs it,
        // which strong-orders t0's *first* wr(x0) but not the second. A
        // fast path that leaves the candidate stale would dismiss t1's
        // wr(x0) as ordered, violating HB ⊆ SyncP.
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Write(x(1))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap(); // epoch fast path
        b.push(t(1), Op::Read(x(1))).unwrap(); // rf: covers t0 up to wr(x1)
        b.push(t(1), Op::Write(x(0))).unwrap(); // races with the 2nd wr(x0)
        let r = run(b);
        assert!(
            r.races()
                .iter()
                .any(|race| race.var == x(0) && race.tid == t(1)),
            "t1's wr(x0) must race with t0's latest wr(x0): {:?}",
            r.races()
        );
    }

    #[test]
    fn fork_join_order() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Fork(t(1))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Join(t(1))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap();
        assert!(run(b).is_empty());
    }

    #[test]
    fn droppable_section_does_not_shield() {
        // Like figure 1 but distilled: t0's lock section is irrelevant to
        // the racing pair and must be droppable.
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Read(x(0))).unwrap();
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        b.push(t(0), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Acquire(m(0))).unwrap();
        b.push(t(1), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        let r = run(b);
        assert_eq!(r.dynamic_count(), 1, "the m-sections are droppable");
    }

    #[test]
    fn same_lock_observation_chain_orders() {
        // The classic case the closure must keep ordered: t1's section
        // *observes* t0's section (reads y written inside it), so dropping
        // is impossible and lock order applies transitively to the
        // accesses.
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        b.push(t(0), Op::Write(x(1))).unwrap();
        b.push(t(0), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Acquire(m(0))).unwrap();
        b.push(t(1), Op::Read(x(1))).unwrap(); // observes t0's wr(x1)
        b.push(t(1), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        assert!(
            run(b).is_empty(),
            "observation pins the first section; lock order + PO order the pair"
        );
    }

    #[test]
    fn wait_keeps_notifier() {
        use smarttrack_trace::CondId;
        let (c, l) = (CondId::new(0), m(0));
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Notify(c)).unwrap();
        b.push(t(1), Op::Acquire(l)).unwrap();
        b.push(t(1), Op::Wait(c, l)).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap();
        b.push(t(1), Op::Release(l)).unwrap();
        assert!(run(b).is_empty(), "the wait pins its notify");
    }

    #[test]
    fn barrier_orders_across_rounds() {
        use smarttrack_trace::BarrierId;
        let bar = BarrierId::new(0);
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::BarrierEnter(bar)).unwrap();
        b.push(t(1), Op::BarrierEnter(bar)).unwrap();
        b.push(t(0), Op::BarrierExit(bar)).unwrap();
        b.push(t(1), Op::BarrierExit(bar)).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap();
        assert!(run(b).is_empty(), "the exit pins the round's enters");
    }

    #[test]
    fn disjoint_barrier_rounds_do_not_order() {
        // Round 1 rendezvouses t0/t1, round 2 rendezvouses t2/t3 — no
        // shared thread. t0's pre-round-1 write still races with t2's
        // post-round-2 read: round 1 is droppable wholesale, so an
        // unconditional enter → previous-round-exits edge would be wrong
        // (HB reports this race; the exhaustive oracle confirms it).
        use smarttrack_trace::BarrierId;
        let bar = BarrierId::new(0);
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::BarrierEnter(bar)).unwrap();
        b.push(t(1), Op::BarrierEnter(bar)).unwrap();
        b.push(t(0), Op::BarrierExit(bar)).unwrap();
        b.push(t(1), Op::BarrierExit(bar)).unwrap();
        b.push(t(2), Op::BarrierEnter(bar)).unwrap();
        b.push(t(3), Op::BarrierEnter(bar)).unwrap();
        b.push(t(2), Op::BarrierExit(bar)).unwrap();
        b.push(t(3), Op::BarrierExit(bar)).unwrap();
        b.push(t(2), Op::Read(x(0))).unwrap();
        let r = run(b);
        assert_eq!(r.dynamic_count(), 1, "disjoint rounds do not order");
        assert_eq!(r.races()[0].event, EventId::new(9));
    }

    #[test]
    fn partially_kept_round_finishes_draining_before_the_next_enter() {
        // Round 0 rendezvouses t0/t1, round 1 rendezvouses t1/t2. t0's
        // post-round-0 write races with t2's post-round-1 write (no HB
        // path: t0 sits out round 1), but the witness must include t0's
        // round-0 exit: round 0 is partially in the ideal through t1,
        // round 1's enter is too, and replay forbids gathering a new
        // round while one drains. Dropping the whole of round 0 is not
        // an option either — t1's kept exit pins its enters.
        use smarttrack_trace::BarrierId;
        let bar = BarrierId::new(0);
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::BarrierEnter(bar)).unwrap(); // 0
        b.push(t(1), Op::BarrierEnter(bar)).unwrap(); // 1
        b.push(t(1), Op::BarrierExit(bar)).unwrap(); // 2
        b.push(t(0), Op::BarrierExit(bar)).unwrap(); // 3
        b.push(t(0), Op::Write(x(0))).unwrap(); // 4
        b.push(t(1), Op::BarrierEnter(bar)).unwrap(); // 5
        b.push(t(2), Op::BarrierEnter(bar)).unwrap(); // 6
        b.push(t(1), Op::BarrierExit(bar)).unwrap(); // 7
        b.push(t(2), Op::BarrierExit(bar)).unwrap(); // 8
        b.push(t(2), Op::Write(x(0))).unwrap(); // 9
        let tr = b.finish();
        let mut det = SyncP::new();
        run_detector(&mut det, &tr);
        assert_eq!(det.report().dynamic_count(), 1);
        assert_eq!(det.report().races()[0].event, EventId::new(9));
        let order =
            syncp_pair_ideal(&tr, EventId::new(4), EventId::new(9)).expect("the pair races");
        let ids: Vec<usize> = order.iter().map(|e| e.index()).collect();
        assert!(
            ids.contains(&3),
            "t0's round-0 exit must be pulled into the witness, got {ids:?}"
        );
        assert_eq!(ids, vec![0, 1, 2, 3, 5, 6, 8, 4, 9]);
    }

    #[test]
    fn every_reported_race_has_a_valid_ideal() {
        // The witness-extraction path agrees with the streaming detector
        // on the paper figures.
        for tr in [paper::figure1(), paper::figure2()] {
            let mut det = SyncP::new();
            run_detector(&mut det, &tr);
            for race in det.report().races() {
                // Recover one racing pair: the reported access vs the
                // prior thread's latest earlier conflicting access.
                let e2 = race.event;
                let prior = race.prior_threads[0];
                let e1 = tr
                    .iter()
                    .filter(|(id, e)| {
                        id.index() < e2.index() && e.tid == prior && e.conflicts_with(tr.event(e2))
                    })
                    .map(|(id, _)| id)
                    .last()
                    .expect("a prior conflicting access exists");
                assert!(
                    syncp_pair_ideal(&tr, e1, e2).is_some(),
                    "reported race ({e1:?}, {e2:?}) reproduces offline"
                );
            }
        }
    }

    #[test]
    fn state_accounting_is_nonzero_and_monotone_in_events() {
        let mut det = SyncP::new();
        run_detector(&mut det, &paper::figure1());
        let small = det.state_bytes();
        assert!(small > 0);
        assert!(det.footprint_bytes() >= det.core.resident_bytes());
        let stats = det.hot_path_stats();
        assert_eq!(stats.state_bytes, small);
        assert!(stats.fast_hits + stats.slow_hits > 0);
    }
}
