//! Optimistic synchronization-reversal race prediction (Shi, Mathur &
//! Pavlogiannis, arXiv 2401.05642): the `OSR` analysis row.
//!
//! OSR is SyncP's closure with one rule relaxed. A *sync-preserving*
//! reordering may drop whole critical sections but never commutes two
//! acquisitions of one lock; OSR additionally permits a bounded number of
//! critical-section *reversals* — the later section of a same-lock pair
//! completes before the earlier one starts — which predicts strictly more
//! true races at near-SyncP cost. Every report stays sound by
//! construction: a reversal-carrying closure is only believed once a
//! concrete replay schedule of its ideal has been found, and that schedule
//! *is* the witness ([`osr_pair_witness`] exposes it; the vindication
//! layer's reversal-tolerant validator replays it).
//!
//! # The abort-and-commit check
//!
//! For a candidate pair, run the sync-preserving closure (the exact rule
//! table of [`crate::syncp`]) under a set `R` of reversal *directives* —
//! section pairs `(early, late)` on one lock whose scheduled order is
//! flipped, so rule 3 demands the **later** section's release instead of
//! the earlier's. The search starts from `R = ∅`:
//!
//! 1. **Commit.** If the closure stabilizes without forcing either
//!    endpoint and `R = ∅`, the run was exactly the SyncP closure and the
//!    ideal in trace order is a witness (hence SyncP ⊆ OSR, structurally).
//!    With `R ≠ ∅` the ideal has no trace-order schedule, so a bounded
//!    DFS replay scheduler searches for a concrete linearization obeying
//!    program order, mutual exclusion, exact reads-from, wait/notify
//!    prerequisites, and the barrier gather/drain protocol; the pair is
//!    reported only if one is found.
//! 2. **Abort.** If a rule-3 release pull forced an endpoint, the culprit
//!    section pair is *reversed* (added to `R`) and the closure restarts —
//!    at most [`MAX_ATTEMPTS`] times. An abort with no lock culprit (the
//!    endpoint was forced by reads-from, program order, fork/join, or a
//!    barrier round) is final: no reversal can help, the pair is ordered.
//!
//! The strong-clock and common-lock prefilters and the epoch cache carry
//! over from SyncP unchanged, because both remain sound under reversals:
//! the strong clock tracks only edges no correct reordering of any kind
//! can break (it has no lock edges), and mutual exclusion holds whatever
//! order two same-lock sections run in.
//!
//! Like SyncP, OSR buffers the stream — state is O(events) — so bound the
//! lifetime of `serve` sessions carrying an `osr` lane, or run it offline.

use std::collections::HashSet;

use smarttrack_clock::ThreadId;
use smarttrack_trace::{Event, EventId, Op, Trace, VarId};

use crate::common::slot;
use crate::counters::PathCounters;
use crate::report::{AccessKind, RaceReport, Report};
use crate::syncp::strong::StrongState;
use crate::syncp::{lw_slot, Candidate, SyncPCore, VarState, NONE};
use crate::{Detector, HotPathStats, OptLevel, Relation};

/// Maximum closure restarts per pair. Each restart commits one more
/// reversal directive, so this bounds both the search and `|R|`.
const MAX_ATTEMPTS: usize = 16;

/// Maximum distinct replay states the DFS scheduler explores per pair
/// before giving up (giving up means *not* reporting — sound).
const DFS_STATE_BUDGET: usize = 1 << 17;

/// One reversal directive: the same-lock section pair `(early, late)` (by
/// acquisition trace order) is scheduled in reverse — `late` completes
/// before `early` starts.
type Directive = (u32, u32);

#[derive(Clone, Debug, Default)]
struct OsrLockScratch {
    gen: u32,
    /// Sections of this lock whose acquisition is in the ideal, this
    /// attempt.
    sections: Vec<u32>,
}

/// Per-barrier scratch for the conditional cross-round rule (identical to
/// SyncP's: a partially-kept round must finish draining before the next
/// round's enter).
#[derive(Clone, Debug, Default)]
struct OsrBarrierScratch {
    touched: Vec<u32>,
    enter_next: Vec<u32>,
}

/// Reusable scratch for one abort-and-commit check.
#[derive(Clone, Debug, Default)]
struct OsrScratch {
    /// Per thread: number of events included in the ideal.
    frontier: Vec<u32>,
    /// Per thread: how many included events have been rule-processed.
    processed: Vec<u32>,
    /// Threads with `processed < frontier`.
    dirty: Vec<u32>,
    gen: u32,
    locks: Vec<OsrLockScratch>,
    barriers: Vec<OsrBarrierScratch>,
    /// Rule-3 pulls executed this attempt: `(early, late, reversed)`.
    /// The abort handler mines these for the next directive.
    pulls: Vec<(u32, u32, bool)>,
}

/// Runs one closure attempt under `directives`. Returns `true` when the
/// closure stabilized without forcing either endpoint (the frontier then
/// describes the ideal); `false` on abort, with `scratch.pulls` holding
/// this attempt's rule-3 pulls.
fn osr_close(
    core: &SyncPCore,
    scratch: &mut OsrScratch,
    directives: &[Directive],
    a: u32,
    b: u32,
) -> bool {
    let (ma, mb) = (core.meta[a as usize], core.meta[b as usize]);
    debug_assert_ne!(ma.tid, mb.tid);
    scratch.gen = scratch.gen.wrapping_add(1);
    let nthreads = core.threads.len();
    scratch.frontier.clear();
    scratch.frontier.resize(nthreads, 0);
    scratch.processed.clear();
    scratch.processed.resize(nthreads, 0);
    scratch.dirty.clear();
    scratch.pulls.clear();

    // `raise` returns `true` as soon as a rule forces either endpoint into
    // the ideal.
    fn raise(
        scratch: &mut OsrScratch,
        ma: crate::syncp::EventMeta,
        mb: crate::syncp::EventMeta,
        t: u32,
        upto: u32,
    ) -> bool {
        if upto > scratch.frontier[t as usize] {
            if (t == ma.tid && upto > ma.tpos) || (t == mb.tid && upto > mb.tpos) {
                return true;
            }
            scratch.frontier[t as usize] = upto;
            scratch.dirty.push(t);
        }
        false
    }
    let mut ordered =
        raise(scratch, ma, mb, ma.tid, ma.tpos) || raise(scratch, ma, mb, mb.tid, mb.tpos);
    for m in [ma, mb] {
        if m.tpos == 0 {
            let f = core.threads[m.tid as usize].fork;
            if f != NONE {
                let fm = core.meta[f as usize];
                ordered |= raise(scratch, ma, mb, fm.tid, fm.tpos + 1);
            }
        }
    }
    if ordered {
        return false;
    }

    'outer: while let Some(t) = scratch.dirty.pop() {
        while scratch.processed[t as usize] < scratch.frontier[t as usize] {
            if ordered {
                break 'outer;
            }
            let pos = scratch.processed[t as usize];
            scratch.processed[t as usize] = pos + 1;
            let idx = core.threads[t as usize].proj[pos as usize];
            let m = core.meta[idx as usize];
            if m.tpos == 0 {
                let f = core.threads[t as usize].fork;
                if f != NONE {
                    let fm = core.meta[f as usize];
                    ordered |= raise(scratch, ma, mb, fm.tid, fm.tpos + 1);
                }
            }
            match m.op {
                Op::Read(_) | Op::VolatileRead(_) if m.aux != NONE => {
                    let lw = core.meta[m.aux as usize];
                    ordered |= raise(scratch, ma, mb, lw.tid, lw.tpos + 1);
                }
                Op::Wait(..) if m.aux != NONE => {
                    for &p in &core.prereqs[m.aux as usize] {
                        let pm = core.meta[p as usize];
                        ordered |= raise(scratch, ma, mb, pm.tid, pm.tpos + 1);
                    }
                }
                Op::BarrierEnter(bar) | Op::BarrierExit(bar) => {
                    let rounds = &core.barriers[bar.index()].rounds;
                    let r = m.aux as usize;
                    let gen = scratch.gen;
                    let bsc = slot(&mut scratch.barriers, bar.index());
                    if bsc.touched.len() < rounds.len() {
                        bsc.touched.resize(rounds.len(), 0);
                        bsc.enter_next.resize(rounds.len(), 0);
                    }
                    let mut pull: Vec<u32> = Vec::new();
                    if matches!(m.op, Op::BarrierExit(_)) {
                        pull.push(rounds[r].0);
                    }
                    if r < rounds.len() {
                        bsc.touched[r] = gen;
                        if bsc.enter_next[r] == gen {
                            pull.push(rounds[r].1);
                        }
                    }
                    if matches!(m.op, Op::BarrierEnter(_)) && r > 0 {
                        bsc.enter_next[r - 1] = gen;
                        if bsc.touched[r - 1] == gen {
                            pull.push(rounds[r - 1].1);
                        }
                    }
                    for pool in pull {
                        for &p in &core.prereqs[pool as usize] {
                            let pm = core.meta[p as usize];
                            ordered |= raise(scratch, ma, mb, pm.tid, pm.tpos + 1);
                        }
                    }
                }
                Op::Join(u) => {
                    let len = core.threads[u.index()].proj.len() as u32;
                    ordered |= raise(scratch, ma, mb, u.index() as u32, len);
                }
                Op::Acquire(_) | Op::AcqWrite(_) | Op::AcqRead(_) => {
                    if m.aux == NONE {
                        continue;
                    }
                    let s_idx = m.aux;
                    let s = core.sections[s_idx as usize];
                    let ls = slot(&mut scratch.locks, s.lock as usize);
                    if ls.gen != scratch.gen {
                        ls.gen = scratch.gen;
                        ls.sections.clear();
                    }
                    // Rule 3, pairwise against every included section of
                    // this lock. Unlike SyncP's max/pending encoding the
                    // full pair identity is needed here, because directive
                    // membership is per pair.
                    let mut need_rel: Vec<u32> = Vec::new();
                    for &p_idx in &ls.sections {
                        let ps = core.sections[p_idx as usize];
                        if !(ps.write || s.write) {
                            continue; // two read-mode sections: unordered
                        }
                        let (early, late) = if ps.acq < s.acq {
                            (p_idx, s_idx)
                        } else {
                            (s_idx, p_idx)
                        };
                        let reversed = directives.contains(&(early, late));
                        scratch.pulls.push((early, late, reversed));
                        need_rel.push(if reversed { late } else { early });
                    }
                    ls.sections.push(s_idx);
                    for p in need_rel {
                        let rel = core.sections[p as usize].rel;
                        if rel == NONE {
                            // A demanded release that never happened (open
                            // section): not schedulable either way.
                            ordered = true;
                        } else {
                            let rm = core.meta[rel as usize];
                            ordered |= raise(scratch, ma, mb, rm.tid, rm.tpos + 1);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    !ordered
}

/// The ideal of the last completed [`osr_close`], as event indexes in
/// trace order.
fn ideal_of(core: &SyncPCore, scratch: &OsrScratch) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    for (t, ts) in core.threads.iter().enumerate() {
        let upto = scratch.frontier.get(t).copied().unwrap_or(0) as usize;
        out.extend_from_slice(&ts.proj[..upto.min(ts.proj.len())]);
    }
    out.sort_unstable();
    out
}

#[derive(Clone, Debug, Default)]
struct LockRep {
    write_held: bool,
    readers: u32,
}

#[derive(Clone, Debug, Default)]
struct BarRep {
    gathered: u32,
    draining: u32,
}

/// Undo record for one replayed event (the DFS backtracks through these).
enum Undo {
    Nothing,
    Lw { x: usize, prev: u32 },
    VolLw { v: usize, prev: u32 },
    LockW { l: usize },
    LockR { l: usize },
    RelW { l: usize },
    RelR { l: usize },
    Enter { b: usize },
    Exit { b: usize, sealed_from: Option<u32> },
}

/// The bounded DFS replay scheduler: searches for a linearization of the
/// ideal that a real execution could take — program order, exact
/// reads-from (plain and volatile), lock mutual exclusion (read-mode
/// sections may overlap), wait-after-notify, the barrier gather/drain
/// protocol, and fork/join gating. Mirrors the enabledness model of the
/// vindication oracle, with the trace model's stricter barrier rule (no
/// gathering while a round drains).
struct Replay<'c> {
    core: &'c SyncPCore,
    /// The ideal, split per thread (each list in trace = program order).
    per_thread: Vec<Vec<u32>>,
    positions: Vec<u32>,
    executed: Vec<bool>,
    lw: Vec<u32>,
    vol_lw: Vec<u32>,
    locks: Vec<LockRep>,
    bars: Vec<BarRep>,
    visited: HashSet<Vec<u32>>,
    states: usize,
    out: Vec<u32>,
    remaining: usize,
}

impl<'c> Replay<'c> {
    fn new(core: &'c SyncPCore, ideal: &[u32]) -> Self {
        let nthreads = core.threads.len();
        let mut per_thread: Vec<Vec<u32>> = vec![Vec::new(); nthreads];
        for &e in ideal {
            per_thread[core.meta[e as usize].tid as usize].push(e);
        }
        Replay {
            core,
            per_thread,
            positions: vec![0; nthreads],
            executed: vec![false; core.meta.len()],
            lw: Vec::new(),
            vol_lw: Vec::new(),
            locks: Vec::new(),
            bars: Vec::new(),
            visited: HashSet::new(),
            states: 0,
            out: Vec::with_capacity(ideal.len()),
            remaining: ideal.len(),
        }
    }

    fn enabled(&self, e: u32) -> bool {
        let m = self.core.meta[e as usize];
        if m.tpos == 0 {
            let f = self.core.threads[m.tid as usize].fork;
            if f != NONE && !self.executed[f as usize] {
                return false;
            }
        }
        match m.op {
            Op::Read(x) => self.lw.get(x.index()).copied().unwrap_or(NONE) == m.aux,
            Op::VolatileRead(v) => self.vol_lw.get(v.index()).copied().unwrap_or(NONE) == m.aux,
            Op::Acquire(l) | Op::AcqWrite(l) => self
                .locks
                .get(l.index())
                .is_none_or(|st| !st.write_held && st.readers == 0),
            Op::AcqRead(l) => self.locks.get(l.index()).is_none_or(|st| !st.write_held),
            Op::Wait(..) if m.aux != NONE => self.core.prereqs[m.aux as usize]
                .iter()
                .all(|&p| self.executed[p as usize]),
            Op::Join(u) => {
                let u = u.index();
                self.positions.get(u).copied().unwrap_or(0) as usize
                    == self.per_thread.get(u).map_or(0, Vec::len)
            }
            Op::BarrierEnter(bar) => self.bars.get(bar.index()).is_none_or(|st| st.draining == 0),
            Op::BarrierExit(bar) => {
                let st = self.bars.get(bar.index());
                let live = st.is_some_and(|st| st.draining > 0 || st.gathered > 0);
                let r = m.aux as usize;
                live && self.core.prereqs
                    [self.core.barriers[bar.index()].rounds[r].0 as usize]
                    .iter()
                    .all(|&p| self.executed[p as usize])
            }
            _ => true,
        }
    }

    fn step(&mut self, e: u32) -> Undo {
        let m = self.core.meta[e as usize];
        self.executed[e as usize] = true;
        self.positions[m.tid as usize] += 1;
        self.remaining -= 1;
        self.out.push(e);
        match m.op {
            Op::Write(x) => {
                let cell = lw_slot(&mut self.lw, x.index());
                let prev = *cell;
                *cell = e;
                Undo::Lw {
                    x: x.index(),
                    prev,
                }
            }
            Op::VolatileWrite(v) => {
                let cell = lw_slot(&mut self.vol_lw, v.index());
                let prev = *cell;
                *cell = e;
                Undo::VolLw {
                    v: v.index(),
                    prev,
                }
            }
            Op::Acquire(l) | Op::AcqWrite(l) => {
                slot(&mut self.locks, l.index()).write_held = true;
                Undo::LockW { l: l.index() }
            }
            Op::AcqRead(l) => {
                slot(&mut self.locks, l.index()).readers += 1;
                Undo::LockR { l: l.index() }
            }
            Op::Release(l) if m.aux != NONE => {
                let write = self.core.sections[m.aux as usize].write;
                let st = slot(&mut self.locks, l.index());
                if write {
                    st.write_held = false;
                    Undo::RelW { l: l.index() }
                } else {
                    st.readers -= 1;
                    Undo::RelR { l: l.index() }
                }
            }
            Op::BarrierEnter(bar) => {
                slot(&mut self.bars, bar.index()).gathered += 1;
                Undo::Enter { b: bar.index() }
            }
            Op::BarrierExit(bar) => {
                let st = slot(&mut self.bars, bar.index());
                let sealed_from = if st.draining == 0 {
                    let g = st.gathered;
                    st.draining = g;
                    st.gathered = 0;
                    Some(g)
                } else {
                    None
                };
                st.draining -= 1;
                Undo::Exit {
                    b: bar.index(),
                    sealed_from,
                }
            }
            _ => Undo::Nothing,
        }
    }

    fn unstep(&mut self, e: u32, undo: Undo) {
        let m = self.core.meta[e as usize];
        self.executed[e as usize] = false;
        self.positions[m.tid as usize] -= 1;
        self.remaining += 1;
        self.out.pop();
        match undo {
            Undo::Nothing => {}
            Undo::Lw { x, prev } => self.lw[x] = prev,
            Undo::VolLw { v, prev } => self.vol_lw[v] = prev,
            Undo::LockW { l } => self.locks[l].write_held = false,
            Undo::LockR { l } => self.locks[l].readers -= 1,
            Undo::RelW { l } => self.locks[l].write_held = true,
            Undo::RelR { l } => self.locks[l].readers += 1,
            Undo::Enter { b } => self.bars[b].gathered -= 1,
            Undo::Exit { b, sealed_from } => {
                let st = &mut self.bars[b];
                st.draining += 1;
                if let Some(g) = sealed_from {
                    st.gathered = g;
                    st.draining = 0;
                }
            }
        }
    }

    fn dfs(&mut self) -> bool {
        if self.remaining == 0 {
            return true;
        }
        if self.states >= DFS_STATE_BUDGET || !self.visited.insert(self.positions.clone()) {
            return false;
        }
        self.states += 1;
        // Deterministic order: lowest event index first.
        let mut cands: Vec<u32> = (0..self.per_thread.len())
            .filter_map(|t| {
                self.per_thread[t]
                    .get(self.positions[t] as usize)
                    .copied()
                    .filter(|&e| self.enabled(e))
            })
            .collect();
        cands.sort_unstable();
        for e in cands {
            let undo = self.step(e);
            if self.dfs() {
                return true;
            }
            self.unstep(e, undo);
        }
        false
    }
}

/// The full abort-and-commit check for one conflicting pair `a < b`.
/// Returns the witness order (event indexes in schedule order, pair
/// appended) when the pair is an OSR race, `None` otherwise.
fn osr_check(core: &SyncPCore, scratch: &mut OsrScratch, a: u32, b: u32) -> Option<Vec<u32>> {
    let mut directives: Vec<Directive> = Vec::new();
    let mut tried: Vec<Directive> = Vec::new();
    for _ in 0..MAX_ATTEMPTS {
        if osr_close(core, scratch, &directives, a, b) {
            let ideal = ideal_of(core, scratch);
            if directives.is_empty() {
                // Exactly the SyncP closure: its trace-order ideal is the
                // witness, no scheduling needed (SyncP ⊆ OSR lives here).
                let mut order = ideal;
                order.push(a);
                order.push(b);
                return Some(order);
            }
            let mut replay = Replay::new(core, &ideal);
            if replay.dfs() {
                let mut order = std::mem::take(&mut replay.out);
                order.push(a);
                order.push(b);
                return Some(order);
            }
            return None;
        }
        // Aborted. Reverse the most recent lock culprit not yet tried; if
        // the abort had no reversible lock pull, no reversal can help.
        let next = scratch.pulls.iter().rev().find(|&&(e, l, rev)| {
            !rev && !tried.contains(&(e, l))
                && core.sections[e as usize].rel != NONE
                && core.sections[l as usize].rel != NONE
        });
        match next {
            Some(&(e, l, _)) => {
                tried.push((e, l));
                directives.push((e, l));
            }
            None => return None,
        }
    }
    None
}

/// The optimistic synchronization-reversal race predictor (`OSR`) — see
/// the module docs for the relation and the abort-and-commit check.
///
/// # Examples
///
/// OSR detects a race hidden behind a same-lock section reversal, which
/// SyncP provably cannot report:
///
/// ```
/// use smarttrack_detect::{run_detector, Detector, Osr, SyncP};
/// use smarttrack_trace::{LockId, Op, ThreadId, TraceBuilder, VarId};
///
/// let (t1, t2) = (ThreadId::new(0), ThreadId::new(1));
/// let (l, x, y) = (LockId::new(0), VarId::new(0), VarId::new(1));
/// let mut b = TraceBuilder::new();
/// b.push(t1, Op::Acquire(l)).unwrap();
/// b.push(t1, Op::Write(y)).unwrap();
/// b.push(t1, Op::Write(x)).unwrap(); // e1
/// b.push(t1, Op::Release(l)).unwrap();
/// b.push(t2, Op::Acquire(l)).unwrap();
/// b.push(t2, Op::Write(y)).unwrap();
/// b.push(t2, Op::Release(l)).unwrap();
/// b.push(t2, Op::Write(x)).unwrap(); // e2: races with e1 under OSR only
/// let trace = b.finish();
///
/// let mut syncp = SyncP::new();
/// run_detector(&mut syncp, &trace);
/// assert_eq!(syncp.report().dynamic_count(), 0);
///
/// let mut osr = Osr::new();
/// run_detector(&mut osr, &trace);
/// assert_eq!(osr.report().dynamic_count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Osr {
    core: SyncPCore,
    strong: StrongState,
    vars: Vec<VarState>,
    scratch: OsrScratch,
    report: Report,
    paths: PathCounters,
}

impl Osr {
    /// Creates the analysis with empty state.
    pub fn new() -> Self {
        Osr::default()
    }

    /// Strong-clock order test: is the access at `idx` ordered before the
    /// current point of thread `t`?
    #[inline]
    fn strong_ordered(&self, t: usize, idx: u32) -> bool {
        let m = self.core.meta[idx as usize];
        self.strong.ordered_before(t, ThreadId::new(m.tid), m.tpos)
    }

    /// Common-lock prefilter: both endpoints hold `l` and at least one
    /// hold is write-mode ⇒ mutual exclusion orders them under *any*
    /// section order, reversed or not.
    #[inline]
    fn common_lock(cur: &[(u32, bool, u32)], cand: &[(u32, bool)]) -> bool {
        cur.iter()
            .any(|&(l, w, _)| cand.iter().any(|&(cl, cw)| cl == l && (w || cw)))
    }

    fn access(&mut self, id: EventId, event: &Event, x: VarId, is_write: bool) {
        let idx = (self.core.meta.len() - 1) as u32; // ingest() already ran
        let t = event.tid.index();
        let vs = slot(&mut self.vars, x.index());
        let key = (t as u32, self.core.threads[t].ctx, vs.version);
        let cached = if is_write {
            vs.write_check
        } else {
            vs.read_check
        };
        if cached == key {
            // Epoch fast path, exactly as in SyncP: skip the checks but
            // still advance the candidate (plain writes publish reads-from
            // edges without bumping `ctx`).
            self.paths.fast += 1;
            let vs = &mut self.vars[x.index()];
            let list = if is_write {
                &mut vs.writes
            } else {
                &mut vs.reads
            };
            let c = list
                .iter_mut()
                .find(|c| c.tid == t as u32)
                .expect("a matching cache key implies a stored candidate");
            c.idx = idx;
            vs.version += 1;
            let key = (t as u32, self.core.threads[t].ctx, vs.version);
            if is_write {
                vs.write_check = key;
            } else {
                vs.read_check = key;
            }
            return;
        }
        self.paths.slow += 1;

        let mut prior: Vec<ThreadId> = Vec::new();
        let cur_holds = self.core.threads[t].held.clone();
        let n_writes = self.vars[x.index()].writes.len();
        let n_reads = if is_write {
            self.vars[x.index()].reads.len()
        } else {
            0
        };
        for ci in 0..n_writes + n_reads {
            let (cand_tid, racy);
            {
                let vs = &self.vars[x.index()];
                let c = if ci < n_writes {
                    &vs.writes[ci]
                } else {
                    &vs.reads[ci - n_writes]
                };
                if c.tid == t as u32 {
                    continue;
                }
                let tid = ThreadId::new(c.tid);
                if prior.contains(&tid) {
                    continue;
                }
                if self.strong_ordered(t, c.idx) || Self::common_lock(&cur_holds, &c.holds) {
                    continue;
                }
                racy = osr_check(&self.core, &mut self.scratch, c.idx, idx).is_some();
                cand_tid = tid;
            }
            if racy {
                prior.push(cand_tid);
            }
        }
        if !prior.is_empty() {
            self.report.push(RaceReport {
                event: id,
                loc: event.loc,
                tid: event.tid,
                var: x,
                kind: if is_write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                prior_threads: prior,
            });
        }

        let vs = &mut self.vars[x.index()];
        let list = if is_write {
            &mut vs.writes
        } else {
            &mut vs.reads
        };
        let c = match list.iter_mut().find(|c| c.tid == t as u32) {
            Some(c) => c,
            None => {
                list.push(Candidate {
                    tid: t as u32,
                    ..Candidate::default()
                });
                list.last_mut().expect("just pushed")
            }
        };
        c.idx = idx;
        c.holds.clear();
        c.holds.extend(cur_holds.iter().map(|&(l, w, _)| (l, w)));
        vs.version += 1;
        let key = (t as u32, self.core.threads[t].ctx, vs.version);
        if is_write {
            vs.write_check = key;
        } else {
            vs.read_check = key;
        }
    }
}

impl Detector for Osr {
    fn name(&self) -> &'static str {
        "OSR"
    }

    fn relation(&self) -> Relation {
        Relation::Osr
    }

    fn opt_level(&self) -> OptLevel {
        OptLevel::Unopt
    }

    fn begin_stream(&mut self, hint: crate::StreamHint) {
        use crate::StreamHint;
        self.core
            .meta
            .reserve(StreamHint::presize(hint.events, self.core.meta.len()));
        self.vars
            .reserve(StreamHint::presize(hint.vars, self.vars.len()));
        self.strong.reserve_threads(StreamHint::presize(
            hint.threads,
            self.strong.thread_count(),
        ));
    }

    fn process(&mut self, id: EventId, event: &Event) {
        let t = event.tid;
        self.core.ingest(self.core.meta.len() as u32, event);
        let tpos = self.core.meta.last().expect("just ingested").tpos;
        // Identical per-op strong-clock and sync-context bookkeeping to
        // SyncP — the relations differ only in the pair check.
        self.strong.stamp(t, tpos);
        match event.op {
            Op::Read(x) => {
                self.access(id, event, x, false);
                let m = self.core.meta.last().expect("present");
                if m.aux != NONE {
                    self.strong.absorb_read_from(t, x.index());
                }
            }
            Op::Write(x) => {
                self.access(id, event, x, true);
                self.strong.stamp_last_write(t, x.index());
            }
            Op::VolatileRead(v) => {
                self.strong.absorb_volatile(t, v.index());
                self.core.thread(t.index()).ctx += 1;
            }
            Op::VolatileWrite(v) => {
                self.strong.stamp_volatile(t, v.index());
                self.core.thread(t.index()).ctx += 1;
            }
            Op::Fork(u) => {
                self.strong.fork(t, u);
                self.core.thread(t.index()).ctx += 1;
            }
            Op::Join(u) => {
                self.strong.join_child(t, u);
                self.core.thread(t.index()).ctx += 1;
            }
            Op::Wait(c, _) => {
                self.strong.absorb_notifies(t, c.index());
                self.core.thread(t.index()).ctx += 1;
            }
            Op::Notify(c) | Op::NotifyAll(c) => {
                self.strong.publish_notify(t, c.index());
                self.core.thread(t.index()).ctx += 1;
            }
            Op::BarrierEnter(b) => {
                self.strong.barrier_enter(t, b.index());
                self.core.thread(t.index()).ctx += 1;
            }
            Op::BarrierExit(b) => {
                self.strong.barrier_exit(t, b.index());
                self.core.thread(t.index()).ctx += 1;
            }
            Op::Acquire(_)
            | Op::AcqRead(_)
            | Op::AcqWrite(_)
            | Op::Release(_)
            | Op::TryAcqFail(_) => {
                self.core.thread(t.index()).ctx += 1;
            }
        }
    }

    fn report(&self) -> &Report {
        &self.report
    }

    fn footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        self.core.footprint_bytes()
            + self.strong.footprint_bytes()
            + self.vars.capacity() * size_of::<VarState>()
            + self
                .vars
                .iter()
                .map(|vs| {
                    vs.writes
                        .iter()
                        .chain(vs.reads.iter())
                        .map(|c| c.holds.capacity() * size_of::<(u32, bool)>())
                        .sum::<usize>()
                        + (vs.writes.capacity() + vs.reads.capacity()) * size_of::<Candidate>()
                })
                .sum::<usize>()
            + self.report.footprint_bytes()
    }

    fn state_bytes(&self) -> usize {
        // The buffered event log dominates, exactly as for SyncP.
        self.core.resident_bytes()
            + self.strong.resident_bytes()
            + self.vars.capacity() * std::mem::size_of::<VarState>()
            + self.report.footprint_bytes()
    }

    fn hot_path_stats(&self) -> HotPathStats {
        HotPathStats {
            fast_hits: self.paths.fast,
            slow_hits: self.paths.slow,
            state_bytes: self.state_bytes(),
        }
    }
}

/// Offline pair check exposing the witness: replays `trace` up to the
/// later of `(e1, e2)`, runs the abort-and-commit check, and — when the
/// pair races — returns the full witness reordering in *schedule* order
/// (trace order for a directive-free closure, the DFS scheduler's
/// linearization when sections were reversed), followed by the pair
/// itself. The returned order passes the vindication layer's
/// reversal-tolerant validator by construction; `None` means no
/// reversal-permitting witness exists within the search bounds.
///
/// # Panics
///
/// Panics if either id is out of bounds or the events do not conflict.
pub fn osr_pair_witness(trace: &Trace, e1: EventId, e2: EventId) -> Option<Vec<EventId>> {
    let (a, b) = if e1.index() <= e2.index() {
        (e1, e2)
    } else {
        (e2, e1)
    };
    assert!(
        trace.event(a).conflicts_with(trace.event(b)),
        "osr_pair_witness wants a conflicting pair"
    );
    let mut core = SyncPCore::default();
    for (id, event) in trace.iter() {
        if id.index() > b.index() {
            break;
        }
        core.ingest(id.index() as u32, event);
    }
    let mut scratch = OsrScratch::default();
    osr_check(&core, &mut scratch, a.index() as u32, b.index() as u32)
        .map(|order| order.into_iter().map(EventId::new).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_detector;
    use smarttrack_trace::{paper, LockId, ThreadId, TraceBuilder};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }

    fn run(b: TraceBuilder) -> Report {
        let mut det = Osr::new();
        run_detector(&mut det, &b.finish());
        det.report().clone()
    }

    /// The canonical reversal trace: t1's section writes y then x (inside
    /// the section), t2's section writes y, then t2 writes x *outside*.
    /// Reversing the sections schedules t2's section first and makes the
    /// two x-writes adjacent.
    fn reversal_trace() -> smarttrack_trace::Trace {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Acquire(m(0))).unwrap(); // 0
        b.push(t(0), Op::Write(x(1))).unwrap(); // 1: w(y)
        b.push(t(0), Op::Write(x(0))).unwrap(); // 2: e1 = w(x)
        b.push(t(0), Op::Release(m(0))).unwrap(); // 3
        b.push(t(1), Op::Acquire(m(0))).unwrap(); // 4
        b.push(t(1), Op::Write(x(1))).unwrap(); // 5: w(y)
        b.push(t(1), Op::Release(m(0))).unwrap(); // 6
        b.push(t(1), Op::Write(x(0))).unwrap(); // 7: e2 = w(x)
        b.finish()
    }

    #[test]
    fn detects_unsynchronized_write_write() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        let r = run(b);
        assert_eq!(r.dynamic_count(), 1);
        assert_eq!(r.races()[0].prior_threads, vec![t(0)]);
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        let mut b = TraceBuilder::new();
        for i in 0..2 {
            b.push(t(i), Op::Acquire(m(0))).unwrap();
            b.push(t(i), Op::Write(x(0))).unwrap();
            b.push(t(i), Op::Release(m(0))).unwrap();
        }
        assert!(run(b).is_empty(), "mutual exclusion survives reversal");
    }

    #[test]
    fn detects_the_reversal_race_syncp_misses() {
        let tr = reversal_trace();
        let mut syncp = crate::SyncP::new();
        run_detector(&mut syncp, &tr);
        assert!(syncp.report().is_empty(), "SyncP is forced by rule 3");

        let mut osr = Osr::new();
        run_detector(&mut osr, &tr);
        assert_eq!(osr.report().dynamic_count(), 1);
        assert_eq!(osr.report().races()[0].event, EventId::new(7));
    }

    #[test]
    fn reversal_witness_schedules_the_later_section_first() {
        let tr = reversal_trace();
        let order = osr_pair_witness(&tr, EventId::new(2), EventId::new(7))
            .expect("the reversal pair races");
        let ids: Vec<usize> = order.iter().map(|e| e.index()).collect();
        // t2's whole section must run before t1's acquire; the pair comes
        // last, adjacent.
        assert_eq!(ids, vec![4, 5, 6, 0, 1, 2, 7]);
        let acq_t2 = ids.iter().position(|&i| i == 4).unwrap();
        let acq_t1 = ids.iter().position(|&i| i == 0).unwrap();
        assert!(acq_t2 < acq_t1, "sections reversed in the schedule");
    }

    #[test]
    fn figure1_still_races_with_the_syncp_witness() {
        let tr = paper::figure1();
        let mut det = Osr::new();
        run_detector(&mut det, &tr);
        assert_eq!(det.report().dynamic_count(), 1);
        let order = osr_pair_witness(&tr, EventId::new(0), EventId::new(7)).expect("races");
        let ids: Vec<usize> = order.iter().map(|e| e.index()).collect();
        assert_eq!(ids, vec![4, 5, 6, 0, 7], "R = ∅ keeps the SyncP ideal");
    }

    #[test]
    fn stays_silent_on_figure3() {
        let mut det = Osr::new();
        run_detector(&mut det, &paper::figure3());
        assert!(
            det.report().is_empty(),
            "figure 3 has no predictable race; sound OSR must stay silent"
        );
    }

    #[test]
    fn observation_chain_across_sections_still_orders() {
        // t2's section *reads* what t1's section wrote: reversing the
        // sections would break reads-from, and keeping order runs into
        // rule 3 — the pair stays ordered under OSR too.
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        b.push(t(0), Op::Write(x(1))).unwrap();
        b.push(t(0), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Acquire(m(0))).unwrap();
        b.push(t(1), Op::Read(x(1))).unwrap(); // observes t0's w(x1)
        b.push(t(1), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        assert!(run(b).is_empty(), "observation pins the section order");
    }

    #[test]
    fn reversal_blocked_by_reads_from_inside_sections() {
        // Like the canonical trace, but t1's section *reads* y and t2's
        // writes it: in trace order rule 3 forces the endpoint; reversed,
        // t2's w(y) would become the read's last writer, breaking the
        // observed reads-from (the read saw no writer). The DFS finds no
        // schedule; OSR must not report.
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        b.push(t(0), Op::Read(x(1))).unwrap(); // observed last writer: none
        b.push(t(0), Op::Write(x(0))).unwrap(); // e1
        b.push(t(0), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Acquire(m(0))).unwrap();
        b.push(t(1), Op::Write(x(1))).unwrap();
        b.push(t(1), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap(); // e2
        assert!(run(b).is_empty(), "reversal would re-target the read");
    }

    #[test]
    fn common_lock_still_excludes_under_reversal() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Acquire(m(0))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        b.push(t(1), Op::Release(m(0))).unwrap();
        assert!(run(b).is_empty());
    }

    #[test]
    fn state_accounting_is_nonzero() {
        let mut det = Osr::new();
        run_detector(&mut det, &paper::figure1());
        assert!(det.state_bytes() > 0);
        assert!(det.footprint_bytes() >= det.core.resident_bytes());
        let stats = det.hot_path_stats();
        assert!(stats.fast_hits + stats.slow_hits > 0);
    }
}
