//! The FastTrack2 algorithm (Flanagan & Freund 2017): epoch-optimized HB
//! analysis without the ownership cases.

use smarttrack_clock::{Epoch, ReadMeta, ThreadId};
use smarttrack_trace::{Event, EventId, Loc, Op, VarId};

use crate::common::slot;
use crate::counters::{FtoCase, FtoCaseCounters};
use crate::hb::HbSyncState;
use crate::report::{AccessKind, RaceReport, Report};
use crate::{Detector, OptLevel, Relation};

#[derive(Clone, Debug, Default)]
struct VarState {
    write: Epoch,
    read: ReadMeta,
}

/// FastTrack2 HB analysis (`FT2` in the paper's tables).
///
/// `Wx` is always an epoch; `Rx` adaptively switches between an epoch and a
/// vector clock. Unlike RoadRunner's bundled FastTrack2, this implementation
/// follows the paper's §5.4 variant: it updates last-access metadata at every
/// event even after detecting a race, never stops analyzing a variable, and
/// counts every race.
///
/// # Examples
///
/// ```
/// use smarttrack_detect::{run_detector, Detector, Ft2};
/// use smarttrack_trace::paper;
///
/// let mut det = Ft2::new();
/// run_detector(&mut det, &paper::figure1());
/// assert!(det.report().is_empty(), "Figure 1 has no HB-race");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Ft2 {
    sync: HbSyncState,
    vars: Vec<VarState>,
    report: Report,
    counters: FtoCaseCounters,
}

impl Ft2 {
    /// Creates the analysis with empty state.
    pub fn new() -> Self {
        Ft2::default()
    }

    fn race(
        report: &mut Report,
        id: EventId,
        loc: Loc,
        t: ThreadId,
        x: VarId,
        kind: AccessKind,
        prior: Vec<ThreadId>,
    ) {
        report.push(RaceReport {
            event: id,
            loc,
            tid: t,
            var: x,
            kind,
            prior_threads: prior,
        });
    }

    fn read(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let e = Epoch::new(t, self.sync.local(t));
        let vs = slot(&mut self.vars, x.index());
        match vs.read.same_epoch(t, e.clock()) {
            Some(smarttrack_clock::SameEpoch::Exclusive) => {
                self.counters.hit(FtoCase::ReadSameEpoch);
                return;
            }
            Some(smarttrack_clock::SameEpoch::Shared) => {
                self.counters.hit(FtoCase::SharedSameEpoch);
                return;
            }
            None => {}
        }
        let now = self.sync.clock_ref(t);
        let mut prior = Vec::new();
        if !vs.write.leq_vc(now) {
            prior.push(vs.write.tid()); // write–read race
        }
        match &mut vs.read {
            ReadMeta::Epoch(r) => {
                if r.leq_vc(now) {
                    self.counters.hit(FtoCase::ReadExclusive);
                    vs.read = ReadMeta::Epoch(e); // [Read Exclusive]
                } else {
                    self.counters.hit(FtoCase::ReadShare);
                    vs.read.share(e); // [Read Share]
                }
            }
            ReadMeta::Vc(vc) => {
                self.counters.hit(FtoCase::ReadShared);
                vc.set(t, e.clock()); // [Read Shared]
            }
        }
        if !prior.is_empty() {
            Self::race(&mut self.report, id, loc, t, x, AccessKind::Read, prior);
        }
    }

    fn write(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let e = Epoch::new(t, self.sync.local(t));
        let vs = slot(&mut self.vars, x.index());
        if vs.write == e {
            self.counters.hit(FtoCase::WriteSameEpoch);
            return; // [Write Same Epoch]
        }
        let now = self.sync.clock_ref(t);
        let mut prior = Vec::new();
        if !vs.write.leq_vc(now) {
            prior.push(vs.write.tid()); // write–write race
        }
        match &vs.read {
            ReadMeta::Epoch(r) => {
                self.counters.hit(FtoCase::WriteExclusive);
                if !r.leq_vc(now) && !prior.contains(&r.tid()) {
                    prior.push(r.tid()); // read–write race [Write Exclusive]
                }
            }
            ReadMeta::Vc(vc) => {
                self.counters.hit(FtoCase::WriteShared);
                for (u, c) in vc.iter_nonzero() {
                    if c > now.get(u) && !prior.contains(&u) {
                        prior.push(u); // read–write race [Write Shared]
                    }
                }
            }
        }
        vs.write = e;
        if !prior.is_empty() {
            Self::race(&mut self.report, id, loc, t, x, AccessKind::Write, prior);
        }
    }
}

impl Detector for Ft2 {
    fn name(&self) -> &'static str {
        "FT2"
    }

    fn relation(&self) -> Relation {
        Relation::Hb
    }

    fn opt_level(&self) -> OptLevel {
        OptLevel::Epochs
    }

    fn begin_stream(&mut self, hint: crate::StreamHint) {
        self.sync.reserve(&hint);
        self.vars
            .reserve(crate::StreamHint::presize(hint.vars, self.vars.len()));
    }

    fn process(&mut self, id: EventId, event: &Event) {
        let t = event.tid;
        match event.op {
            Op::Read(x) => self.read(id, t, x, event.loc),
            Op::Write(x) => self.write(id, t, x, event.loc),
            Op::Acquire(m) | Op::AcqWrite(m) => self.sync.acquire(t, m),
            Op::AcqRead(m) => self.sync.acquire_read(t, m),
            Op::Release(m) => self.sync.release(t, m),
            // A failed trylock establishes no ordering in any direction.
            Op::TryAcqFail(_) => {}
            Op::Fork(u) => self.sync.fork(t, u),
            Op::Join(u) => self.sync.join(t, u),
            Op::VolatileRead(v) => self.sync.volatile_read(t, v),
            Op::VolatileWrite(v) => self.sync.volatile_write(t, v),
            Op::Wait(c, m) => self.sync.wait(t, c, m),
            Op::Notify(c) | Op::NotifyAll(c) => self.sync.notify(t, c),
            Op::BarrierEnter(b) => self.sync.barrier_enter(t, b),
            Op::BarrierExit(b) => self.sync.barrier_exit(t, b),
        }
    }

    fn report(&self) -> &Report {
        &self.report
    }

    fn footprint_bytes(&self) -> usize {
        self.sync.footprint_bytes()
            + self.vars.capacity() * std::mem::size_of::<VarState>()
            + self
                .vars
                .iter()
                .map(|v| v.read.footprint_bytes())
                .sum::<usize>()
            + self.report.footprint_bytes()
    }

    fn state_bytes(&self) -> usize {
        self.sync.resident_bytes()
            + self.vars.capacity() * std::mem::size_of::<VarState>()
            + self.report.footprint_bytes()
    }

    fn case_counters(&self) -> Option<&FtoCaseCounters> {
        Some(&self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_detector;
    use smarttrack_trace::{LockId, TraceBuilder};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }

    fn run(b: TraceBuilder) -> Report {
        let mut det = Ft2::new();
        run_detector(&mut det, &b.finish());
        det.report().clone()
    }

    #[test]
    fn read_share_upgrades_to_vector_and_detects_write_race() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Read(x(0))).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap(); // unordered reads: share
        b.push(t(2), Op::Write(x(0))).unwrap(); // races with both readers
        let r = run(b);
        assert_eq!(r.dynamic_count(), 1, "one dynamic race at the write");
        assert_eq!(r.races()[0].prior_threads.len(), 2);
    }

    #[test]
    fn exclusive_read_passes_through_lock() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        b.push(t(0), Op::Read(x(0))).unwrap();
        b.push(t(0), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Acquire(m(0))).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap(); // ordered: stays an epoch
        b.push(t(1), Op::Write(x(0))).unwrap();
        b.push(t(1), Op::Release(m(0))).unwrap();
        assert!(run(b).is_empty());
    }

    #[test]
    fn same_epoch_fast_paths_skip_reanalysis() {
        let mut b = TraceBuilder::new();
        for _ in 0..5 {
            b.push(t(0), Op::Write(x(0))).unwrap();
            b.push(t(0), Op::Read(x(0))).unwrap();
        }
        assert!(run(b).is_empty());
    }

    #[test]
    fn matches_unopt_on_figures() {
        use crate::UnoptHb;
        for (name, tr) in smarttrack_trace::paper::all_figures() {
            let mut a = Ft2::new();
            let mut b = UnoptHb::new();
            run_detector(&mut a, &tr);
            run_detector(&mut b, &tr);
            assert_eq!(
                a.report().first_race_event(),
                b.report().first_race_event(),
                "FT2 vs Unopt-HB disagree on {name}"
            );
        }
    }
}
