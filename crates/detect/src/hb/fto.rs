//! FastTrack-Ownership HB analysis (Wood et al. 2017): the paper's primary
//! HB baseline, and the structural template for the FTO-based predictive
//! analyses (Algorithm 2 without the DC-specific parts).

use smarttrack_clock::{Epoch, ReadMeta, SameEpoch, ThreadId, VectorClock};
use smarttrack_trace::{Event, EventId, Loc, Op, VarId};

use crate::common::slot;
use crate::counters::{FtoCase, FtoCaseCounters};
use crate::hb::HbSyncState;
use crate::report::{AccessKind, RaceReport, Report};
use crate::{Detector, OptLevel, Relation};

#[derive(Clone, Debug, Default)]
struct VarState {
    write: Epoch,
    read: ReadMeta,
}

/// FTO-HB analysis (`FTO` in the paper's HB columns).
///
/// Compared with [`Ft2`](crate::Ft2), FTO unifies read and write metadata
/// (`Rx` represents the latest reads *and* write; after a write,
/// `Wx = Rx = Ct(t)@t`) and adds *owned* cases that skip race checks when the
/// current thread already owns the last access.
///
/// # Examples
///
/// ```
/// use smarttrack_detect::{run_detector, Detector, FtoHb};
/// use smarttrack_trace::paper;
///
/// let mut det = FtoHb::new();
/// run_detector(&mut det, &paper::figure2());
/// assert!(det.report().is_empty(), "Figure 2 has no HB-race");
/// ```
#[derive(Clone, Debug, Default)]
pub struct FtoHb {
    sync: HbSyncState,
    vars: Vec<VarState>,
    report: Report,
    counters: FtoCaseCounters,
}

impl FtoHb {
    /// Creates the analysis with empty state.
    pub fn new() -> Self {
        FtoHb::default()
    }

    fn read(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let e = Epoch::new(t, self.sync.local(t));
        let vs = slot(&mut self.vars, x.index());
        match vs.read.same_epoch(t, e.clock()) {
            Some(SameEpoch::Exclusive) => {
                self.counters.hit(FtoCase::ReadSameEpoch);
                return;
            }
            Some(SameEpoch::Shared) => {
                self.counters.hit(FtoCase::SharedSameEpoch);
                return;
            }
            None => {}
        }
        let now = self.sync.clock_ref(t);
        let mut race_with_write = false;
        match &mut vs.read {
            ReadMeta::Epoch(r) if r.is_owned_by(t) => {
                self.counters.hit(FtoCase::ReadOwned);
                vs.read = ReadMeta::Epoch(e);
            }
            ReadMeta::Epoch(r) => {
                if r.leq_vc(now) {
                    self.counters.hit(FtoCase::ReadExclusive);
                    vs.read = ReadMeta::Epoch(e);
                } else {
                    self.counters.hit(FtoCase::ReadShare);
                    race_with_write = !vs.write.leq_vc(now);
                    vs.read.share(e);
                }
            }
            ReadMeta::Vc(vc) => {
                if vc.get(t) != 0 {
                    self.counters.hit(FtoCase::ReadSharedOwned);
                    vc.set(t, e.clock());
                } else {
                    self.counters.hit(FtoCase::ReadShared);
                    race_with_write = !vs.write.leq_vc(now);
                    vc.set(t, e.clock());
                }
            }
        }
        if race_with_write {
            let prior = vec![vs.write.tid()];
            self.report.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Read,
                prior_threads: prior,
            });
        }
    }

    fn write(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let e = Epoch::new(t, self.sync.local(t));
        let vs = slot(&mut self.vars, x.index());
        if vs.write == e {
            self.counters.hit(FtoCase::WriteSameEpoch);
            return;
        }
        let now = self.sync.clock_ref(t);
        let mut prior: Vec<ThreadId> = Vec::new();
        match &vs.read {
            ReadMeta::Epoch(r) if r.is_owned_by(t) => {
                self.counters.hit(FtoCase::WriteOwned);
            }
            ReadMeta::Epoch(r) => {
                self.counters.hit(FtoCase::WriteExclusive);
                if !r.leq_vc(now) {
                    prior.push(r.tid());
                }
            }
            ReadMeta::Vc(vc) => {
                self.counters.hit(FtoCase::WriteShared);
                for (u, c) in vc.iter_nonzero() {
                    if c > now.get(u) {
                        prior.push(u);
                    }
                }
            }
        }
        vs.write = e;
        vs.read = ReadMeta::Epoch(e);
        if !prior.is_empty() {
            self.report.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Write,
                prior_threads: prior,
            });
        }
    }

    /// Diagnostic view of the current HB clock of `t` (for tests).
    pub fn thread_clock(&self, t: ThreadId) -> &VectorClock {
        self.sync.clock_ref(t)
    }
}

impl Detector for FtoHb {
    fn name(&self) -> &'static str {
        "FTO-HB"
    }

    fn relation(&self) -> Relation {
        Relation::Hb
    }

    fn opt_level(&self) -> OptLevel {
        OptLevel::Fto
    }

    fn begin_stream(&mut self, hint: crate::StreamHint) {
        self.sync.reserve(&hint);
        self.vars
            .reserve(crate::StreamHint::presize(hint.vars, self.vars.len()));
    }

    fn process(&mut self, id: EventId, event: &Event) {
        let t = event.tid;
        match event.op {
            Op::Read(x) => self.read(id, t, x, event.loc),
            Op::Write(x) => self.write(id, t, x, event.loc),
            Op::Acquire(m) | Op::AcqWrite(m) => self.sync.acquire(t, m),
            Op::AcqRead(m) => self.sync.acquire_read(t, m),
            Op::Release(m) => self.sync.release(t, m),
            // A failed trylock establishes no ordering in any direction.
            Op::TryAcqFail(_) => {}
            Op::Fork(u) => self.sync.fork(t, u),
            Op::Join(u) => self.sync.join(t, u),
            Op::VolatileRead(v) => self.sync.volatile_read(t, v),
            Op::VolatileWrite(v) => self.sync.volatile_write(t, v),
            Op::Wait(c, m) => self.sync.wait(t, c, m),
            Op::Notify(c) | Op::NotifyAll(c) => self.sync.notify(t, c),
            Op::BarrierEnter(b) => self.sync.barrier_enter(t, b),
            Op::BarrierExit(b) => self.sync.barrier_exit(t, b),
        }
    }

    fn report(&self) -> &Report {
        &self.report
    }

    fn footprint_bytes(&self) -> usize {
        self.sync.footprint_bytes()
            + self.vars.capacity() * std::mem::size_of::<VarState>()
            + self
                .vars
                .iter()
                .map(|v| v.read.footprint_bytes())
                .sum::<usize>()
            + self.report.footprint_bytes()
    }

    fn state_bytes(&self) -> usize {
        self.sync.resident_bytes()
            + self.vars.capacity() * std::mem::size_of::<VarState>()
            + self.report.footprint_bytes()
    }

    fn case_counters(&self) -> Option<&FtoCaseCounters> {
        Some(&self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_detector;
    use smarttrack_trace::{LockId, TraceBuilder};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }

    fn run(b: TraceBuilder) -> (Report, FtoCaseCounters) {
        let mut det = FtoHb::new();
        run_detector(&mut det, &b.finish());
        (det.report().clone(), det.counters.clone())
    }

    #[test]
    fn write_owned_skips_race_check() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Read(x(0))).unwrap();
        b.push(t(0), Op::Acquire(m(0))).unwrap(); // epoch changes at release only
        b.push(t(0), Op::Release(m(0))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap(); // owned: last access was ours
        let (r, c) = run(b);
        assert!(r.is_empty());
        assert_eq!(c.count(FtoCase::WriteOwned), 1);
    }

    #[test]
    fn owned_cases_follow_write() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        b.push(t(0), Op::Release(m(0))).unwrap();
        b.push(t(0), Op::Read(x(0))).unwrap(); // [Read Owned]: write set Rx
        let (r, c) = run(b);
        assert!(r.is_empty());
        assert_eq!(c.count(FtoCase::ReadOwned), 1);
    }

    #[test]
    fn detects_read_write_race_in_shared_mode() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Read(x(0))).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap(); // share
        b.push(t(0), Op::Write(x(0))).unwrap(); // races with T1's read only
        let (r, c) = run(b);
        assert_eq!(r.dynamic_count(), 1);
        assert_eq!(r.races()[0].prior_threads, vec![t(1)]);
        assert_eq!(c.count(FtoCase::WriteShared), 1);
    }

    #[test]
    fn matches_ft2_first_race_on_random_traces() {
        use crate::Ft2;
        use smarttrack_trace::gen::RandomTraceSpec;
        for seed in 0..30 {
            let tr = RandomTraceSpec {
                events: 400,
                ..RandomTraceSpec::default()
            }
            .generate(seed);
            let mut a = FtoHb::new();
            let mut b = Ft2::new();
            run_detector(&mut a, &tr);
            run_detector(&mut b, &tr);
            assert_eq!(
                a.report().first_race_event(),
                b.report().first_race_event(),
                "seed {seed}"
            );
        }
    }
}
