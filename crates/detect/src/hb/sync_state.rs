//! Synchronization-clock state shared by all HB analyses.

use smarttrack_clock::{ThreadId, VectorClock};
use smarttrack_trace::{BarrierId, CondId, LockId, VarId};

use crate::common::{
    barrier_table_bytes, barrier_table_resident_bytes, slot, vc_table_bytes,
    vc_table_resident_bytes, BarrierRendezvous,
};

/// Per-thread, per-lock, and per-volatile vector clocks plus the HB join
/// rules for every synchronization operation (§5.1).
///
/// HB analyses increment a thread's clock at release-like operations only
/// (release, fork, volatile write), following FastTrack; predictive analyses
/// have their own state types that also increment at acquires.
#[derive(Clone, Debug, Default)]
pub(crate) struct HbSyncState {
    threads: Vec<VectorClock>,
    locks: Vec<VectorClock>,
    volatiles: Vec<VectorClock>,
    /// Per condition variable: the join of the notifiers' clocks (`Nc`).
    condvars: Vec<VectorClock>,
    barriers: Vec<BarrierRendezvous>,
    /// Per lock: the reader-aggregate clock `LRm` — the join of the release
    /// times of *read-mode* critical sections on `m`. Empty for plain
    /// mutexes, so the non-rwlock paths never pay for it.
    read_locks: Vec<VectorClock>,
    /// Per thread: rwlocks currently held in *read* mode (write-mode holds
    /// are indistinguishable from plain mutex holds and are not tracked).
    rw_held: Vec<Vec<LockId>>,
}

impl HbSyncState {
    /// The clock `Ct`, initializing `Ct(t) = 1` on first use.
    pub fn clock(&mut self, t: ThreadId) -> &mut VectorClock {
        let c = slot(&mut self.threads, t.index());
        if c.get(t) == 0 {
            c.set(t, 1);
        }
        c
    }

    /// Read-only view of `Ct` (must have been initialized).
    pub fn clock_ref(&self, t: ThreadId) -> &VectorClock {
        &self.threads[t.index()]
    }

    /// `Ct(t)` — the local clock component, initializing on first use.
    /// The same-epoch fast paths use this to stay O(1).
    pub fn local(&mut self, t: ThreadId) -> u32 {
        self.clock(t).get(t)
    }

    /// `acq(m)` (exclusive, including write-mode on an rwlock):
    /// `Ct ← Ct ⊔ Lm ⊔ LRm`. A writer is ordered after the last exclusive
    /// release *and* after every completed read section (`LRm` is empty for
    /// plain mutexes, so this degenerates to the classic rule).
    pub fn acquire(&mut self, t: ThreadId, m: LockId) {
        let lm = slot(&mut self.locks, m.index()).clone();
        let lrm = slot(&mut self.read_locks, m.index()).clone();
        let ct = self.clock(t);
        ct.join(&lm);
        ct.join(&lrm);
    }

    /// `acqr(m)` (read mode): `Ct ← Ct ⊔ Lm` only. A reader is ordered
    /// after the last write release but **not** after other read sections —
    /// concurrent readers are the point of a reader-writer lock.
    pub fn acquire_read(&mut self, t: ThreadId, m: LockId) {
        let lm = slot(&mut self.locks, m.index()).clone();
        self.clock(t).join(&lm);
        slot(&mut self.rw_held, t.index()).push(m);
    }

    /// `rel(m)`: an exclusive release assigns `Lm ← Ct`; a *read-mode*
    /// release instead joins into the reader aggregate (`LRm ← LRm ⊔ Ct`) —
    /// assignment would let one reader's release erase another's, losing the
    /// reader→writer edge. Both modes increment `Ct(t)`.
    pub fn release(&mut self, t: ThreadId, m: LockId) {
        let ct = self.clock(t).clone();
        let read_mode = self
            .rw_held
            .get_mut(t.index())
            .and_then(|h| h.iter().rposition(|&l| l == m))
            .is_some_and(|pos| {
                self.rw_held[t.index()].remove(pos);
                true
            });
        if read_mode {
            slot(&mut self.read_locks, m.index()).join(&ct);
        } else {
            slot(&mut self.locks, m.index()).assign(&ct);
        }
        self.clock(t).increment(t);
    }

    /// `fork(u)` by `t`: `Cu ← Cu ⊔ Ct; Ct(t) += 1`.
    pub fn fork(&mut self, t: ThreadId, u: ThreadId) {
        let ct = self.clock(t).clone();
        self.clock(u).join(&ct);
        self.clock(t).increment(t);
    }

    /// `join(u)` by `t`: `Ct ← Ct ⊔ Cu`.
    pub fn join(&mut self, t: ThreadId, u: ThreadId) {
        let cu = self.clock(u).clone();
        self.clock(t).join(&cu);
    }

    /// Volatile read of `v`: `Ct ← Ct ⊔ Vv`.
    pub fn volatile_read(&mut self, t: ThreadId, v: VarId) {
        let vv = slot(&mut self.volatiles, v.index()).clone();
        self.clock(t).join(&vv);
    }

    /// Volatile write of `v`: `Ct ← Ct ⊔ Vv; Vv ← Ct; Ct(t) += 1`.
    pub fn volatile_write(&mut self, t: ThreadId, v: VarId) {
        let vv = slot(&mut self.volatiles, v.index()).clone();
        let ct = {
            let c = self.clock(t);
            c.join(&vv);
            c.clone()
        };
        slot(&mut self.volatiles, v.index()).assign(&ct);
        self.clock(t).increment(t);
    }

    /// `ntf(c)` / `nfa(c)`: publish-only hard edge — `Nc ← Nc ⊔ Ct;
    /// Ct(t) += 1`. Notifies do not absorb `Nc` (two notifiers are not
    /// thereby ordered with each other).
    pub fn notify(&mut self, t: ThreadId, c: CondId) {
        let ct = self.clock(t).clone();
        slot(&mut self.condvars, c.index()).join(&ct);
        self.clock(t).increment(t);
    }

    /// `wait(c, m)`: an atomic release-and-reacquire of the monitor with
    /// the condvar ordering in between — `rel(m)`, then `Ct ← Ct ⊔ Nc`,
    /// then `acq(m)` (see `docs/ARCHITECTURE.md`, "Synchronization model").
    pub fn wait(&mut self, t: ThreadId, c: CondId, m: LockId) {
        self.release(t, m);
        let nc = slot(&mut self.condvars, c.index()).clone();
        self.clock(t).join(&nc);
        self.acquire(t, m);
    }

    /// `bent(b)`: publish into the round's rendezvous clock; increment.
    pub fn barrier_enter(&mut self, t: ThreadId, b: BarrierId) {
        let ct = self.clock(t).clone();
        slot(&mut self.barriers, b.index()).enter(&ct);
        self.clock(t).increment(t);
    }

    /// `bext(b)`: join the sealed rendezvous clock (ordered after every
    /// enter of the round).
    pub fn barrier_exit(&mut self, t: ThreadId, b: BarrierId) {
        let open = slot(&mut self.barriers, b.index()).exit().clone();
        self.clock(t).join(&open);
    }

    /// Approximate heap bytes (exact: includes per-clock heap spill).
    pub fn footprint_bytes(&self) -> usize {
        vc_table_bytes(&self.threads)
            + vc_table_bytes(&self.locks)
            + vc_table_bytes(&self.volatiles)
            + vc_table_bytes(&self.condvars)
            + barrier_table_bytes(&self.barriers)
            + vc_table_bytes(&self.read_locks)
            + self
                .rw_held
                .iter()
                .map(|h| h.capacity() * std::mem::size_of::<LockId>())
                .sum::<usize>()
    }

    /// Cheap resident bytes (capacities only, O(1)).
    pub fn resident_bytes(&self) -> usize {
        vc_table_resident_bytes(&self.threads)
            + vc_table_resident_bytes(&self.locks)
            + vc_table_resident_bytes(&self.volatiles)
            + vc_table_resident_bytes(&self.condvars)
            + barrier_table_resident_bytes(&self.barriers)
            + vc_table_resident_bytes(&self.read_locks)
            + self.rw_held.capacity() * std::mem::size_of::<Vec<LockId>>()
    }

    /// Pre-sizes the clock tables from a [`crate::StreamHint`] (clamped,
    /// see [`crate::StreamHint::presize`]).
    pub fn reserve(&mut self, hint: &crate::StreamHint) {
        use crate::StreamHint;
        self.threads
            .reserve(StreamHint::presize(hint.threads, self.threads.len()));
        self.locks
            .reserve(StreamHint::presize(hint.locks, self.locks.len()));
        self.volatiles
            .reserve(StreamHint::presize(hint.volatiles, self.volatiles.len()));
        self.condvars
            .reserve(StreamHint::presize(hint.condvars, self.condvars.len()));
        self.barriers
            .reserve(StreamHint::presize(hint.barriers, self.barriers.len()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn clocks_start_at_one() {
        let mut s = HbSyncState::default();
        assert_eq!(s.clock(t(2)).get(t(2)), 1);
    }

    #[test]
    fn release_acquire_transfers_knowledge() {
        let mut s = HbSyncState::default();
        let m = LockId::new(0);
        s.clock(t(0)).set(t(0), 5);
        s.release(t(0), m);
        assert_eq!(s.clock(t(0)).get(t(0)), 6, "incremented at release");
        s.acquire(t(1), m);
        assert_eq!(s.clock(t(1)).get(t(0)), 5, "absorbed releaser's time");
    }

    #[test]
    fn fork_join_round_trip() {
        let mut s = HbSyncState::default();
        s.clock(t(0)).set(t(0), 3);
        s.fork(t(0), t(1));
        assert_eq!(s.clock(t(1)).get(t(0)), 3);
        s.clock(t(1)).set(t(1), 9);
        s.join(t(0), t(1));
        assert_eq!(s.clock(t(0)).get(t(1)), 9);
    }

    #[test]
    fn readers_order_with_writers_but_not_each_other() {
        let mut s = HbSyncState::default();
        let m = LockId::new(0);
        // Writer publishes 5, then two concurrent readers.
        s.clock(t(0)).set(t(0), 5);
        s.acquire(t(0), m);
        s.release(t(0), m);
        s.clock(t(1)).set(t(1), 7);
        s.acquire_read(t(1), m);
        assert_eq!(s.clock(t(1)).get(t(0)), 5, "reader after write release");
        s.clock(t(2)).set(t(2), 9);
        s.acquire_read(t(2), m);
        s.release(t(1), m);
        assert_eq!(
            s.clock(t(2)).get(t(1)),
            0,
            "concurrent readers stay unordered"
        );
        s.release(t(2), m);
        // The next writer is ordered after both read sections.
        s.acquire(t(3), m);
        assert_eq!(s.clock(t(3)).get(t(1)), 7);
        assert_eq!(s.clock(t(3)).get(t(2)), 9);
        assert_eq!(s.clock(t(3)).get(t(0)), 5);
        // And a later reader sees only the write release, not the readers.
        s.acquire_read(t(4), m);
        assert_eq!(s.clock(t(4)).get(t(1)), 0);
    }

    #[test]
    fn read_release_joins_instead_of_assigning() {
        let mut s = HbSyncState::default();
        let m = LockId::new(0);
        s.clock(t(0)).set(t(0), 3);
        s.acquire_read(t(0), m);
        s.release(t(0), m);
        s.clock(t(1)).set(t(1), 4);
        s.acquire_read(t(1), m);
        s.release(t(1), m);
        // Both read releases survive in the aggregate.
        s.acquire(t(2), m);
        assert_eq!(s.clock(t(2)).get(t(0)), 3);
        assert_eq!(s.clock(t(2)).get(t(1)), 4);
    }

    #[test]
    fn volatile_write_read_orders() {
        let mut s = HbSyncState::default();
        let v = VarId::new(0);
        s.clock(t(0)).set(t(0), 4);
        s.volatile_write(t(0), v);
        s.volatile_read(t(1), v);
        assert_eq!(s.clock(t(1)).get(t(0)), 4);
    }
}
