//! Synchronization-clock state shared by all HB analyses.

use smarttrack_clock::{ThreadId, VectorClock};
use smarttrack_trace::{BarrierId, CondId, LockId, VarId};

use crate::common::{
    barrier_table_bytes, barrier_table_resident_bytes, slot, vc_table_bytes,
    vc_table_resident_bytes, BarrierRendezvous,
};

/// Per-thread, per-lock, and per-volatile vector clocks plus the HB join
/// rules for every synchronization operation (§5.1).
///
/// HB analyses increment a thread's clock at release-like operations only
/// (release, fork, volatile write), following FastTrack; predictive analyses
/// have their own state types that also increment at acquires.
#[derive(Clone, Debug, Default)]
pub(crate) struct HbSyncState {
    threads: Vec<VectorClock>,
    locks: Vec<VectorClock>,
    volatiles: Vec<VectorClock>,
    /// Per condition variable: the join of the notifiers' clocks (`Nc`).
    condvars: Vec<VectorClock>,
    barriers: Vec<BarrierRendezvous>,
}

impl HbSyncState {
    /// The clock `Ct`, initializing `Ct(t) = 1` on first use.
    pub fn clock(&mut self, t: ThreadId) -> &mut VectorClock {
        let c = slot(&mut self.threads, t.index());
        if c.get(t) == 0 {
            c.set(t, 1);
        }
        c
    }

    /// Read-only view of `Ct` (must have been initialized).
    pub fn clock_ref(&self, t: ThreadId) -> &VectorClock {
        &self.threads[t.index()]
    }

    /// `Ct(t)` — the local clock component, initializing on first use.
    /// The same-epoch fast paths use this to stay O(1).
    pub fn local(&mut self, t: ThreadId) -> u32 {
        self.clock(t).get(t)
    }

    /// `acq(m)`: `Ct ← Ct ⊔ Lm`.
    pub fn acquire(&mut self, t: ThreadId, m: LockId) {
        let lm = slot(&mut self.locks, m.index()).clone();
        self.clock(t).join(&lm);
    }

    /// `rel(m)`: `Lm ← Ct; Ct(t) += 1`.
    pub fn release(&mut self, t: ThreadId, m: LockId) {
        let ct = self.clock(t).clone();
        slot(&mut self.locks, m.index()).assign(&ct);
        self.clock(t).increment(t);
    }

    /// `fork(u)` by `t`: `Cu ← Cu ⊔ Ct; Ct(t) += 1`.
    pub fn fork(&mut self, t: ThreadId, u: ThreadId) {
        let ct = self.clock(t).clone();
        self.clock(u).join(&ct);
        self.clock(t).increment(t);
    }

    /// `join(u)` by `t`: `Ct ← Ct ⊔ Cu`.
    pub fn join(&mut self, t: ThreadId, u: ThreadId) {
        let cu = self.clock(u).clone();
        self.clock(t).join(&cu);
    }

    /// Volatile read of `v`: `Ct ← Ct ⊔ Vv`.
    pub fn volatile_read(&mut self, t: ThreadId, v: VarId) {
        let vv = slot(&mut self.volatiles, v.index()).clone();
        self.clock(t).join(&vv);
    }

    /// Volatile write of `v`: `Ct ← Ct ⊔ Vv; Vv ← Ct; Ct(t) += 1`.
    pub fn volatile_write(&mut self, t: ThreadId, v: VarId) {
        let vv = slot(&mut self.volatiles, v.index()).clone();
        let ct = {
            let c = self.clock(t);
            c.join(&vv);
            c.clone()
        };
        slot(&mut self.volatiles, v.index()).assign(&ct);
        self.clock(t).increment(t);
    }

    /// `ntf(c)` / `nfa(c)`: publish-only hard edge — `Nc ← Nc ⊔ Ct;
    /// Ct(t) += 1`. Notifies do not absorb `Nc` (two notifiers are not
    /// thereby ordered with each other).
    pub fn notify(&mut self, t: ThreadId, c: CondId) {
        let ct = self.clock(t).clone();
        slot(&mut self.condvars, c.index()).join(&ct);
        self.clock(t).increment(t);
    }

    /// `wait(c, m)`: an atomic release-and-reacquire of the monitor with
    /// the condvar ordering in between — `rel(m)`, then `Ct ← Ct ⊔ Nc`,
    /// then `acq(m)` (see `docs/ARCHITECTURE.md`, "Synchronization model").
    pub fn wait(&mut self, t: ThreadId, c: CondId, m: LockId) {
        self.release(t, m);
        let nc = slot(&mut self.condvars, c.index()).clone();
        self.clock(t).join(&nc);
        self.acquire(t, m);
    }

    /// `bent(b)`: publish into the round's rendezvous clock; increment.
    pub fn barrier_enter(&mut self, t: ThreadId, b: BarrierId) {
        let ct = self.clock(t).clone();
        slot(&mut self.barriers, b.index()).enter(&ct);
        self.clock(t).increment(t);
    }

    /// `bext(b)`: join the sealed rendezvous clock (ordered after every
    /// enter of the round).
    pub fn barrier_exit(&mut self, t: ThreadId, b: BarrierId) {
        let open = slot(&mut self.barriers, b.index()).exit().clone();
        self.clock(t).join(&open);
    }

    /// Approximate heap bytes (exact: includes per-clock heap spill).
    pub fn footprint_bytes(&self) -> usize {
        vc_table_bytes(&self.threads)
            + vc_table_bytes(&self.locks)
            + vc_table_bytes(&self.volatiles)
            + vc_table_bytes(&self.condvars)
            + barrier_table_bytes(&self.barriers)
    }

    /// Cheap resident bytes (capacities only, O(1)).
    pub fn resident_bytes(&self) -> usize {
        vc_table_resident_bytes(&self.threads)
            + vc_table_resident_bytes(&self.locks)
            + vc_table_resident_bytes(&self.volatiles)
            + vc_table_resident_bytes(&self.condvars)
            + barrier_table_resident_bytes(&self.barriers)
    }

    /// Pre-sizes the clock tables from a [`crate::StreamHint`] (clamped,
    /// see [`crate::StreamHint::presize`]).
    pub fn reserve(&mut self, hint: &crate::StreamHint) {
        use crate::StreamHint;
        self.threads
            .reserve(StreamHint::presize(hint.threads, self.threads.len()));
        self.locks
            .reserve(StreamHint::presize(hint.locks, self.locks.len()));
        self.volatiles
            .reserve(StreamHint::presize(hint.volatiles, self.volatiles.len()));
        self.condvars
            .reserve(StreamHint::presize(hint.condvars, self.condvars.len()));
        self.barriers
            .reserve(StreamHint::presize(hint.barriers, self.barriers.len()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn clocks_start_at_one() {
        let mut s = HbSyncState::default();
        assert_eq!(s.clock(t(2)).get(t(2)), 1);
    }

    #[test]
    fn release_acquire_transfers_knowledge() {
        let mut s = HbSyncState::default();
        let m = LockId::new(0);
        s.clock(t(0)).set(t(0), 5);
        s.release(t(0), m);
        assert_eq!(s.clock(t(0)).get(t(0)), 6, "incremented at release");
        s.acquire(t(1), m);
        assert_eq!(s.clock(t(1)).get(t(0)), 5, "absorbed releaser's time");
    }

    #[test]
    fn fork_join_round_trip() {
        let mut s = HbSyncState::default();
        s.clock(t(0)).set(t(0), 3);
        s.fork(t(0), t(1));
        assert_eq!(s.clock(t(1)).get(t(0)), 3);
        s.clock(t(1)).set(t(1), 9);
        s.join(t(0), t(1));
        assert_eq!(s.clock(t(0)).get(t(1)), 9);
    }

    #[test]
    fn volatile_write_read_orders() {
        let mut s = HbSyncState::default();
        let v = VarId::new(0);
        s.clock(t(0)).set(t(0), 4);
        s.volatile_write(t(0), v);
        s.volatile_read(t(1), v);
        assert_eq!(s.clock(t(1)).get(t(0)), 4);
    }
}
