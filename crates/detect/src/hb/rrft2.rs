//! RoadRunner's *default* FastTrack2 behavior, for the §5.4 contrast.
//!
//! The paper's FT2 deliberately differs from the FastTrack2 tool bundled
//! with RoadRunner: "RoadRunner's FastTrack2 does not update last-access
//! metadata at read events that detect a race (for unknown reasons); it does
//! not perform analysis on future accesses to a variable after it detects a
//! race on the variable; and it limits the number of races it counts" —
//! also, prior work "used default RoadRunner behavior that stops performing
//! analysis for a field after 100 dynamic races detected on the field"
//! (§5.6), which is why the paper's dynamic race counts dwarf prior work's.
//!
//! [`RoadRunnerFt2`] reproduces those behaviors so the count difference can
//! be demonstrated (see its tests), explaining the paper's Table 7 footnote.

use smarttrack_clock::{Epoch, ReadMeta, ThreadId};
use smarttrack_trace::{Event, EventId, Loc, Op, VarId};

use crate::common::slot;
use crate::hb::HbSyncState;
use crate::report::{AccessKind, RaceReport, Report};
use crate::{Detector, OptLevel, Relation};

/// Dynamic races counted per variable before RoadRunner stops analyzing it.
const RACE_LIMIT_PER_VAR: u32 = 100;

#[derive(Clone, Debug, Default)]
struct VarState {
    write: Epoch,
    read: ReadMeta,
    races: u32,
    dead: bool,
}

/// FastTrack2 with RoadRunner's default race handling: per-variable analysis
/// stops after the first detected race on that variable (and would stop
/// counting after 100; both behaviors modelled).
///
/// Not part of the paper's Table 1 matrix — it exists to reproduce the §5.4
/// and §5.6 comparisons against prior work's methodology.
///
/// # Examples
///
/// ```
/// use smarttrack_detect::{run_detector, Detector, Ft2, RoadRunnerFt2};
/// use smarttrack_trace::{Op, ThreadId, TraceBuilder, VarId};
///
/// let mut b = TraceBuilder::new();
/// for round in 0..5u32 {
///     b.push(ThreadId::new(round % 2), Op::Write(VarId::new(0)))?;
/// }
/// let trace = b.finish();
/// let mut full = Ft2::new();
/// let mut rr = RoadRunnerFt2::new();
/// run_detector(&mut full, &trace);
/// run_detector(&mut rr, &trace);
/// assert_eq!(full.report().dynamic_count(), 4, "the paper's FT2 counts every race");
/// assert_eq!(rr.report().dynamic_count(), 1, "RoadRunner stops at the first");
/// # Ok::<(), smarttrack_trace::TraceError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct RoadRunnerFt2 {
    sync: HbSyncState,
    vars: Vec<VarState>,
    report: Report,
}

impl RoadRunnerFt2 {
    /// Creates the analysis with empty state.
    pub fn new() -> Self {
        RoadRunnerFt2::default()
    }

    fn record(
        &mut self,
        id: EventId,
        loc: Loc,
        t: ThreadId,
        x: VarId,
        kind: AccessKind,
        prior: Vec<ThreadId>,
    ) {
        let vs = &mut self.vars[x.index()];
        vs.races += 1;
        // RoadRunner stops analyzing the variable after a detected race...
        vs.dead = true;
        // ...and would cap the *count* at 100 dynamic races per field.
        if vs.races <= RACE_LIMIT_PER_VAR {
            self.report.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind,
                prior_threads: prior,
            });
        }
    }

    fn read(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let e = Epoch::new(t, self.sync.local(t));
        let vs = slot(&mut self.vars, x.index());
        if vs.dead {
            return;
        }
        match &vs.read {
            ReadMeta::Epoch(r) if *r == e => return,
            ReadMeta::Vc(vc) if vc.get(t) == e.clock() => return,
            _ => {}
        }
        let now = self.sync.clock_ref(t);
        if !vs.write.leq_vc(now) {
            // Race: report, but (unlike the paper's FT2) do NOT update the
            // read metadata and kill the variable.
            let prior = vec![vs.write.tid()];
            self.record(id, loc, t, x, AccessKind::Read, prior);
            return;
        }
        match &mut vs.read {
            ReadMeta::Epoch(r) => {
                if r.leq_vc(now) {
                    vs.read = ReadMeta::Epoch(e);
                } else {
                    vs.read.share(e);
                }
            }
            ReadMeta::Vc(vc) => vc.set(t, e.clock()),
        }
    }

    fn write(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let e = Epoch::new(t, self.sync.local(t));
        let vs = slot(&mut self.vars, x.index());
        if vs.dead || vs.write == e {
            return;
        }
        let now = self.sync.clock_ref(t);
        let mut prior = Vec::new();
        if !vs.write.leq_vc(now) {
            prior.push(vs.write.tid());
        }
        match &vs.read {
            ReadMeta::Epoch(r) => {
                if !r.leq_vc(now) && !prior.contains(&r.tid()) {
                    prior.push(r.tid());
                }
            }
            ReadMeta::Vc(vc) => {
                for (u, c) in vc.iter_nonzero() {
                    if c > now.get(u) && !prior.contains(&u) {
                        prior.push(u);
                    }
                }
            }
        }
        if prior.is_empty() {
            vs.write = e;
        } else {
            self.record(id, loc, t, x, AccessKind::Write, prior);
        }
    }
}

impl Detector for RoadRunnerFt2 {
    fn name(&self) -> &'static str {
        "RoadRunner-FT2"
    }

    fn relation(&self) -> Relation {
        Relation::Hb
    }

    fn opt_level(&self) -> OptLevel {
        OptLevel::Epochs
    }

    fn process(&mut self, id: EventId, event: &Event) {
        let t = event.tid;
        match event.op {
            Op::Read(x) => self.read(id, t, x, event.loc),
            Op::Write(x) => self.write(id, t, x, event.loc),
            Op::Acquire(m) | Op::AcqWrite(m) => self.sync.acquire(t, m),
            Op::AcqRead(m) => self.sync.acquire_read(t, m),
            Op::Release(m) => self.sync.release(t, m),
            // A failed trylock establishes no ordering in any direction.
            Op::TryAcqFail(_) => {}
            Op::Fork(u) => self.sync.fork(t, u),
            Op::Join(u) => self.sync.join(t, u),
            Op::VolatileRead(v) => self.sync.volatile_read(t, v),
            Op::VolatileWrite(v) => self.sync.volatile_write(t, v),
            Op::Wait(c, m) => self.sync.wait(t, c, m),
            Op::Notify(c) | Op::NotifyAll(c) => self.sync.notify(t, c),
            Op::BarrierEnter(b) => self.sync.barrier_enter(t, b),
            Op::BarrierExit(b) => self.sync.barrier_exit(t, b),
        }
    }

    fn report(&self) -> &Report {
        &self.report
    }

    fn footprint_bytes(&self) -> usize {
        self.sync.footprint_bytes()
            + self
                .vars
                .iter()
                .map(|v| v.read.footprint_bytes() + std::mem::size_of::<VarState>())
                .sum::<usize>()
            + self.report.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_detector, Ft2};
    use smarttrack_trace::{Trace, TraceBuilder};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }

    fn racy_rounds(var: VarId, rounds: u32) -> Trace {
        let mut b = TraceBuilder::new();
        for round in 0..rounds {
            b.push(t(round % 2), Op::Write(var)).unwrap();
        }
        b.finish()
    }

    #[test]
    fn stops_analyzing_a_variable_after_its_first_race() {
        let trace = racy_rounds(x(0), 10);
        let mut rr = RoadRunnerFt2::new();
        run_detector(&mut rr, &trace);
        assert_eq!(rr.report().dynamic_count(), 1);
        let mut full = Ft2::new();
        run_detector(&mut full, &trace);
        assert_eq!(full.report().dynamic_count(), 9);
    }

    #[test]
    fn other_variables_keep_being_analyzed() {
        use smarttrack_trace::Loc;
        let mut b = TraceBuilder::new();
        b.push_at(t(0), Op::Write(x(0)), Loc::new(0)).unwrap();
        b.push_at(t(1), Op::Write(x(0)), Loc::new(1)).unwrap(); // race on x0; x0 dies
        b.push_at(t(0), Op::Write(x(1)), Loc::new(2)).unwrap();
        b.push_at(t(1), Op::Write(x(1)), Loc::new(3)).unwrap(); // race on x1 still found
        let mut rr = RoadRunnerFt2::new();
        run_detector(&mut rr, &b.finish());
        assert_eq!(rr.report().dynamic_count(), 2);
        assert_eq!(rr.report().static_count(), 2);
    }

    #[test]
    fn first_race_matches_the_papers_ft2() {
        use smarttrack_trace::gen::RandomTraceSpec;
        for seed in 0..40 {
            let trace = RandomTraceSpec {
                events: 300,
                ..RandomTraceSpec::default()
            }
            .generate(seed);
            let mut rr = RoadRunnerFt2::new();
            let mut full = Ft2::new();
            run_detector(&mut rr, &trace);
            run_detector(&mut full, &trace);
            assert_eq!(
                rr.report().first_race_event(),
                full.report().first_race_event(),
                "seed {seed}: the variants agree up to the first race"
            );
        }
    }

    #[test]
    fn racy_read_does_not_update_metadata() {
        // T0 writes, T1's racy read is dropped from metadata: a subsequent
        // properly-ordered write by T0 still sees its own epoch.
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap(); // race; variable dies
        b.push(t(0), Op::Write(x(0))).unwrap(); // ignored (dead)
        let mut rr = RoadRunnerFt2::new();
        run_detector(&mut rr, &b.finish());
        assert_eq!(rr.report().dynamic_count(), 1);
    }
}
