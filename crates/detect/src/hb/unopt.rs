//! Unoptimized (vector-clock) happens-before analysis, DJIT+-style.

use smarttrack_clock::{ThreadId, VectorClock};
use smarttrack_trace::{Event, EventId, Loc, Op, VarId};

use crate::common::{slot, vc_table_bytes, vc_table_resident_bytes};
use crate::counters::PathCounters;
use crate::hb::HbSyncState;
use crate::report::{AccessKind, RaceReport, Report};
use crate::{Detector, HotPathStats, OptLevel, Relation};

/// Vector-clock HB analysis (`Unopt-HB` in the paper's tables).
///
/// Last-access metadata `Wx`/`Rx` are full vector clocks; every race check is
/// a pointwise comparison costing `O(T)` — the cost FastTrack's epochs remove.
///
/// # Examples
///
/// ```
/// use smarttrack_detect::{run_detector, Detector, UnoptHb};
/// use smarttrack_trace::{Op, ThreadId, TraceBuilder, VarId};
///
/// let mut b = TraceBuilder::new();
/// b.push(ThreadId::new(0), Op::Write(VarId::new(0)))?;
/// b.push(ThreadId::new(1), Op::Write(VarId::new(0)))?;
/// let mut det = UnoptHb::new();
/// run_detector(&mut det, &b.finish());
/// assert_eq!(det.report().dynamic_count(), 1);
/// # Ok::<(), smarttrack_trace::TraceError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct UnoptHb {
    sync: HbSyncState,
    write_vc: Vec<VectorClock>,
    read_vc: Vec<VectorClock>,
    report: Report,
    paths: PathCounters,
}

impl UnoptHb {
    /// Creates the analysis with empty state.
    pub fn new() -> Self {
        UnoptHb::default()
    }

    fn racing_threads(meta: &VectorClock, now: &VectorClock) -> Vec<ThreadId> {
        meta.iter_nonzero()
            .filter(|&(u, c)| c > now.get(u))
            .map(|(u, _)| u)
            .collect()
    }

    fn read(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let local = self.sync.local(t);
        let rx = slot(&mut self.read_vc, x.index());
        // §5.1: the Unopt implementations perform a [Shared Same Epoch]-like
        // check at reads and writes.
        if rx.get(t) == local && local != 0 {
            self.paths.fast += 1;
            return;
        }
        self.paths.slow += 1;
        rx.set(t, local);
        let now = self.sync.clock_ref(t);
        let wx = slot(&mut self.write_vc, x.index());
        let prior = Self::racing_threads(wx, now);
        if !prior.is_empty() {
            self.report.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Read,
                prior_threads: prior,
            });
        }
    }

    fn write(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let local = self.sync.local(t);
        let wx = slot(&mut self.write_vc, x.index());
        if wx.get(t) == local && local != 0 {
            self.paths.fast += 1;
            return; // same-epoch-like fast path
        }
        self.paths.slow += 1;
        let now = self.sync.clock_ref(t);
        let wx = slot(&mut self.write_vc, x.index());
        let mut prior = Self::racing_threads(wx, now);
        wx.set(t, local);
        let rx = slot(&mut self.read_vc, x.index());
        for u in Self::racing_threads(rx, now) {
            if !prior.contains(&u) {
                prior.push(u);
            }
        }
        if !prior.is_empty() {
            self.report.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Write,
                prior_threads: prior,
            });
        }
    }
}

impl Detector for UnoptHb {
    fn name(&self) -> &'static str {
        "Unopt-HB"
    }

    fn relation(&self) -> Relation {
        Relation::Hb
    }

    fn opt_level(&self) -> OptLevel {
        OptLevel::Unopt
    }

    fn begin_stream(&mut self, hint: crate::StreamHint) {
        self.sync.reserve(&hint);
        self.write_vc
            .reserve(crate::StreamHint::presize(hint.vars, self.write_vc.len()));
        self.read_vc
            .reserve(crate::StreamHint::presize(hint.vars, self.read_vc.len()));
    }

    fn process(&mut self, id: EventId, event: &Event) {
        let t = event.tid;
        match event.op {
            Op::Read(x) => self.read(id, t, x, event.loc),
            Op::Write(x) => self.write(id, t, x, event.loc),
            Op::Acquire(m) | Op::AcqWrite(m) => self.sync.acquire(t, m),
            Op::AcqRead(m) => self.sync.acquire_read(t, m),
            Op::Release(m) => self.sync.release(t, m),
            // A failed trylock establishes no ordering in any direction.
            Op::TryAcqFail(_) => {}
            Op::Fork(u) => self.sync.fork(t, u),
            Op::Join(u) => self.sync.join(t, u),
            Op::VolatileRead(v) => self.sync.volatile_read(t, v),
            Op::VolatileWrite(v) => self.sync.volatile_write(t, v),
            Op::Wait(c, m) => self.sync.wait(t, c, m),
            Op::Notify(c) | Op::NotifyAll(c) => self.sync.notify(t, c),
            Op::BarrierEnter(b) => self.sync.barrier_enter(t, b),
            Op::BarrierExit(b) => self.sync.barrier_exit(t, b),
        }
    }

    fn report(&self) -> &Report {
        &self.report
    }

    fn footprint_bytes(&self) -> usize {
        self.sync.footprint_bytes()
            + vc_table_bytes(&self.write_vc)
            + vc_table_bytes(&self.read_vc)
            + self.report.footprint_bytes()
    }

    fn state_bytes(&self) -> usize {
        self.sync.resident_bytes()
            + vc_table_resident_bytes(&self.write_vc)
            + vc_table_resident_bytes(&self.read_vc)
            + self.report.footprint_bytes()
    }

    fn hot_path_stats(&self) -> HotPathStats {
        HotPathStats {
            fast_hits: self.paths.fast,
            slow_hits: self.paths.slow,
            state_bytes: self.state_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_detector;
    use smarttrack_trace::{LockId, TraceBuilder};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }

    fn run(b: TraceBuilder) -> Report {
        let mut det = UnoptHb::new();
        run_detector(&mut det, &b.finish());
        det.report().clone()
    }

    #[test]
    fn detects_unsynchronized_write_write() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        let r = run(b);
        assert_eq!(r.dynamic_count(), 1);
        assert_eq!(r.races()[0].kind, AccessKind::Write);
        assert_eq!(r.races()[0].prior_threads, vec![t(0)]);
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        let mut b = TraceBuilder::new();
        for i in 0..2 {
            b.push(t(i), Op::Acquire(m(0))).unwrap();
            b.push(t(i), Op::Write(x(0))).unwrap();
            b.push(t(i), Op::Release(m(0))).unwrap();
        }
        assert!(run(b).is_empty());
    }

    #[test]
    fn read_write_race_detected_at_write() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Read(x(0))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        let r = run(b);
        assert_eq!(r.dynamic_count(), 1);
        assert_eq!(r.races()[0].kind, AccessKind::Write);
    }

    #[test]
    fn write_read_race_detected_at_read() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap();
        let r = run(b);
        assert_eq!(r.dynamic_count(), 1);
        assert_eq!(r.races()[0].kind, AccessKind::Read);
    }

    #[test]
    fn concurrent_reads_do_not_race() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Read(x(0))).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap();
        assert!(run(b).is_empty());
    }

    #[test]
    fn fork_orders_parent_before_child() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Fork(t(1))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        assert!(run(b).is_empty());
    }

    #[test]
    fn join_orders_child_before_parent() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Fork(t(1))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Join(t(1))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap();
        assert!(run(b).is_empty());
    }

    #[test]
    fn volatile_write_read_orders_accesses() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::VolatileWrite(VarId::new(0))).unwrap();
        b.push(t(1), Op::VolatileRead(VarId::new(0))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        assert!(run(b).is_empty());
    }

    #[test]
    fn volatile_read_does_not_publish() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::VolatileRead(VarId::new(0))).unwrap();
        b.push(t(1), Op::VolatileRead(VarId::new(0))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        assert_eq!(run(b).dynamic_count(), 1);
    }

    #[test]
    fn misses_figure1_predictable_race() {
        let r = {
            let mut det = UnoptHb::new();
            run_detector(&mut det, &smarttrack_trace::paper::figure1());
            det.report().clone()
        };
        assert!(r.is_empty(), "HB analysis must miss the Figure 1 race");
    }

    #[test]
    fn notify_then_wait_orders_producer_before_consumer() {
        use smarttrack_trace::{CondId, LockId};
        let (c, m) = (CondId::new(0), LockId::new(0));
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Notify(c)).unwrap();
        b.push(t(1), Op::Acquire(m)).unwrap();
        b.push(t(1), Op::Wait(c, m)).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap();
        b.push(t(1), Op::Release(m)).unwrap();
        assert!(run(b).is_empty(), "handoff through the condvar orders rd");
    }

    #[test]
    fn write_after_notify_races_with_woken_reader() {
        use smarttrack_trace::{CondId, LockId};
        let (c, m) = (CondId::new(0), LockId::new(0));
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Notify(c)).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap(); // after the notify: unordered
        b.push(t(1), Op::Acquire(m)).unwrap();
        b.push(t(1), Op::Wait(c, m)).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap();
        b.push(t(1), Op::Release(m)).unwrap();
        assert_eq!(run(b).dynamic_count(), 1);
    }

    #[test]
    fn notifies_do_not_order_each_other() {
        use smarttrack_trace::CondId;
        let c = CondId::new(0);
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Notify(c)).unwrap();
        b.push(t(1), Op::Notify(c)).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        assert_eq!(run(b).dynamic_count(), 1, "publish-only notifies");
    }

    #[test]
    fn barrier_orders_across_phases_not_within() {
        use smarttrack_trace::BarrierId;
        let bar = BarrierId::new(0);
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(1), Op::Write(x(1))).unwrap();
        b.push(t(0), Op::BarrierEnter(bar)).unwrap();
        b.push(t(1), Op::BarrierEnter(bar)).unwrap();
        b.push(t(0), Op::BarrierExit(bar)).unwrap();
        b.push(t(1), Op::BarrierExit(bar)).unwrap();
        // Cross-phase: each reads the other's pre-barrier write — ordered.
        b.push(t(0), Op::Read(x(1))).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap();
        // Same-phase: both touch x2 after the rendezvous — racy.
        b.push(t(0), Op::Write(x(2))).unwrap();
        b.push(t(1), Op::Write(x(2))).unwrap();
        let r = run(b);
        assert_eq!(r.dynamic_count(), 1);
        assert_eq!(r.races()[0].var, x(2));
    }

    #[test]
    fn barrier_rounds_are_independent() {
        use smarttrack_trace::BarrierId;
        let bar = BarrierId::new(0);
        let mut b = TraceBuilder::new();
        // Round 1: t0, t1.
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::BarrierEnter(bar)).unwrap();
        b.push(t(1), Op::BarrierEnter(bar)).unwrap();
        b.push(t(0), Op::BarrierExit(bar)).unwrap();
        b.push(t(1), Op::BarrierExit(bar)).unwrap();
        // Round 2: t1, t2 — t2 is ordered after round 2's enters only.
        b.push(t(1), Op::BarrierEnter(bar)).unwrap();
        b.push(t(2), Op::BarrierEnter(bar)).unwrap();
        b.push(t(1), Op::BarrierExit(bar)).unwrap();
        b.push(t(2), Op::BarrierExit(bar)).unwrap();
        // t1 carried round 1's ordering into round 2's rendezvous, so even
        // t2 is (transitively) ordered after t0's pre-round-1 write.
        b.push(t(2), Op::Read(x(0))).unwrap();
        assert!(run(b).is_empty());
    }

    #[test]
    fn write_after_racing_read_still_updates_metadata() {
        // Our FT2 handling of detected races keeps analyzing (§5.1).
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap(); // race 1
        b.push(t(2), Op::Write(x(0))).unwrap(); // race 2 (with T0 and T1)
        let r = run(b);
        assert_eq!(r.dynamic_count(), 2);
        assert_eq!(r.races()[1].prior_threads.len(), 2);
    }
}
