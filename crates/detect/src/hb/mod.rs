//! Happens-before analyses: the non-predictive baselines of the paper.
//!
//! * [`UnoptHb`] — classic vector-clock (DJIT+-style) HB analysis.
//! * [`Ft2`] — the FastTrack2 algorithm (Flanagan & Freund 2017).
//! * [`FtoHb`] — FastTrack-Ownership (Wood et al. 2017), the HB baseline the
//!   paper compares everything against.

mod ft2;
mod fto;
mod rrft2;
mod sync_state;
mod unopt;

pub use ft2::Ft2;
pub use fto::FtoHb;
pub use rrft2::RoadRunnerFt2;
pub use unopt::UnoptHb;

pub(crate) use sync_state::HbSyncState;
