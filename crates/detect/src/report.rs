use std::collections::HashSet;
use std::fmt;

use smarttrack_clock::ThreadId;
use smarttrack_trace::{EventId, Loc, VarId};

/// The kind of access at which a race was detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The detecting access is a read (write–read race).
    Read,
    /// The detecting access is a write (write–write and/or read–write race).
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// A race detected at a single access event.
///
/// Following the paper (§5.1), multiple failed race checks at one access
/// (e.g. a write racing with several last readers) count as a *single*
/// dynamic race; the threads of all prior conflicting accesses are collected
/// in [`RaceReport::prior_threads`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceReport {
    /// The access event that detected the race.
    pub event: EventId,
    /// The static program location of that access (what "statically distinct
    /// races" are counted by).
    pub loc: Loc,
    /// The thread performing the detecting access.
    pub tid: ThreadId,
    /// The variable raced on.
    pub var: VarId,
    /// Whether the detecting access is a read or a write.
    pub kind: AccessKind,
    /// Threads of the prior conflicting accesses found unordered.
    pub prior_threads: Vec<ThreadId>,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "race on {} at {} ({} by {} at {})",
            self.var, self.event, self.kind, self.tid, self.loc
        )
    }
}

/// All races reported by one analysis run.
///
/// # Examples
///
/// ```
/// use smarttrack_detect::{run_detector, Detector, UnoptWdc};
/// use smarttrack_trace::paper;
///
/// let mut det = UnoptWdc::new();
/// run_detector(&mut det, &paper::figure1());
/// let report = det.report();
/// assert_eq!(report.dynamic_count(), 1);
/// assert_eq!(report.static_count(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    races: Vec<RaceReport>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Records a race (one per detecting access).
    pub fn push(&mut self, race: RaceReport) {
        self.races.push(race);
    }

    /// All reported races in detection order.
    pub fn races(&self) -> &[RaceReport] {
        &self.races
    }

    /// Total dynamic races (one per access event that detected ≥ 1 race).
    pub fn dynamic_count(&self) -> usize {
        self.races.len()
    }

    /// Statically distinct races: distinct program locations that detected a
    /// race (§5.6: "Two dynamic races detected at the same static program
    /// location are the same statically unique race").
    pub fn static_count(&self) -> usize {
        self.races
            .iter()
            .map(|r| r.loc)
            .collect::<HashSet<_>>()
            .len()
    }

    /// Event id of the first detected race, if any (used by the differential
    /// tests: all optimization levels of one relation agree up to the first
    /// race).
    pub fn first_race_event(&self) -> Option<EventId> {
        self.races.first().map(|r| r.event)
    }

    /// Returns `true` if no races were detected.
    pub fn is_empty(&self) -> bool {
        self.races.is_empty()
    }

    /// Approximate heap bytes held by the report (part of analysis state).
    pub fn footprint_bytes(&self) -> usize {
        self.races.capacity() * std::mem::size_of::<RaceReport>()
            + self
                .races
                .iter()
                .map(|r| r.prior_threads.capacity() * std::mem::size_of::<ThreadId>())
                .sum::<usize>()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} static / {} dynamic races",
            self.static_count(),
            self.dynamic_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_at(event: u32, loc: u32) -> RaceReport {
        RaceReport {
            event: EventId::new(event),
            loc: Loc::new(loc),
            tid: ThreadId::new(0),
            var: VarId::new(0),
            kind: AccessKind::Write,
            prior_threads: vec![ThreadId::new(1)],
        }
    }

    #[test]
    fn static_count_dedupes_by_location() {
        let mut r = Report::new();
        r.push(report_at(1, 10));
        r.push(report_at(5, 10));
        r.push(report_at(9, 11));
        assert_eq!(r.dynamic_count(), 3);
        assert_eq!(r.static_count(), 2);
        assert_eq!(r.first_race_event(), Some(EventId::new(1)));
    }

    #[test]
    fn empty_report() {
        let r = Report::new();
        assert!(r.is_empty());
        assert_eq!(r.first_race_event(), None);
        assert_eq!(r.to_string(), "0 static / 0 dynamic races");
    }
}
