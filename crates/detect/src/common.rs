//! Shared machinery for the detectors: dense growable tables, held-lock
//! tracking, per-(lock, variable) critical-section metadata, and footprint
//! estimation helpers.

use std::collections::HashMap;

use smarttrack_clock::{ThreadId, VectorClock};
use smarttrack_trace::{EventId, LockId, VarId};

/// Returns a mutable reference to `v[i]`, growing `v` with defaults.
#[inline]
pub fn slot<T: Default>(v: &mut Vec<T>, i: usize) -> &mut T {
    if i >= v.len() {
        v.resize_with(i + 1, T::default);
    }
    &mut v[i]
}

/// Tracks the set of locks held by each thread, in acquisition order
/// (`HeldLocks(t)` in the paper's algorithms).
#[derive(Clone, Debug, Default)]
pub struct HeldLocks {
    held: Vec<Vec<LockId>>,
}

impl HeldLocks {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        HeldLocks::default()
    }

    /// Records an acquire.
    pub fn acquire(&mut self, t: ThreadId, m: LockId) {
        slot(&mut self.held, t.index()).push(m);
    }

    /// Records a release. Releases of unheld locks are ignored (the trace
    /// layer already guarantees well-formedness).
    pub fn release(&mut self, t: ThreadId, m: LockId) {
        if let Some(h) = self.held.get_mut(t.index()) {
            if let Some(pos) = h.iter().rposition(|&l| l == m) {
                h.remove(pos);
            }
        }
    }

    /// The locks held by `t`, outermost first.
    pub fn of(&self, t: ThreadId) -> &[LockId] {
        self.held
            .get(t.index())
            .map(Vec::as_slice)
            .unwrap_or_default()
    }

    /// Approximate heap bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.held
            .iter()
            .map(|h| h.capacity() * std::mem::size_of::<LockId>())
            .sum::<usize>()
            + self.held.capacity() * std::mem::size_of::<Vec<LockId>>()
    }
}

/// Per-(lock, variable) critical-section access times: the paper's
/// `Lr_{m,x}` and `Lw_{m,x}` plus the `Rm`/`Wm` variable sets of the ongoing
/// critical section (Algorithms 1 and 2).
///
/// The paper notes this metadata "entails storing information for
/// lock–variable pairs, requiring indirect metadata lookups (e.g., an
/// implementation can use per-lock hash tables keyed by variables)" — which
/// is exactly the representation here, and exactly the cost SmartTrack's CCS
/// optimizations remove.
///
/// For the "w/ G" graph-building variants, each `Lr`/`Lw` clock also carries
/// the ids of the release events that contributed to it (latest per thread),
/// so rule (a) joins can be recorded as graph edges.
#[derive(Clone, Debug, Default)]
pub struct LockVarTable {
    /// Per lock: variable → (clock, contributing release events).
    read: Vec<HashMap<VarId, LTime>>,
    write: Vec<HashMap<VarId, LTime>>,
    /// Per lock: variables read (`Rm`) / written (`Wm`) in the ongoing
    /// critical section.
    cur_read: Vec<Vec<VarId>>,
    cur_write: Vec<Vec<VarId>>,
    /// Whether to track contributing release events for graph recording.
    track_sources: bool,
}

/// A critical-section time: the join of the release times of prior critical
/// sections (on one lock) that accessed one variable.
#[derive(Clone, Debug, Default)]
pub struct LTime {
    /// Join of release-time clocks.
    pub clock: VectorClock,
    /// Latest contributing release event per releasing thread (graph mode).
    pub sources: Vec<(ThreadId, EventId)>,
}

impl LTime {
    fn absorb(&mut self, clock: &VectorClock, source: Option<(ThreadId, EventId)>) {
        self.clock.join(clock);
        if let Some((t, e)) = source {
            match self.sources.iter_mut().find(|(u, _)| *u == t) {
                Some(entry) => entry.1 = e,
                None => self.sources.push((t, e)),
            }
        }
    }
}

impl LockVarTable {
    /// Creates a table; `track_sources` enables graph-edge recording.
    pub fn new(track_sources: bool) -> Self {
        LockVarTable {
            track_sources,
            ..LockVarTable::default()
        }
    }

    /// Marks `x` as read in the ongoing critical section on `m` (`Rm ∪= {x}`).
    pub fn mark_read(&mut self, m: LockId, x: VarId) {
        let set = slot(&mut self.cur_read, m.index());
        if !set.contains(&x) {
            set.push(x);
        }
    }

    /// Marks `x` as written in the ongoing critical section on `m`
    /// (`Wm ∪= {x}`).
    pub fn mark_write(&mut self, m: LockId, x: VarId) {
        let set = slot(&mut self.cur_write, m.index());
        if !set.contains(&x) {
            set.push(x);
        }
    }

    /// The read-time `Lr_{m,x}`, if any prior critical section on `m` read
    /// (or, for FTO, accessed) `x`.
    pub fn read_time(&self, m: LockId, x: VarId) -> Option<&LTime> {
        self.read.get(m.index()).and_then(|t| t.get(&x))
    }

    /// The write-time `Lw_{m,x}`.
    pub fn write_time(&self, m: LockId, x: VarId) -> Option<&LTime> {
        self.write.get(m.index()).and_then(|t| t.get(&x))
    }

    /// Applies a release of `m` at time `now` (Algorithm 1 lines 9–11 /
    /// Algorithm 2 lines 10–12): folds the ongoing critical section's
    /// accessed-variable sets into `Lr`/`Lw` and clears them.
    ///
    /// `release_event` identifies the release for graph recording.
    pub fn on_release(
        &mut self,
        t: ThreadId,
        m: LockId,
        now: &VectorClock,
        release_event: EventId,
    ) {
        let source = self.track_sources.then_some((t, release_event));
        let reads = std::mem::take(slot(&mut self.cur_read, m.index()));
        let table = slot(&mut self.read, m.index());
        for x in reads {
            table.entry(x).or_default().absorb(now, source);
        }
        let writes = std::mem::take(slot(&mut self.cur_write, m.index()));
        let table = slot(&mut self.write, m.index());
        for x in writes {
            table.entry(x).or_default().absorb(now, source);
        }
    }

    /// Approximate heap bytes (the dominant cost of unoptimized predictive
    /// analysis on lock-heavy programs).
    pub fn footprint_bytes(&self) -> usize {
        let map_bytes = |maps: &Vec<HashMap<VarId, LTime>>| -> usize {
            maps.iter()
                .map(|m| {
                    m.capacity()
                        * (std::mem::size_of::<VarId>() + std::mem::size_of::<LTime>() + 16)
                        + m.values()
                            .map(|lt| {
                                lt.clock.footprint_bytes()
                                    + lt.sources.capacity()
                                        * std::mem::size_of::<(ThreadId, EventId)>()
                            })
                            .sum::<usize>()
                })
                .sum()
        };
        map_bytes(&self.read)
            + map_bytes(&self.write)
            + self
                .cur_read
                .iter()
                .chain(self.cur_write.iter())
                .map(|v| v.capacity() * std::mem::size_of::<VarId>())
                .sum::<usize>()
    }
}

/// Estimates heap bytes of a vector of vector clocks.
pub fn vc_table_bytes(vcs: &[VectorClock]) -> usize {
    vcs.iter().map(VectorClock::footprint_bytes).sum::<usize>() + std::mem::size_of_val(vcs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn held_locks_track_nesting_and_release() {
        let mut h = HeldLocks::new();
        h.acquire(t(0), m(0));
        h.acquire(t(0), m(1));
        assert_eq!(h.of(t(0)), &[m(0), m(1)]);
        h.release(t(0), m(0)); // non-LIFO release allowed
        assert_eq!(h.of(t(0)), &[m(1)]);
        assert!(h.of(t(1)).is_empty());
    }

    #[test]
    fn lockvar_table_folds_release_times() {
        let mut lt = LockVarTable::new(false);
        lt.mark_read(m(0), x(1));
        lt.mark_write(m(0), x(2));
        assert!(lt.read_time(m(0), x(1)).is_none(), "not folded yet");
        let now: VectorClock = [(t(0), 5)].into_iter().collect();
        lt.on_release(t(0), m(0), &now, EventId::new(9));
        assert_eq!(lt.read_time(m(0), x(1)).unwrap().clock.get(t(0)), 5);
        assert_eq!(lt.write_time(m(0), x(2)).unwrap().clock.get(t(0)), 5);
        assert!(lt.read_time(m(0), x(2)).is_none());
        // Current sets cleared.
        let now2: VectorClock = [(t(0), 9)].into_iter().collect();
        lt.on_release(t(0), m(0), &now2, EventId::new(12));
        assert_eq!(
            lt.read_time(m(0), x(1)).unwrap().clock.get(t(0)),
            5,
            "second critical section did not access x1"
        );
    }

    #[test]
    fn lockvar_table_records_sources_in_graph_mode() {
        let mut lt = LockVarTable::new(true);
        lt.mark_write(m(0), x(0));
        let now: VectorClock = [(t(1), 2)].into_iter().collect();
        lt.on_release(t(1), m(0), &now, EventId::new(4));
        let time = lt.write_time(m(0), x(0)).unwrap();
        assert_eq!(time.sources, vec![(t(1), EventId::new(4))]);
        // A later release by the same thread replaces the source.
        lt.mark_write(m(0), x(0));
        let now2: VectorClock = [(t(1), 7)].into_iter().collect();
        lt.on_release(t(1), m(0), &now2, EventId::new(11));
        let time = lt.write_time(m(0), x(0)).unwrap();
        assert_eq!(time.sources, vec![(t(1), EventId::new(11))]);
    }
}
