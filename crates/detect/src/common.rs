//! Shared machinery for the detectors: dense growable tables, held-lock
//! tracking, per-(lock, variable) critical-section metadata, and footprint
//! estimation helpers.

use smarttrack_clock::{ThreadId, VectorClock};
use smarttrack_trace::{EventId, LockId, VarId};

/// Returns a mutable reference to `v[i]`, growing `v` with defaults.
#[inline]
pub fn slot<T: Default>(v: &mut Vec<T>, i: usize) -> &mut T {
    if i >= v.len() {
        v.resize_with(i + 1, T::default);
    }
    &mut v[i]
}

/// Tracks the set of locks held by each thread, in acquisition order
/// (`HeldLocks(t)` in the paper's algorithms), with the hold *mode*: `true`
/// for exclusive/write holds (plain acquires and `acqw`), `false` for
/// read-mode rwlock holds (`acqr`).
#[derive(Clone, Debug, Default)]
pub struct HeldLocks {
    held: Vec<Vec<(LockId, bool)>>,
}

impl HeldLocks {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        HeldLocks::default()
    }

    /// Records an exclusive (or write-mode) acquire.
    pub fn acquire(&mut self, t: ThreadId, m: LockId) {
        slot(&mut self.held, t.index()).push((m, true));
    }

    /// Records a read-mode acquire of an rwlock.
    pub fn acquire_read(&mut self, t: ThreadId, m: LockId) {
        slot(&mut self.held, t.index()).push((m, false));
    }

    /// Records a release and returns whether the ended hold was write-mode.
    /// Releases of unheld locks are ignored (the trace layer already
    /// guarantees well-formedness) and reported as write-mode.
    pub fn release(&mut self, t: ThreadId, m: LockId) -> bool {
        if let Some(h) = self.held.get_mut(t.index()) {
            if let Some(pos) = h.iter().rposition(|&(l, _)| l == m) {
                return h.remove(pos).1;
            }
        }
        true
    }

    /// The `(lock, write-mode)` holds of `t`, outermost first.
    pub fn of(&self, t: ThreadId) -> &[(LockId, bool)] {
        self.held
            .get(t.index())
            .map(Vec::as_slice)
            .unwrap_or_default()
    }

    /// Approximate heap bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.held
            .iter()
            .map(|h| h.capacity() * std::mem::size_of::<(LockId, bool)>())
            .sum::<usize>()
            + self.held.capacity() * std::mem::size_of::<Vec<(LockId, bool)>>()
    }
}

/// A critical-section time: the join of the release times of prior critical
/// sections (on one lock) that accessed one variable.
#[derive(Clone, Debug, Default)]
pub struct LTime {
    /// Join of release-time clocks.
    pub clock: VectorClock,
    /// Latest contributing release event per releasing thread (graph mode).
    pub sources: Vec<(ThreadId, EventId)>,
}

impl LTime {
    fn absorb(&mut self, clock: &VectorClock, source: Option<(ThreadId, EventId)>) {
        self.clock.join(clock);
        if let Some((t, e)) = source {
            match self.sources.iter_mut().find(|(u, _)| *u == t) {
                Some(entry) => entry.1 = e,
                None => self.sources.push((t, e)),
            }
        }
    }
}

/// One (variable, lock) node of a [`LockVarTable`]: lives in the shared
/// entry pool, chained per variable (`next`). Carries the positions of the
/// folded `Lr`/`Lw` times (`+1`, 0 = none) and the generation stamps of
/// the ongoing critical section's `Rm`/`Wm` membership.
#[derive(Clone, Debug)]
struct PairEntry {
    lock: LockId,
    /// Next entry of the same variable's chain (`+1`, 0 = end).
    next: u32,
    /// `Lr_{m,x}` position in `read_times` (`+1`, 0 = none).
    read_pos: u32,
    /// `Lw_{m,x}` position in `write_times` (`+1`, 0 = none).
    write_pos: u32,
    /// Generation of the lock's critical section that last marked this
    /// pair as read (`Rm`).
    read_gen: u32,
    /// Generation that last marked this pair as written (`Wm`).
    write_gen: u32,
}

/// Per-lock bookkeeping of the ongoing critical section.
#[derive(Clone, Debug)]
struct LockCs {
    /// Generation of the ongoing critical section. Bumped at every
    /// release, which lazily invalidates all membership stamps in O(1) —
    /// no per-release clearing walk. Stamps start at 0, so the live
    /// generation is never 0.
    gen: u32,
    /// Variables marked read (`Rm`) / written (`Wm`) since the last
    /// release, each at most once (guarded by the generation stamps).
    cur_read: Vec<VarId>,
    cur_write: Vec<VarId>,
}

impl Default for LockCs {
    fn default() -> Self {
        LockCs {
            gen: 1,
            cur_read: Vec::new(),
            cur_write: Vec::new(),
        }
    }
}

/// Per-(lock, variable) critical-section access times: the paper's
/// `Lr_{m,x}` and `Lw_{m,x}` plus the `Rm`/`Wm` variable sets of the ongoing
/// critical section (Algorithms 1 and 2).
///
/// The paper notes this metadata "entails storing information for
/// lock–variable pairs, requiring indirect metadata lookups (e.g., an
/// implementation can use per-lock hash tables keyed by variables)". The
/// pre-overhaul implementation was exactly that — per-lock `HashMap<VarId,
/// LTime>` — which put a hash and a probe on every rule (a) lookup and
/// load-factor slack on every table. The overhauled layout is a *chained
/// per-variable pool*: a dense `heads` array (one `u32` per interned
/// variable) points into one shared pair-entry pool, chained per
/// variable. An access walks its variable's chain — as long as the number
/// of locks the variable has ever been accessed under, almost always 1–2 —
/// and the per-critical-section `Rm`/`Wm` membership check is a
/// generation-stamp compare on the entry instead of hashing into a set
/// (generations bump at release, lazily clearing all stamps at once).
/// Memory is proportional to *occupied* (lock, variable) pairs plus one
/// word per variable; no per-lock universe-sized tables.
///
/// For the "w/ G" graph-building variants, each `Lr`/`Lw` time also carries
/// the ids of the release events that contributed to it (latest per thread),
/// so rule (a) joins can be recorded as graph edges.
#[derive(Clone, Debug, Default)]
pub struct LockVarTable {
    /// Per variable: head of its pair-entry chain (`+1`, 0 = empty).
    heads: Vec<u32>,
    /// The shared (variable, lock) pair pool.
    pool: Vec<PairEntry>,
    /// Folded `Lr` / `Lw` times, positions referenced from pool entries.
    read_times: Vec<LTime>,
    write_times: Vec<LTime>,
    /// Per lock: ongoing critical-section bookkeeping.
    locks: Vec<LockCs>,
    /// Whether to track contributing release events for graph recording.
    track_sources: bool,
}

impl LockVarTable {
    /// Creates a table; `track_sources` enables graph-edge recording.
    pub fn new(track_sources: bool) -> Self {
        LockVarTable {
            track_sources,
            ..LockVarTable::default()
        }
    }

    /// Pre-sizes the per-lock table (from a [`crate::StreamHint`];
    /// clamped, see [`crate::StreamHint::presize`]).
    pub fn reserve_locks(&mut self, locks: usize) {
        self.locks
            .reserve(crate::StreamHint::presize(Some(locks), self.locks.len()));
    }

    /// Index of the pair entry for `(x, m)`, if present.
    #[inline]
    fn find(&self, m: LockId, x: VarId) -> Option<usize> {
        let mut i = *self.heads.get(x.index())?;
        while i != 0 {
            let e = &self.pool[i as usize - 1];
            if e.lock == m {
                return Some(i as usize - 1);
            }
            i = e.next;
        }
        None
    }

    /// Index of the pair entry for `(x, m)`, inserting an empty one at the
    /// chain head if absent.
    #[inline]
    fn find_or_insert(&mut self, m: LockId, x: VarId) -> usize {
        if let Some(i) = self.find(m, x) {
            return i;
        }
        let head = slot(&mut self.heads, x.index());
        self.pool.push(PairEntry {
            lock: m,
            next: *head,
            read_pos: 0,
            write_pos: 0,
            read_gen: 0,
            write_gen: 0,
        });
        *head = self.pool.len() as u32;
        self.pool.len() - 1
    }

    /// Marks `x` as read in the ongoing critical section on `m` (`Rm ∪= {x}`).
    #[inline]
    pub fn mark_read(&mut self, m: LockId, x: VarId) {
        let gen = slot(&mut self.locks, m.index()).gen;
        let i = self.find_or_insert(m, x);
        let e = &mut self.pool[i];
        if e.read_gen != gen {
            e.read_gen = gen;
            self.locks[m.index()].cur_read.push(x);
        }
    }

    /// Marks `x` as written in the ongoing critical section on `m`
    /// (`Wm ∪= {x}`).
    #[inline]
    pub fn mark_write(&mut self, m: LockId, x: VarId) {
        let gen = slot(&mut self.locks, m.index()).gen;
        let i = self.find_or_insert(m, x);
        let e = &mut self.pool[i];
        if e.write_gen != gen {
            e.write_gen = gen;
            self.locks[m.index()].cur_write.push(x);
        }
    }

    /// The read-time `Lr_{m,x}`, if any prior critical section on `m` read
    /// (or, for FTO, accessed) `x`.
    #[inline]
    pub fn read_time(&self, m: LockId, x: VarId) -> Option<&LTime> {
        let e = &self.pool[self.find(m, x)?];
        if e.read_pos == 0 {
            None
        } else {
            Some(&self.read_times[e.read_pos as usize - 1])
        }
    }

    /// The write-time `Lw_{m,x}`.
    #[inline]
    pub fn write_time(&self, m: LockId, x: VarId) -> Option<&LTime> {
        let e = &self.pool[self.find(m, x)?];
        if e.write_pos == 0 {
            None
        } else {
            Some(&self.write_times[e.write_pos as usize - 1])
        }
    }

    /// Applies a release of `m` at time `now` (Algorithm 1 lines 9–11 /
    /// Algorithm 2 lines 10–12): folds the ongoing critical section's
    /// accessed-variable sets into `Lr`/`Lw` and clears them (by bumping
    /// the lock's generation).
    ///
    /// `release_event` identifies the release for graph recording.
    pub fn on_release(
        &mut self,
        t: ThreadId,
        m: LockId,
        now: &VectorClock,
        release_event: EventId,
    ) {
        let source = self.track_sources.then_some((t, release_event));
        let cs = slot(&mut self.locks, m.index());
        let reads = std::mem::take(&mut cs.cur_read);
        let writes = std::mem::take(&mut cs.cur_write);
        for &x in &reads {
            let i = self.find(m, x).expect("marked pairs have entries");
            let e = &mut self.pool[i];
            if e.read_pos == 0 {
                self.read_times.push(LTime::default());
                e.read_pos = self.read_times.len() as u32;
            }
            self.read_times[e.read_pos as usize - 1].absorb(now, source);
        }
        for &x in &writes {
            let i = self.find(m, x).expect("marked pairs have entries");
            let e = &mut self.pool[i];
            if e.write_pos == 0 {
                self.write_times.push(LTime::default());
                e.write_pos = self.write_times.len() as u32;
            }
            self.write_times[e.write_pos as usize - 1].absorb(now, source);
        }
        // Return the (now empty) buffers to reuse their capacity.
        let cs = &mut self.locks[m.index()];
        cs.cur_read = reads;
        cs.cur_read.clear();
        cs.cur_write = writes;
        cs.cur_write.clear();
        cs.gen = match cs.gen.checked_add(1) {
            Some(g) => g,
            None => {
                // Astronomically rare wrap: clear this lock's stamps
                // eagerly so stale stamps cannot collide with generation 1.
                for e in &mut self.pool {
                    if e.lock == m {
                        e.read_gen = 0;
                        e.write_gen = 0;
                    }
                }
                1
            }
        };
    }

    /// Cheap resident bytes (capacities only, O(#locks)) — the running
    /// estimate sampled per event.
    pub fn resident_bytes(&self) -> usize {
        self.heads.capacity() * std::mem::size_of::<u32>()
            + self.pool.capacity() * std::mem::size_of::<PairEntry>()
            + (self.read_times.capacity() + self.write_times.capacity())
                * std::mem::size_of::<LTime>()
            + self.locks.capacity() * std::mem::size_of::<LockCs>()
            + self
                .locks
                .iter()
                .map(|cs| {
                    (cs.cur_read.capacity() + cs.cur_write.capacity())
                        * std::mem::size_of::<VarId>()
                })
                .sum::<usize>()
    }

    /// Exact heap bytes including per-entry clock spill (the dominant cost
    /// of unoptimized predictive analysis on lock-heavy programs).
    pub fn footprint_bytes(&self) -> usize {
        self.resident_bytes()
            + self
                .read_times
                .iter()
                .chain(self.write_times.iter())
                .map(|lt| {
                    lt.clock.heap_bytes()
                        + lt.sources.capacity() * std::mem::size_of::<(ThreadId, EventId)>()
                })
                .sum::<usize>()
    }

    /// What the same occupancy cost in the *pre-overhaul* layout — per-lock
    /// `HashMap<VarId, LTime>` with heap-vector clocks: per side and lock,
    /// a swiss table of `next_pow2(n·8/7)` buckets (key + value slot +
    /// one control byte each), plus each entry's clock as a separate heap
    /// vector (the pre-overhaul `VectorClock` had no small-size inline
    /// representation). Used by the fast-path accounting tests to prove the
    /// chained dense layout shrinks state, without keeping the old
    /// implementation alive.
    pub fn hashmap_equivalent_bytes(&self) -> usize {
        fn swiss_bytes(n: usize, entry: usize) -> usize {
            if n == 0 {
                return 0;
            }
            let buckets = ((n * 8).div_ceil(7)).next_power_of_two();
            buckets * (entry + 1)
        }
        // Pre-overhaul LTime: Vec-backed clock (24) + sources Vec (24).
        let old_ltime = 48;
        let entry = std::mem::size_of::<VarId>() + old_ltime + 8;
        let mut per_lock_read = vec![0usize; self.locks.len()];
        let mut per_lock_write = vec![0usize; self.locks.len()];
        for e in &self.pool {
            let m = e.lock.index();
            if m >= per_lock_read.len() {
                continue;
            }
            per_lock_read[m] += (e.read_pos != 0) as usize;
            per_lock_write[m] += (e.write_pos != 0) as usize;
        }
        let maps: usize = per_lock_read
            .iter()
            .chain(per_lock_write.iter())
            .map(|&n| {
                swiss_bytes(n, entry)
                    + std::mem::size_of::<std::collections::HashMap<VarId, LTime>>()
            })
            .sum();
        // Each folded time's clock was a separate heap vector of its
        // current dimension (plus what the small-size layout still spills).
        let clocks: usize = self
            .read_times
            .iter()
            .chain(self.write_times.iter())
            .map(|lt| {
                lt.clock.dim() * std::mem::size_of::<u32>()
                    + lt.clock.heap_bytes()
                    + lt.sources.capacity() * std::mem::size_of::<(ThreadId, EventId)>()
            })
            .sum();
        maps + clocks
    }
}

/// Per-lock state of [`ReadSectionTable`]: the ongoing *read-mode* critical
/// sections (several can be open at once — that is the point of an rwlock,
/// and why [`LockVarTable`]'s one-generation-per-lock protocol cannot host
/// them) plus the folded access times of completed read sections.
#[derive(Clone, Debug, Default)]
struct ReadLockState {
    /// Open read sections: `(thread, vars read, vars written)`. Vars are
    /// deduplicated by linear scan — read sections are short and rare
    /// relative to accesses.
    ongoing: Vec<(ThreadId, Vec<VarId>, Vec<VarId>)>,
    /// `Lr_r(m,x)`: per variable, the joined release times of completed
    /// read-mode sections that read it.
    read_times: Vec<(VarId, LTime)>,
    /// `Lw_r(m,x)`: likewise for writes (a read-mode section may well
    /// contain writes — that is exactly the captured-RwLock bug shape).
    write_times: Vec<(VarId, LTime)>,
}

impl ReadLockState {
    fn fold(
        into: &mut Vec<(VarId, LTime)>,
        vars: &[VarId],
        now: &VectorClock,
        source: Option<(ThreadId, EventId)>,
    ) {
        for &x in vars {
            match into.iter_mut().find(|(v, _)| *v == x) {
                Some((_, lt)) => lt.absorb(now, source),
                None => {
                    let mut lt = LTime::default();
                    lt.absorb(now, source);
                    into.push((x, lt));
                }
            }
        }
    }
}

/// Rule (a) metadata for *read-mode* critical sections, the read-side
/// counterpart of [`LockVarTable`]. Kept separate because the mutex table's
/// generation protocol assumes at most one ongoing section per lock, while
/// read sections overlap by design.
///
/// Queries are gated by the *current* hold mode at the access site: a
/// write-mode section conflicts with every prior section, but a read-mode
/// section conflicts only with prior write-mode sections — two read sections
/// on the same lock can overlap in a reordering, so rule (a) must not order
/// them (Genç et al., arXiv:1904.13088).
#[derive(Clone, Debug, Default)]
pub struct ReadSectionTable {
    per_lock: Vec<ReadLockState>,
    /// Whether any read section was ever opened — lets the non-rwlock hot
    /// path skip every query with one branch.
    any: bool,
    track_sources: bool,
}

impl ReadSectionTable {
    /// Creates a table; `track_sources` enables graph-edge recording.
    pub fn new(track_sources: bool) -> Self {
        ReadSectionTable {
            track_sources,
            ..ReadSectionTable::default()
        }
    }

    /// `true` while no read-mode section has ever been opened.
    #[inline]
    pub fn is_empty(&self) -> bool {
        !self.any
    }

    /// Opens a read section on `m` by `t` (at `acqr`).
    pub fn open(&mut self, t: ThreadId, m: LockId) {
        self.any = true;
        let st = slot(&mut self.per_lock, m.index());
        if !st.ongoing.iter().any(|(u, ..)| *u == t) {
            st.ongoing.push((t, Vec::new(), Vec::new()));
        }
    }

    /// Marks `x` as read in `t`'s ongoing read section on `m`.
    pub fn mark_read(&mut self, t: ThreadId, m: LockId, x: VarId) {
        let st = slot(&mut self.per_lock, m.index());
        if let Some((_, reads, _)) = st.ongoing.iter_mut().find(|(u, ..)| *u == t) {
            if !reads.contains(&x) {
                reads.push(x);
            }
        }
    }

    /// Marks `x` as written in `t`'s ongoing read section on `m`.
    pub fn mark_write(&mut self, t: ThreadId, m: LockId, x: VarId) {
        let st = slot(&mut self.per_lock, m.index());
        if let Some((.., writes)) = st.ongoing.iter_mut().find(|(u, ..)| *u == t) {
            if !writes.contains(&x) {
                writes.push(x);
            }
        }
    }

    /// Closes `t`'s read section on `m` at time `now`, folding its accessed
    /// variables into the completed-section times.
    pub fn close(&mut self, t: ThreadId, m: LockId, now: &VectorClock, release_event: EventId) {
        let source = self.track_sources.then_some((t, release_event));
        let st = slot(&mut self.per_lock, m.index());
        if let Some(pos) = st.ongoing.iter().position(|(u, ..)| *u == t) {
            let (_, reads, writes) = st.ongoing.remove(pos);
            ReadLockState::fold(&mut st.read_times, &reads, now, source);
            ReadLockState::fold(&mut st.write_times, &writes, now, source);
        }
    }

    /// `Lr_r(m,x)` — joined release times of completed read sections on `m`
    /// that read `x`.
    #[inline]
    pub fn read_time(&self, m: LockId, x: VarId) -> Option<&LTime> {
        self.per_lock
            .get(m.index())?
            .read_times
            .iter()
            .find(|(v, _)| *v == x)
            .map(|(_, lt)| lt)
    }

    /// `Lw_r(m,x)` — likewise for writes performed under read-mode holds.
    #[inline]
    pub fn write_time(&self, m: LockId, x: VarId) -> Option<&LTime> {
        self.per_lock
            .get(m.index())?
            .write_times
            .iter()
            .find(|(v, _)| *v == x)
            .map(|(_, lt)| lt)
    }

    /// Exact heap bytes including per-entry clock spill.
    pub fn footprint_bytes(&self) -> usize {
        self.resident_bytes()
            + self
                .per_lock
                .iter()
                .flat_map(|st| st.read_times.iter().chain(st.write_times.iter()))
                .map(|(_, lt)| {
                    lt.clock.heap_bytes()
                        + lt.sources.capacity() * std::mem::size_of::<(ThreadId, EventId)>()
                })
                .sum::<usize>()
    }

    /// Cheap resident bytes (capacities only).
    pub fn resident_bytes(&self) -> usize {
        self.per_lock.capacity() * std::mem::size_of::<ReadLockState>()
            + self
                .per_lock
                .iter()
                .map(|st| {
                    (st.read_times.capacity() + st.write_times.capacity())
                        * std::mem::size_of::<(VarId, LTime)>()
                        + st.ongoing.capacity()
                            * std::mem::size_of::<(ThreadId, Vec<VarId>, Vec<VarId>)>()
                        + st.ongoing
                            .iter()
                            .map(|(_, r, w)| {
                                (r.capacity() + w.capacity()) * std::mem::size_of::<VarId>()
                            })
                            .sum::<usize>()
                })
                .sum::<usize>()
    }
}

/// Per-barrier rendezvous clock state shared by every detector family.
///
/// A barrier round is an all-to-all release/acquire: every
/// [`enter`](BarrierRendezvous::enter) publishes the arriving thread's
/// clock into the round's *gather* clock, and every
/// [`exit`](BarrierRendezvous::exit) of the round joins the gathered clock
/// (the join of **all** enter-time clocks) back into the leaving thread.
/// The first exit seals the round — the trace layer guarantees no further
/// enters until every party of the round has exited (see
/// `StreamValidator`), and when a detector is driven with raw unvalidated
/// events an out-of-protocol enter simply starts a fresh round.
#[derive(Clone, Debug, Default)]
pub struct BarrierRendezvous {
    /// Join of the enter-time clocks of the round currently gathering.
    gather: VectorClock,
    /// The sealed clock of the round currently draining.
    open: VectorClock,
    /// Parties that entered the gathering round.
    entered: u32,
    /// Parties of the draining round that have exited (0 = gathering).
    exited: u32,
}

impl BarrierRendezvous {
    /// Records an enter by a thread whose clock is `now`.
    pub fn enter(&mut self, now: &VectorClock) {
        if self.exited > 0 {
            // Out-of-protocol enter while draining (impossible on validated
            // streams): be benign and start a fresh round.
            self.entered = 0;
            self.exited = 0;
        }
        self.gather.join(now);
        self.entered += 1;
    }

    /// Records an exit and returns the sealed rendezvous clock the leaving
    /// thread must join.
    pub fn exit(&mut self) -> &VectorClock {
        if self.exited == 0 {
            // First exit seals the round.
            self.open = std::mem::take(&mut self.gather);
        }
        self.exited += 1;
        if self.exited >= self.entered {
            // Round complete: the next round gathers afresh.
            self.entered = 0;
            self.exited = 0;
        }
        &self.open
    }

    /// Exact heap bytes of the two clocks.
    pub fn heap_bytes(&self) -> usize {
        self.gather.heap_bytes() + self.open.heap_bytes()
    }
}

/// Exact bytes of a table of barrier rendezvous states: slot capacity plus
/// each clock's heap spill.
#[allow(clippy::ptr_arg)]
pub fn barrier_table_bytes(barriers: &Vec<BarrierRendezvous>) -> usize {
    barriers
        .iter()
        .map(BarrierRendezvous::heap_bytes)
        .sum::<usize>()
        + barrier_table_resident_bytes(barriers)
}

/// Cheap resident bytes of a table of barrier rendezvous states: O(1),
/// capacity only.
#[allow(clippy::ptr_arg)]
#[inline]
pub fn barrier_table_resident_bytes(barriers: &Vec<BarrierRendezvous>) -> usize {
    barriers.capacity() * std::mem::size_of::<BarrierRendezvous>()
}

/// Exact bytes of a table of vector clocks: slot capacity plus each
/// clock's heap spill. Always at least [`vc_table_resident_bytes`].
#[allow(clippy::ptr_arg)]
pub fn vc_table_bytes(vcs: &Vec<VectorClock>) -> usize {
    vcs.iter().map(VectorClock::heap_bytes).sum::<usize>() + vc_table_resident_bytes(vcs)
}

/// Cheap resident bytes of a table of vector clocks: O(1), capacity only.
/// Heap spills (clocks wider than [`smarttrack_clock::INLINE_CLOCKS`])
/// are picked up by the exact end-of-stream walk instead.
#[allow(clippy::ptr_arg)]
#[inline]
pub fn vc_table_resident_bytes(vcs: &Vec<VectorClock>) -> usize {
    vcs.capacity() * std::mem::size_of::<VectorClock>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn held_locks_track_nesting_and_release() {
        let mut h = HeldLocks::new();
        h.acquire(t(0), m(0));
        h.acquire(t(0), m(1));
        assert_eq!(h.of(t(0)), &[(m(0), true), (m(1), true)]);
        assert!(h.release(t(0), m(0)), "non-LIFO release allowed");
        assert_eq!(h.of(t(0)), &[(m(1), true)]);
        assert!(h.of(t(1)).is_empty());
    }

    #[test]
    fn held_locks_report_read_mode_holds() {
        let mut h = HeldLocks::new();
        h.acquire_read(t(0), m(0));
        h.acquire(t(0), m(1));
        assert_eq!(h.of(t(0)), &[(m(0), false), (m(1), true)]);
        assert!(!h.release(t(0), m(0)), "read-mode hold ends as read-mode");
        assert!(h.release(t(0), m(1)));
    }

    #[test]
    fn read_section_table_folds_overlapping_sections() {
        let mut rt = ReadSectionTable::new(false);
        assert!(rt.is_empty());
        // Two overlapping read sections on m0, one writing x0, one reading.
        rt.open(t(0), m(0));
        rt.open(t(1), m(0));
        assert!(!rt.is_empty());
        rt.mark_write(t(0), m(0), x(0));
        rt.mark_read(t(1), m(0), x(0));
        assert!(rt.write_time(m(0), x(0)).is_none(), "not folded yet");
        let now0: VectorClock = [(t(0), 4)].into_iter().collect();
        rt.close(t(0), m(0), &now0, EventId::new(5));
        let now1: VectorClock = [(t(1), 6)].into_iter().collect();
        rt.close(t(1), m(0), &now1, EventId::new(8));
        assert_eq!(rt.write_time(m(0), x(0)).unwrap().clock.get(t(0)), 4);
        let read = rt.read_time(m(0), x(0)).unwrap();
        assert_eq!(read.clock.get(t(1)), 6);
        assert_eq!(read.clock.get(t(0)), 0, "sections fold independently");
    }

    #[test]
    fn read_section_table_records_sources_in_graph_mode() {
        let mut rt = ReadSectionTable::new(true);
        rt.open(t(0), m(0));
        rt.mark_read(t(0), m(0), x(1));
        let now: VectorClock = [(t(0), 2)].into_iter().collect();
        rt.close(t(0), m(0), &now, EventId::new(7));
        assert_eq!(
            rt.read_time(m(0), x(1)).unwrap().sources,
            vec![(t(0), EventId::new(7))]
        );
    }

    #[test]
    fn lockvar_table_folds_release_times() {
        let mut lt = LockVarTable::new(false);
        lt.mark_read(m(0), x(1));
        lt.mark_write(m(0), x(2));
        assert!(lt.read_time(m(0), x(1)).is_none(), "not folded yet");
        let now: VectorClock = [(t(0), 5)].into_iter().collect();
        lt.on_release(t(0), m(0), &now, EventId::new(9));
        assert_eq!(lt.read_time(m(0), x(1)).unwrap().clock.get(t(0)), 5);
        assert_eq!(lt.write_time(m(0), x(2)).unwrap().clock.get(t(0)), 5);
        assert!(lt.read_time(m(0), x(2)).is_none());
        // Current sets cleared.
        let now2: VectorClock = [(t(0), 9)].into_iter().collect();
        lt.on_release(t(0), m(0), &now2, EventId::new(12));
        assert_eq!(
            lt.read_time(m(0), x(1)).unwrap().clock.get(t(0)),
            5,
            "second critical section did not access x1"
        );
    }

    #[test]
    fn lockvar_table_records_sources_in_graph_mode() {
        let mut lt = LockVarTable::new(true);
        lt.mark_write(m(0), x(0));
        let now: VectorClock = [(t(1), 2)].into_iter().collect();
        lt.on_release(t(1), m(0), &now, EventId::new(4));
        let time = lt.write_time(m(0), x(0)).unwrap();
        assert_eq!(time.sources, vec![(t(1), EventId::new(4))]);
        // A later release by the same thread replaces the source.
        lt.mark_write(m(0), x(0));
        let now2: VectorClock = [(t(1), 7)].into_iter().collect();
        lt.on_release(t(1), m(0), &now2, EventId::new(11));
        let time = lt.write_time(m(0), x(0)).unwrap();
        assert_eq!(time.sources, vec![(t(1), EventId::new(11))]);
    }

    #[test]
    fn duplicate_marks_within_one_critical_section_fold_once() {
        let mut lt = LockVarTable::new(false);
        lt.mark_read(m(0), x(0));
        lt.mark_read(m(0), x(0));
        lt.mark_read(m(0), x(0));
        let now: VectorClock = [(t(0), 3)].into_iter().collect();
        lt.on_release(t(0), m(0), &now, EventId::new(1));
        assert_eq!(lt.read_time(m(0), x(0)).unwrap().clock.get(t(0)), 3);
        // Marks in a *new* critical section are fresh despite identical
        // stamps space (generation bumped).
        lt.mark_read(m(0), x(0));
        let now2: VectorClock = [(t(0), 8)].into_iter().collect();
        lt.on_release(t(0), m(0), &now2, EventId::new(2));
        assert_eq!(lt.read_time(m(0), x(0)).unwrap().clock.get(t(0)), 8);
    }

    #[test]
    fn dense_layout_undercuts_hashmap_equivalent() {
        let mut lt = LockVarTable::new(false);
        for v in 0..64u32 {
            lt.mark_read(m(0), x(v));
            lt.mark_write(m(1), x(v));
        }
        let now: VectorClock = [(t(0), 2)].into_iter().collect();
        lt.on_release(t(0), m(0), &now, EventId::new(1));
        lt.on_release(t(0), m(1), &now, EventId::new(2));
        assert!(lt.footprint_bytes() > 0, "dense tables report their bytes");
    }
}
