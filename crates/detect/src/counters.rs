//! FTO case frequency counters (Appendix B, Table 12) and hot-path
//! accounting.
//!
//! Table 12 reports, for SmartTrack-WDC, the share of non-same-epoch reads
//! and writes handled by each FTO case. The counters are maintained by every
//! FTO- and SmartTrack-based detector in this crate (and, since the hot-path
//! metadata overhaul, by [`Ft2`](crate::Ft2) too). [`HotPathStats`]
//! condenses them into the fast-path/slow-path split every detector
//! reports, paired with its resident state bytes.

use std::fmt;

/// One case of the FTO/SmartTrack access handlers (paper Algorithms 2 and 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FtoCase {
    /// `[Read Same Epoch]`
    ReadSameEpoch,
    /// `[Shared Same Epoch]`
    SharedSameEpoch,
    /// `[Read Owned]` — "Owned Excl" in Table 12.
    ReadOwned,
    /// `[Read Shared Owned]` — "Owned Shared".
    ReadSharedOwned,
    /// `[Read Exclusive]` — "Unowned Excl".
    ReadExclusive,
    /// `[Read Share]` — "Unowned Share".
    ReadShare,
    /// `[Read Shared]` — "Unowned Shared".
    ReadShared,
    /// `[Write Same Epoch]`
    WriteSameEpoch,
    /// `[Write Owned]` — "Owned Excl".
    WriteOwned,
    /// `[Write Exclusive]` — "Unowned Excl".
    WriteExclusive,
    /// `[Write Shared]` — "Shared".
    WriteShared,
}

impl FtoCase {
    const COUNT: usize = 11;

    fn index(self) -> usize {
        match self {
            FtoCase::ReadSameEpoch => 0,
            FtoCase::SharedSameEpoch => 1,
            FtoCase::ReadOwned => 2,
            FtoCase::ReadSharedOwned => 3,
            FtoCase::ReadExclusive => 4,
            FtoCase::ReadShare => 5,
            FtoCase::ReadShared => 6,
            FtoCase::WriteSameEpoch => 7,
            FtoCase::WriteOwned => 8,
            FtoCase::WriteExclusive => 9,
            FtoCase::WriteShared => 10,
        }
    }

    /// All cases, in Table 12 presentation order.
    pub const ALL: [FtoCase; 11] = [
        FtoCase::ReadSameEpoch,
        FtoCase::SharedSameEpoch,
        FtoCase::ReadOwned,
        FtoCase::ReadSharedOwned,
        FtoCase::ReadExclusive,
        FtoCase::ReadShare,
        FtoCase::ReadShared,
        FtoCase::WriteSameEpoch,
        FtoCase::WriteOwned,
        FtoCase::WriteExclusive,
        FtoCase::WriteShared,
    ];
}

impl fmt::Display for FtoCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FtoCase::ReadSameEpoch => "Read Same Epoch",
            FtoCase::SharedSameEpoch => "Shared Same Epoch",
            FtoCase::ReadOwned => "Read Owned",
            FtoCase::ReadSharedOwned => "Read Shared Owned",
            FtoCase::ReadExclusive => "Read Exclusive",
            FtoCase::ReadShare => "Read Share",
            FtoCase::ReadShared => "Read Shared",
            FtoCase::WriteSameEpoch => "Write Same Epoch",
            FtoCase::WriteOwned => "Write Owned",
            FtoCase::WriteExclusive => "Write Exclusive",
            FtoCase::WriteShared => "Write Shared",
        };
        f.write_str(name)
    }
}

/// Frequencies of the FTO cases over one analysis run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FtoCaseCounters {
    counts: [u64; FtoCase::COUNT],
}

impl FtoCaseCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        FtoCaseCounters::default()
    }

    /// Records one occurrence of `case`.
    #[inline]
    pub fn hit(&mut self, case: FtoCase) {
        self.counts[case.index()] += 1;
    }

    /// Records `n` occurrences of `case` at once (used when merging counters
    /// collected elsewhere, e.g. the parallel analyses' atomic counters).
    #[inline]
    pub fn add(&mut self, case: FtoCase, n: u64) {
        self.counts[case.index()] += n;
    }

    /// Occurrences of `case`.
    pub fn count(&self, case: FtoCase) -> u64 {
        self.counts[case.index()]
    }

    /// Total non-same-epoch reads (Table 12's read `Total` column).
    pub fn nse_reads(&self) -> u64 {
        self.count(FtoCase::ReadOwned)
            + self.count(FtoCase::ReadSharedOwned)
            + self.count(FtoCase::ReadExclusive)
            + self.count(FtoCase::ReadShare)
            + self.count(FtoCase::ReadShared)
    }

    /// Total non-same-epoch writes (Table 12's write `Total` column).
    pub fn nse_writes(&self) -> u64 {
        self.count(FtoCase::WriteOwned)
            + self.count(FtoCase::WriteExclusive)
            + self.count(FtoCase::WriteShared)
    }

    /// Percentage of non-same-epoch reads taking `case` (0 if none).
    pub fn read_pct(&self, case: FtoCase) -> f64 {
        let total = self.nse_reads();
        if total == 0 {
            0.0
        } else {
            100.0 * self.count(case) as f64 / total as f64
        }
    }

    /// Percentage of non-same-epoch writes taking `case` (0 if none).
    pub fn write_pct(&self, case: FtoCase) -> f64 {
        let total = self.nse_writes();
        if total == 0 {
            0.0
        } else {
            100.0 * self.count(case) as f64 / total as f64
        }
    }

    /// Accesses handled by a same-epoch fast path (`[Read Same Epoch]`,
    /// `[Shared Same Epoch]`, `[Write Same Epoch]`): O(1), no clock walked,
    /// no metadata updated — the paths SmartTrack's design keeps hot.
    pub fn fast_hits(&self) -> u64 {
        self.count(FtoCase::ReadSameEpoch)
            + self.count(FtoCase::SharedSameEpoch)
            + self.count(FtoCase::WriteSameEpoch)
    }

    /// Accesses that fell through to a non-same-epoch case.
    pub fn slow_hits(&self) -> u64 {
        self.nse_reads() + self.nse_writes()
    }
}

/// The fast-path/slow-path split of one analysis run, paired with its
/// resident metadata bytes — the accounting every [`Detector`](crate::Detector)
/// reports via [`hot_path_stats`](crate::Detector::hot_path_stats).
///
/// *Fast* hits are accesses fully handled by a same-epoch check (no vector
/// clock touched); *slow* hits are every other access. Synchronization
/// operations are counted in neither. Detectors without a fast path
/// (the Unopt variants) report every access as slow.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HotPathStats {
    /// Accesses handled entirely by an epoch fast path.
    pub fast_hits: u64,
    /// Accesses that ran a full (vector-clock or CCS) handler.
    pub slow_hits: u64,
    /// Resident metadata bytes right now (the cheap running estimate, see
    /// [`Detector::state_bytes`](crate::Detector::state_bytes)).
    pub state_bytes: usize,
}

impl HotPathStats {
    /// Fraction of accesses taking the fast path (0 when no accesses ran).
    pub fn fast_fraction(&self) -> f64 {
        let total = self.fast_hits + self.slow_hits;
        if total == 0 {
            0.0
        } else {
            self.fast_hits as f64 / total as f64
        }
    }
}

/// Plain fast/slow hit counters for detectors that do not track the full
/// FTO case vector (the Unopt variants, whose only fast path is the §5.1
/// same-epoch-like check).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct PathCounters {
    pub fast: u64,
    pub slow: u64,
}

impl fmt::Display for HotPathStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fast / {} slow ({:.1}% fast), {} state bytes",
            self.fast_hits,
            self.slow_hits,
            100.0 * self.fast_fraction(),
            self.state_bytes
        )
    }
}

impl fmt::Display for FtoCaseCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for case in FtoCase::ALL {
            writeln!(f, "{case}: {}", self.count(case))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_split_reads_and_writes() {
        let mut c = FtoCaseCounters::new();
        c.hit(FtoCase::ReadOwned);
        c.hit(FtoCase::ReadOwned);
        c.hit(FtoCase::ReadShare);
        c.hit(FtoCase::WriteExclusive);
        c.hit(FtoCase::ReadSameEpoch); // not a NSE access
        assert_eq!(c.nse_reads(), 3);
        assert_eq!(c.nse_writes(), 1);
        assert!((c.read_pct(FtoCase::ReadOwned) - 66.66).abs() < 0.01);
        assert!((c.write_pct(FtoCase::WriteExclusive) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_totals_give_zero_percentages() {
        let c = FtoCaseCounters::new();
        assert_eq!(c.read_pct(FtoCase::ReadOwned), 0.0);
        assert_eq!(c.write_pct(FtoCase::WriteShared), 0.0);
    }
}
