//! Corpus-scale batch analysis: a fixed worker pool running many traces
//! through streaming [`Session`]s and aggregating one [`CorpusReport`].
//!
//! The paper's deployment model (§5.1) analyzes one execution inside the
//! instrumented process. A production service ingesting recorded traces
//! from many users faces a *corpus* problem instead: thousands of STB
//! streams to analyze concurrently across cores, with bounded memory and
//! one aggregated race report. This module is that scheduling layer:
//!
//! ```text
//! BatchJobs ──► injector queue ──► worker 1 ── Session ──┐   (mpsc channel)
//!              (shared, popped      worker 2 ── Session ──┼──► aggregator
//!               by idle workers)    …                     │    per-job table,
//!                                   worker N ── Session ──┘    corpus dedup
//! ```
//!
//! * Each [`BatchJob`] — a trace file path, an in-memory [`Trace`], or a
//!   generator closure — runs as one streaming [`Session`] on whichever
//!   worker pulls it from the shared injector queue. STB files stream
//!   chunk by chunk (header hints pre-size the session); the pool never
//!   materializes an STB trace.
//! * Workers push per-job results and live [`CorpusRace`] notices through
//!   a channel into the **aggregator** (running on the calling thread),
//!   which builds the [`CorpusReport`]: a per-job table, per-analysis
//!   totals with statically-distinct races deduplicated *across* the
//!   corpus (§5.6's counting, lifted from one run to many), and a failure
//!   list. A corrupt or truncated trace fails its own job with the precise
//!   decode error — never the batch.
//! * The report is **deterministic**: identical for any worker count and
//!   across repeated runs (jobs are keyed by submission index and all
//!   aggregate sets are ordered), which is what makes the pool testable
//!   against a sequential reference.
//!
//! # Examples
//!
//! ```
//! use smarttrack_detect::{BatchJob, Engine, EnginePool, Relation};
//! use smarttrack_trace::paper;
//!
//! let engine = Engine::builder().relation(Relation::Wdc).build()?;
//! let pool = EnginePool::new(engine).with_workers(2);
//! let report = pool.run(vec![
//!     BatchJob::from_trace("fig1", paper::figure1()),
//!     BatchJob::from_trace("fig4a", paper::figure4a()),
//! ]);
//! assert_eq!(report.succeeded(), 2);
//! assert_eq!(report.totals()[0].dynamic, 1, "only figure 1 races");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Mutex;

use smarttrack_trace::{binary::StbReader, formats, Loc, Trace, TraceError};

use crate::{AnalysisConfig, AnalysisOutcome, Engine, RaceReport, Session, StreamHint};

/// Environment variable overriding the default worker count of
/// [`worker_count`] (lowest precedence is the detected parallelism,
/// highest an explicit request).
pub const WORKERS_ENV: &str = "SMARTTRACK_WORKERS";

/// Upper clamp for [`worker_count`]: more OS threads than this only add
/// scheduling overhead for any plausible machine.
pub const MAX_WORKERS: usize = 512;

/// Derives a worker count for parallel drivers (the pool, the CLI
/// `batch` command, bench sweeps): an explicit request wins, then the
/// `SMARTTRACK_WORKERS` environment variable, then
/// `std::thread::available_parallelism()`. The result is always clamped
/// to `1..=MAX_WORKERS`, so `Some(0)` and absurd values stay usable.
pub fn worker_count(requested: Option<usize>) -> usize {
    worker_count_from(
        requested,
        std::env::var(WORKERS_ENV).ok().as_deref(),
        std::thread::available_parallelism().map_or(1, usize::from),
    )
}

/// The pure core of [`worker_count`], taking the environment value and the
/// detected parallelism explicitly so edge cases are unit-testable:
/// unparsable `env` text is ignored (falls through to `detected`), and
/// every source is clamped to `1..=MAX_WORKERS`.
pub fn worker_count_from(requested: Option<usize>, env: Option<&str>, detected: usize) -> usize {
    requested
        .or_else(|| env.and_then(|text| text.trim().parse().ok()))
        .unwrap_or(detected)
        .clamp(1, MAX_WORKERS)
}

/// Where a [`BatchJob`]'s events come from.
enum JobSource {
    /// A trace file in any supported format; STB streams, text materializes.
    Path(PathBuf),
    /// An already-recorded in-memory trace.
    Trace(Box<Trace>),
    /// A deferred generator — the trace is built on the worker, so corpus
    /// construction itself parallelizes (synthetic workloads, replays).
    Generator(Box<dyn FnOnce() -> Trace + Send>),
}

/// One unit of work for an [`EnginePool`]: a label (stable identity in the
/// [`CorpusReport`]) plus an event source.
pub struct BatchJob {
    label: String,
    source: JobSource,
}

impl BatchJob {
    /// A job reading a trace file. The format is auto-detected like the
    /// CLI does it — magic-byte sniffing first, then the extension. STB
    /// input streams into the session chunk by chunk (honoring the
    /// header's [`StreamHint`]); text formats are parsed whole.
    pub fn from_path(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        BatchJob {
            label: path.display().to_string(),
            source: JobSource::Path(path),
        }
    }

    /// A job over an already-recorded trace.
    pub fn from_trace(label: impl Into<String>, trace: Trace) -> Self {
        BatchJob {
            label: label.into(),
            source: JobSource::Trace(Box::new(trace)),
        }
    }

    /// A job whose trace is produced on the worker thread by `generate`
    /// (workload synthesis, trace replay — anything deferred).
    pub fn generator(
        label: impl Into<String>,
        generate: impl FnOnce() -> Trace + Send + 'static,
    ) -> Self {
        BatchJob {
            label: label.into(),
            source: JobSource::Generator(Box::new(generate)),
        }
    }

    /// The job's label as it will appear in the [`CorpusReport`].
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Debug for BatchJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let source = match &self.source {
            JobSource::Path(p) => format!("Path({})", p.display()),
            JobSource::Trace(t) => format!("Trace({} events)", t.len()),
            JobSource::Generator(_) => "Generator(..)".to_string(),
        };
        f.debug_struct("BatchJob")
            .field("label", &self.label)
            .field("source", &source)
            .finish()
    }
}

/// Why one job failed. The batch always survives: a failed job occupies
/// its row of the [`CorpusReport`] with the precise error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The trace file could not be opened or read.
    Io(String),
    /// An STB stream failed to decode (truncation, corruption; the message
    /// carries the exact [`smarttrack_trace::binary::StbError`], including
    /// its byte offset).
    Decode(String),
    /// A text-format trace failed to parse.
    Parse(String),
    /// Decoded events violated stream well-formedness mid-session.
    Malformed(String),
    /// The job panicked (a generator closure, or a detector bug). The
    /// panic is caught on the worker so the batch survives; the message
    /// carries the payload when it was a string.
    Panicked(String),
}

impl JobError {
    /// The underlying error text.
    pub fn message(&self) -> &str {
        match self {
            JobError::Io(m)
            | JobError::Decode(m)
            | JobError::Parse(m)
            | JobError::Malformed(m)
            | JobError::Panicked(m) => m,
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Io(m) => write!(f, "io error: {m}"),
            JobError::Decode(m) => write!(f, "decode error: {m}"),
            JobError::Parse(m) => write!(f, "parse error: {m}"),
            JobError::Malformed(m) => write!(f, "malformed trace: {m}"),
            JobError::Panicked(m) => write!(f, "job panicked: {m}"),
        }
    }
}

impl std::error::Error for JobError {}

/// The successful result of one job: the per-lane outcomes of its session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSuccess {
    /// Events the session ingested.
    pub events: usize,
    /// One outcome per engine lane, in lane order.
    pub outcomes: Vec<AnalysisOutcome>,
}

/// One row of the [`CorpusReport`]'s per-job table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobOutcome {
    /// The job's submission index (rows are sorted by it).
    pub index: usize,
    /// The job's label.
    pub label: String,
    /// The session results, or the precise error that failed the job.
    pub result: Result<JobSuccess, JobError>,
}

/// A race surfaced live by a pool worker — the corpus-scale analogue of
/// [`crate::RaceNotice`], owned so it can cross the worker channel.
///
/// Delivery order is in-order *within* a job but unspecified across jobs
/// (whichever worker detects first, reports first); the final
/// [`CorpusReport`] is deterministic regardless.
#[derive(Clone, Debug)]
pub struct CorpusRace {
    /// Submission index of the detecting job.
    pub job: usize,
    /// Label of the detecting job.
    pub label: String,
    /// Name of the detecting analysis (as in the paper's tables).
    pub analysis: String,
    /// The lane's Table 1 configuration.
    pub config: Option<AnalysisConfig>,
    /// The race itself.
    pub race: RaceReport,
}

/// Corpus-wide totals for one analysis lane.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusAnalysisTotal {
    /// Analysis name (as in the paper's tables).
    pub name: String,
    /// The lane's Table 1 cell.
    pub config: AnalysisConfig,
    /// Total dynamic races across all successful jobs.
    pub dynamic: usize,
    /// Number of successful jobs in which this lane raced.
    pub racy_jobs: usize,
    /// Statically distinct race sites, deduplicated across the corpus
    /// (sorted; two dynamic races at the same [`Loc`] are the same static
    /// race even when different jobs report them).
    pub sites: Vec<Loc>,
}

impl CorpusAnalysisTotal {
    /// Number of statically distinct races across the corpus.
    pub fn distinct_static(&self) -> usize {
        self.sites.len()
    }
}

/// Scheduling statistics of one pool run (kept out of [`CorpusReport`] so
/// reports stay bit-identical across worker counts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Workers the pool was configured with.
    pub workers: usize,
    /// Jobs executed.
    pub jobs: usize,
    /// Peak number of simultaneously open sessions — bounded by `workers`
    /// by construction (each worker holds at most one).
    pub peak_resident_sessions: usize,
}

/// The aggregated result of one [`EnginePool`] run.
///
/// Deterministic: for a fixed engine and job list, every field (and the
/// [`to_json`](CorpusReport::to_json) rendering) is identical whatever the
/// worker count and however the run interleaved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusReport {
    analyses: Vec<(String, AnalysisConfig)>,
    jobs: Vec<JobOutcome>,
}

impl CorpusReport {
    /// The per-job table, sorted by submission index.
    pub fn jobs(&self) -> &[JobOutcome] {
        &self.jobs
    }

    /// The lane identities (name, Table 1 cell) in lane order.
    pub fn analyses(&self) -> &[(String, AnalysisConfig)] {
        &self.analyses
    }

    /// Rows whose job failed, in submission order.
    pub fn failures(&self) -> impl Iterator<Item = &JobOutcome> {
        self.jobs.iter().filter(|j| j.result.is_err())
    }

    /// Number of successful jobs.
    pub fn succeeded(&self) -> usize {
        self.jobs.iter().filter(|j| j.result.is_ok()).count()
    }

    /// Number of failed jobs.
    pub fn failed(&self) -> usize {
        self.jobs.len() - self.succeeded()
    }

    /// Total events analyzed across successful jobs.
    pub fn total_events(&self) -> usize {
        self.jobs
            .iter()
            .filter_map(|j| j.result.as_ref().ok())
            .map(|s| s.events)
            .sum()
    }

    /// Per-analysis corpus totals, in lane order, with statically distinct
    /// races deduplicated across the whole corpus.
    pub fn totals(&self) -> Vec<CorpusAnalysisTotal> {
        self.analyses
            .iter()
            .enumerate()
            .map(|(lane, (name, config))| {
                let mut dynamic = 0;
                let mut racy_jobs = 0;
                let mut sites: BTreeSet<Loc> = BTreeSet::new();
                for success in self.jobs.iter().filter_map(|j| j.result.as_ref().ok()) {
                    let report = &success.outcomes[lane].report;
                    dynamic += report.dynamic_count();
                    racy_jobs += usize::from(!report.is_empty());
                    sites.extend(report.races().iter().map(|r| r.loc));
                }
                CorpusAnalysisTotal {
                    name: name.clone(),
                    config: *config,
                    dynamic,
                    racy_jobs,
                    sites: sites.into_iter().collect(),
                }
            })
            .collect()
    }

    /// Corpus-wide statically distinct race count: the union of distinct
    /// sites per analysis (sites are not merged *across* analyses — each
    /// lane counts its own, like the paper's per-analysis tables).
    pub fn distinct_static_races(&self) -> usize {
        self.totals().iter().map(|t| t.sites.len()).sum()
    }

    /// Machine-readable JSON rendering (schema
    /// `smarttrack-corpus-report/v1`; documented in
    /// `docs/ARCHITECTURE.md`). Deterministic: bit-identical for equal
    /// reports, whatever worker count produced them.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"smarttrack-corpus-report/v1\",\n  \"analyses\": [");
        for (i, (name, config)) in self.analyses.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": {}, \"config\": {}}}",
                json_string(name),
                json_string(&config.to_string())
            ));
        }
        out.push_str("],\n  \"jobs\": [\n");
        for (i, job) in self.jobs.iter().enumerate() {
            out.push_str("    {\"label\": ");
            out.push_str(&json_string(&job.label));
            match &job.result {
                Ok(success) => {
                    out.push_str(&format!(
                        ", \"ok\": true, \"events\": {}, \"analyses\": [",
                        success.events
                    ));
                    for (k, outcome) in success.outcomes.iter().enumerate() {
                        if k > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!(
                            "{{\"name\": {}, \"dynamic\": {}, \"static\": {}, \
                             \"peak_footprint_bytes\": {}}}",
                            json_string(&outcome.name),
                            outcome.report.dynamic_count(),
                            outcome.report.static_count(),
                            outcome.summary.peak_footprint_bytes
                        ));
                    }
                    out.push(']');
                }
                Err(error) => {
                    out.push_str(", \"ok\": false, \"error\": ");
                    out.push_str(&json_string(&error.to_string()));
                }
            }
            out.push('}');
            if i + 1 < self.jobs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n  \"totals\": [\n");
        let totals = self.totals();
        let distinct_static_races: usize = totals.iter().map(|t| t.sites.len()).sum();
        for (i, total) in totals.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"dynamic\": {}, \"distinct_static\": {}, \
                 \"racy_jobs\": {}, \"sites\": [{}]}}",
                json_string(&total.name),
                total.dynamic,
                total.distinct_static(),
                total.racy_jobs,
                total
                    .sites
                    .iter()
                    .map(|loc| loc.raw().to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            if i + 1 < totals.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "  ],\n  \"corpus\": {{\"jobs\": {}, \"succeeded\": {}, \"failed\": {}, \
             \"events\": {}, \"distinct_static_races\": {}}}\n}}\n",
            self.jobs.len(),
            self.succeeded(),
            self.failed(),
            self.total_events(),
            distinct_static_races
        ));
        out
    }
}

impl fmt::Display for CorpusReport {
    /// Human-readable summary: corpus line, per-analysis totals, per-job
    /// rows, failures.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "corpus: {} jobs ({} ok, {} failed), {} events analyzed",
            self.jobs.len(),
            self.succeeded(),
            self.failed(),
            self.total_events()
        )?;
        writeln!(
            f,
            "\n{:<16} {:>8} {:>9} {:>10}",
            "ANALYSIS", "DYNAMIC", "DISTINCT", "RACY JOBS"
        )?;
        for total in self.totals() {
            writeln!(
                f,
                "{:<16} {:>8} {:>9} {:>10}",
                total.name,
                total.dynamic,
                total.distinct_static(),
                total.racy_jobs
            )?;
        }
        writeln!(f, "\nper job:")?;
        for job in &self.jobs {
            match &job.result {
                Ok(success) => {
                    let races: Vec<String> = success
                        .outcomes
                        .iter()
                        .map(|o| {
                            format!(
                                "{} {}/{}",
                                o.name,
                                o.report.static_count(),
                                o.report.dynamic_count()
                            )
                        })
                        .collect();
                    writeln!(
                        f,
                        "  {:<32} {:>8} events  {}",
                        job.label,
                        success.events,
                        races.join(", ")
                    )?;
                }
                Err(error) => writeln!(f, "  {:<32} FAILED: {error}", job.label)?,
            }
        }
        Ok(())
    }
}

/// JSON string literal with escaping (quotes, backslashes, control chars).
fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Messages workers push to the aggregator.
enum PoolMsg {
    Race(CorpusRace),
    Done(JobOutcome),
}

/// Tracks simultaneously open sessions (current + peak).
#[derive(Default)]
struct ResidencyGauge {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl ResidencyGauge {
    fn enter(&self) {
        let now = self.current.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn exit(&self) {
        self.current.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A fixed pool of workers analyzing [`BatchJob`]s concurrently over one
/// [`Engine`] selection — see the [module docs](self) for the dataflow.
///
/// # Examples
///
/// Analyze a synthetic two-trace corpus and read the aggregated totals:
///
/// ```
/// use smarttrack_detect::{AnalysisConfig, BatchJob, Engine, EnginePool};
/// use smarttrack_trace::gen::RandomTraceSpec;
///
/// let engine = Engine::builder().table1().build()?;
/// let pool = EnginePool::new(engine);
/// let spec = RandomTraceSpec::default();
/// let report = pool.run(vec![
///     BatchJob::generator("seed-1", {
///         let spec = spec.clone();
///         move || spec.generate(1)
///     }),
///     BatchJob::generator("seed-2", move || spec.generate(2)),
/// ]);
/// assert_eq!(report.jobs().len(), 2);
/// assert_eq!(report.totals().len(), AnalysisConfig::table1().len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct EnginePool {
    engine: Engine,
    workers: usize,
}

impl EnginePool {
    /// A pool over `engine` with the default worker count
    /// ([`worker_count`]`(None)`: the `SMARTTRACK_WORKERS` variable if
    /// set, else the machine's available parallelism).
    pub fn new(engine: Engine) -> Self {
        EnginePool {
            engine,
            workers: worker_count(None),
        }
    }

    /// Overrides the worker count (clamped like [`worker_count`]).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = worker_count(Some(workers));
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The engine whose selection every job runs.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Runs the jobs to completion and aggregates the [`CorpusReport`].
    pub fn run(&self, jobs: Vec<BatchJob>) -> CorpusReport {
        self.run_with_stats(jobs).0
    }

    /// [`run`](EnginePool::run), also returning scheduling statistics.
    pub fn run_with_stats(&self, jobs: Vec<BatchJob>) -> (CorpusReport, PoolStats) {
        self.run_observed(jobs, |_race| {})
    }

    /// Runs the jobs with a live corpus-wide race observer: `on_race` is
    /// invoked on the *calling* thread as notices arrive from the workers
    /// — the corpus analogue of [`crate::Session::set_sink`]. Delivery is
    /// in detection order within a job; the order across jobs depends on
    /// scheduling, but the returned report does not.
    pub fn run_observed(
        &self,
        jobs: Vec<BatchJob>,
        mut on_race: impl FnMut(CorpusRace),
    ) -> (CorpusReport, PoolStats) {
        let total = jobs.len();
        let workers = self.workers.min(total).max(1);
        let injector: Mutex<VecDeque<(usize, BatchJob)>> =
            Mutex::new(jobs.into_iter().enumerate().collect());
        let gauge = ResidencyGauge::default();
        let (tx, rx) = std::sync::mpsc::channel::<PoolMsg>();

        let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(total);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let injector = &injector;
                let gauge = &gauge;
                scope.spawn(move || loop {
                    let Some((index, job)) = injector.lock().expect("injector lock").pop_front()
                    else {
                        break;
                    };
                    let outcome = self.execute(index, job, &tx, gauge);
                    if tx.send(PoolMsg::Done(outcome)).is_err() {
                        break; // aggregator gone; nothing left to report to
                    }
                });
            }
            drop(tx);
            // The aggregator: drain the channel on the calling thread until
            // every worker has hung up.
            outcomes.extend(Self::aggregate(rx, &mut on_race));
        });

        outcomes.sort_unstable_by_key(|j| j.index);
        debug_assert_eq!(outcomes.len(), total, "every job accounted for once");
        let report = CorpusReport {
            analyses: self.lane_identities(),
            jobs: outcomes,
        };
        let stats = PoolStats {
            workers,
            jobs: total,
            peak_resident_sessions: gauge.peak.load(Ordering::Relaxed),
        };
        (report, stats)
    }

    /// Receives worker messages until all senders hang up, forwarding race
    /// notices to the observer and collecting job outcomes.
    fn aggregate(rx: Receiver<PoolMsg>, on_race: &mut impl FnMut(CorpusRace)) -> Vec<JobOutcome> {
        let mut outcomes = Vec::new();
        for msg in rx {
            match msg {
                PoolMsg::Race(race) => on_race(race),
                PoolMsg::Done(outcome) => outcomes.push(outcome),
            }
        }
        outcomes
    }

    /// (name, config) per engine lane — stable even when every job fails.
    fn lane_identities(&self) -> Vec<(String, AnalysisConfig)> {
        self.engine
            .configs()
            .iter()
            .map(|&config| {
                let name = config
                    .detector()
                    .expect("engine validated availability")
                    .name()
                    .to_string();
                (name, config)
            })
            .collect()
    }

    /// Runs one job on the current worker thread.
    fn execute(
        &self,
        index: usize,
        job: BatchJob,
        tx: &Sender<PoolMsg>,
        gauge: &ResidencyGauge,
    ) -> JobOutcome {
        let BatchJob { label, source } = job;
        gauge.enter();
        // A panicking job (a generator closure, or a detector bug on one
        // trace) must fail its own row, not unwind the worker and — via
        // scope join — abort the whole batch and discard every other
        // job's results.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.ingest(index, &label, source, tx)
        }))
        .unwrap_or_else(|payload| {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(JobError::Panicked(format!("{label}: {message}")))
        });
        gauge.exit();
        JobOutcome {
            index,
            label,
            result,
        }
    }

    /// Opens a session for one job, wires its race sink to the pool
    /// channel, and streams the source through it.
    fn ingest(
        &self,
        index: usize,
        label: &str,
        source: JobSource,
        tx: &Sender<PoolMsg>,
    ) -> Result<JobSuccess, JobError> {
        let malformed = |e: TraceError| JobError::Malformed(format!("{label}: {e}"));
        let session = match source {
            JobSource::Trace(trace) => {
                let mut session = self.open_session(StreamHint::default(), index, label, tx);
                session.feed_trace(&trace).map_err(malformed)?;
                session
            }
            JobSource::Generator(generate) => {
                let trace = generate();
                let mut session = self.open_session(StreamHint::default(), index, label, tx);
                session.feed_trace(&trace).map_err(malformed)?;
                session
            }
            JobSource::Path(path) => {
                use std::io::{Read as _, Seek as _, SeekFrom};
                let io_err = |e: std::io::Error| JobError::Io(format!("{}: {e}", path.display()));
                let mut file = std::fs::File::open(&path).map_err(io_err)?;
                let mut probe = Vec::with_capacity(4);
                (&file).take(4).read_to_end(&mut probe).map_err(io_err)?;
                file.seek(SeekFrom::Start(0)).map_err(io_err)?;
                let format =
                    formats::sniff(&probe).unwrap_or_else(|| formats::format_of_path(&path));
                if format == formats::TraceFormat::Stb {
                    // Stream: chunk-at-a-time decode, header hint pre-sizes
                    // the session, the trace is never materialized.
                    let reader = StbReader::new(std::io::BufReader::new(file))
                        .map_err(|e| JobError::Decode(format!("{}: {e}", path.display())))?;
                    let declared = reader.header().hint.map(|h| h.events);
                    let hint = StreamHint::of_stb_header(reader.header());
                    let mut session = self.open_session(hint, index, label, tx);
                    for event in reader {
                        let event = event
                            .map_err(|e| JobError::Decode(format!("{}: {e}", path.display())))?;
                        session.feed(event).map_err(malformed)?;
                    }
                    // Same cross-check as the eager `read_stb`: a stream
                    // that ends cleanly on a chunk boundary but short of
                    // its header-declared length is corrupt, not complete.
                    if let Some(declared) = declared {
                        if declared != session.events() as u64 {
                            return Err(JobError::Decode(format!(
                                "{}: corrupt stream: header hint declares {declared} events \
                                 but the stream carries {}",
                                path.display(),
                                session.events()
                            )));
                        }
                    }
                    session
                } else {
                    let mut bytes = Vec::new();
                    file.read_to_end(&mut bytes).map_err(io_err)?;
                    let trace = formats::parse_bytes(&bytes, format)
                        .map_err(|e| JobError::Parse(format!("{}: {e}", path.display())))?;
                    let mut session = self.open_session(StreamHint::default(), index, label, tx);
                    session.feed_trace(&trace).map_err(malformed)?;
                    session
                }
            }
        };
        let events = session.events();
        let outcomes = session.finish();
        Ok(JobSuccess { events, outcomes })
    }

    /// Opens one session with a sink forwarding race notices (as owned
    /// [`CorpusRace`]s) through the pool channel.
    fn open_session(
        &self,
        hint: StreamHint,
        index: usize,
        label: &str,
        tx: &Sender<PoolMsg>,
    ) -> Session<'static> {
        let mut session = self.engine.open_with_hint(hint);
        let tx = tx.clone();
        let label = label.to_string();
        session.set_sink(move |notice: &crate::RaceNotice<'_>| {
            let _ = tx.send(PoolMsg::Race(CorpusRace {
                job: index,
                label: label.clone(),
                analysis: notice.analysis.to_string(),
                config: notice.config,
                race: notice.race.clone(),
            }));
        });
        session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OptLevel, Relation};
    use smarttrack_trace::{paper, Event, Op, ThreadId, VarId};

    fn wdc_engine() -> Engine {
        Engine::builder().relation(Relation::Wdc).build().unwrap()
    }

    #[test]
    fn worker_count_edge_cases() {
        // Explicit request wins, clamped ≥ 1.
        assert_eq!(worker_count_from(Some(4), Some("9"), 2), 4);
        assert_eq!(worker_count_from(Some(0), None, 8), 1);
        assert_eq!(worker_count_from(Some(usize::MAX), None, 8), MAX_WORKERS);
        // Env comes next; garbage and empty fall through to detection.
        assert_eq!(worker_count_from(None, Some("3"), 8), 3);
        assert_eq!(worker_count_from(None, Some(" 6 "), 8), 6);
        assert_eq!(worker_count_from(None, Some("0"), 8), 1);
        assert_eq!(worker_count_from(None, Some("lots"), 8), 8);
        assert_eq!(worker_count_from(None, Some(""), 8), 8);
        assert_eq!(worker_count_from(None, Some("99999"), 8), MAX_WORKERS);
        // Unset everything: detected parallelism, still clamped.
        assert_eq!(worker_count_from(None, None, 8), 8);
        assert_eq!(worker_count_from(None, None, 0), 1);
    }

    #[test]
    fn worker_count_env_override_is_live() {
        // `worker_count` consults the process environment; use the pure
        // core for everything else so this is the only test touching it.
        std::env::set_var(WORKERS_ENV, "5");
        assert_eq!(worker_count(None), 5);
        assert_eq!(worker_count(Some(2)), 2, "explicit request beats env");
        std::env::remove_var(WORKERS_ENV);
        assert!(worker_count(None) >= 1);
    }

    #[test]
    fn corpus_report_is_identical_across_worker_counts() {
        let jobs = || {
            vec![
                BatchJob::from_trace("fig1", paper::figure1()),
                BatchJob::from_trace("fig2", paper::figure2()),
                BatchJob::from_trace("fig3", paper::figure3()),
                BatchJob::from_trace("fig4a", paper::figure4a()),
            ]
        };
        let engine = Engine::builder().table1().build().unwrap();
        let base = EnginePool::new(engine.clone()).with_workers(1).run(jobs());
        for workers in [2, 3, 8] {
            let report = EnginePool::new(engine.clone())
                .with_workers(workers)
                .run(jobs());
            assert_eq!(report, base, "{workers} workers");
            assert_eq!(report.to_json(), base.to_json(), "{workers} workers");
        }
    }

    #[test]
    fn per_job_reports_match_sequential_sessions() {
        let traces = [paper::figure1(), paper::figure2(), paper::figure3()];
        let engine = Engine::builder().table1().build().unwrap();
        let report = EnginePool::new(engine.clone()).with_workers(3).run(
            traces
                .iter()
                .enumerate()
                .map(|(i, t)| BatchJob::from_trace(format!("job-{i}"), t.clone()))
                .collect(),
        );
        for (job, trace) in report.jobs().iter().zip(&traces) {
            let mut session = engine.open();
            session.feed_trace(trace).unwrap();
            let expected = session.finish();
            let success = job.result.as_ref().expect("in-memory traces succeed");
            assert_eq!(success.outcomes, expected, "{}", job.label);
            assert_eq!(success.events, trace.len());
        }
    }

    #[test]
    fn corpus_dedup_counts_shared_sites_once() {
        // The same figure twice: dynamic races double, distinct sites don't.
        let once =
            EnginePool::new(wdc_engine()).run(vec![BatchJob::from_trace("a", paper::figure1())]);
        let twice = EnginePool::new(wdc_engine()).run(vec![
            BatchJob::from_trace("a", paper::figure1()),
            BatchJob::from_trace("b", paper::figure1()),
        ]);
        let (one, two) = (&once.totals()[0], &twice.totals()[0]);
        assert_eq!(two.dynamic, 2 * one.dynamic);
        assert_eq!(two.sites, one.sites, "same static sites, deduplicated");
        assert_eq!(two.racy_jobs, 2);
    }

    #[test]
    fn failed_job_carries_precise_error_and_spares_the_batch() {
        let dir = std::env::temp_dir();
        let good = dir.join(format!("st-pool-good-{}.stb", std::process::id()));
        let bad = dir.join(format!("st-pool-bad-{}.stb", std::process::id()));
        smarttrack_trace::binary::write_stb_file(&paper::figure1(), &good).unwrap();
        let bytes = std::fs::read(&good).unwrap();
        std::fs::write(&bad, &bytes[..bytes.len() - 3]).unwrap();

        let report = EnginePool::new(wdc_engine()).with_workers(2).run(vec![
            BatchJob::from_path(&good),
            BatchJob::from_path(&bad),
            BatchJob::from_path(dir.join("st-pool-missing.stb")),
        ]);
        assert_eq!(report.succeeded(), 1);
        assert_eq!(report.failed(), 2);
        let errors: Vec<&JobError> = report
            .failures()
            .map(|j| j.result.as_ref().unwrap_err())
            .collect();
        assert!(
            matches!(errors[0], JobError::Decode(m) if m.contains("truncated")),
            "{:?}",
            errors[0]
        );
        assert!(matches!(errors[1], JobError::Io(_)), "{:?}", errors[1]);
        // The good job still analyzed fully.
        assert_eq!(report.totals()[0].dynamic, 1);
        let _ = std::fs::remove_file(&good);
        let _ = std::fs::remove_file(&bad);
    }

    #[test]
    fn stb_path_jobs_stream_and_match_in_memory_jobs() {
        let trace = paper::figure1();
        let path = std::env::temp_dir().join(format!("st-pool-stream-{}.stb", std::process::id()));
        smarttrack_trace::binary::write_stb_file(&trace, &path).unwrap();
        let from_path = EnginePool::new(wdc_engine()).run(vec![BatchJob::from_path(&path)]);
        let in_memory = EnginePool::new(wdc_engine()).run(vec![BatchJob::from_trace(
            path.display().to_string(),
            trace,
        )]);
        let (a, b) = (&from_path.jobs()[0], &in_memory.jobs()[0]);
        let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        assert_eq!(a.events, b.events);
        assert_eq!(a.outcomes[0].report, b.outcomes[0].report);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn observer_sees_every_race_of_successful_jobs() {
        let mut seen = Vec::new();
        let engine = wdc_engine();
        let (report, stats) = EnginePool::new(engine).with_workers(2).run_observed(
            vec![
                BatchJob::from_trace("fig1", paper::figure1()),
                BatchJob::from_trace("fig4a", paper::figure4a()),
            ],
            |race| seen.push((race.job, race.analysis.clone(), race.race.loc)),
        );
        assert_eq!(seen.len(), 1, "only figure 1 has a WDC race");
        assert_eq!(seen[0].0, 0);
        assert_eq!(seen[0].1, "SmartTrack-WDC");
        assert!(stats.peak_resident_sessions <= stats.workers);
        assert_eq!(report.succeeded(), 2);
    }

    #[test]
    fn malformed_stream_fails_its_job_mid_session() {
        // A hand-built STB stream whose events violate lock discipline:
        // decodes fine, rejected by the session validator.
        let t0 = ThreadId::new(0);
        let events = [
            Event::new(t0, Op::Write(VarId::new(0))),
            Event::new(t0, Op::Release(smarttrack_trace::LockId::new(0))),
        ];
        let mut writer = smarttrack_trace::binary::StbWriter::new(Vec::new());
        for event in &events {
            writer.write(event).unwrap();
        }
        let bytes = writer.finish().unwrap();
        let path =
            std::env::temp_dir().join(format!("st-pool-malformed-{}.stb", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        let report = EnginePool::new(wdc_engine()).run(vec![BatchJob::from_path(&path)]);
        assert_eq!(report.failed(), 1);
        assert!(matches!(
            report.jobs()[0].result.as_ref().unwrap_err(),
            JobError::Malformed(_)
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn panicking_job_fails_its_row_not_the_batch() {
        let report = EnginePool::new(wdc_engine()).with_workers(2).run(vec![
            BatchJob::from_trace("good", paper::figure1()),
            BatchJob::generator("boom", || panic!("generator exploded")),
            BatchJob::from_trace("also-good", paper::figure2()),
        ]);
        assert_eq!(report.succeeded(), 2);
        assert_eq!(report.failed(), 1);
        let failure = report.failures().next().unwrap();
        assert_eq!(failure.label, "boom");
        assert!(
            matches!(failure.result.as_ref().unwrap_err(),
                     JobError::Panicked(m) if m.contains("generator exploded")),
            "{:?}",
            failure.result
        );
        assert_eq!(report.totals()[0].racy_jobs, 2, "good jobs fully analyzed");
    }

    #[test]
    fn json_rendering_is_escaped_and_stable() {
        let report = EnginePool::new(wdc_engine()).run(vec![BatchJob::from_trace(
            "we\"ird\\label",
            paper::figure1(),
        )]);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"smarttrack-corpus-report/v1\""));
        assert!(json.contains("we\\\"ird\\\\label"));
        assert_eq!(json, report.clone().to_json());
        assert_eq!(json_string("a\tb\u{1}"), "\"a\\tb\\u0001\"");
    }

    #[test]
    fn empty_corpus_yields_an_empty_deterministic_report() {
        let report = EnginePool::new(wdc_engine()).run(Vec::new());
        assert_eq!(report.jobs().len(), 0);
        assert_eq!(report.succeeded(), 0);
        assert_eq!(report.totals()[0].dynamic, 0);
        assert!(report.to_json().contains("\"jobs\": 0"));
    }

    #[test]
    fn pool_defaults_and_overrides() {
        let pool = EnginePool::new(wdc_engine());
        assert!(pool.workers() >= 1);
        assert_eq!(
            pool.with_workers(0).workers(),
            1,
            "clamped like worker_count"
        );
        let engine = Engine::builder()
            .relation(Relation::Dc)
            .opt_level(OptLevel::Fto)
            .build()
            .unwrap();
        let pool = EnginePool::new(engine).with_workers(7);
        assert_eq!(pool.workers(), 7);
        assert_eq!(pool.engine().configs().len(), 1);
    }
}
