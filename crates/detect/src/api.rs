use std::fmt;

use smarttrack_trace::{Event, EventId, Trace};

use crate::{FtoCaseCounters, HotPathStats, Report};

/// The relation computed by an analysis (Table 1 rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Relation {
    /// Happens-before (non-predictive).
    Hb,
    /// Weak-causally-precedes (sound predictive; Kini et al. 2017).
    Wcp,
    /// Doesn't-commute (high-coverage predictive; Roemer et al. 2018).
    Dc,
    /// Weak-doesn't-commute (this paper's §3: DC without rule (b)).
    Wdc,
    /// Sync-preserving race prediction (Mathur et al. 2021, arXiv
    /// 2010.16385): races with a witness that keeps every lock acquisition
    /// in its observed order. Sound by construction (every report carries a
    /// valid reordering); strictly more predictive than HB. A repro
    /// extension, not a Table 1 row — see [`Relation::ALL`].
    SyncP,
    /// Optimistic synchronization-reversal race prediction (Shi, Mathur &
    /// Pavlogiannis, arXiv 2401.05642): like [`Relation::SyncP`] but
    /// witness reorderings may additionally *reverse* critical sections on
    /// one lock, found by a bounded abort-and-commit search. Sound by
    /// construction (every report carries a replay-scheduled witness);
    /// SyncP ⊆ OSR. A repro extension, not a Table 1 row.
    Osr,
}

impl Relation {
    /// The paper's Table 1 rows, strongest to weakest. [`Relation::SyncP`]
    /// and [`Relation::Osr`] are deliberately absent: Table 1 is the source
    /// paper's matrix, and those rows are this repro's extensions (listed
    /// by [`crate::AnalysisConfig::extended`] instead).
    pub const ALL: [Relation; 4] = [Relation::Hb, Relation::Wcp, Relation::Dc, Relation::Wdc];
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Relation::Hb => write!(f, "HB"),
            Relation::Wcp => write!(f, "WCP"),
            Relation::Dc => write!(f, "DC"),
            Relation::Wdc => write!(f, "WDC"),
            Relation::SyncP => write!(f, "SyncP"),
            Relation::Osr => write!(f, "OSR"),
        }
    }
}

/// The optimization level of an analysis (Table 1 columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// Vector-clock metadata everywhere (paper Algorithm 1).
    Unopt,
    /// FastTrack2 epochs without ownership (HB only).
    Epochs,
    /// Epoch + ownership optimizations (paper Algorithm 2).
    Fto,
    /// FTO + conflicting-critical-section optimizations (paper Algorithm 3).
    SmartTrack,
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptLevel::Unopt => write!(f, "Unopt"),
            OptLevel::Epochs => write!(f, "FT2"),
            OptLevel::Fto => write!(f, "FTO"),
            OptLevel::SmartTrack => write!(f, "ST"),
        }
    }
}

/// Facts about an event stream that may be known before processing starts.
///
/// Offline analysis of a recorded [`Trace`] knows everything; a live
/// streaming session ([`crate::Session`]) may know nothing, or only a bound
/// communicated by the instrumentation layer. All fields are optional and
/// advisory: detectors must stay correct without them (a known thread bound
/// merely enables optimizations such as sound compaction of DC rule (b)
/// queues).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamHint {
    /// Upper bound on the number of distinct threads, if known.
    pub threads: Option<usize>,
    /// Total number of events the stream will carry, if known.
    pub events: Option<usize>,
    /// Number of distinct shared variables, if known. Pre-sizes the
    /// per-session id interner and the detectors' dense per-variable tables.
    pub vars: Option<usize>,
    /// Number of distinct locks, if known.
    pub locks: Option<usize>,
    /// Number of distinct volatile variables, if known.
    pub volatiles: Option<usize>,
    /// Number of distinct condition variables, if known.
    pub condvars: Option<usize>,
    /// Number of distinct barriers, if known.
    pub barriers: Option<usize>,
}

impl StreamHint {
    /// Most table slots any single hint field is trusted to pre-allocate.
    ///
    /// Hints are *claims* — a corrupt or hostile STB header, or a trace
    /// holding one huge sparse id (cardinalities are `max index + 1`), must
    /// not be able to force a multi-gigabyte allocation before the first
    /// event arrives. Larger hinted cardinalities simply fall back to
    /// growth-on-demand. 65 536 slots covers every calibrated workload's
    /// cardinalities with two orders of magnitude to spare while bounding
    /// a hostile claim to a few megabytes per table.
    pub const MAX_PRESIZE: usize = 1 << 16;

    /// Additional capacity worth reserving for a table currently holding
    /// `len` slots, given this hinted cardinality: clamped to
    /// [`MAX_PRESIZE`](StreamHint::MAX_PRESIZE), zero when unhinted.
    ///
    /// Cardinalities are `max index + 1` of the *raw* id space, so for an
    /// interned session with sparse ids the hint overstates what the lanes
    /// (which only ever see compact slots) will use — the distinct count
    /// is unknowable before the stream runs. The clamp bounds that waste
    /// to a few megabytes per table; unused reserve is reclaimed when the
    /// session drops.
    pub fn presize(hinted: Option<usize>, len: usize) -> usize {
        hinted
            .unwrap_or(0)
            .min(StreamHint::MAX_PRESIZE)
            .saturating_sub(len)
    }

    /// The full-knowledge hint for a recorded trace.
    pub fn of_trace(trace: &Trace) -> Self {
        StreamHint {
            threads: Some(trace.num_threads()),
            events: Some(trace.len()),
            vars: Some(trace.num_vars()),
            locks: Some(trace.num_locks()),
            volatiles: Some(trace.num_volatiles()),
            condvars: Some(trace.num_condvars()),
            barriers: Some(trace.num_barriers()),
        }
    }

    /// Merges two hints field-by-field, preferring `self` where both know a
    /// value (used to layer a per-stream hint over a builder-level one).
    pub fn or(self, fallback: StreamHint) -> Self {
        StreamHint {
            threads: self.threads.or(fallback.threads),
            events: self.events.or(fallback.events),
            vars: self.vars.or(fallback.vars),
            locks: self.locks.or(fallback.locks),
            volatiles: self.volatiles.or(fallback.volatiles),
            condvars: self.condvars.or(fallback.condvars),
            barriers: self.barriers.or(fallback.barriers),
        }
    }

    /// The hint carried by an STB binary trace header, when present (see
    /// [`smarttrack_trace::binary`]): an STB-aware driver announces it to
    /// the session so streaming STB input gets the same pre-sizing and
    /// compaction benefits as whole-trace analysis.
    pub fn of_stb_header(header: &smarttrack_trace::binary::StbHeader) -> Self {
        header.hint.map(Self::from).unwrap_or_default()
    }
}

impl From<smarttrack_trace::binary::StbHint> for StreamHint {
    fn from(hint: smarttrack_trace::binary::StbHint) -> Self {
        StreamHint {
            threads: Some(hint.threads as usize),
            events: Some(hint.events as usize),
            vars: Some(hint.vars as usize),
            locks: Some(hint.locks as usize),
            volatiles: Some(hint.volatiles as usize),
            condvars: Some(hint.condvars as usize),
            barriers: Some(hint.barriers as usize),
        }
    }
}

/// A dynamic race-detection analysis processing an event stream.
///
/// Detectors are deterministic: processing the same trace yields the same
/// report. They keep analyzing after detecting races (§5.1: "After the
/// analysis detects a race, it continues normally").
///
/// Detectors are *incremental*: [`report`](Detector::report),
/// [`footprint_bytes`](Detector::footprint_bytes), and
/// [`case_counters`](Detector::case_counters) are valid at any point of the
/// stream, not only at its end. The lifecycle is
/// [`begin_stream`](Detector::begin_stream) → [`process`](Detector::process)
/// per event → [`finish_stream`](Detector::finish_stream); whole-trace
/// drivers may use [`prepare`](Detector::prepare), which defaults to
/// `begin_stream` with a full-knowledge [`StreamHint`].
pub trait Detector {
    /// Short name matching the paper's tables (e.g. `"SmartTrack-DC"`).
    fn name(&self) -> &'static str;

    /// The relation this analysis computes.
    fn relation(&self) -> Relation;

    /// The optimization level of this analysis.
    fn opt_level(&self) -> OptLevel;

    /// Announces whatever stream-level facts are known before processing
    /// (all advisory; see [`StreamHint`]). Optional.
    fn begin_stream(&mut self, hint: StreamHint) {
        let _ = hint;
    }

    /// Announces trace-level facts before whole-trace processing. The
    /// default forwards to [`begin_stream`](Detector::begin_stream) with
    /// [`StreamHint::of_trace`]; override that method instead.
    fn prepare(&mut self, trace: &Trace) {
        self.begin_stream(StreamHint::of_trace(trace));
    }

    /// Processes one event. `id` must be the event's index in the stream.
    fn process(&mut self, id: EventId, event: &Event);

    /// Signals that no further events will arrive. Detectors that defer
    /// work until a boundary (e.g. the windowed oracle analysis flushing
    /// its trailing partial window) complete it here; races found during
    /// the flush appear in [`report`](Detector::report) afterwards.
    /// Optional; processing-as-you-go detectors need nothing.
    fn finish_stream(&mut self) {}

    /// The races detected so far.
    fn report(&self) -> &Report;

    /// Exact live metadata bytes (vector clocks, epochs, queues, CS lists,
    /// graphs), deduplicating shared structures. Used for the paper's
    /// memory-usage experiments. May walk all live metadata — call it at
    /// stream boundaries and snapshots, not per event; the per-event
    /// sampling path uses [`state_bytes`](Detector::state_bytes).
    fn footprint_bytes(&self) -> usize;

    /// Cheap running estimate of resident metadata bytes, safe to call on
    /// the per-event sampling stride: O(#tables), never O(#variables).
    ///
    /// Detectors with dense id-indexed tables report their table
    /// capacities plus any incrementally-tracked heap structures;
    /// Rc-shared CCS metadata and heap-spilled clocks beyond
    /// [`smarttrack_clock::INLINE_CLOCKS`] threads are captured exactly by
    /// the end-of-stream [`footprint_bytes`](Detector::footprint_bytes)
    /// walk instead (see [`RunSummary::peak_footprint_bytes`]). The default
    /// forwards to the exact walk, which is correct for detectors whose
    /// walks are already cheap.
    fn state_bytes(&self) -> usize {
        self.footprint_bytes()
    }

    /// FTO case frequencies (Appendix Table 12), if this detector tracks
    /// them (FTO-, FT2- and SmartTrack-based detectors do).
    fn case_counters(&self) -> Option<&FtoCaseCounters> {
        None
    }

    /// Fast-path/slow-path hit counts plus resident state bytes — the
    /// hot-path accounting every detector reports. The default derives the
    /// split from [`case_counters`](Detector::case_counters) (detectors
    /// without counters — the Unopt variants — override this to report
    /// every access as slow).
    fn hot_path_stats(&self) -> HotPathStats {
        let (fast_hits, slow_hits) = match self.case_counters() {
            Some(c) => (c.fast_hits(), c.slow_hits()),
            None => (0, 0),
        };
        HotPathStats {
            fast_hits,
            slow_hits,
            state_bytes: self.state_bytes(),
        }
    }

    /// The constraint graph built during analysis, for "w/ G" variants.
    fn graph(&self) -> Option<&crate::ConstraintGraph> {
        None
    }
}

/// Mutable references forward the whole [`Detector`] API, so a session can
/// drive a detector it merely borrows (e.g. the windowed analysis lending
/// its oracle detector to a [`crate::Session`] lane).
impl<D: Detector + ?Sized> Detector for &mut D {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn relation(&self) -> Relation {
        (**self).relation()
    }

    fn opt_level(&self) -> OptLevel {
        (**self).opt_level()
    }

    fn begin_stream(&mut self, hint: StreamHint) {
        (**self).begin_stream(hint);
    }

    fn prepare(&mut self, trace: &Trace) {
        (**self).prepare(trace);
    }

    fn process(&mut self, id: EventId, event: &Event) {
        (**self).process(id, event);
    }

    fn finish_stream(&mut self) {
        (**self).finish_stream();
    }

    fn report(&self) -> &Report {
        (**self).report()
    }

    fn footprint_bytes(&self) -> usize {
        (**self).footprint_bytes()
    }

    fn state_bytes(&self) -> usize {
        (**self).state_bytes()
    }

    fn case_counters(&self) -> Option<&FtoCaseCounters> {
        (**self).case_counters()
    }

    fn hot_path_stats(&self) -> HotPathStats {
        (**self).hot_path_stats()
    }

    fn graph(&self) -> Option<&crate::ConstraintGraph> {
        (**self).graph()
    }
}

/// Summary of one full analysis run produced by [`run_detector`] or a
/// finished [`crate::Session`] lane.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Number of events processed.
    pub events: usize,
    /// Peak *sampled* metadata footprint in bytes — the memory-usage
    /// analogue of the paper's maximum resident set size.
    ///
    /// Sampling policy: on the in-stream stride (targeting
    /// [`RunSummary::FOOTPRINT_SAMPLES`] samples — whole-trace drivers use
    /// a fixed stride of `len.div_ceil(256)` events, streaming sessions a
    /// stride that doubles every 256 samples) the *cheap* running estimate
    /// [`Detector::state_bytes`] is sampled, and at end of stream the
    /// exact [`Detector::footprint_bytes`] walk is folded in. The peak is
    /// therefore exact for monotonically growing metadata; for analyses
    /// whose footprint oscillates (queue-compacting DC variants) or whose
    /// estimate excludes Rc-shared CCS structures, mid-stream peaks can be
    /// underestimated — the same bias the paper's periodic RSS polling
    /// has. Before the hot-path metadata overhaul every in-stream sample
    /// ran the exact walk, which dominated total analysis time on
    /// epoch-friendly workloads; the estimate/exact split removes that
    /// cost without changing what the final number means.
    pub peak_footprint_bytes: usize,
    /// Exact live metadata bytes at end of stream (the final
    /// [`Detector::footprint_bytes`] walk): the number to compare across
    /// metadata layouts.
    pub final_state_bytes: usize,
    /// Accesses handled by an epoch fast path (see
    /// [`Detector::hot_path_stats`]).
    pub fast_path_hits: u64,
    /// Accesses that ran a full slow-path handler.
    pub slow_path_hits: u64,
}

impl RunSummary {
    /// Target number of footprint samples per run (see
    /// [`peak_footprint_bytes`](RunSummary::peak_footprint_bytes)).
    pub const FOOTPRINT_SAMPLES: usize = 256;
}

/// Periodic footprint sampling shared by every ingestion driver.
///
/// Tracks a peak over values observed on a sampling stride. Two policies:
/// [`for_len`](FootprintSampler::for_len) (known stream length, fixed
/// stride, at most [`RunSummary::FOOTPRINT_SAMPLES`] samples) and
/// [`adaptive`](FootprintSampler::adaptive) (unbounded stream, stride
/// doubles every `FOOTPRINT_SAMPLES` samples, so total samples grow only
/// logarithmically with stream length).
#[derive(Clone, Debug)]
pub struct FootprintSampler {
    stride: usize,
    fixed: bool,
    index: usize,
    next_sample: usize,
    samples: usize,
    peak: usize,
}

impl FootprintSampler {
    /// Fixed-stride policy for a stream of `len` events: stride
    /// `len.div_ceil(256)`, sampling event indices `0, s, 2s, …`.
    pub fn for_len(len: usize) -> Self {
        FootprintSampler {
            stride: len.div_ceil(RunSummary::FOOTPRINT_SAMPLES).max(1),
            fixed: true,
            index: 0,
            next_sample: 0,
            samples: 0,
            peak: 0,
        }
    }

    /// Doubling-stride policy for streams of unknown length: the stride
    /// doubles every [`RunSummary::FOOTPRINT_SAMPLES`] samples, keeping
    /// total sampling cost logarithmic in stream length while staying
    /// dense early (where allocation growth curves are steepest).
    pub fn adaptive() -> Self {
        FootprintSampler {
            stride: 1,
            fixed: false,
            index: 0,
            next_sample: 0,
            samples: 0,
            peak: 0,
        }
    }

    /// Advances past one event, evaluating `footprint` only when this event
    /// index is on the sampling stride.
    pub fn observe<F: FnOnce() -> usize>(&mut self, footprint: F) {
        if self.index == self.next_sample {
            self.peak = self.peak.max(footprint());
            self.samples += 1;
            if !self.fixed && self.samples.is_multiple_of(RunSummary::FOOTPRINT_SAMPLES) {
                self.stride *= 2;
            }
            self.next_sample += self.stride;
        }
        self.index += 1;
    }

    /// Folds in the end-of-stream footprint and returns the peak.
    pub fn finish(&mut self, final_footprint: usize) -> usize {
        self.peak = self.peak.max(final_footprint);
        self.peak
    }

    /// The peak observed so far (without the end-of-stream sample).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Number of events observed so far.
    pub fn events(&self) -> usize {
        self.index
    }
}

/// Drives a detector over an entire trace, sampling metadata footprint
/// periodically to capture the peak (the memory-usage analogue of the paper's
/// maximum resident set size; see
/// [`RunSummary::peak_footprint_bytes`] for the sampling policy).
///
/// # Examples
///
/// ```
/// use smarttrack_detect::{run_detector, Detector, UnoptHb};
/// use smarttrack_trace::paper;
///
/// let mut det = UnoptHb::new();
/// let summary = run_detector(&mut det, &paper::figure2());
/// assert_eq!(summary.events, 12);
/// assert!(summary.peak_footprint_bytes > 0);
/// ```
pub fn run_detector<D: Detector + ?Sized>(detector: &mut D, trace: &Trace) -> RunSummary {
    detector.prepare(trace);
    let mut sampler = FootprintSampler::for_len(trace.len());
    for (id, event) in trace.iter() {
        detector.process(id, event);
        sampler.observe(|| detector.state_bytes());
    }
    detector.finish_stream();
    let final_state_bytes = detector.footprint_bytes();
    let hot = detector.hot_path_stats();
    RunSummary {
        events: trace.len(),
        peak_footprint_bytes: sampler.finish(final_state_bytes),
        final_state_bytes,
        fast_path_hits: hot.fast_hits,
        slow_path_hits: hot.slow_hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Relation::Wdc.to_string(), "WDC");
        assert_eq!(OptLevel::SmartTrack.to_string(), "ST");
        assert_eq!(OptLevel::Epochs.to_string(), "FT2");
    }

    #[test]
    fn relations_ordered_strongest_first() {
        assert_eq!(Relation::ALL[0], Relation::Hb);
        assert_eq!(Relation::ALL[3], Relation::Wdc);
    }

    /// Counts how many times a sampler evaluates the footprint closure over
    /// a stream of `events` events.
    fn samples_taken(mut sampler: FootprintSampler, events: usize) -> usize {
        let mut calls = 0;
        for _ in 0..events {
            sampler.observe(|| {
                calls += 1;
                calls
            });
        }
        calls
    }

    #[test]
    fn fixed_stride_caps_samples_near_target() {
        for len in [0, 1, 100, 256, 257, 300, 1_000, 100_000] {
            let taken = samples_taken(FootprintSampler::for_len(len), len);
            assert!(taken <= RunSummary::FOOTPRINT_SAMPLES, "len {len}: {taken}");
            // Short traces are sampled at every event.
            if len <= RunSummary::FOOTPRINT_SAMPLES {
                assert_eq!(taken, len, "len {len}");
            } else {
                // Long traces still get dense-enough coverage.
                assert!(
                    taken > RunSummary::FOOTPRINT_SAMPLES / 2,
                    "len {len}: {taken}"
                );
            }
        }
    }

    #[test]
    fn adaptive_stride_cost_grows_logarithmically() {
        for len in [10usize, 1_000, 50_000, 400_000] {
            let taken = samples_taken(FootprintSampler::adaptive(), len);
            // At most FOOTPRINT_SAMPLES walks per stride-doubling period.
            let periods = (len.max(1).ilog2() as usize) + 2;
            assert!(
                taken <= RunSummary::FOOTPRINT_SAMPLES * periods,
                "len {len}: {taken}"
            );
            assert!(
                taken >= len.min(RunSummary::FOOTPRINT_SAMPLES),
                "len {len}: {taken}"
            );
        }
    }

    #[test]
    fn sampler_peak_includes_final_state() {
        let mut sampler = FootprintSampler::for_len(4);
        for _ in 0..4 {
            sampler.observe(|| 10);
        }
        assert_eq!(sampler.peak(), 10);
        assert_eq!(sampler.finish(25), 25, "end-of-stream sample wins");
    }
}
