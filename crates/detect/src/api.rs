use std::fmt;

use smarttrack_trace::{Event, EventId, Trace};

use crate::{FtoCaseCounters, Report};

/// The relation computed by an analysis (Table 1 rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Relation {
    /// Happens-before (non-predictive).
    Hb,
    /// Weak-causally-precedes (sound predictive; Kini et al. 2017).
    Wcp,
    /// Doesn't-commute (high-coverage predictive; Roemer et al. 2018).
    Dc,
    /// Weak-doesn't-commute (this paper's §3: DC without rule (b)).
    Wdc,
}

impl Relation {
    /// All relations, strongest to weakest (Table 1 row order).
    pub const ALL: [Relation; 4] = [Relation::Hb, Relation::Wcp, Relation::Dc, Relation::Wdc];
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Relation::Hb => write!(f, "HB"),
            Relation::Wcp => write!(f, "WCP"),
            Relation::Dc => write!(f, "DC"),
            Relation::Wdc => write!(f, "WDC"),
        }
    }
}

/// The optimization level of an analysis (Table 1 columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// Vector-clock metadata everywhere (paper Algorithm 1).
    Unopt,
    /// FastTrack2 epochs without ownership (HB only).
    Epochs,
    /// Epoch + ownership optimizations (paper Algorithm 2).
    Fto,
    /// FTO + conflicting-critical-section optimizations (paper Algorithm 3).
    SmartTrack,
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptLevel::Unopt => write!(f, "Unopt"),
            OptLevel::Epochs => write!(f, "FT2"),
            OptLevel::Fto => write!(f, "FTO"),
            OptLevel::SmartTrack => write!(f, "ST"),
        }
    }
}

/// A dynamic race-detection analysis processing an event stream.
///
/// Detectors are deterministic: processing the same trace yields the same
/// report. They keep analyzing after detecting races (§5.1: "After the
/// analysis detects a race, it continues normally").
pub trait Detector {
    /// Short name matching the paper's tables (e.g. `"SmartTrack-DC"`).
    fn name(&self) -> &'static str;

    /// The relation this analysis computes.
    fn relation(&self) -> Relation;

    /// The optimization level of this analysis.
    fn opt_level(&self) -> OptLevel;

    /// Announces trace-level facts before processing (thread count enables
    /// sound compaction of DC rule (b) queues). Optional.
    fn prepare(&mut self, trace: &Trace) {
        let _ = trace;
    }

    /// Processes one event. `id` must be the event's index in the trace.
    fn process(&mut self, id: EventId, event: &Event);

    /// The races detected so far.
    fn report(&self) -> &Report;

    /// Approximate live metadata bytes (vector clocks, epochs, queues, CS
    /// lists, graphs). Used for the paper's memory-usage experiments.
    fn footprint_bytes(&self) -> usize;

    /// FTO case frequencies (Appendix Table 12), if this detector tracks
    /// them (FTO- and SmartTrack-based detectors do).
    fn case_counters(&self) -> Option<&FtoCaseCounters> {
        None
    }

    /// The constraint graph built during analysis, for "w/ G" variants.
    fn graph(&self) -> Option<&crate::ConstraintGraph> {
        None
    }
}

/// Summary of one full analysis run produced by [`run_detector`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Number of events processed.
    pub events: usize,
    /// Peak sampled metadata footprint in bytes.
    pub peak_footprint_bytes: usize,
}

/// Drives a detector over an entire trace, sampling metadata footprint
/// periodically to capture the peak (the memory-usage analogue of the paper's
/// maximum resident set size).
///
/// # Examples
///
/// ```
/// use smarttrack_detect::{run_detector, Detector, UnoptHb};
/// use smarttrack_trace::paper;
///
/// let mut det = UnoptHb::new();
/// let summary = run_detector(&mut det, &paper::figure2());
/// assert_eq!(summary.events, 12);
/// assert!(summary.peak_footprint_bytes > 0);
/// ```
pub fn run_detector<D: Detector + ?Sized>(detector: &mut D, trace: &Trace) -> RunSummary {
    detector.prepare(trace);
    // ~256 samples per run keeps sampling cost negligible while capturing
    // growth curves of queue- and graph-heavy analyses.
    let stride = (trace.len() / 256).max(1);
    let mut peak = 0usize;
    for (id, event) in trace.iter() {
        detector.process(id, event);
        if id.index() % stride == 0 {
            peak = peak.max(detector.footprint_bytes());
        }
    }
    peak = peak.max(detector.footprint_bytes());
    RunSummary {
        events: trace.len(),
        peak_footprint_bytes: peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Relation::Wdc.to_string(), "WDC");
        assert_eq!(OptLevel::SmartTrack.to_string(), "ST");
        assert_eq!(OptLevel::Epochs.to_string(), "FT2");
    }

    #[test]
    fn relations_ordered_strongest_first() {
        assert_eq!(Relation::ALL[0], Relation::Hb);
        assert_eq!(Relation::ALL[3], Relation::Wdc);
    }
}
