//! Constraint-graph recording for the "Unopt w/ G" analysis variants.
//!
//! Prior work (Roemer et al. 2018) "builds a constraint graph during DC
//! analysis, where nodes represent events and edges represent DC ordering
//! between events, and later uses the constraint graph to build a predicted
//! trace that exposes the race" (§2.4). Table 3 measures the extra time and
//! memory this recording costs; the `smarttrack-vindicate` crate consumes the
//! result.
//!
//! Nodes are event ids; program order is implicit (derivable from the trace),
//! so only cross-thread ordering edges are stored.

use std::fmt;

use smarttrack_trace::EventId;

/// The analysis rule that produced an edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// DC/WDC/WCP rule (a): release of an earlier conflicting critical
    /// section ordered to an access in a later one.
    RuleA,
    /// DC rule (b): release–release ordering of ordered critical sections.
    RuleB,
    /// Hard synchronization order: fork, join, or volatile access edges.
    Sync,
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeKind::RuleA => write!(f, "rule-a"),
            EdgeKind::RuleB => write!(f, "rule-b"),
            EdgeKind::Sync => write!(f, "sync"),
        }
    }
}

/// An append-only event graph of cross-thread ordering edges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConstraintGraph {
    edges: Vec<(EventId, EventId, EdgeKind)>,
}

impl ConstraintGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        ConstraintGraph::default()
    }

    /// Records the edge `from → to`.
    #[inline]
    pub fn add_edge(&mut self, from: EventId, to: EventId, kind: EdgeKind) {
        self.edges.push((from, to, kind));
    }

    /// All recorded edges in insertion order.
    pub fn edges(&self) -> &[(EventId, EventId, EdgeKind)] {
        &self.edges
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if no edges were recorded.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Approximate heap bytes (this is the memory overhead Table 3's "w/ G"
    /// columns measure).
    pub fn footprint_bytes(&self) -> usize {
        self.edges.capacity() * std::mem::size_of::<(EventId, EventId, EdgeKind)>()
    }
}

impl fmt::Display for ConstraintGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "constraint graph with {} edges", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_edges_in_order() {
        let mut g = ConstraintGraph::new();
        assert!(g.is_empty());
        g.add_edge(EventId::new(1), EventId::new(5), EdgeKind::RuleA);
        g.add_edge(EventId::new(3), EventId::new(7), EdgeKind::RuleB);
        assert_eq!(g.len(), 2);
        assert_eq!(
            g.edges()[0],
            (EventId::new(1), EventId::new(5), EdgeKind::RuleA)
        );
        assert!(g.footprint_bytes() > 0);
    }
}
