//! Per-session id interning: compacts the variable/lock/volatile id spaces
//! of an incoming event stream into dense `u32` slots at ingest.
//!
//! Every detector in this crate keeps its per-variable and per-lock
//! metadata in dense id-indexed tables (`Vec` slots, see
//! [`crate::LockVarTable`]), which is what removes per-event hashing from
//! the hot path — but dense tables are only as compact as the id space
//! they index. Traces produced by our own generators use dense first-use
//! ids already; externally recorded traces (text formats, STB files from
//! other tools) may carry arbitrary sparse ids, and a single `x4000000000`
//! would otherwise force a multi-gigabyte table. A [`Session`](crate::Session)
//! therefore interns ids once per event — one array probe in the common
//! dense case — and every lane indexes by the compact slot.
//!
//! Interning is invisible from outside the session: reports, snapshots,
//! and sink notices are *restored* to the original ids (see
//! [`Interner::restore_race`]), so session output is bit-identical to
//! driving a detector directly with [`crate::run_detector`]. Thread ids
//! are not interned: the stream validator already requires threads to be
//! introduced densely.

use std::collections::HashMap;

use smarttrack_trace::{BarrierId, CondId, Event, LockId, Op, VarId};

use crate::RaceReport;

/// Raw ids below this bound are interned through a direct-mapped table
/// (one `u32` per possible raw id, grown on demand); ids at or above it —
/// hostile or pathological streams — fall back to a hash map, bounding
/// the direct table at 4 MiB per id space.
const DIRECT_LIMIT: u32 = 1 << 20;

/// One interned id space (variables, locks, or volatiles).
#[derive(Clone, Debug)]
struct IdSpace {
    /// `raw -> slot + 1` for raw ids below [`DIRECT_LIMIT`] (0 = unseen).
    direct: Vec<u32>,
    /// `raw -> slot` for ids at or above the direct limit.
    spill: HashMap<u32, u32>,
    /// `slot -> raw`, in first-use order.
    originals: Vec<u32>,
    /// Whether every id interned so far equals its slot (the common case:
    /// generator-produced and round-tripped traces). While true, reports
    /// need no restoration at all.
    identity: bool,
}

impl Default for IdSpace {
    fn default() -> Self {
        IdSpace {
            direct: Vec::new(),
            spill: HashMap::new(),
            originals: Vec::new(),
            identity: true,
        }
    }
}

impl IdSpace {
    fn with_capacity(n: usize) -> Self {
        IdSpace {
            direct: Vec::with_capacity(n.min(DIRECT_LIMIT as usize)),
            originals: Vec::with_capacity(n),
            ..IdSpace::default()
        }
    }

    #[inline]
    fn intern(&mut self, raw: u32) -> u32 {
        if raw < DIRECT_LIMIT {
            let i = raw as usize;
            if i >= self.direct.len() {
                self.direct.resize(i + 1, 0);
            }
            let e = &mut self.direct[i];
            if *e == 0 {
                self.originals.push(raw);
                *e = self.originals.len() as u32;
                if raw as usize != self.originals.len() - 1 {
                    self.identity = false;
                }
            }
            *e - 1
        } else {
            self.identity = false;
            match self.spill.get(&raw) {
                Some(&slot) => slot,
                None => {
                    let slot = self.originals.len() as u32;
                    self.originals.push(raw);
                    self.spill.insert(raw, slot);
                    slot
                }
            }
        }
    }

    #[inline]
    fn restore(&self, slot: u32) -> u32 {
        self.originals[slot as usize]
    }

    fn heap_bytes(&self) -> usize {
        (self.direct.capacity() + self.originals.capacity()) * std::mem::size_of::<u32>()
            + self.spill.capacity() * (2 * std::mem::size_of::<u32>() + 16)
    }
}

/// The per-session interner covering the three detector-indexed id spaces.
///
/// Constructed by [`crate::Engine::open`]; pre-sized from the session's
/// [`crate::StreamHint`] (e.g. the cardinalities an STB trace header
/// declares).
#[derive(Clone, Debug, Default)]
pub(crate) struct Interner {
    vars: IdSpace,
    locks: IdSpace,
    volatiles: IdSpace,
    condvars: IdSpace,
    barriers: IdSpace,
}

impl Interner {
    /// An interner pre-sized from whatever the stream hint knows
    /// (clamped, see [`crate::StreamHint::presize`] — the hint is a claim,
    /// not a budget).
    pub fn with_hint(hint: &crate::StreamHint) -> Self {
        Interner {
            vars: IdSpace::with_capacity(crate::StreamHint::presize(hint.vars, 0)),
            locks: IdSpace::with_capacity(crate::StreamHint::presize(hint.locks, 0)),
            volatiles: IdSpace::with_capacity(crate::StreamHint::presize(hint.volatiles, 0)),
            condvars: IdSpace::with_capacity(crate::StreamHint::presize(hint.condvars, 0)),
            barriers: IdSpace::with_capacity(crate::StreamHint::presize(hint.barriers, 0)),
        }
    }

    /// Rewrites the event's id operands to their compact slots (thread ids
    /// pass through).
    #[inline]
    pub fn intern_event(&mut self, mut event: Event) -> Event {
        event.op = match event.op {
            Op::Read(x) => Op::Read(VarId::new(self.vars.intern(x.raw()))),
            Op::Write(x) => Op::Write(VarId::new(self.vars.intern(x.raw()))),
            Op::Acquire(m) => Op::Acquire(LockId::new(self.locks.intern(m.raw()))),
            Op::AcqRead(m) => Op::AcqRead(LockId::new(self.locks.intern(m.raw()))),
            Op::AcqWrite(m) => Op::AcqWrite(LockId::new(self.locks.intern(m.raw()))),
            Op::TryAcqFail(m) => Op::TryAcqFail(LockId::new(self.locks.intern(m.raw()))),
            Op::Release(m) => Op::Release(LockId::new(self.locks.intern(m.raw()))),
            Op::VolatileRead(v) => Op::VolatileRead(VarId::new(self.volatiles.intern(v.raw()))),
            Op::VolatileWrite(v) => Op::VolatileWrite(VarId::new(self.volatiles.intern(v.raw()))),
            Op::Wait(c, m) => Op::Wait(
                CondId::new(self.condvars.intern(c.raw())),
                LockId::new(self.locks.intern(m.raw())),
            ),
            Op::Notify(c) => Op::Notify(CondId::new(self.condvars.intern(c.raw()))),
            Op::NotifyAll(c) => Op::NotifyAll(CondId::new(self.condvars.intern(c.raw()))),
            Op::BarrierEnter(b) => Op::BarrierEnter(BarrierId::new(self.barriers.intern(b.raw()))),
            Op::BarrierExit(b) => Op::BarrierExit(BarrierId::new(self.barriers.intern(b.raw()))),
            other @ (Op::Fork(_) | Op::Join(_)) => other,
        };
        event
    }

    /// A copy of `race` with its variable id restored to the original
    /// (pre-interning) id.
    pub fn restore_race(&self, race: &RaceReport) -> RaceReport {
        let mut restored = race.clone();
        if !self.vars.identity {
            restored.var = VarId::new(self.vars.restore(race.var.raw()));
        }
        restored
    }

    /// Approximate heap bytes held by the interner (counted once per
    /// session, not per lane).
    pub fn heap_bytes(&self) -> usize {
        self.vars.heap_bytes()
            + self.locks.heap_bytes()
            + self.volatiles.heap_bytes()
            + self.condvars.heap_bytes()
            + self.barriers.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarttrack_clock::ThreadId;

    #[test]
    fn dense_first_use_ids_stay_identity() {
        let mut space = IdSpace::default();
        for raw in 0..100 {
            assert_eq!(space.intern(raw), raw);
        }
        assert!(space.identity);
        // Re-interning stays stable.
        assert_eq!(space.intern(42), 42);
        assert!(space.identity);
    }

    #[test]
    fn sparse_ids_compact_in_first_use_order() {
        let mut space = IdSpace::default();
        assert_eq!(space.intern(7), 0);
        assert_eq!(space.intern(3), 1);
        assert_eq!(space.intern(7), 0, "repeat hits the same slot");
        assert!(!space.identity);
        assert_eq!(space.restore(0), 7);
        assert_eq!(space.restore(1), 3);
    }

    #[test]
    fn huge_ids_spill_without_huge_tables() {
        let mut space = IdSpace::default();
        let huge = u32::MAX - 1;
        let slot = space.intern(huge);
        assert_eq!(space.intern(huge), slot);
        assert_eq!(space.restore(slot), huge);
        assert!(
            space.direct.capacity() <= DIRECT_LIMIT as usize,
            "direct table stays bounded"
        );
    }

    #[test]
    fn event_interning_covers_every_id_space() {
        let mut interner = Interner::default();
        let t = ThreadId::new(0);
        let ev = |op| Event::new(t, op);
        assert_eq!(
            interner.intern_event(ev(Op::Read(VarId::new(9)))).op,
            Op::Read(VarId::new(0))
        );
        assert_eq!(
            interner.intern_event(ev(Op::Acquire(LockId::new(5)))).op,
            Op::Acquire(LockId::new(0))
        );
        assert_eq!(
            interner
                .intern_event(ev(Op::VolatileWrite(VarId::new(9))))
                .op,
            Op::VolatileWrite(VarId::new(0)),
            "volatiles intern independently of plain variables"
        );
        // Threads pass through untouched.
        assert_eq!(
            interner.intern_event(ev(Op::Fork(ThreadId::new(3)))).op,
            Op::Fork(ThreadId::new(3))
        );
    }
}
