//! FTO-based DC/WDC analysis — paper Algorithm 2: FastTrack-Ownership's
//! epoch and ownership optimizations applied to predictive analysis, keeping
//! the per-(lock, variable) conflicting-critical-section metadata.

use smarttrack_clock::{Epoch, ReadMeta, SameEpoch, ThreadId, VectorClock};
use smarttrack_trace::{Event, EventId, Loc, LockId, Op, VarId};

use crate::common::{slot, HeldLocks, LockVarTable, ReadSectionTable};
use crate::counters::{FtoCase, FtoCaseCounters};
use crate::dc::DcClocks;
use crate::queues::{AcqEntry, DcRuleBQueues};
use crate::report::{AccessKind, RaceReport, Report};
use crate::{Detector, OptLevel, Relation};

#[derive(Clone, Debug, Default)]
struct VarState {
    write: Epoch,
    read: ReadMeta,
}

/// FTO-DC analysis (`RULE_B = true`) or FTO-WDC (`RULE_B = false`), following
/// paper Algorithm 2. Use the [`FtoDc`] / [`FtoWdc`] aliases.
///
/// Compared with unoptimized analysis, last-access metadata use epochs and
/// ownership cases; compared with SmartTrack, conflicting critical sections
/// are still tracked per (lock, variable) (`Lr_{m,x}`/`Lw_{m,x}`), where `Lr`
/// now represents critical sections containing reads *and* writes.
#[derive(Clone, Debug)]
pub struct FtoDcLike<const RULE_B: bool> {
    clocks: DcClocks,
    held: HeldLocks,
    lockvar: LockVarTable,
    read_sections: ReadSectionTable,
    queues: DcRuleBQueues,
    vars: Vec<VarState>,
    report: Report,
    counters: FtoCaseCounters,
}

/// FTO-DC analysis (paper Algorithm 2).
pub type FtoDc = FtoDcLike<true>;
/// FTO-WDC analysis (Algorithm 2 minus rule (b): remove its lines 2 and 5–9).
pub type FtoWdc = FtoDcLike<false>;

impl<const RULE_B: bool> Default for FtoDcLike<RULE_B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const RULE_B: bool> FtoDcLike<RULE_B> {
    /// Creates the analysis with empty state.
    pub fn new() -> Self {
        FtoDcLike {
            clocks: DcClocks::new(),
            held: HeldLocks::new(),
            lockvar: LockVarTable::new(false),
            read_sections: ReadSectionTable::new(false),
            queues: DcRuleBQueues::new(),
            vars: Vec::new(),
            report: Report::new(),
            counters: FtoCaseCounters::new(),
        }
    }

    /// Diagnostic view of the current clock of `t` (for tests).
    pub fn thread_clock(&self, t: ThreadId) -> &VectorClock {
        self.clocks.clock_ref(t)
    }

    /// Rule (a) joins (Algorithm 2 lines 16–19 / 29–31). At writes, joins
    /// `Lr ⊔ Lw` and marks both sets; at reads, joins `Lw` and marks `Rm`
    /// (which in FTO represents reads-and-writes).
    /// Rwlock gating: prior *read-mode* section times apply only when the
    /// current hold is write-mode (read/read section pairs never conflict).
    fn rule_a(&mut self, t: ThreadId, x: VarId, now: &mut VectorClock, write: bool) {
        for &(m, held_write) in self.held.of(t) {
            if write {
                if let Some(lt) = self.lockvar.read_time(m, x) {
                    now.join(&lt.clock);
                }
            }
            if let Some(lt) = self.lockvar.write_time(m, x) {
                now.join(&lt.clock);
            }
            if !self.read_sections.is_empty() && held_write {
                if write {
                    if let Some(lt) = self.read_sections.read_time(m, x) {
                        now.join(&lt.clock);
                    }
                }
                if let Some(lt) = self.read_sections.write_time(m, x) {
                    now.join(&lt.clock);
                }
            }
            if held_write {
                self.lockvar.mark_read(m, x);
                if write {
                    self.lockvar.mark_write(m, x);
                }
            } else {
                self.read_sections.mark_read(t, m, x);
                if write {
                    self.read_sections.mark_write(t, m, x);
                }
            }
        }
    }

    fn write(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let e = Epoch::new(t, self.clocks.local(t));
        if slot(&mut self.vars, x.index()).write == e {
            self.counters.hit(FtoCase::WriteSameEpoch);
            return;
        }
        let mut now = self.clocks.clock_ref(t).clone();
        self.rule_a(t, x, &mut now, true);
        let vs = slot(&mut self.vars, x.index());
        let mut prior: Vec<ThreadId> = Vec::new();
        match &vs.read {
            ReadMeta::Epoch(r) if r.is_owned_by(t) => {
                self.counters.hit(FtoCase::WriteOwned);
            }
            ReadMeta::Epoch(r) => {
                self.counters.hit(FtoCase::WriteExclusive);
                if !r.leq_vc(&now) {
                    prior.push(r.tid());
                }
            }
            ReadMeta::Vc(vc) => {
                self.counters.hit(FtoCase::WriteShared);
                for (u, c) in vc.iter_nonzero() {
                    if c > now.get(u) {
                        prior.push(u);
                    }
                }
            }
        }
        vs.write = e;
        vs.read = ReadMeta::Epoch(e);
        self.clocks.clock(t).assign(&now);
        if !prior.is_empty() {
            self.report.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Write,
                prior_threads: prior,
            });
        }
    }

    fn read(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let e = Epoch::new(t, self.clocks.local(t));
        match slot(&mut self.vars, x.index())
            .read
            .same_epoch(t, e.clock())
        {
            Some(SameEpoch::Exclusive) => {
                self.counters.hit(FtoCase::ReadSameEpoch);
                return;
            }
            Some(SameEpoch::Shared) => {
                self.counters.hit(FtoCase::SharedSameEpoch);
                return;
            }
            None => {}
        }
        let mut now = self.clocks.clock_ref(t).clone();
        self.rule_a(t, x, &mut now, false);
        let vs = slot(&mut self.vars, x.index());
        let mut race_with_write = false;
        match &mut vs.read {
            ReadMeta::Epoch(r) if r.is_owned_by(t) => {
                self.counters.hit(FtoCase::ReadOwned);
                vs.read = ReadMeta::Epoch(e);
            }
            ReadMeta::Epoch(r) => {
                if r.leq_vc(&now) {
                    self.counters.hit(FtoCase::ReadExclusive);
                    vs.read = ReadMeta::Epoch(e);
                } else {
                    self.counters.hit(FtoCase::ReadShare);
                    race_with_write = !vs.write.leq_vc(&now);
                    vs.read.share(e);
                }
            }
            ReadMeta::Vc(vc) => {
                if vc.get(t) != 0 {
                    self.counters.hit(FtoCase::ReadSharedOwned);
                    vc.set(t, e.clock());
                } else {
                    self.counters.hit(FtoCase::ReadShared);
                    race_with_write = !vs.write.leq_vc(&now);
                    vc.set(t, e.clock());
                }
            }
        }
        let write_tid = (!vs.write.is_none()).then(|| vs.write.tid());
        self.clocks.clock(t).assign(&now);
        if race_with_write {
            self.report.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Read,
                prior_threads: write_tid.into_iter().collect(),
            });
        }
    }

    fn acquire(&mut self, t: ThreadId, m: LockId) {
        if RULE_B {
            let entry = AcqEntry::Vc(self.clocks.clock(t).clone());
            self.queues.on_acquire(m, t, &entry, true);
        }
        self.held.acquire(t, m);
        self.clocks.increment(t);
    }

    fn acquire_read(&mut self, t: ThreadId, m: LockId) {
        if RULE_B {
            let entry = AcqEntry::Vc(self.clocks.clock(t).clone());
            self.queues.on_acquire(m, t, &entry, false);
        }
        self.held.acquire_read(t, m);
        self.read_sections.open(t, m);
        self.clocks.increment(t);
    }

    fn release(&mut self, id: EventId, t: ThreadId, m: LockId) {
        let write_mode = self.held.release(t, m);
        let mut now = self.clocks.clock(t).clone();
        if RULE_B {
            self.queues
                .on_release(m, t, &mut now, id, write_mode, |_| {});
        }
        if write_mode {
            self.lockvar.on_release(t, m, &now, id);
        } else {
            self.read_sections.close(t, m, &now, id);
        }
        self.clocks.clock(t).assign(&now);
        self.clocks.increment(t);
    }
}

impl<const RULE_B: bool> Detector for FtoDcLike<RULE_B> {
    fn name(&self) -> &'static str {
        if RULE_B {
            "FTO-DC"
        } else {
            "FTO-WDC"
        }
    }

    fn relation(&self) -> Relation {
        if RULE_B {
            Relation::Dc
        } else {
            Relation::Wdc
        }
    }

    fn opt_level(&self) -> OptLevel {
        OptLevel::Fto
    }

    fn begin_stream(&mut self, hint: crate::StreamHint) {
        if RULE_B {
            if let Some(threads) = hint.threads {
                self.queues.set_thread_bound(threads);
            }
        }
        self.clocks.reserve(hint.threads, hint.volatiles);
        if let Some(locks) = hint.locks {
            self.lockvar.reserve_locks(locks);
        }
        self.vars
            .reserve(crate::StreamHint::presize(hint.vars, self.vars.len()));
    }

    fn process(&mut self, id: EventId, event: &Event) {
        let t = event.tid;
        match event.op {
            Op::Read(x) => self.read(id, t, x, event.loc),
            Op::Write(x) => self.write(id, t, x, event.loc),
            Op::Acquire(m) | Op::AcqWrite(m) => self.acquire(t, m),
            Op::AcqRead(m) => self.acquire_read(t, m),
            Op::Release(m) => self.release(id, t, m),
            // A failed trylock establishes no ordering in any direction.
            Op::TryAcqFail(_) => {}
            Op::Fork(u) => self.clocks.fork(t, u),
            Op::Join(u) => self.clocks.join(t, u),
            Op::VolatileRead(v) => self.clocks.volatile_read(t, v),
            Op::VolatileWrite(v) => self.clocks.volatile_write(t, v),
            Op::Wait(c, m) => {
                // Wait is an atomic release-and-reacquire of the monitor
                // with the condvar hard edge in between, composed from this
                // detector's own release/acquire machinery (rule (a)/(b)
                // bookkeeping runs exactly as for explicit rel/acq).
                self.release(id, t, m);
                self.clocks.wait_absorb(t, c);
                self.acquire(t, m);
            }
            Op::Notify(c) | Op::NotifyAll(c) => self.clocks.notify(t, c),
            Op::BarrierEnter(b) => self.clocks.barrier_enter(t, b),
            Op::BarrierExit(b) => self.clocks.barrier_exit(t, b),
        }
    }

    fn report(&self) -> &Report {
        &self.report
    }

    fn footprint_bytes(&self) -> usize {
        self.clocks.footprint_bytes()
            + self.held.footprint_bytes()
            + self.lockvar.footprint_bytes()
            + self.read_sections.footprint_bytes()
            + self.queues.footprint_bytes()
            + self.vars.capacity() * std::mem::size_of::<VarState>()
            + self
                .vars
                .iter()
                .map(|v| v.read.footprint_bytes())
                .sum::<usize>()
            + self.report.footprint_bytes()
    }

    fn state_bytes(&self) -> usize {
        self.clocks.resident_bytes()
            + self.held.footprint_bytes()
            + self.lockvar.resident_bytes()
            + self.read_sections.resident_bytes()
            + self.queues.resident_bytes()
            + self.vars.capacity() * std::mem::size_of::<VarState>()
            + self.report.footprint_bytes()
    }

    fn case_counters(&self) -> Option<&FtoCaseCounters> {
        Some(&self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_detector, UnoptDc, UnoptWdc};
    use smarttrack_trace::{gen::RandomTraceSpec, paper, Trace};

    fn first_race<D: Detector>(mut det: D, tr: &Trace) -> Option<EventId> {
        run_detector(&mut det, tr);
        det.report().first_race_event()
    }

    #[test]
    fn figures_match_unopt() {
        for (name, tr) in paper::all_figures() {
            assert_eq!(
                first_race(FtoDc::new(), &tr),
                first_race(UnoptDc::new(), &tr),
                "FTO-DC vs Unopt-DC on {name}"
            );
            assert_eq!(
                first_race(FtoWdc::new(), &tr),
                first_race(UnoptWdc::new(), &tr),
                "FTO-WDC vs Unopt-WDC on {name}"
            );
        }
    }

    #[test]
    fn figure3_split_between_dc_and_wdc() {
        let tr = paper::figure3();
        assert_eq!(first_race(FtoDc::new(), &tr), None);
        assert!(first_race(FtoWdc::new(), &tr).is_some());
    }

    #[test]
    fn random_traces_first_race_matches_unopt() {
        for seed in 0..60 {
            let tr = RandomTraceSpec {
                events: 300,
                threads: 3,
                vars: 6,
                locks: 3,
                ..RandomTraceSpec::default()
            }
            .generate(seed);
            assert_eq!(
                first_race(FtoDc::new(), &tr),
                first_race(UnoptDc::new(), &tr),
                "DC seed {seed}"
            );
            assert_eq!(
                first_race(FtoWdc::new(), &tr),
                first_race(UnoptWdc::new(), &tr),
                "WDC seed {seed}"
            );
        }
    }

    #[test]
    fn rwlock_traces_first_race_matches_unopt() {
        for seed in 0..120 {
            let tr = RandomTraceSpec::tiny_rw().generate(seed);
            assert_eq!(
                first_race(FtoDc::new(), &tr),
                first_race(UnoptDc::new(), &tr),
                "DC seed {seed}"
            );
            assert_eq!(
                first_race(FtoWdc::new(), &tr),
                first_race(UnoptWdc::new(), &tr),
                "WDC seed {seed}"
            );
        }
    }

    #[test]
    fn counters_cover_nse_accesses() {
        let tr = RandomTraceSpec::default().generate(11);
        let mut det = FtoDc::new();
        run_detector(&mut det, &tr);
        let c = det.case_counters().unwrap();
        assert!(c.nse_reads() + c.nse_writes() > 0);
    }
}
