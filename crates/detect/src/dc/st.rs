//! SmartTrack-based DC/WDC analysis — paper Algorithm 3: FTO plus the
//! conflicting-critical-section (CCS) optimizations.
//!
//! Instead of per-(lock, variable) tables, each variable carries CS lists
//! (`Lwx`, `Lrx`) that mirror its last-access metadata, plus "extra" fall-back
//! metadata (`Ewx`, `Erx`) for critical sections the CS lists can no longer
//! represent. Rule (b) acquire queues shrink from vector clocks to epochs.

use smarttrack_clock::{Epoch, ReadMeta, SameEpoch, ThreadId, VectorClock};
use smarttrack_trace::{Event, EventId, Loc, LockId, Op, VarId};

use crate::ccs::{
    multi_check, release_clock_bytes, stash_residual, CcsFidelity, CsEntry, CsList, Extras, LrMeta,
    PtrSet,
};
use crate::common::slot;
use crate::counters::{FtoCase, FtoCaseCounters};
use crate::dc::DcClocks;
use crate::queues::{AcqEntry, DcRuleBQueues};
use crate::report::{AccessKind, RaceReport, Report};
use crate::{Detector, OptLevel, Relation};

#[derive(Clone, Debug, Default)]
struct StVar {
    write: Epoch,
    read: ReadMeta,
    /// `Lwx`: CS list of the last write.
    lw: Option<CsList>,
    /// `Lrx`: CS list(s) of the last read(s)/write.
    lr: LrMeta,
    /// `Erx`/`Ewx`, allocated lazily (empty "in most cases", §4.2).
    extras: Option<Box<Extras>>,
}

/// SmartTrack-DC analysis (`RULE_B = true`) or SmartTrack-WDC
/// (`RULE_B = false`), following paper Algorithm 3. Use the [`SmartTrackDc`]
/// / [`SmartTrackWdc`] aliases.
///
/// # Examples
///
/// ```
/// use smarttrack_detect::{run_detector, Detector, SmartTrackWdc};
/// use smarttrack_trace::paper;
///
/// let mut det = SmartTrackWdc::new();
/// run_detector(&mut det, &paper::figure3());
/// assert_eq!(det.report().dynamic_count(), 1, "figure 3 is a WDC-race");
/// ```
#[derive(Clone, Debug)]
pub struct SmartTrackDcLike<const RULE_B: bool> {
    clocks: DcClocks,
    /// `Ht` per thread: active critical sections, outermost first.
    ht: Vec<Vec<CsEntry>>,
    /// Cached shared snapshot of `Ht` per thread, invalidated at
    /// acquire/release (makes `Lrx ← Ht` an O(1) reference copy, the paper's
    /// shared-structure CS list).
    ht_cache: Vec<Option<CsList>>,
    /// Held-lock view derived from `ht` (reused buffer).
    queues: DcRuleBQueues,
    vars: Vec<StVar>,
    report: Report,
    counters: FtoCaseCounters,
    fidelity: CcsFidelity,
}

/// SmartTrack-DC analysis (paper Algorithm 3).
pub type SmartTrackDc = SmartTrackDcLike<true>;
/// SmartTrack-WDC analysis (Algorithm 3 minus rule (b): remove its lines 2
/// and 8–12).
pub type SmartTrackWdc = SmartTrackDcLike<false>;

impl<const RULE_B: bool> Default for SmartTrackDcLike<RULE_B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const RULE_B: bool> SmartTrackDcLike<RULE_B> {
    /// Creates the analysis in [`CcsFidelity::Strict`] mode.
    pub fn new() -> Self {
        Self::with_fidelity(CcsFidelity::Strict)
    }

    /// Creates the analysis with an explicit CCS fidelity mode.
    pub fn with_fidelity(fidelity: CcsFidelity) -> Self {
        SmartTrackDcLike {
            clocks: DcClocks::new(),
            ht: Vec::new(),
            ht_cache: Vec::new(),
            queues: DcRuleBQueues::new(),
            vars: Vec::new(),
            report: Report::new(),
            counters: FtoCaseCounters::new(),
            fidelity,
        }
    }

    /// Diagnostic view of the current clock of `t` (for tests).
    pub fn thread_clock(&self, t: ThreadId) -> &VectorClock {
        self.clocks.clock_ref(t)
    }

    fn held_of(ht: &[Vec<CsEntry>], t: ThreadId) -> Vec<(LockId, bool)> {
        ht.get(t.index())
            .map(|l| l.iter().map(|e| (e.lock, e.write)).collect())
            .unwrap_or_default()
    }

    /// `Ht` as a shared CS list (cached; rebuilding only after lock
    /// operations).
    fn snapshot_ht(&mut self, t: ThreadId) -> CsList {
        let cache = slot(&mut self.ht_cache, t.index());
        if cache.is_none() {
            *cache = Some(CsList::from_entries(
                t,
                self.ht.get(t.index()).cloned().unwrap_or_default(),
            ));
        }
        cache.clone().expect("just filled")
    }

    fn dc_epoch_check(e: Epoch, vc: &VectorClock) -> bool {
        e.leq_vc(vc)
    }

    fn acquire(&mut self, t: ThreadId, m: LockId) {
        if RULE_B {
            let local = self.clocks.clock(t).get(t);
            self.queues.on_acquire(m, t, &AcqEntry::Epoch(local), true);
        }
        slot(&mut self.ht, t.index()).push(CsEntry::pending(m, t));
        *slot(&mut self.ht_cache, t.index()) = None;
        self.clocks.increment(t);
    }

    fn acquire_read(&mut self, t: ThreadId, m: LockId) {
        if RULE_B {
            let local = self.clocks.clock(t).get(t);
            self.queues.on_acquire(m, t, &AcqEntry::Epoch(local), false);
        }
        slot(&mut self.ht, t.index()).push(CsEntry::pending_read(m, t));
        *slot(&mut self.ht_cache, t.index()) = None;
        self.clocks.increment(t);
    }

    fn release(&mut self, id: EventId, t: ThreadId, m: LockId) {
        // Pop the innermost section on `m` first — its mode gates the
        // rule (b) consumption; searched from the innermost end to tolerate
        // non-LIFO unlocking.
        *slot(&mut self.ht_cache, t.index()) = None;
        let stack = slot(&mut self.ht, t.index());
        let entry = stack
            .iter()
            .rposition(|e| e.lock == m)
            .map(|pos| stack.remove(pos));
        let write_mode = entry.as_ref().is_none_or(|e| e.write);
        let mut now = self.clocks.clock(t).clone();
        if RULE_B {
            self.queues
                .on_release(m, t, &mut now, id, write_mode, |_| {});
        }
        // Resolve the deferred release time (Algorithm 3 lines 13–15).
        if let Some(entry) = entry {
            *entry.release.borrow_mut() = now.clone();
        }
        self.clocks.clock(t).assign(&now);
        self.clocks.increment(t);
    }

    /// Absorbs and clears extra metadata at a write (Algorithm 3 lines
    /// 19–23). In `Strict` mode, write-side extras for held locks are
    /// absorbed as well (see DESIGN.md §5).
    fn absorb_extras_at_write(&mut self, t: ThreadId, x: VarId, now: &mut VectorClock) {
        if self.vars[x.index()].extras.is_none() {
            return;
        }
        let held = Self::held_of(&self.ht, t);
        let strict = self.fidelity == CcsFidelity::Strict;
        let Some(ex) = self.vars[x.index()].extras.as_mut() else {
            return;
        };
        let er_nonempty = !ex.read.is_empty();
        let ew_nonempty = !ex.write.is_empty();
        if !(er_nonempty || (strict && ew_nonempty)) {
            return;
        }
        for &(m, held_write) in &held {
            for (u, map) in ex.read.iter() {
                if u != t {
                    for rc in map.conflicting(m, held_write) {
                        now.join(&rc.borrow());
                    }
                }
            }
            if strict {
                for (u, map) in ex.write.iter() {
                    if u != t {
                        for rc in map.conflicting(m, held_write) {
                            now.join(&rc.borrow());
                        }
                    }
                }
            }
            for (u, map) in ex.read.iter_mut() {
                if u != t {
                    map.remove_conflicting(m, held_write);
                }
            }
            for (u, map) in ex.write.iter_mut() {
                if u != t {
                    map.remove_conflicting(m, held_write);
                }
            }
        }
        ex.read.remove_thread(t);
        ex.write.remove_thread(t);
        if ex.is_empty() {
            self.vars[x.index()].extras = None;
        }
    }

    /// Absorbs write-side extra metadata at a read (Algorithm 3 lines 4–6).
    fn absorb_extras_at_read(&mut self, t: ThreadId, x: VarId, now: &mut VectorClock) {
        if self.vars[x.index()].extras.is_none() {
            return;
        }
        let held = Self::held_of(&self.ht, t);
        let Some(ex) = self.vars[x.index()].extras.as_ref() else {
            return;
        };
        if ex.write.is_empty() {
            return;
        }
        for &(m, held_write) in &held {
            for (u, map) in ex.write.iter() {
                if u != t {
                    for rc in map.conflicting(m, held_write) {
                        now.join(&rc.borrow());
                    }
                }
            }
        }
    }

    fn write(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let e = Epoch::new(t, self.clocks.local(t));
        slot(&mut self.vars, x.index());
        if self.vars[x.index()].write == e {
            self.counters.hit(FtoCase::WriteSameEpoch);
            return;
        }
        let mut now = self.clocks.clock_ref(t).clone();
        self.absorb_extras_at_write(t, x, &mut now);
        let held = Self::held_of(&self.ht, t);
        let fidelity = self.fidelity;
        let snapshot = self.snapshot_ht(t);
        let vs = &mut self.vars[x.index()];
        let mut prior: Vec<ThreadId> = Vec::new();

        match &vs.read {
            ReadMeta::Epoch(r) if r.is_owned_by(t) => {
                self.counters.hit(FtoCase::WriteOwned);
            }
            ReadMeta::Epoch(r) if r.is_none() => {
                // First access to x: nothing to check ([Write Exclusive]
                // with Rx = ⊥ₑ, which is ordered before everything).
                self.counters.hit(FtoCase::WriteExclusive);
            }
            ReadMeta::Epoch(r) => {
                self.counters.hit(FtoCase::WriteExclusive);
                let u = r.tid();
                let lr = match &vs.lr {
                    LrMeta::Single(l) => l.as_ref(),
                    LrMeta::PerThread(_) => unreachable!("epoch Rx implies single Lrx"),
                };
                let (residual, raced) = multi_check(&mut now, &held, lr, *r, Self::dc_epoch_check);
                if raced {
                    prior.push(u);
                }
                if !residual.is_empty() {
                    let ex = vs.extras.get_or_insert_with(Default::default);
                    stash_residual(&mut ex.read, u, residual, fidelity);
                    if vs.lw.as_ref().is_some_and(|l| l.owner == u) {
                        let (wres, _) = multi_check(
                            &mut now,
                            &held,
                            vs.lw.as_ref(),
                            Epoch::NONE,
                            Self::dc_epoch_check,
                        );
                        let ex = vs.extras.get_or_insert_with(Default::default);
                        stash_residual(&mut ex.write, u, wres, fidelity);
                    }
                }
            }
            ReadMeta::Vc(rvc) => {
                self.counters.hit(FtoCase::WriteShared);
                let rvc = rvc.clone();
                for (u, c) in rvc.iter_nonzero() {
                    if u == t {
                        continue;
                    }
                    let lr = vs.lr.of(u);
                    let (residual, raced) =
                        multi_check(&mut now, &held, lr, Epoch::new(u, c), Self::dc_epoch_check);
                    if raced {
                        prior.push(u);
                    }
                    if !residual.is_empty() {
                        let ex = vs.extras.get_or_insert_with(Default::default);
                        stash_residual(&mut ex.read, u, residual, fidelity);
                        if vs.lw.as_ref().is_some_and(|l| l.owner == u) {
                            let (wres, _) = multi_check(
                                &mut now,
                                &held,
                                vs.lw.as_ref(),
                                Epoch::NONE,
                                Self::dc_epoch_check,
                            );
                            let ex = vs.extras.get_or_insert_with(Default::default);
                            stash_residual(&mut ex.write, u, wres, fidelity);
                        }
                    }
                }
            }
        }

        // Lines 36–37: Lwx ← Lrx ← Ht; Wx ← Rx ← Ct(t).
        vs.lw = Some(snapshot.clone());
        vs.lr = LrMeta::Single(Some(snapshot));
        vs.write = e;
        vs.read = ReadMeta::Epoch(e);
        self.clocks.clock(t).assign(&now);
        if !prior.is_empty() {
            self.report.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Write,
                prior_threads: prior,
            });
        }
    }

    fn read(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let e = Epoch::new(t, self.clocks.local(t));
        slot(&mut self.vars, x.index());
        match self.vars[x.index()].read.same_epoch(t, e.clock()) {
            Some(SameEpoch::Exclusive) => {
                self.counters.hit(FtoCase::ReadSameEpoch);
                return;
            }
            Some(SameEpoch::Shared) => {
                self.counters.hit(FtoCase::SharedSameEpoch);
                return;
            }
            None => {}
        }
        let mut now = self.clocks.clock_ref(t).clone();
        self.absorb_extras_at_read(t, x, &mut now);
        let held = Self::held_of(&self.ht, t);
        let strict = self.fidelity == CcsFidelity::Strict;
        let snapshot = self.snapshot_ht(t);
        let vs = &mut self.vars[x.index()];
        let mut raced_with_write = false;

        match &mut vs.read {
            ReadMeta::Epoch(r) if r.is_owned_by(t) => {
                self.counters.hit(FtoCase::ReadOwned);
                vs.lr = LrMeta::Single(Some(snapshot));
                vs.read = ReadMeta::Epoch(e);
            }
            ReadMeta::Epoch(r) if r.is_none() => {
                // First access to x: trivially ordered ([Read Exclusive]).
                self.counters.hit(FtoCase::ReadExclusive);
                vs.lr = LrMeta::Single(Some(snapshot));
                vs.read = ReadMeta::Epoch(e);
            }
            ReadMeta::Epoch(r) => {
                let u = r.tid();
                // Line 11: the outermost release of the prior access's CS
                // list, or Rx itself if the list is empty.
                let lr_list = match &vs.lr {
                    LrMeta::Single(l) => l.as_ref(),
                    LrMeta::PerThread(_) => unreachable!("epoch Rx implies single Lrx"),
                };
                let ordered = match lr_list.and_then(CsList::outermost) {
                    Some(outer) => outer.release.borrow().get(u) <= now.get(u),
                    None => r.leq_vc(&now),
                };
                if ordered {
                    self.counters.hit(FtoCase::ReadExclusive);
                    vs.lr = LrMeta::Single(Some(snapshot));
                    vs.read = ReadMeta::Epoch(e);
                } else {
                    self.counters.hit(FtoCase::ReadShare);
                    let (_, raced) = multi_check(
                        &mut now,
                        &held,
                        vs.lw.as_ref(),
                        vs.write,
                        Self::dc_epoch_check,
                    );
                    raced_with_write = raced;
                    let old = match std::mem::take(&mut vs.lr) {
                        LrMeta::Single(l) => l.unwrap_or_else(|| CsList::empty(u)),
                        LrMeta::PerThread(_) => unreachable!(),
                    };
                    vs.lr = LrMeta::PerThread(vec![(u, old), (t, snapshot)]);
                    vs.read.share(e);
                }
            }
            ReadMeta::Vc(rvc) => {
                if rvc.get(t) != 0 {
                    self.counters.hit(FtoCase::ReadSharedOwned);
                    // Strict refinement: keep rule (a) ordering from the last
                    // write's critical sections (join-only, no race check).
                    if strict && vs.lw.as_ref().is_some_and(|l| l.owner != t) {
                        let _ = multi_check(
                            &mut now,
                            &held,
                            vs.lw.as_ref(),
                            Epoch::NONE,
                            Self::dc_epoch_check,
                        );
                    }
                    rvc.set(t, e.clock());
                } else {
                    self.counters.hit(FtoCase::ReadShared);
                    let write = vs.write;
                    let (_, raced) =
                        multi_check(&mut now, &held, vs.lw.as_ref(), write, Self::dc_epoch_check);
                    raced_with_write = raced;
                    if let ReadMeta::Vc(rvc) = &mut vs.read {
                        rvc.set(t, e.clock());
                    }
                }
                vs.lr.set(t, snapshot);
            }
        }
        let write_tid = (!vs.write.is_none()).then(|| vs.write.tid());
        self.clocks.clock(t).assign(&now);
        if raced_with_write {
            self.report.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Read,
                prior_threads: write_tid.into_iter().collect(),
            });
        }
    }
}

impl<const RULE_B: bool> Detector for SmartTrackDcLike<RULE_B> {
    fn name(&self) -> &'static str {
        if RULE_B {
            "SmartTrack-DC"
        } else {
            "SmartTrack-WDC"
        }
    }

    fn relation(&self) -> Relation {
        if RULE_B {
            Relation::Dc
        } else {
            Relation::Wdc
        }
    }

    fn opt_level(&self) -> OptLevel {
        OptLevel::SmartTrack
    }

    fn begin_stream(&mut self, hint: crate::StreamHint) {
        if RULE_B {
            if let Some(threads) = hint.threads {
                self.queues.set_thread_bound(threads);
            }
        }
        self.clocks.reserve(hint.threads, hint.volatiles);
        self.vars
            .reserve(crate::StreamHint::presize(hint.vars, self.vars.len()));
        self.ht
            .reserve(crate::StreamHint::presize(hint.threads, self.ht.len()));
        self.ht_cache.reserve(crate::StreamHint::presize(
            hint.threads,
            self.ht_cache.len(),
        ));
    }

    fn process(&mut self, id: EventId, event: &Event) {
        let t = event.tid;
        match event.op {
            Op::Read(x) => self.read(id, t, x, event.loc),
            Op::Write(x) => self.write(id, t, x, event.loc),
            Op::Acquire(m) | Op::AcqWrite(m) => self.acquire(t, m),
            Op::AcqRead(m) => self.acquire_read(t, m),
            Op::Release(m) => self.release(id, t, m),
            // A failed trylock establishes no ordering in any direction.
            Op::TryAcqFail(_) => {}
            Op::Fork(u) => self.clocks.fork(t, u),
            Op::Join(u) => self.clocks.join(t, u),
            Op::VolatileRead(v) => self.clocks.volatile_read(t, v),
            Op::VolatileWrite(v) => self.clocks.volatile_write(t, v),
            Op::Wait(c, m) => {
                // Wait is an atomic release-and-reacquire of the monitor
                // with the condvar hard edge in between, composed from this
                // detector's own release/acquire machinery (rule (a)/(b)
                // bookkeeping runs exactly as for explicit rel/acq).
                self.release(id, t, m);
                self.clocks.wait_absorb(t, c);
                self.acquire(t, m);
            }
            Op::Notify(c) | Op::NotifyAll(c) => self.clocks.notify(t, c),
            Op::BarrierEnter(b) => self.clocks.barrier_enter(t, b),
            Op::BarrierExit(b) => self.clocks.barrier_exit(t, b),
        }
    }

    fn report(&self) -> &Report {
        &self.report
    }

    fn footprint_bytes(&self) -> usize {
        let mut seen = PtrSet::default();
        let mut bytes = self.clocks.footprint_bytes()
            + self.queues.footprint_bytes()
            + self.report.footprint_bytes();
        for stack in &self.ht {
            for e in stack {
                bytes += release_clock_bytes(&e.release, &mut seen);
            }
            bytes += stack.capacity() * std::mem::size_of::<CsEntry>();
        }
        let mut list_vecs = PtrSet::default();
        let mut list_bytes = |l: &CsList, seen: &mut PtrSet| {
            let mut b = std::mem::size_of::<CsList>();
            if list_vecs.insert(std::rc::Rc::as_ptr(&l.entries) as usize) {
                b += l.entries.capacity() * std::mem::size_of::<CsEntry>();
                for e in l.entries.iter() {
                    b += release_clock_bytes(&e.release, seen);
                }
            }
            b
        };
        bytes += self.vars.capacity() * std::mem::size_of::<StVar>();
        for v in &self.vars {
            bytes += v.read.footprint_bytes();
            if let Some(l) = &v.lw {
                bytes += list_bytes(l, &mut seen);
            }
            match &v.lr {
                LrMeta::Single(Some(l)) => bytes += list_bytes(l, &mut seen),
                LrMeta::PerThread(map) => {
                    for (_, l) in map {
                        bytes += list_bytes(l, &mut seen);
                    }
                }
                LrMeta::Single(None) => {}
            }
            if let Some(ex) = &v.extras {
                for side in [&ex.read, &ex.write] {
                    for (_, map) in side.iter() {
                        for rc in map.clocks() {
                            bytes += release_clock_bytes(rc, &mut seen);
                        }
                    }
                    bytes += side.heap_bytes();
                }
            }
        }
        bytes
    }

    fn state_bytes(&self) -> usize {
        // Cheap running estimate: table capacities only. The Rc-shared CS
        // lists hanging off `vars` are deduplicated by the exact
        // `footprint_bytes` walk at stream end.
        self.clocks.resident_bytes()
            + self.queues.resident_bytes()
            + self.report.footprint_bytes()
            + self
                .ht
                .iter()
                .map(|s| s.capacity() * std::mem::size_of::<CsEntry>())
                .sum::<usize>()
            + self.vars.capacity() * std::mem::size_of::<StVar>()
    }

    fn case_counters(&self) -> Option<&FtoCaseCounters> {
        Some(&self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_detector, FtoDc, FtoWdc, UnoptDc};
    use smarttrack_trace::{gen::RandomTraceSpec, paper, Trace};

    fn first_race<D: Detector>(mut det: D, tr: &Trace) -> Option<EventId> {
        run_detector(&mut det, tr);
        det.report().first_race_event()
    }

    #[test]
    fn figures_match_fto() {
        for (name, tr) in paper::all_figures() {
            assert_eq!(
                first_race(SmartTrackDc::new(), &tr),
                first_race(FtoDc::new(), &tr),
                "ST-DC vs FTO-DC on {name}"
            );
            assert_eq!(
                first_race(SmartTrackWdc::new(), &tr),
                first_race(FtoWdc::new(), &tr),
                "ST-WDC vs FTO-WDC on {name}"
            );
        }
    }

    #[test]
    fn figure4a_takes_read_share_and_write_shared() {
        let mut det = SmartTrackDc::new();
        run_detector(&mut det, &paper::figure4a());
        assert!(det.report().is_empty());
        let c = det.case_counters().unwrap();
        // [Read Share]: T2's rd(x) (the paper's narrative), plus T3's
        // rd(oVar) — DC has no release→acquire edges, so the line-11
        // ordering check fails before the CCS join happens. This is exactly
        // the "[Read Share] where FTO-DC would take [Read Exclusive]"
        // behaviour of §4.2.
        assert_eq!(c.count(FtoCase::ReadShare), 2);
        // [Write Shared]: T3's wr(x) plus T3's wr(oVar) after the shared read.
        assert_eq!(c.count(FtoCase::WriteShared), 2);
    }

    #[test]
    fn figure4a_fto_takes_read_exclusive_instead() {
        let mut det = FtoDc::new();
        run_detector(&mut det, &paper::figure4a());
        let c = det.case_counters().unwrap();
        assert_eq!(
            c.count(FtoCase::ReadShare),
            0,
            "FTO-DC takes [Read Exclusive] where SmartTrack takes [Read Share]"
        );
        assert_eq!(
            c.count(FtoCase::WriteShared),
            0,
            "without [Read Share], FTO-DC's Rx stays an epoch at T3's write"
        );
    }

    #[test]
    fn figure4b_read_share_preserves_needed_ordering() {
        // Missing the rel(m)ᵀ¹ → wr(x)ᵀ³ ordering would be visible in T3's
        // clock after its write.
        let tr = paper::figure4b();
        let mut det = SmartTrackDc::new();
        run_detector(&mut det, &tr);
        assert!(det.report().is_empty());
        // T1 executed 11 events: acq, rd, 4×sync(o), rel(m); its release of m
        // was its last clock increment. T3's clock must have absorbed it.
        let mut unopt = UnoptDc::new();
        run_detector(&mut unopt, &tr);
        let t3 = ThreadId::new(2);
        let t1 = ThreadId::new(0);
        assert_eq!(
            det.thread_clock(t3).get(t1),
            unopt.thread_clock(t3).get(t1),
            "SmartTrack must track the same T1-knowledge as Unopt at T3"
        );
    }

    #[test]
    fn figure4c_and_4d_extras_preserve_ordering() {
        for (name, tr) in [("4c", paper::figure4c()), ("4d", paper::figure4d())] {
            let mut det = SmartTrackDc::new();
            run_detector(&mut det, &tr);
            assert!(det.report().is_empty(), "figure {name}");
            let mut unopt = UnoptDc::new();
            run_detector(&mut unopt, &tr);
            let t3 = ThreadId::new(2);
            let t1 = ThreadId::new(0);
            assert_eq!(
                det.thread_clock(t3).get(t1),
                unopt.thread_clock(t3).get(t1),
                "extras must carry T1's release to T3 (figure {name})"
            );
        }
    }

    #[test]
    fn random_traces_first_race_matches_fto_strict() {
        for seed in 0..120 {
            let tr = RandomTraceSpec {
                events: 300,
                threads: 3,
                vars: 6,
                locks: 3,
                ..RandomTraceSpec::default()
            }
            .generate(seed);
            assert_eq!(
                first_race(SmartTrackDc::new(), &tr),
                first_race(FtoDc::new(), &tr),
                "DC seed {seed}"
            );
            assert_eq!(
                first_race(SmartTrackWdc::new(), &tr),
                first_race(FtoWdc::new(), &tr),
                "WDC seed {seed}"
            );
        }
    }

    #[test]
    fn rwlock_traces_first_race_matches_fto() {
        for seed in 0..120 {
            let tr = RandomTraceSpec::tiny_rw().generate(seed);
            assert_eq!(
                first_race(SmartTrackDc::new(), &tr),
                first_race(FtoDc::new(), &tr),
                "DC seed {seed}"
            );
            assert_eq!(
                first_race(SmartTrackWdc::new(), &tr),
                first_race(FtoWdc::new(), &tr),
                "WDC seed {seed}"
            );
        }
    }

    #[test]
    fn paper_fidelity_matches_on_figures() {
        for (name, tr) in paper::all_figures() {
            assert_eq!(
                first_race(SmartTrackDc::with_fidelity(CcsFidelity::Paper), &tr),
                first_race(SmartTrackDc::with_fidelity(CcsFidelity::Strict), &tr),
                "fidelity modes disagree on {name}"
            );
        }
    }
}

#[cfg(test)]
mod fidelity_corner_tests {
    use super::*;
    use crate::{run_detector, FtoWdc};
    use smarttrack_trace::{Op, TraceBuilder};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }

    /// The adversarial execution behind DESIGN.md §5 item 5: verbatim
    /// Algorithm 3 skips the `Lwx` `MultiCheck` in [Read Shared Owned], which
    /// here loses the rule (a) ordering `rel(m)ᵀ⁰ ≺ rd(x)ᵀ¹` — the only path
    /// carrying T0's `wr(y)` to T2 — producing a false WDC-race on `y` that
    /// FTO-WDC (and `Strict` mode) do not report. Under DC, rule (b) re-adds
    /// the lost ordering at T1's release of `m`, which is why the corner only
    /// manifests for WDC and why random traces never hit it (0 divergences
    /// across thousands of seeds).
    fn corner_case() -> smarttrack_trace::Trace {
        let (xv, y, ov, pv) = (x(0), x(1), x(2), x(3));
        let (lm, lo, lp) = (m(0), m(1), m(2));
        let mut b = TraceBuilder::new();
        let sync = |b: &mut TraceBuilder, tid: ThreadId, l: LockId, v: VarId| {
            b.push(tid, Op::Acquire(l)).unwrap();
            b.push(tid, Op::Read(v)).unwrap();
            b.push(tid, Op::Write(v)).unwrap();
            b.push(tid, Op::Release(l)).unwrap();
        };
        // T0: inside m, publish x via the o-sync, then write y.
        b.push(t(0), Op::Acquire(lm)).unwrap();
        b.push(t(0), Op::Write(xv)).unwrap();
        sync(&mut b, t(0), lo, ov);
        b.push(t(0), Op::Write(y)).unwrap();
        // T1: ordered after wr(x) via o; reads x while m is still pending
        // ([Read Share] → shared Rx).
        sync(&mut b, t(1), lo, ov);
        b.push(t(1), Op::Read(xv)).unwrap();
        // T0 releases m (its release clock now covers wr(y)).
        b.push(t(0), Op::Release(lm)).unwrap();
        // T1 re-reads x inside m: [Read Shared Owned]. Rule (a) demands
        // rel(m)ᵀ⁰ ≺DC this read; verbatim Algorithm 3 skips the join.
        b.push(t(1), Op::Acquire(lm)).unwrap();
        b.push(t(1), Op::Read(xv)).unwrap();
        b.push(t(1), Op::Release(lm)).unwrap();
        sync(&mut b, t(1), lp, pv);
        // T2: ordered after T1 via p; reads y. True DC orders wr(y)ᵀ⁰ first.
        sync(&mut b, t(2), lp, pv);
        b.push(t(2), Op::Read(y)).unwrap();
        b.finish()
    }

    #[test]
    fn strict_mode_matches_fto_on_the_corner_case() {
        let tr = corner_case();
        let mut fto = FtoWdc::new();
        run_detector(&mut fto, &tr);
        assert!(fto.report().is_empty(), "FTO-WDC: no WDC-race exists");
        let mut strict = SmartTrackWdc::with_fidelity(CcsFidelity::Strict);
        run_detector(&mut strict, &tr);
        assert!(strict.report().is_empty(), "Strict mode matches FTO");
        // DC is immune either way: rule (b) restores the ordering.
        let mut paper_dc = SmartTrackDc::with_fidelity(CcsFidelity::Paper);
        run_detector(&mut paper_dc, &tr);
        assert!(paper_dc.report().is_empty(), "rule (b) rescues DC");
    }

    #[test]
    fn paper_mode_over_reports_on_the_corner_case() {
        let tr = corner_case();
        let mut paper = SmartTrackWdc::with_fidelity(CcsFidelity::Paper);
        run_detector(&mut paper, &tr);
        assert_eq!(
            paper.report().dynamic_count(),
            1,
            "verbatim Algorithm 3 loses the rule (a) ordering and reports a \
             false race on y — the reason Strict is the default"
        );
        assert_eq!(paper.report().races()[0].var, x(1), "the race is on y");
    }
}
