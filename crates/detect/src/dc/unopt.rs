//! Unoptimized DC/WDC analysis — paper Algorithm 1 (plus the §5.1
//! implementation behaviours: same-epoch-like fast paths and clock increments
//! at acquires), with optional constraint-graph recording ("w/ G").

use std::collections::HashMap;

use smarttrack_clock::{ThreadId, VectorClock};
use smarttrack_trace::{Event, EventId, Loc, LockId, Op, VarId};

use crate::common::{
    slot, vc_table_bytes, vc_table_resident_bytes, HeldLocks, LockVarTable, ReadSectionTable,
};
use crate::counters::PathCounters;
use crate::dc::DcClocks;
use crate::graph::{ConstraintGraph, EdgeKind};
use crate::queues::{AcqEntry, DcRuleBQueues};
use crate::report::{AccessKind, RaceReport, Report};
use crate::{Detector, HotPathStats, OptLevel, Relation};

/// Unoptimized DC analysis (`RULE_B = true`) or WDC analysis
/// (`RULE_B = false`), following paper Algorithm 1.
///
/// Use the [`UnoptDc`] / [`UnoptWdc`] aliases. Last-access metadata are full
/// vector clocks; conflicting critical sections are tracked via
/// per-(lock, variable) tables (`Lr_{m,x}`, `Lw_{m,x}`); DC rule (b) uses
/// per-lock per-thread-pair queues.
#[derive(Clone, Debug)]
pub struct UnoptDcLike<const RULE_B: bool> {
    clocks: DcClocks,
    held: HeldLocks,
    lockvar: LockVarTable,
    read_sections: ReadSectionTable,
    queues: DcRuleBQueues,
    write_vc: Vec<VectorClock>,
    read_vc: Vec<VectorClock>,
    report: Report,
    graph: Option<ConstraintGraph>,
    /// Last volatile-write event per volatile (graph mode).
    last_volatile_write: Vec<Option<EventId>>,
    /// Last event per thread (graph mode, for join edges).
    last_event: Vec<Option<EventId>>,
    /// Pending fork edges: child → fork event (graph mode).
    pending_fork: HashMap<ThreadId, EventId>,
    /// Latest notify event per (condvar, notifying thread) (graph mode):
    /// a wait absorbs every notifier's clock, so its graph edges come from
    /// each notifier's latest notify (earlier ones are PO-dominated).
    last_notify: Vec<Vec<(ThreadId, EventId)>>,
    /// Barrier round enter-event bookkeeping (graph mode), mirroring the
    /// clock-level [`BarrierRendezvous`](crate::common::BarrierRendezvous)
    /// rounds.
    barrier_rounds: Vec<BarrierRoundEvents>,
    paths: PathCounters,
}

/// The enter events of a barrier's gathering and draining rounds (graph
/// mode); round transitions mirror `BarrierRendezvous`.
#[derive(Clone, Debug, Default)]
struct BarrierRoundEvents {
    gather: Vec<EventId>,
    open: Vec<EventId>,
    exited: u32,
}

impl BarrierRoundEvents {
    fn enter(&mut self, id: EventId) {
        if self.exited > 0 {
            self.exited = 0;
        }
        self.gather.push(id);
    }

    /// Returns the enter events the exiting event is ordered after.
    fn exit(&mut self) -> &[EventId] {
        if self.exited == 0 {
            self.open = std::mem::take(&mut self.gather);
        }
        self.exited += 1;
        if self.exited as usize >= self.open.len() {
            self.exited = 0;
        }
        &self.open
    }
}

/// Unoptimized DC analysis (Table 1's `Unopt-DC`, paper Algorithm 1).
pub type UnoptDc = UnoptDcLike<true>;
/// Unoptimized WDC analysis (Table 1's `Unopt-WDC`; Algorithm 1 minus
/// rule (b), §3).
pub type UnoptWdc = UnoptDcLike<false>;

impl<const RULE_B: bool> Default for UnoptDcLike<RULE_B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const RULE_B: bool> UnoptDcLike<RULE_B> {
    /// Creates the analysis without graph recording ("w/o G").
    pub fn new() -> Self {
        Self::with_graph_recording(false)
    }

    /// Creates the analysis, optionally building the constraint graph used by
    /// vindication ("w/ G"); graph recording costs time and memory (Table 3).
    pub fn with_graph_recording(with_graph: bool) -> Self {
        UnoptDcLike {
            clocks: DcClocks::new(),
            held: HeldLocks::new(),
            lockvar: LockVarTable::new(with_graph),
            read_sections: ReadSectionTable::new(with_graph),
            queues: DcRuleBQueues::new(),
            write_vc: Vec::new(),
            read_vc: Vec::new(),
            report: Report::new(),
            graph: with_graph.then(ConstraintGraph::new),
            last_volatile_write: Vec::new(),
            last_event: Vec::new(),
            pending_fork: HashMap::new(),
            last_notify: Vec::new(),
            barrier_rounds: Vec::new(),
            paths: PathCounters::default(),
        }
    }

    /// Diagnostic view of the current DC clock of `t` (for tests).
    pub fn thread_clock(&self, t: ThreadId) -> &VectorClock {
        self.clocks.clock_ref(t)
    }

    fn note_event(&mut self, id: EventId, t: ThreadId) {
        if let Some(g) = self.graph.as_mut() {
            if let Some(fork) = self.pending_fork.remove(&t) {
                g.add_edge(fork, id, EdgeKind::Sync);
            }
            *slot(&mut self.last_event, t.index()) = Some(id);
        }
    }

    fn racing_threads(meta: &VectorClock, now: &VectorClock) -> Vec<ThreadId> {
        meta.iter_nonzero()
            .filter(|&(u, c)| c > now.get(u))
            .map(|(u, _)| u)
            .collect()
    }

    /// Rule (a) joins for an access to `x`: for every held lock, absorb the
    /// recorded conflicting-critical-section times (Algorithm 1 lines 14–16 /
    /// 21–23).
    fn rule_a(&mut self, id: EventId, t: ThreadId, x: VarId, now: &mut VectorClock, write: bool) {
        for &(m, held_write) in self.held.of(t) {
            if write {
                if let Some(lt) = self.lockvar.read_time(m, x) {
                    now.join(&lt.clock);
                    if let Some(g) = self.graph.as_mut() {
                        for &(_, src) in &lt.sources {
                            g.add_edge(src, id, EdgeKind::RuleA);
                        }
                    }
                }
            }
            if let Some(lt) = self.lockvar.write_time(m, x) {
                now.join(&lt.clock);
                if let Some(g) = self.graph.as_mut() {
                    for &(_, src) in &lt.sources {
                        g.add_edge(src, id, EdgeKind::RuleA);
                    }
                }
            }
            // Prior *read-mode* sections on `m` conflict only when the
            // current hold is write-involved (read/read pairs never do).
            if !self.read_sections.is_empty() && held_write {
                if write {
                    if let Some(lt) = self.read_sections.read_time(m, x) {
                        now.join(&lt.clock);
                        if let Some(g) = self.graph.as_mut() {
                            for &(_, src) in &lt.sources {
                                g.add_edge(src, id, EdgeKind::RuleA);
                            }
                        }
                    }
                }
                if let Some(lt) = self.read_sections.write_time(m, x) {
                    now.join(&lt.clock);
                    if let Some(g) = self.graph.as_mut() {
                        for &(_, src) in &lt.sources {
                            g.add_edge(src, id, EdgeKind::RuleA);
                        }
                    }
                }
            }
            if held_write {
                if write {
                    self.lockvar.mark_write(m, x);
                } else {
                    self.lockvar.mark_read(m, x);
                }
            } else if write {
                self.read_sections.mark_write(t, m, x);
            } else {
                self.read_sections.mark_read(t, m, x);
            }
        }
    }

    fn read(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let local = self.clocks.local(t);
        // §5.1 same-epoch-like fast path (O(1): no clock copies).
        let rx = slot(&mut self.read_vc, x.index());
        if rx.get(t) == local && local != 0 {
            self.paths.fast += 1;
            return;
        }
        self.paths.slow += 1;
        let mut now = self.clocks.clock_ref(t).clone();
        self.rule_a(id, t, x, &mut now, false);
        let wx = slot(&mut self.write_vc, x.index());
        let prior = Self::racing_threads(wx, &now);
        slot(&mut self.read_vc, x.index()).set(t, now.get(t));
        self.clocks.clock(t).assign(&now);
        if !prior.is_empty() {
            self.report.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Read,
                prior_threads: prior,
            });
        }
    }

    fn write(&mut self, id: EventId, t: ThreadId, x: VarId, loc: Loc) {
        let local = self.clocks.local(t);
        let wx = slot(&mut self.write_vc, x.index());
        if wx.get(t) == local && local != 0 {
            self.paths.fast += 1;
            return;
        }
        self.paths.slow += 1;
        let mut now = self.clocks.clock_ref(t).clone();
        self.rule_a(id, t, x, &mut now, true);
        let wx = slot(&mut self.write_vc, x.index());
        let mut prior = Self::racing_threads(wx, &now);
        wx.set(t, now.get(t));
        let rx = slot(&mut self.read_vc, x.index());
        for u in Self::racing_threads(rx, &now) {
            if !prior.contains(&u) {
                prior.push(u);
            }
        }
        self.clocks.clock(t).assign(&now);
        if !prior.is_empty() {
            self.report.push(RaceReport {
                event: id,
                loc,
                tid: t,
                var: x,
                kind: AccessKind::Write,
                prior_threads: prior,
            });
        }
    }

    fn acquire(&mut self, t: ThreadId, m: LockId) {
        if RULE_B {
            let entry = AcqEntry::Vc(self.clocks.clock(t).clone());
            self.queues.on_acquire(m, t, &entry, true);
        }
        self.held.acquire(t, m);
        self.clocks.increment(t);
    }

    fn acquire_read(&mut self, t: ThreadId, m: LockId) {
        if RULE_B {
            let entry = AcqEntry::Vc(self.clocks.clock(t).clone());
            self.queues.on_acquire(m, t, &entry, false);
        }
        self.held.acquire_read(t, m);
        self.read_sections.open(t, m);
        self.clocks.increment(t);
    }

    fn release(&mut self, id: EventId, t: ThreadId, m: LockId) {
        let write_mode = self.held.release(t, m);
        let mut now = self.clocks.clock(t).clone();
        if RULE_B {
            let graph = &mut self.graph;
            self.queues
                .on_release(m, t, &mut now, id, write_mode, |src| {
                    if let Some(g) = graph.as_mut() {
                        g.add_edge(src, id, EdgeKind::RuleB);
                    }
                });
        }
        if write_mode {
            self.lockvar.on_release(t, m, &now, id);
        } else {
            self.read_sections.close(t, m, &now, id);
        }
        self.clocks.clock(t).assign(&now);
        self.clocks.increment(t);
    }
}

impl<const RULE_B: bool> Detector for UnoptDcLike<RULE_B> {
    fn name(&self) -> &'static str {
        match (RULE_B, self.graph.is_some()) {
            (true, true) => "Unopt-DC w/G",
            (true, false) => "Unopt-DC",
            (false, true) => "Unopt-WDC w/G",
            (false, false) => "Unopt-WDC",
        }
    }

    fn relation(&self) -> Relation {
        if RULE_B {
            Relation::Dc
        } else {
            Relation::Wdc
        }
    }

    fn opt_level(&self) -> OptLevel {
        OptLevel::Unopt
    }

    fn begin_stream(&mut self, hint: crate::StreamHint) {
        if RULE_B {
            if let Some(threads) = hint.threads {
                self.queues.set_thread_bound(threads);
            }
        }
        self.clocks.reserve(hint.threads, hint.volatiles);
        if let Some(locks) = hint.locks {
            self.lockvar.reserve_locks(locks);
        }
        self.write_vc
            .reserve(crate::StreamHint::presize(hint.vars, self.write_vc.len()));
        self.read_vc
            .reserve(crate::StreamHint::presize(hint.vars, self.read_vc.len()));
    }

    fn process(&mut self, id: EventId, event: &Event) {
        let t = event.tid;
        self.note_event(id, t);
        match event.op {
            Op::Read(x) => self.read(id, t, x, event.loc),
            Op::Write(x) => self.write(id, t, x, event.loc),
            Op::Acquire(m) | Op::AcqWrite(m) => self.acquire(t, m),
            Op::AcqRead(m) => self.acquire_read(t, m),
            Op::Release(m) => self.release(id, t, m),
            // A failed trylock establishes no ordering in any direction.
            Op::TryAcqFail(_) => {}
            Op::Fork(u) => {
                if self.graph.is_some() {
                    self.pending_fork.insert(u, id);
                }
                self.clocks.fork(t, u);
            }
            Op::Join(u) => {
                if let (Some(g), Some(last)) = (
                    self.graph.as_mut(),
                    self.last_event.get(u.index()).copied().flatten(),
                ) {
                    g.add_edge(last, id, EdgeKind::Sync);
                }
                self.clocks.join(t, u);
            }
            Op::VolatileRead(v) => {
                if let (Some(g), Some(src)) = (
                    self.graph.as_mut(),
                    self.last_volatile_write.get(v.index()).copied().flatten(),
                ) {
                    g.add_edge(src, id, EdgeKind::Sync);
                }
                self.clocks.volatile_read(t, v);
            }
            Op::VolatileWrite(v) => {
                if self.graph.is_some() {
                    let prev = slot(&mut self.last_volatile_write, v.index()).replace(id);
                    if let (Some(g), Some(src)) = (self.graph.as_mut(), prev) {
                        g.add_edge(src, id, EdgeKind::Sync);
                    }
                }
                self.clocks.volatile_write(t, v);
            }
            Op::Wait(c, m) => {
                // Release half of the atomic release-and-reacquire.
                self.release(id, t, m);
                // Condvar hard edge: the wait absorbs every notifier's
                // clock, so graph mode records an edge from each
                // notifier's latest notify.
                if let Some(g) = self.graph.as_mut() {
                    if let Some(sources) = self.last_notify.get(c.index()) {
                        for &(_, src) in sources {
                            g.add_edge(src, id, EdgeKind::Sync);
                        }
                    }
                }
                self.clocks.wait_absorb(t, c);
                // Reacquire half.
                self.acquire(t, m);
            }
            Op::Notify(c) | Op::NotifyAll(c) => {
                if self.graph.is_some() {
                    let sources = slot(&mut self.last_notify, c.index());
                    match sources.iter_mut().find(|(u, _)| *u == t) {
                        Some(entry) => entry.1 = id,
                        None => sources.push((t, id)),
                    }
                }
                self.clocks.notify(t, c);
            }
            Op::BarrierEnter(b) => {
                if self.graph.is_some() {
                    slot(&mut self.barrier_rounds, b.index()).enter(id);
                }
                self.clocks.barrier_enter(t, b);
            }
            Op::BarrierExit(b) => {
                if self.graph.is_some() {
                    let sources: Vec<EventId> =
                        slot(&mut self.barrier_rounds, b.index()).exit().to_vec();
                    if let Some(g) = self.graph.as_mut() {
                        for src in sources {
                            // The exit's own enter is PO-ordered anyway;
                            // the redundant self-edge is harmless.
                            g.add_edge(src, id, EdgeKind::Sync);
                        }
                    }
                }
                self.clocks.barrier_exit(t, b);
            }
        }
    }

    fn report(&self) -> &Report {
        &self.report
    }

    fn footprint_bytes(&self) -> usize {
        self.clocks.footprint_bytes()
            + self.held.footprint_bytes()
            + self.lockvar.footprint_bytes()
            + self.read_sections.footprint_bytes()
            + self.queues.footprint_bytes()
            + vc_table_bytes(&self.write_vc)
            + vc_table_bytes(&self.read_vc)
            + self.report.footprint_bytes()
            + self
                .graph
                .as_ref()
                .map_or(0, ConstraintGraph::footprint_bytes)
    }

    fn state_bytes(&self) -> usize {
        self.clocks.resident_bytes()
            + self.held.footprint_bytes()
            + self.lockvar.resident_bytes()
            + self.read_sections.resident_bytes()
            + self.queues.resident_bytes()
            + vc_table_resident_bytes(&self.write_vc)
            + vc_table_resident_bytes(&self.read_vc)
            + self.report.footprint_bytes()
            + self
                .graph
                .as_ref()
                .map_or(0, ConstraintGraph::footprint_bytes)
    }

    fn hot_path_stats(&self) -> HotPathStats {
        HotPathStats {
            fast_hits: self.paths.fast,
            slow_hits: self.paths.slow,
            state_bytes: self.state_bytes(),
        }
    }

    fn graph(&self) -> Option<&ConstraintGraph> {
        self.graph.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_detector;
    use smarttrack_trace::paper;
    use smarttrack_trace::TraceBuilder;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }

    fn dc_races(tr: &smarttrack_trace::Trace) -> Report {
        let mut det = UnoptDc::new();
        run_detector(&mut det, tr);
        det.report().clone()
    }

    fn wdc_races(tr: &smarttrack_trace::Trace) -> Report {
        let mut det = UnoptWdc::new();
        run_detector(&mut det, tr);
        det.report().clone()
    }

    #[test]
    fn figure1_has_dc_and_wdc_race() {
        let tr = paper::figure1();
        assert_eq!(dc_races(&tr).dynamic_count(), 1);
        assert_eq!(wdc_races(&tr).dynamic_count(), 1);
        // The race is detected at the final write to x (event 7).
        assert_eq!(dc_races(&tr).first_race_event(), Some(EventId::new(7)));
    }

    #[test]
    fn figure2_has_dc_race() {
        let tr = paper::figure2();
        assert_eq!(dc_races(&tr).dynamic_count(), 1);
        assert_eq!(wdc_races(&tr).dynamic_count(), 1);
    }

    #[test]
    fn figure3_wdc_race_but_no_dc_race() {
        let tr = paper::figure3();
        assert_eq!(
            dc_races(&tr).dynamic_count(),
            0,
            "DC rule (b) orders the releases"
        );
        assert_eq!(wdc_races(&tr).dynamic_count(), 1, "WDC misses rule (b)");
    }

    #[test]
    fn figure4_traces_have_no_races() {
        for f in [
            paper::figure4a(),
            paper::figure4b(),
            paper::figure4c(),
            paper::figure4d(),
        ] {
            assert!(dc_races(&f).is_empty());
            assert!(wdc_races(&f).is_empty());
        }
    }

    #[test]
    fn conflicting_critical_sections_order_accesses() {
        // T0 writes x under m; T1 reads x under m then writes x outside any
        // lock: rule (a) orders T0's release before T1's read, and PO extends
        // to the write. No race.
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Acquire(m(0))).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap();
        b.push(t(1), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        assert!(dc_races(&b.finish()).is_empty());
    }

    #[test]
    fn empty_critical_sections_do_not_order() {
        // Like Figure 1: the critical sections share a lock but not data, so
        // DC does not order the surrounding accesses.
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        b.push(t(0), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Acquire(m(0))).unwrap();
        b.push(t(1), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        assert_eq!(dc_races(&b.finish()).dynamic_count(), 1);
    }

    #[test]
    fn graph_mode_records_rule_a_and_b_edges() {
        let tr = paper::figure3();
        let mut det = UnoptDc::with_graph_recording(true);
        run_detector(&mut det, &tr);
        let g = det.graph().expect("graph recorded");
        assert!(
            g.edges().iter().any(|&(_, _, k)| k == EdgeKind::RuleA),
            "sync(o)/sync(p) conflicts produce rule (a) edges"
        );
        assert!(
            g.edges().iter().any(|&(_, _, k)| k == EdgeKind::RuleB),
            "figure 3's m-releases are rule (b) ordered"
        );
    }

    #[test]
    fn fork_join_and_volatiles_order_in_dc() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Fork(t(1))).unwrap();
        b.push(t(1), Op::Write(x(0))).unwrap();
        b.push(t(1), Op::VolatileWrite(VarId::new(0))).unwrap();
        b.push(t(2), Op::VolatileRead(VarId::new(0))).unwrap();
        b.push(t(2), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Join(t(1))).unwrap();
        b.push(t(0), Op::Read(x(1))).unwrap();
        assert!(dc_races(&b.finish()).is_empty());
    }

    #[test]
    fn same_epoch_skip_does_not_change_outcomes() {
        // Repeated accesses between syncs take the fast path; the race is
        // still found at the first non-same-epoch access.
        let mut b = TraceBuilder::new();
        for _ in 0..4 {
            b.push(t(0), Op::Write(x(0))).unwrap();
        }
        b.push(t(1), Op::Write(x(0))).unwrap();
        let r = dc_races(&b.finish());
        assert_eq!(r.dynamic_count(), 1);
        assert_eq!(r.first_race_event(), Some(EventId::new(4)));
    }
}
