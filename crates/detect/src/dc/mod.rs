//! DC and WDC analyses at all three optimization levels.
//!
//! The WDC relation (§3) is DC (Roemer et al. 2018) without rule (b), so both
//! relations share implementations parameterized by `const RULE_B: bool`:
//!
//! * [`UnoptDc`] / [`UnoptWdc`] — paper Algorithm 1 (vector clocks
//!   everywhere), optionally recording a constraint graph ("w/ G").
//! * [`FtoDc`] / [`FtoWdc`] — paper Algorithm 2 (epoch + ownership
//!   optimizations applied to predictive analysis).
//! * [`SmartTrackDc`] / [`SmartTrackWdc`] — paper Algorithm 3 (FTO + the
//!   conflicting-critical-section optimizations).

mod fto;
mod st;
mod unopt;

pub use fto::{FtoDc, FtoWdc};
pub use st::{SmartTrackDc, SmartTrackWdc};
pub use unopt::{UnoptDc, UnoptWdc};

use smarttrack_clock::{ThreadId, VectorClock};
use smarttrack_trace::{BarrierId, CondId, VarId};

use crate::common::{
    barrier_table_bytes, barrier_table_resident_bytes, slot, vc_table_bytes,
    vc_table_resident_bytes, BarrierRendezvous,
};

/// Thread and volatile clocks for PO-composed predictive relations (DC, WDC).
///
/// Unlike HB analysis, DC has no release→acquire ordering, so there are no
/// per-lock clocks; lock-induced ordering comes only from rules (a) and (b).
/// Per §5.1, predictive analyses increment the thread's clock at *acquires as
/// well as releases* (supporting cheap same-epoch checks and SmartTrack's
/// epoch-based acquire queues); fork/join/volatile operations are treated as
/// hard ordering in the computed relation.
#[derive(Clone, Debug, Default)]
pub(crate) struct DcClocks {
    threads: Vec<VectorClock>,
    volatiles: Vec<VectorClock>,
    /// Per condvar: the join of the notifiers' clocks (`Nc`).
    condvars: Vec<VectorClock>,
    barriers: Vec<BarrierRendezvous>,
}

impl DcClocks {
    pub fn new() -> Self {
        DcClocks::default()
    }

    /// The clock `Ct`, initializing `Ct(t) = 1` on first use.
    pub fn clock(&mut self, t: ThreadId) -> &mut VectorClock {
        let c = slot(&mut self.threads, t.index());
        if c.get(t) == 0 {
            c.set(t, 1);
        }
        c
    }

    /// Read-only view of `Ct` (must have been initialized).
    pub fn clock_ref(&self, t: ThreadId) -> &VectorClock {
        &self.threads[t.index()]
    }

    /// `Ct(t)` — the local clock component, initializing on first use.
    /// The same-epoch fast paths use this to stay O(1).
    pub fn local(&mut self, t: ThreadId) -> u32 {
        self.clock(t).get(t)
    }

    /// `Ct(t) += 1` — at every synchronization operation.
    pub fn increment(&mut self, t: ThreadId) {
        self.clock(t).increment(t);
    }

    /// `fork(u)` by `t`: hard edge into the child.
    pub fn fork(&mut self, t: ThreadId, u: ThreadId) {
        let ct = self.clock(t).clone();
        self.clock(u).join(&ct);
        self.increment(t);
    }

    /// `join(u)` by `t`: hard edge from the child's last event.
    pub fn join(&mut self, t: ThreadId, u: ThreadId) {
        let cu = self.clock(u).clone();
        self.clock(t).join(&cu);
        self.increment(t);
    }

    /// Volatile read: absorb the volatile's clock.
    pub fn volatile_read(&mut self, t: ThreadId, v: VarId) {
        let vv = slot(&mut self.volatiles, v.index()).clone();
        self.clock(t).join(&vv);
        self.increment(t);
    }

    /// Volatile write: absorb and publish.
    pub fn volatile_write(&mut self, t: ThreadId, v: VarId) {
        let vv = slot(&mut self.volatiles, v.index()).clone();
        let ct = {
            let c = self.clock(t);
            c.join(&vv);
            c.clone()
        };
        slot(&mut self.volatiles, v.index()).assign(&ct);
        self.increment(t);
    }

    /// `ntf(c)` / `nfa(c)`: publish-only hard edge — `Nc ← Nc ⊔ Ct;
    /// Ct(t) += 1`. Notifies do not absorb `Nc` (two notifiers are not
    /// thereby ordered with each other).
    pub fn notify(&mut self, t: ThreadId, c: CondId) {
        let ct = self.clock(t).clone();
        slot(&mut self.condvars, c.index()).join(&ct);
        self.increment(t);
    }

    /// The condvar-ordering half of `wait(c, m)`: absorb the notifies seen
    /// so far. The callers compose the full wait as release(m) →
    /// `wait_absorb` → acquire(m), so the monitor machinery (rule (a)/(b)
    /// bookkeeping) runs exactly as for an explicit release and acquire.
    pub fn wait_absorb(&mut self, t: ThreadId, c: CondId) {
        let nc = slot(&mut self.condvars, c.index()).clone();
        self.clock(t).join(&nc);
    }

    /// `bent(b)`: publish into the round's rendezvous clock; increment.
    pub fn barrier_enter(&mut self, t: ThreadId, b: BarrierId) {
        let ct = self.clock(t).clone();
        slot(&mut self.barriers, b.index()).enter(&ct);
        self.increment(t);
    }

    /// `bext(b)`: hard edge from every enter of the round.
    pub fn barrier_exit(&mut self, t: ThreadId, b: BarrierId) {
        let open = slot(&mut self.barriers, b.index()).exit().clone();
        self.clock(t).join(&open);
        self.increment(t);
    }

    /// Approximate heap bytes (exact: includes per-clock heap spill).
    pub fn footprint_bytes(&self) -> usize {
        vc_table_bytes(&self.threads)
            + vc_table_bytes(&self.volatiles)
            + vc_table_bytes(&self.condvars)
            + barrier_table_bytes(&self.barriers)
    }

    /// Cheap resident bytes (capacities only, O(1)).
    pub fn resident_bytes(&self) -> usize {
        vc_table_resident_bytes(&self.threads)
            + vc_table_resident_bytes(&self.volatiles)
            + vc_table_resident_bytes(&self.condvars)
            + barrier_table_resident_bytes(&self.barriers)
    }

    /// Pre-sizes the clock tables from a [`crate::StreamHint`] (clamped,
    /// see [`crate::StreamHint::presize`]).
    pub fn reserve(&mut self, threads: Option<usize>, volatiles: Option<usize>) {
        use crate::StreamHint;
        self.threads
            .reserve(StreamHint::presize(threads, self.threads.len()));
        self.volatiles
            .reserve(StreamHint::presize(volatiles, self.volatiles.len()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn increments_produce_distinct_epochs() {
        let mut c = DcClocks::new();
        assert_eq!(c.clock(t(0)).get(t(0)), 1);
        c.increment(t(0));
        assert_eq!(c.clock(t(0)).get(t(0)), 2);
    }

    #[test]
    fn fork_transfers_and_join_returns() {
        let mut c = DcClocks::new();
        c.clock(t(0)).set(t(0), 7);
        c.fork(t(0), t(1));
        assert_eq!(c.clock(t(1)).get(t(0)), 7);
        assert_eq!(c.clock(t(0)).get(t(0)), 8, "fork increments the parent");
        c.clock(t(1)).set(t(1), 4);
        c.join(t(0), t(1));
        assert_eq!(c.clock(t(0)).get(t(1)), 4);
    }

    #[test]
    fn volatiles_order_write_to_read() {
        let mut c = DcClocks::new();
        let v = VarId::new(0);
        c.clock(t(0)).set(t(0), 3);
        c.volatile_write(t(0), v);
        c.volatile_read(t(1), v);
        assert_eq!(c.clock(t(1)).get(t(0)), 3);
    }
}
