//! Property-based tests for the trace layer: serialization round-trips,
//! well-formedness of generated traces, and statistics invariants.

use proptest::prelude::*;
use smarttrack_trace::binary::{self, StbHint, StbReader, StbWriter};
use smarttrack_trace::gen::RandomTraceSpec;
use smarttrack_trace::stats::TraceStats;
use smarttrack_trace::{fmt, formats, Op, Trace};

fn arb_spec() -> impl Strategy<Value = (RandomTraceSpec, u64)> {
    (
        1u32..6,
        0usize..500,
        1u32..10,
        1u32..5,
        0u32..3,
        any::<u64>(),
        any::<bool>(),
        1usize..4,
    )
        .prop_map(
            |(threads, events, vars, locks, volatiles, seed, fork_join, nesting)| {
                (
                    RandomTraceSpec {
                        threads,
                        events,
                        vars,
                        locks,
                        volatiles,
                        volatile_prob: if volatiles > 0 { 0.08 } else { 0.0 },
                        max_nesting: nesting,
                        fork_join,
                        ..RandomTraceSpec::default()
                    },
                    seed,
                )
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_traces_are_well_formed((spec, seed) in arb_spec()) {
        let tr = spec.generate(seed);
        Trace::from_events(tr.events().iter().copied()).expect("well-formed");
    }

    #[test]
    fn text_format_round_trips((spec, seed) in arb_spec()) {
        let tr = spec.generate(seed);
        let text = fmt::render(&tr);
        let back = fmt::parse(&text).expect("rendered traces parse");
        prop_assert_eq!(tr, back);
    }

    #[test]
    fn stb_round_trips((spec, seed) in arb_spec()) {
        let tr = spec.generate(seed);
        let bytes = binary::to_stb_bytes(&tr);
        let back = binary::from_stb_bytes(&bytes).expect("write_stb ∘ read_stb is identity");
        prop_assert_eq!(tr, back);
    }

    #[test]
    fn stb_round_trips_across_chunk_sizes((spec, seed) in arb_spec(), chunk in 1usize..64) {
        let tr = spec.generate(seed);
        let mut w = StbWriter::with_hint(Vec::new(), StbHint::of_trace(&tr)).chunk_events(chunk);
        for e in tr.events() {
            w.write(e).expect("Vec sink");
        }
        let bytes = w.finish().expect("Vec sink");
        let back = binary::from_stb_bytes(&bytes).expect("chunked round trip");
        prop_assert_eq!(tr, back);
    }

    #[test]
    fn stb_streaming_reader_yields_the_exact_event_sequence((spec, seed) in arb_spec()) {
        let tr = spec.generate(seed);
        let bytes = binary::to_stb_bytes(&tr);
        let reader = StbReader::new(&bytes[..]).expect("header decodes");
        prop_assert_eq!(reader.header().hint, Some(StbHint::of_trace(&tr)));
        let events: Result<Vec<_>, _> = reader.collect();
        let events = events.expect("stream decodes");
        prop_assert_eq!(events.as_slice(), tr.events());
    }

    #[test]
    fn stb_truncation_never_panics_and_never_decodes((spec, seed) in arb_spec(), sel in 0usize..10_000) {
        let tr = spec.generate(seed);
        let bytes = binary::to_stb_bytes(&tr);
        let cut = bytes.len() * sel / 10_000; // strictly < len
        prop_assert!(binary::from_stb_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn parse_bytes_round_trips_every_format((spec, seed) in arb_spec()) {
        let tr = spec.generate(seed);
        use formats::TraceFormat::*;
        for format in [Native, Std, Csv, Stb] {
            let bytes = formats::render_bytes(&tr, format);
            let back = formats::parse_bytes(&bytes, format).expect("round trip");
            prop_assert_eq!(&tr, &back, "{}", format);
        }
    }

    #[test]
    fn stats_invariants_hold((spec, seed) in arb_spec()) {
        let tr = spec.generate(seed);
        let s = TraceStats::compute(&tr);
        prop_assert_eq!(s.total_events, tr.len());
        prop_assert!(s.nsea_count <= s.access_count);
        prop_assert!(s.access_count + s.sync_count == s.total_events);
        // The held-lock distribution is monotone: ≥1 ⊇ ≥2 ⊇ ≥3.
        prop_assert!(s.nsea_holding[0] >= s.nsea_holding[1]);
        prop_assert!(s.nsea_holding[1] >= s.nsea_holding[2]);
        prop_assert!(s.nsea_holding[0] <= s.nsea_count);
        prop_assert!(s.threads_max_live <= s.threads_total);
    }

    #[test]
    fn thread_projections_partition_the_trace((spec, seed) in arb_spec()) {
        let tr = spec.generate(seed);
        let mut total = 0;
        for t in 0..tr.num_threads() {
            let proj = tr.thread_projection(smarttrack_trace::ThreadId::new(t as u32));
            // Projections are strictly increasing event ids.
            for w in proj.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            total += proj.len();
        }
        prop_assert_eq!(total, tr.len());
    }

    #[test]
    fn last_writers_point_backwards_to_same_variable((spec, seed) in arb_spec()) {
        let tr = spec.generate(seed);
        for (read, writer) in tr.last_writers() {
            prop_assert!(matches!(tr.event(read).op, Op::Read(_)));
            if let Some(w) = writer {
                prop_assert!(w < read);
                prop_assert_eq!(
                    tr.event(w).op.access_var(),
                    tr.event(read).op.access_var()
                );
                prop_assert!(tr.event(w).op.is_write());
            }
        }
    }

    #[test]
    fn held_locks_series_is_consistent_with_projection((spec, seed) in arb_spec()) {
        let tr = spec.generate(seed);
        let series = tr.held_locks_series();
        prop_assert_eq!(series.len(), tr.len());
        for (i, e) in tr.events().iter().enumerate() {
            match e.op {
                // The acquired/released lock is in its own event's held set.
                Op::Acquire(m) | Op::Release(m) => prop_assert!(series[i].contains(&m)),
                _ => {}
            }
        }
    }
}
