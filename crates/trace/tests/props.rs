//! Property-based tests for the trace layer: serialization round-trips,
//! well-formedness of generated traces, and statistics invariants.

use proptest::prelude::*;
use smarttrack_trace::gen::RandomTraceSpec;
use smarttrack_trace::stats::TraceStats;
use smarttrack_trace::{fmt, Op, Trace};

fn arb_spec() -> impl Strategy<Value = (RandomTraceSpec, u64)> {
    (
        1u32..6,
        0usize..500,
        1u32..10,
        1u32..5,
        0u32..3,
        any::<u64>(),
        any::<bool>(),
        1usize..4,
    )
        .prop_map(
            |(threads, events, vars, locks, volatiles, seed, fork_join, nesting)| {
                (
                    RandomTraceSpec {
                        threads,
                        events,
                        vars,
                        locks,
                        volatiles,
                        volatile_prob: if volatiles > 0 { 0.08 } else { 0.0 },
                        max_nesting: nesting,
                        fork_join,
                        ..RandomTraceSpec::default()
                    },
                    seed,
                )
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_traces_are_well_formed((spec, seed) in arb_spec()) {
        let tr = spec.generate(seed);
        Trace::from_events(tr.events().iter().copied()).expect("well-formed");
    }

    #[test]
    fn text_format_round_trips((spec, seed) in arb_spec()) {
        let tr = spec.generate(seed);
        let text = fmt::render(&tr);
        let back = fmt::parse(&text).expect("rendered traces parse");
        prop_assert_eq!(tr, back);
    }

    #[test]
    fn stats_invariants_hold((spec, seed) in arb_spec()) {
        let tr = spec.generate(seed);
        let s = TraceStats::compute(&tr);
        prop_assert_eq!(s.total_events, tr.len());
        prop_assert!(s.nsea_count <= s.access_count);
        prop_assert!(s.access_count + s.sync_count == s.total_events);
        // The held-lock distribution is monotone: ≥1 ⊇ ≥2 ⊇ ≥3.
        prop_assert!(s.nsea_holding[0] >= s.nsea_holding[1]);
        prop_assert!(s.nsea_holding[1] >= s.nsea_holding[2]);
        prop_assert!(s.nsea_holding[0] <= s.nsea_count);
        prop_assert!(s.threads_max_live <= s.threads_total);
    }

    #[test]
    fn thread_projections_partition_the_trace((spec, seed) in arb_spec()) {
        let tr = spec.generate(seed);
        let mut total = 0;
        for t in 0..tr.num_threads() {
            let proj = tr.thread_projection(smarttrack_trace::ThreadId::new(t as u32));
            // Projections are strictly increasing event ids.
            for w in proj.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            total += proj.len();
        }
        prop_assert_eq!(total, tr.len());
    }

    #[test]
    fn last_writers_point_backwards_to_same_variable((spec, seed) in arb_spec()) {
        let tr = spec.generate(seed);
        for (read, writer) in tr.last_writers() {
            prop_assert!(matches!(tr.event(read).op, Op::Read(_)));
            if let Some(w) = writer {
                prop_assert!(w < read);
                prop_assert_eq!(
                    tr.event(w).op.access_var(),
                    tr.event(read).op.access_var()
                );
                prop_assert!(tr.event(w).op.is_write());
            }
        }
    }

    #[test]
    fn held_locks_series_is_consistent_with_projection((spec, seed) in arb_spec()) {
        let tr = spec.generate(seed);
        let series = tr.held_locks_series();
        prop_assert_eq!(series.len(), tr.len());
        for (i, e) in tr.events().iter().enumerate() {
            match e.op {
                // The acquired/released lock is in its own event's held set.
                Op::Acquire(m) | Op::Release(m) => prop_assert!(series[i].contains(&m)),
                _ => {}
            }
        }
    }
}
