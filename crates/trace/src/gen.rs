//! Seeded random generation of well-formed execution traces.
//!
//! The generator simulates a set of threads taking randomized steps (accesses
//! in bursts, lock acquire/release with bounded nesting, volatile accesses,
//! optional fork/join structure) and emits a well-formed [`Trace`]. It is the
//! workhorse behind the property-based differential tests and the
//! DaCapo-style workloads (`smarttrack-workloads` layers calibrated
//! parameters on top of it).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smarttrack_clock::ThreadId;

use crate::{BarrierId, CondId, Loc, LockId, Op, Trace, TraceBuilder, VarId};

/// Parameters for random trace generation.
///
/// All probabilities are per *step decision*; the remaining probability mass
/// goes to plain reads/writes.
///
/// # Examples
///
/// ```
/// use smarttrack_trace::gen::RandomTraceSpec;
///
/// let spec = RandomTraceSpec { threads: 3, events: 200, ..RandomTraceSpec::default() };
/// let a = spec.generate(42);
/// let b = spec.generate(42);
/// assert_eq!(a, b, "generation is deterministic per seed");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct RandomTraceSpec {
    /// Number of worker threads.
    pub threads: u32,
    /// Target number of events (the result may slightly exceed this because
    /// open critical sections are closed and joins appended).
    pub events: usize,
    /// Number of shared variables.
    pub vars: u32,
    /// Number of locks.
    pub locks: u32,
    /// Number of volatile variables (0 disables volatile events).
    pub volatiles: u32,
    /// Fraction of accesses that are writes.
    pub write_frac: f64,
    /// Probability a step acquires a (free, random) lock.
    pub acquire_prob: f64,
    /// Probability a step releases the innermost held lock.
    pub release_prob: f64,
    /// Probability a step performs a volatile access.
    pub volatile_prob: f64,
    /// Maximum lock nesting depth per thread.
    pub max_nesting: usize,
    /// Mean length of same-variable access bursts (drives the same-epoch
    /// access fraction of Table 2).
    pub mean_burst: usize,
    /// Skew of variable selection toward low indices (`0.0` = uniform;
    /// higher values concentrate accesses on few variables, creating more
    /// sharing and more races).
    pub var_skew: f64,
    /// Wrap the trace in fork/join structure: thread 0 forks all workers
    /// first and joins them at the end.
    pub fork_join: bool,
    /// Number of distinct static program locations to attribute accesses to.
    pub locs: u32,
    /// Number of condition variables (0 disables condvar events).
    pub condvars: u32,
    /// Probability a step performs a condvar operation: a `wait` on the
    /// innermost held lock when the thread holds one, otherwise a
    /// `notify`/`notifyAll`.
    pub condvar_prob: f64,
    /// Number of barriers (0 disables barrier events).
    pub barriers: u32,
    /// Probability a step emits a whole barrier *round*: a random subset of
    /// threads enters (in random order) and then exits (in random order),
    /// keeping the parties of every round matched by construction.
    pub barrier_prob: f64,
    /// Number of reader-writer locks (0 disables rwlock events). Rwlocks
    /// share the lock id space, numbered above the plain locks
    /// (`LockId::new(locks + k)`).
    pub rwlocks: u32,
    /// Probability a step read-acquires a random rwlock the thread may
    /// share (no writer, not already read-held by this thread).
    pub rw_read_prob: f64,
    /// Probability a step write-acquires a random free rwlock.
    pub rw_write_prob: f64,
    /// Probability a step releases this thread's most recent rwlock hold.
    pub rw_release_prob: f64,
    /// Probability a step records a failed trylock (`tryf`) on a random
    /// rwlock the thread does not itself hold.
    pub try_fail_prob: f64,
}

impl Default for RandomTraceSpec {
    fn default() -> Self {
        RandomTraceSpec {
            threads: 4,
            events: 1_000,
            vars: 12,
            locks: 4,
            volatiles: 0,
            write_frac: 0.35,
            acquire_prob: 0.08,
            release_prob: 0.10,
            volatile_prob: 0.0,
            max_nesting: 3,
            mean_burst: 2,
            var_skew: 1.0,
            fork_join: false,
            locs: 40,
            condvars: 0,
            condvar_prob: 0.0,
            barriers: 0,
            barrier_prob: 0.0,
            rwlocks: 0,
            rw_read_prob: 0.0,
            rw_write_prob: 0.0,
            rw_release_prob: 0.0,
            try_fail_prob: 0.0,
        }
    }
}

impl RandomTraceSpec {
    /// A tiny-spec preset suitable for exhaustive-oracle cross-checking
    /// (traces of a few dozen events, 2–3 threads).
    pub fn tiny() -> Self {
        RandomTraceSpec {
            threads: 3,
            events: 18,
            vars: 3,
            locks: 2,
            volatiles: 0,
            write_frac: 0.5,
            acquire_prob: 0.25,
            release_prob: 0.35,
            volatile_prob: 0.0,
            max_nesting: 2,
            mean_burst: 1,
            var_skew: 1.0,
            fork_join: false,
            locs: 12,
            condvars: 0,
            condvar_prob: 0.0,
            barriers: 0,
            barrier_prob: 0.0,
            rwlocks: 0,
            rw_read_prob: 0.0,
            rw_write_prob: 0.0,
            rw_release_prob: 0.0,
            try_fail_prob: 0.0,
        }
    }

    /// The tiny preset with condvar and barrier events mixed in, for
    /// oracle-checkable synchronization-heavy traces.
    pub fn tiny_sync() -> Self {
        RandomTraceSpec {
            condvars: 2,
            condvar_prob: 0.15,
            barriers: 1,
            barrier_prob: 0.06,
            ..RandomTraceSpec::tiny()
        }
    }

    /// The tiny preset with reader-writer lock events mixed in (shared read
    /// sections, exclusive write sections, failed trylocks), for
    /// oracle-checkable rwlock traces.
    pub fn tiny_rw() -> Self {
        RandomTraceSpec {
            rwlocks: 2,
            rw_read_prob: 0.18,
            rw_write_prob: 0.10,
            rw_release_prob: 0.30,
            try_fail_prob: 0.05,
            ..RandomTraceSpec::tiny()
        }
    }

    /// Generates a well-formed trace deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or (`vars == 0` while `events > 0`).
    pub fn generate(&self, seed: u64) -> Trace {
        assert!(self.threads > 0, "need at least one thread");
        assert!(
            self.vars > 0 || self.events == 0,
            "need at least one variable"
        );
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_5eed_0000_0000);
        let mut b = TraceBuilder::new();
        let nthreads = self.threads as usize;

        let mut held: Vec<Vec<LockId>> = vec![Vec::new(); nthreads];
        let mut burst: Vec<Option<(VarId, usize)>> = vec![None; nthreads];
        let mut lock_free = vec![true; self.locks as usize];

        // Rwlocks share the lock id space above the plain locks. Per rwlock
        // we mirror the holder state (one writer xor any readers); per thread
        // we keep the open rwlock sections as `(rwlock index, write mode)`.
        let rw_id = |k: usize| LockId::new(self.locks + k as u32);
        let mut rw_writer: Vec<Option<usize>> = vec![None; self.rwlocks as usize];
        let mut rw_readers: Vec<Vec<usize>> = vec![Vec::new(); self.rwlocks as usize];
        let mut rw_held: Vec<Vec<(usize, bool)>> = vec![Vec::new(); nthreads];

        if self.fork_join {
            for child in 1..self.threads {
                b.push_at(
                    ThreadId::new(0),
                    Op::Fork(ThreadId::new(child)),
                    Loc::new(0),
                )
                .expect("fork of fresh thread is well-formed");
            }
        }

        // Cumulative probability mass of the non-rwlock sync branches; the
        // rwlock branches slot in after them in the roll cascade.
        let sync5 = self.acquire_prob
            + self.release_prob
            + self.volatile_prob
            + self.condvar_prob
            + self.barrier_prob;

        while b.len() < self.events {
            let ti = rng.gen_range(0..nthreads);
            let tid = ThreadId::new(ti as u32);
            let loc = Loc::new(rng.gen_range(0..self.locs.max(1)));

            // Continue an access burst if one is active.
            if let Some((var, left)) = burst[ti] {
                let op = if rng.gen_bool(self.write_frac) {
                    Op::Write(var)
                } else {
                    Op::Read(var)
                };
                b.push_at(tid, op, loc).expect("accesses are well-formed");
                burst[ti] = if left > 1 {
                    Some((var, left - 1))
                } else {
                    None
                };
                continue;
            }

            let roll: f64 = rng.gen();
            if roll < self.acquire_prob
                && held[ti].len() < self.max_nesting
                && lock_free.iter().any(|&f| f)
            {
                let free: Vec<usize> = (0..lock_free.len()).filter(|&i| lock_free[i]).collect();
                let l = free[rng.gen_range(0..free.len())];
                lock_free[l] = false;
                let lock = LockId::new(l as u32);
                held[ti].push(lock);
                b.push_at(tid, Op::Acquire(lock), loc)
                    .expect("acquire of free lock is well-formed");
            } else if roll < self.acquire_prob + self.release_prob && !held[ti].is_empty() {
                let lock = held[ti].pop().expect("nonempty");
                lock_free[lock.index()] = true;
                b.push_at(tid, Op::Release(lock), loc)
                    .expect("release of held lock is well-formed");
            } else if roll < self.acquire_prob + self.release_prob + self.volatile_prob
                && self.volatiles > 0
            {
                let v = VarId::new(rng.gen_range(0..self.volatiles));
                let op = if rng.gen_bool(0.5) {
                    Op::VolatileRead(v)
                } else {
                    Op::VolatileWrite(v)
                };
                b.push_at(tid, op, loc).expect("volatiles are well-formed");
            } else if roll
                < self.acquire_prob + self.release_prob + self.volatile_prob + self.condvar_prob
                && self.condvars > 0
            {
                let c = CondId::new(rng.gen_range(0..self.condvars));
                // A wait needs a held monitor; threads holding none notify.
                let op = match held[ti].last() {
                    Some(&m) if rng.gen_bool(0.5) => Op::Wait(c, m),
                    _ if rng.gen_bool(0.5) => Op::Notify(c),
                    _ => Op::NotifyAll(c),
                };
                b.push_at(tid, op, loc)
                    .expect("condvar events are well-formed");
            } else if roll
                < self.acquire_prob
                    + self.release_prob
                    + self.volatile_prob
                    + self.condvar_prob
                    + self.barrier_prob
                && self.barriers > 0
                && nthreads >= 2
            {
                // Emit a whole rendezvous round: a random subset of threads
                // enters in random order, then exits in random order, so the
                // parties of every round match by construction.
                let bar = BarrierId::new(rng.gen_range(0..self.barriers));
                let k = rng.gen_range(2..=nthreads);
                let mut parties: Vec<u32> = (0..nthreads as u32).collect();
                for i in (1..parties.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    parties.swap(i, j);
                }
                parties.truncate(k);
                for &p in &parties {
                    b.push_at(ThreadId::new(p), Op::BarrierEnter(bar), loc)
                        .expect("round enters are well-formed");
                }
                for i in (1..parties.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    parties.swap(i, j);
                }
                for &p in &parties {
                    b.push_at(ThreadId::new(p), Op::BarrierExit(bar), loc)
                        .expect("round exits are well-formed");
                }
            } else if roll < sync5 + self.rw_read_prob
                && self.rwlocks > 0
                && held[ti].len() + rw_held[ti].len() < self.max_nesting
                && (0..rw_writer.len())
                    .any(|k| rw_writer[k].is_none() && !rw_readers[k].contains(&ti))
            {
                // Read-acquire any rwlock with no writer that this thread is
                // not already reading; concurrent readers are the point.
                let sharable: Vec<usize> = (0..rw_writer.len())
                    .filter(|&k| rw_writer[k].is_none() && !rw_readers[k].contains(&ti))
                    .collect();
                let k = sharable[rng.gen_range(0..sharable.len())];
                rw_readers[k].push(ti);
                rw_held[ti].push((k, false));
                b.push_at(tid, Op::AcqRead(rw_id(k)), loc)
                    .expect("read acquire of a writer-free rwlock is well-formed");
            } else if roll < sync5 + self.rw_read_prob + self.rw_write_prob
                && self.rwlocks > 0
                && held[ti].len() + rw_held[ti].len() < self.max_nesting
                && (0..rw_writer.len()).any(|k| rw_writer[k].is_none() && rw_readers[k].is_empty())
            {
                let free: Vec<usize> = (0..rw_writer.len())
                    .filter(|&k| rw_writer[k].is_none() && rw_readers[k].is_empty())
                    .collect();
                let k = free[rng.gen_range(0..free.len())];
                rw_writer[k] = Some(ti);
                rw_held[ti].push((k, true));
                b.push_at(tid, Op::AcqWrite(rw_id(k)), loc)
                    .expect("write acquire of a free rwlock is well-formed");
            } else if roll < sync5 + self.rw_read_prob + self.rw_write_prob + self.rw_release_prob
                && !rw_held[ti].is_empty()
            {
                let (k, write) = rw_held[ti].pop().expect("nonempty");
                if write {
                    rw_writer[k] = None;
                } else {
                    rw_readers[k].retain(|&r| r != ti);
                }
                b.push_at(tid, Op::Release(rw_id(k)), loc)
                    .expect("release of a held rwlock is well-formed");
            } else if roll
                < sync5
                    + self.rw_read_prob
                    + self.rw_write_prob
                    + self.rw_release_prob
                    + self.try_fail_prob
                && self.rwlocks > 0
                && (0..rw_writer.len())
                    .any(|k| rw_writer[k] != Some(ti) && !rw_readers[k].contains(&ti))
            {
                // A failed trylock only requires that this thread does not
                // itself hold the target (the contender may have released
                // before this event serialized).
                let targets: Vec<usize> = (0..rw_writer.len())
                    .filter(|&k| rw_writer[k] != Some(ti) && !rw_readers[k].contains(&ti))
                    .collect();
                let k = targets[rng.gen_range(0..targets.len())];
                b.push_at(tid, Op::TryAcqFail(rw_id(k)), loc)
                    .expect("failed trylock on an unheld rwlock is well-formed");
            } else {
                let var = self.pick_var(&mut rng);
                let len = 1 + rng.gen_range(0..=(2 * self.mean_burst.max(1)).saturating_sub(1));
                let op = if rng.gen_bool(self.write_frac) {
                    Op::Write(var)
                } else {
                    Op::Read(var)
                };
                b.push_at(tid, op, loc).expect("accesses are well-formed");
                if len > 1 {
                    burst[ti] = Some((var, len - 1));
                }
            }
        }

        // Close all open critical sections (innermost first).
        for (ti, stack) in held.iter_mut().enumerate() {
            while let Some(lock) = stack.pop() {
                lock_free[lock.index()] = true;
                b.push(ThreadId::new(ti as u32), Op::Release(lock))
                    .expect("closing releases are well-formed");
            }
        }
        for (ti, holds) in rw_held.iter_mut().enumerate() {
            while let Some((k, write)) = holds.pop() {
                if write {
                    rw_writer[k] = None;
                } else {
                    rw_readers[k].retain(|&r| r != ti);
                }
                b.push(ThreadId::new(ti as u32), Op::Release(rw_id(k)))
                    .expect("closing rwlock releases are well-formed");
            }
        }

        if self.fork_join {
            for child in 1..self.threads {
                b.push_at(
                    ThreadId::new(0),
                    Op::Join(ThreadId::new(child)),
                    Loc::new(0),
                )
                .expect("join of forked thread is well-formed");
            }
        }

        b.finish()
    }

    fn pick_var(&self, rng: &mut SmallRng) -> VarId {
        let r: f64 = rng.gen();
        let skewed = r.powf(1.0 + self.var_skew);
        VarId::new(((skewed * self.vars as f64) as u32).min(self.vars - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn generates_requested_size() {
        let spec = RandomTraceSpec::default();
        let tr = spec.generate(7);
        assert!(tr.len() >= spec.events);
        // Slack only for closing releases and joins.
        assert!(tr.len() <= spec.events + spec.threads as usize * spec.max_nesting + 8);
    }

    #[test]
    fn deterministic_per_seed_and_sensitive_to_seed() {
        let spec = RandomTraceSpec::default();
        assert_eq!(spec.generate(1), spec.generate(1));
        assert_ne!(spec.generate(1), spec.generate(2));
    }

    #[test]
    fn generated_traces_revalidate() {
        for seed in 0..20 {
            let tr = RandomTraceSpec::default().generate(seed);
            Trace::from_events(tr.events().iter().copied()).expect("well-formed");
        }
    }

    #[test]
    fn fork_join_wraps_workers() {
        let spec = RandomTraceSpec {
            fork_join: true,
            threads: 4,
            events: 100,
            ..RandomTraceSpec::default()
        };
        let tr = spec.generate(3);
        Trace::from_events(tr.events().iter().copied()).expect("well-formed");
        let forks = tr
            .events()
            .iter()
            .filter(|e| matches!(e.op, Op::Fork(_)))
            .count();
        let joins = tr
            .events()
            .iter()
            .filter(|e| matches!(e.op, Op::Join(_)))
            .count();
        assert_eq!(forks, 3);
        assert_eq!(joins, 3);
    }

    #[test]
    fn volatile_prob_emits_volatiles() {
        let spec = RandomTraceSpec {
            volatiles: 2,
            volatile_prob: 0.2,
            events: 500,
            ..RandomTraceSpec::default()
        };
        let tr = spec.generate(11);
        assert!(tr
            .events()
            .iter()
            .any(|e| matches!(e.op, Op::VolatileRead(_) | Op::VolatileWrite(_))));
        assert_eq!(tr.num_volatiles(), 2);
    }

    #[test]
    fn rw_probs_emit_rwlock_ops_that_revalidate() {
        for seed in 0..20 {
            let tr = RandomTraceSpec::tiny_rw().generate(seed);
            Trace::from_events(tr.events().iter().copied()).expect("well-formed");
        }
        let spec = RandomTraceSpec {
            rwlocks: 2,
            rw_read_prob: 0.10,
            rw_write_prob: 0.06,
            rw_release_prob: 0.20,
            try_fail_prob: 0.04,
            events: 800,
            ..RandomTraceSpec::default()
        };
        let tr = spec.generate(9);
        Trace::from_events(tr.events().iter().copied()).expect("well-formed");
        assert!(tr.events().iter().any(|e| matches!(e.op, Op::AcqRead(_))));
        assert!(tr.events().iter().any(|e| matches!(e.op, Op::AcqWrite(_))));
        assert!(tr
            .events()
            .iter()
            .any(|e| matches!(e.op, Op::TryAcqFail(_))));
        // Rwlock ids are numbered above the plain locks.
        assert!(tr.events().iter().all(|e| match e.op {
            Op::AcqRead(m) | Op::AcqWrite(m) | Op::TryAcqFail(m) => m.raw() >= spec.locks,
            Op::Acquire(m) => m.raw() < spec.locks,
            _ => true,
        }));
    }

    #[test]
    fn zero_rw_probs_leave_old_seeds_unchanged() {
        // The rwlock branches must not draw from the rng unless they fire,
        // so a spec with rwlocks but zero mass generates the same trace.
        let plain = RandomTraceSpec::default();
        let with_idle_rwlocks = RandomTraceSpec {
            rwlocks: 0,
            rw_read_prob: 0.5,
            rw_write_prob: 0.5,
            rw_release_prob: 0.5,
            try_fail_prob: 0.5,
            ..RandomTraceSpec::default()
        };
        for seed in 0..10 {
            assert_eq!(plain.generate(seed), with_idle_rwlocks.generate(seed));
        }
    }

    #[test]
    fn burst_length_raises_same_epoch_fraction() {
        let base = RandomTraceSpec {
            events: 4_000,
            mean_burst: 1,
            ..RandomTraceSpec::default()
        };
        let bursty = RandomTraceSpec {
            mean_burst: 8,
            ..base.clone()
        };
        let s1 = TraceStats::compute(&base.generate(5));
        let s2 = TraceStats::compute(&bursty.generate(5));
        assert!(
            s2.nsea_fraction() < s1.nsea_fraction(),
            "longer bursts must lower the NSEA fraction ({} vs {})",
            s2.nsea_fraction(),
            s1.nsea_fraction()
        );
    }
}
