#![warn(missing_docs)]

//! Execution traces for the SmartTrack reproduction.
//!
//! An execution trace (paper §2.1) is a totally ordered list of events, each a
//! thread id plus an operation `wr(x)`, `rd(x)`, `acq(m)`, or `rel(m)` (plus
//! the additional synchronization operations handled by the paper's
//! implementations, §5.1: fork, join, and volatile accesses). Traces must be
//! *well formed*: a thread only acquires a lock that is not held and only
//! releases a lock it holds.
//!
//! This crate provides:
//!
//! * the event and trace model ([`Event`], [`Op`], [`Trace`], [`TraceBuilder`]);
//! * well-formedness validation with precise errors ([`TraceError`]);
//! * run-time characteristics in the sense of the paper's Table 2
//!   ([`stats::TraceStats`]);
//! * seeded random trace generation for tests and property checks
//!   ([`gen::RandomTraceSpec`]);
//! * the paper's example executions (Figures 1–4) in [`paper`];
//! * a plain-text serialization format and a column renderer ([`fmt`]);
//! * interchange formats (STD/`RAPID`, CSV) plus format auto-detection
//!   ([`formats`]);
//! * the compact STB binary format with streaming reader/writer faces
//!   ([`binary`]).
//!
//! The normative specification of all four serialization formats, with
//! byte-level STB layout tables and a format-selection guide, is
//! `docs/TRACE_FORMATS.md` at the repository root.
//!
//! # Examples
//!
//! Build the execution of the paper's Figure 1(a) and inspect it:
//!
//! ```
//! use smarttrack_trace::paper;
//!
//! let trace = paper::figure1();
//! assert_eq!(trace.len(), 8);
//! assert_eq!(trace.num_threads(), 2);
//! ```

mod event;
mod ids;
mod trace;
mod validate;

pub mod binary;
pub mod fmt;
pub mod formats;
pub mod gen;
pub mod paper;
pub mod stats;

pub use event::{Event, EventId, Op};
pub use ids::{BarrierId, CondId, Loc, LockId, VarId};
pub use smarttrack_clock::ThreadId;
pub use trace::{Trace, TraceBuilder, TraceError};
pub use validate::StreamValidator;
