//! The example executions from the SmartTrack paper (Figures 1–4).
//!
//! Each function builds the exact event sequence shown in the paper (top to
//! bottom order in the figure is trace order). The expected analysis outcomes
//! are documented per figure and asserted by the `paper_figures` integration
//! tests:
//!
//! | Figure | HB race | WCP race | DC race | WDC race | predictable race |
//! |--------|---------|----------|---------|----------|------------------|
//! | 1(a)   | no      | yes      | yes     | yes      | yes              |
//! | 2(a)   | no      | no       | yes     | yes      | yes              |
//! | 3      | no      | no       | no      | yes      | **no** (false)   |
//! | 4(a–d) | no      | no       | no      | no       | no               |
//!
//! The `sync(o)` shorthand from the paper expands to
//! `acq(o); rd(oVar); wr(oVar); rel(o)` (see Figure 3's caption).

use smarttrack_clock::ThreadId;

use crate::{Loc, LockId, Op, Trace, TraceBuilder, VarId};

/// Variable `x` — the racing variable in every figure.
pub const X: VarId = VarId::new(0);

fn t(i: u32) -> ThreadId {
    ThreadId::new(i)
}

/// Pushes the paper's `sync(o)` shorthand: `acq(o); rd(oVar); wr(oVar); rel(o)`.
fn sync(b: &mut TraceBuilder, tid: ThreadId, lock: LockId, var: VarId, loc: u32) {
    b.push_at(tid, Op::Acquire(lock), Loc::new(loc)).unwrap();
    b.push_at(tid, Op::Read(var), Loc::new(loc)).unwrap();
    b.push_at(tid, Op::Write(var), Loc::new(loc)).unwrap();
    b.push_at(tid, Op::Release(lock), Loc::new(loc)).unwrap();
}

/// Figure 1(a): an execution with a predictable race on `x` that has **no
/// HB-race** (`rd(x) ≺HB wr(x)`) but has a WCP-, DC-, and WDC-race.
///
/// ```text
/// Thread 1          Thread 2
/// rd(x)
/// acq(m)
/// wr(y)
/// rel(m)
///                   acq(m)
///                   rd(z)
///                   rel(m)
///                   wr(x)
/// ```
pub fn figure1() -> Trace {
    let (x, y, z) = (X, VarId::new(1), VarId::new(2));
    let m = LockId::new(0);
    let mut b = TraceBuilder::new();
    b.push_at(t(0), Op::Read(x), Loc::new(0)).unwrap();
    b.push_at(t(0), Op::Acquire(m), Loc::new(1)).unwrap();
    b.push_at(t(0), Op::Write(y), Loc::new(2)).unwrap();
    b.push_at(t(0), Op::Release(m), Loc::new(3)).unwrap();
    b.push_at(t(1), Op::Acquire(m), Loc::new(4)).unwrap();
    b.push_at(t(1), Op::Read(z), Loc::new(5)).unwrap();
    b.push_at(t(1), Op::Release(m), Loc::new(6)).unwrap();
    b.push_at(t(1), Op::Write(x), Loc::new(7)).unwrap();
    b.finish()
}

/// Figure 1(b): the predicted trace of [`figure1`] exposing the race
/// (used to test the predicted-trace validator).
///
/// ```text
/// Thread 1          Thread 2
///                   acq(m)
///                   rd(z)
///                   rel(m)
/// rd(x)
///                   wr(x)
/// ```
pub fn figure1_witness() -> Trace {
    let (x, z) = (X, VarId::new(2));
    let m = LockId::new(0);
    let mut b = TraceBuilder::new();
    b.push_at(t(1), Op::Acquire(m), Loc::new(4)).unwrap();
    b.push_at(t(1), Op::Read(z), Loc::new(5)).unwrap();
    b.push_at(t(1), Op::Release(m), Loc::new(6)).unwrap();
    b.push_at(t(0), Op::Read(x), Loc::new(0)).unwrap();
    b.push_at(t(1), Op::Write(x), Loc::new(7)).unwrap();
    b.finish()
}

/// Figure 2(a): an execution with a **DC-race but no WCP-race** on `x`
/// (WCP composes with HB through the critical sections on `n`).
///
/// ```text
/// Thread 1      Thread 2      Thread 3
/// rd(x)
/// acq(m)
/// wr(y)
/// rel(m)
///               acq(m)
///               rd(y)
///               rel(m)
///               acq(n)
///               rel(n)
///                             acq(n)
///                             rel(n)
///                             wr(x)
/// ```
pub fn figure2() -> Trace {
    let (x, y) = (X, VarId::new(1));
    let (m, n) = (LockId::new(0), LockId::new(1));
    let mut b = TraceBuilder::new();
    b.push_at(t(0), Op::Read(x), Loc::new(0)).unwrap();
    b.push_at(t(0), Op::Acquire(m), Loc::new(1)).unwrap();
    b.push_at(t(0), Op::Write(y), Loc::new(2)).unwrap();
    b.push_at(t(0), Op::Release(m), Loc::new(3)).unwrap();
    b.push_at(t(1), Op::Acquire(m), Loc::new(4)).unwrap();
    b.push_at(t(1), Op::Read(y), Loc::new(5)).unwrap();
    b.push_at(t(1), Op::Release(m), Loc::new(6)).unwrap();
    b.push_at(t(1), Op::Acquire(n), Loc::new(7)).unwrap();
    b.push_at(t(1), Op::Release(n), Loc::new(8)).unwrap();
    b.push_at(t(2), Op::Acquire(n), Loc::new(9)).unwrap();
    b.push_at(t(2), Op::Release(n), Loc::new(10)).unwrap();
    b.push_at(t(2), Op::Write(x), Loc::new(11)).unwrap();
    b.finish()
}

/// Figure 3: an execution with a **WDC-race that is not a predictable race**
/// (DC rule (b) orders `rel(m)ᵀ¹ ≺DC rel(m)ᵀ³`; WDC does not).
///
/// ```text
/// Thread 1      Thread 2      Thread 3
/// acq(m)
/// sync(o)
/// rd(x)
/// rel(m)
///               sync(o)
///               sync(p)
///                             acq(m)
///                             sync(p)
///                             rel(m)
///                             wr(x)
/// ```
pub fn figure3() -> Trace {
    let x = X;
    let (o_var, p_var) = (VarId::new(1), VarId::new(2));
    let (m, o, p) = (LockId::new(0), LockId::new(1), LockId::new(2));
    let mut b = TraceBuilder::new();
    b.push_at(t(0), Op::Acquire(m), Loc::new(0)).unwrap();
    sync(&mut b, t(0), o, o_var, 1);
    b.push_at(t(0), Op::Read(x), Loc::new(2)).unwrap();
    b.push_at(t(0), Op::Release(m), Loc::new(3)).unwrap();
    sync(&mut b, t(1), o, o_var, 4);
    sync(&mut b, t(1), p, p_var, 5);
    b.push_at(t(2), Op::Acquire(m), Loc::new(6)).unwrap();
    sync(&mut b, t(2), p, p_var, 7);
    b.push_at(t(2), Op::Release(m), Loc::new(8)).unwrap();
    b.push_at(t(2), Op::Write(x), Loc::new(9)).unwrap();
    b.finish()
}

/// Figure 4(a): the running example for how SmartTrack-DC works (§4.2).
///
/// No analysis reports a race; SmartTrack-DC takes [Read Share] at Thread 2's
/// `rd(x)` and [Write Shared] at Thread 3's `wr(x)`.
///
/// ```text
/// Thread 1      Thread 2      Thread 3
/// acq(p)
/// acq(m)
/// acq(n)
/// wr(x)
/// rel(n)
/// rel(m)
///               acq(m)
///               rd(x)
/// rel(p)
///               rel(m)
///               sync(o)
///                             sync(o)
///                             acq(p)
///                             wr(x)
///                             rel(p)
/// ```
pub fn figure4a() -> Trace {
    let x = X;
    let o_var = VarId::new(1);
    let (p, m, n, o) = (
        LockId::new(0),
        LockId::new(1),
        LockId::new(2),
        LockId::new(3),
    );
    let mut b = TraceBuilder::new();
    b.push_at(t(0), Op::Acquire(p), Loc::new(0)).unwrap();
    b.push_at(t(0), Op::Acquire(m), Loc::new(1)).unwrap();
    b.push_at(t(0), Op::Acquire(n), Loc::new(2)).unwrap();
    b.push_at(t(0), Op::Write(x), Loc::new(3)).unwrap();
    b.push_at(t(0), Op::Release(n), Loc::new(4)).unwrap();
    b.push_at(t(0), Op::Release(m), Loc::new(5)).unwrap();
    b.push_at(t(1), Op::Acquire(m), Loc::new(6)).unwrap();
    b.push_at(t(1), Op::Read(x), Loc::new(7)).unwrap();
    b.push_at(t(0), Op::Release(p), Loc::new(8)).unwrap();
    b.push_at(t(1), Op::Release(m), Loc::new(9)).unwrap();
    sync(&mut b, t(1), o, o_var, 10);
    sync(&mut b, t(2), o, o_var, 11);
    b.push_at(t(2), Op::Acquire(p), Loc::new(12)).unwrap();
    b.push_at(t(2), Op::Write(x), Loc::new(13)).unwrap();
    b.push_at(t(2), Op::Release(p), Loc::new(14)).unwrap();
    b.finish()
}

/// Figure 4(b): motivates [Read Share] where FTO would take [Read Exclusive].
///
/// Taking [Read Exclusive] at Thread 2's `rd(x)` would lose Thread 1's
/// critical section on `m` and miss the DC ordering
/// `rel(m)ᵀ¹ ≺DC wr(x)ᵀ³`. No analysis reports a race.
pub fn figure4b() -> Trace {
    let x = X;
    let (o_var, p_var) = (VarId::new(1), VarId::new(2));
    let (m, o, p) = (LockId::new(0), LockId::new(1), LockId::new(2));
    let mut b = TraceBuilder::new();
    b.push_at(t(0), Op::Acquire(m), Loc::new(0)).unwrap();
    b.push_at(t(0), Op::Read(x), Loc::new(1)).unwrap();
    sync(&mut b, t(0), o, o_var, 2);
    sync(&mut b, t(1), o, o_var, 3);
    b.push_at(t(1), Op::Read(x), Loc::new(4)).unwrap();
    sync(&mut b, t(1), p, p_var, 5);
    b.push_at(t(0), Op::Release(m), Loc::new(6)).unwrap();
    sync(&mut b, t(2), p, p_var, 7);
    b.push_at(t(2), Op::Acquire(m), Loc::new(8)).unwrap();
    b.push_at(t(2), Op::Write(x), Loc::new(9)).unwrap();
    b.push_at(t(2), Op::Release(m), Loc::new(10)).unwrap();
    b.finish()
}

/// Figure 4(c): motivates the "extra" metadata `Ewx`/`Erx`.
///
/// At Thread 2's `wr(x)`, SmartTrack-DC overwrites `Lwx`/`Lrx` with the empty
/// CS list, losing Thread 1's critical section on `m`; the extra metadata must
/// carry it to Thread 3's `rd(x)`. No analysis reports a race.
pub fn figure4c() -> Trace {
    let x = X;
    let (o_var, p_var) = (VarId::new(1), VarId::new(2));
    let (m, o, p) = (LockId::new(0), LockId::new(1), LockId::new(2));
    let mut b = TraceBuilder::new();
    b.push_at(t(0), Op::Acquire(m), Loc::new(0)).unwrap();
    b.push_at(t(0), Op::Write(x), Loc::new(1)).unwrap();
    sync(&mut b, t(0), o, o_var, 2);
    sync(&mut b, t(1), o, o_var, 3);
    b.push_at(t(1), Op::Write(x), Loc::new(4)).unwrap();
    sync(&mut b, t(1), p, p_var, 5);
    b.push_at(t(0), Op::Release(m), Loc::new(6)).unwrap();
    sync(&mut b, t(2), p, p_var, 7);
    b.push_at(t(2), Op::Acquire(m), Loc::new(8)).unwrap();
    b.push_at(t(2), Op::Read(x), Loc::new(9)).unwrap();
    b.push_at(t(2), Op::Release(m), Loc::new(10)).unwrap();
    b.finish()
}

/// Figure 4(d): the second execution motivating `Ewx`/`Erx`, with a read in
/// Thread 1's critical section and writes by Threads 2 and 3.
pub fn figure4d() -> Trace {
    let x = X;
    let (o_var, p_var) = (VarId::new(1), VarId::new(2));
    let (m, o, p) = (LockId::new(0), LockId::new(1), LockId::new(2));
    let mut b = TraceBuilder::new();
    b.push_at(t(0), Op::Acquire(m), Loc::new(0)).unwrap();
    b.push_at(t(0), Op::Read(x), Loc::new(1)).unwrap();
    sync(&mut b, t(0), o, o_var, 2);
    sync(&mut b, t(1), o, o_var, 3);
    b.push_at(t(1), Op::Write(x), Loc::new(4)).unwrap();
    sync(&mut b, t(1), p, p_var, 5);
    b.push_at(t(0), Op::Release(m), Loc::new(6)).unwrap();
    sync(&mut b, t(2), p, p_var, 7);
    b.push_at(t(2), Op::Acquire(m), Loc::new(8)).unwrap();
    b.push_at(t(2), Op::Write(x), Loc::new(9)).unwrap();
    b.push_at(t(2), Op::Release(m), Loc::new(10)).unwrap();
    b.finish()
}

/// All paper figures with their names, for table-driven tests.
pub fn all_figures() -> Vec<(&'static str, Trace)> {
    vec![
        ("figure1", figure1()),
        ("figure2", figure2()),
        ("figure3", figure3()),
        ("figure4a", figure4a()),
        ("figure4b", figure4b()),
        ("figure4c", figure4c()),
        ("figure4d", figure4d()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_are_well_formed() {
        for (name, tr) in all_figures() {
            assert!(!tr.is_empty(), "{name} should have events");
            // Re-validating from raw events must succeed.
            Trace::from_events(tr.events().iter().copied())
                .unwrap_or_else(|e| panic!("{name} malformed: {e}"));
        }
    }

    #[test]
    fn figure1_shape() {
        let tr = figure1();
        assert_eq!(tr.len(), 8);
        assert_eq!(tr.num_threads(), 2);
        assert_eq!(tr.num_locks(), 1);
        assert_eq!(tr.num_vars(), 3);
    }

    #[test]
    fn figure1_witness_is_predicted_trace_shaped() {
        let tr = figure1();
        let w = figure1_witness();
        // Witness events are a subset of the original trace's events
        // (same thread/op pairs).
        for e in w.events() {
            assert!(
                tr.events().iter().any(|o| o.tid == e.tid && o.op == e.op),
                "witness event {e} not in original"
            );
        }
        // The last two events are the conflicting pair, consecutive.
        let n = w.len();
        assert!(w.events()[n - 2].conflicts_with(&w.events()[n - 1]));
    }

    #[test]
    fn figure3_has_three_threads_and_three_locks() {
        let tr = figure3();
        assert_eq!(tr.num_threads(), 3);
        assert_eq!(tr.num_locks(), 3);
    }

    #[test]
    fn figure4a_interleaves_release_p_after_read() {
        let tr = figure4a();
        // rel(p) by T1 must come after rd(x) by T2 (paper narrative relies on
        // p being unreleased at the read).
        let rd_idx = tr
            .iter()
            .position(|(_, e)| e.tid == t(1) && e.op == Op::Read(X))
            .unwrap();
        let relp_idx = tr
            .iter()
            .position(|(_, e)| e.tid == t(0) && e.op == Op::Release(LockId::new(0)))
            .unwrap();
        assert!(relp_idx > rd_idx);
    }
}
