//! Streaming well-formedness validation.
//!
//! [`StreamValidator`] is the event-at-a-time core of trace validation
//! (paper §2.1: a thread only acquires a free lock and only releases a lock
//! it holds, plus fork/join sanity). It holds no event storage, so it can
//! run over unbounded streams: [`crate::TraceBuilder`] layers event
//! retention on top of it for offline traces, and the streaming analysis
//! sessions in `smarttrack-detect` use it directly.

use std::collections::HashMap;

use smarttrack_clock::ThreadId;

use crate::{BarrierId, Event, EventId, LockId, Op, TraceError};

/// Current ownership of one lock: exclusive (a plain `acq` or an `acqw`)
/// or shared by any number of read-mode holders. A lock with no entry in
/// the holder table is free. Dual-mode holds by one thread (read while
/// writing, or vice versa) are malformed, as is re-entrant read-acquisition.
#[derive(Clone, Debug, PartialEq, Eq)]
enum LockHolder {
    /// Held exclusively by one thread.
    Writer(ThreadId),
    /// Held in read (shared) mode by these threads (non-empty, no dups).
    Readers(Vec<ThreadId>),
}

impl LockHolder {
    /// A thread to blame in `AcquireHeldLock` errors.
    fn representative(&self) -> ThreadId {
        match self {
            LockHolder::Writer(t) => *t,
            LockHolder::Readers(ts) => ts[0],
        }
    }

    /// Whether `t` holds the lock in any mode.
    fn held_by(&self, t: ThreadId) -> bool {
        match self {
            LockHolder::Writer(w) => *w == t,
            LockHolder::Readers(ts) => ts.contains(&t),
        }
    }
}

/// Per-barrier party accounting for the round rules (see [`Op::BarrierEnter`]):
/// a round *gathers* entering threads until the first exit, then *drains* —
/// every gathered thread must exit exactly once before anyone may enter
/// again, so the parties of each round match.
#[derive(Clone, Debug, Default)]
struct BarrierParties {
    /// Threads that entered the current round (in entry order).
    entered: Vec<ThreadId>,
    /// Threads of the round that have exited so far (non-empty = draining).
    exited: Vec<ThreadId>,
}

/// Incremental well-formedness checker over an event stream.
///
/// Feed events in order with [`admit`](StreamValidator::admit); the
/// validator tracks lock ownership, fork/join lifecycles, and the id-space
/// bounds ([`num_threads`](StreamValidator::num_threads), …) that a
/// [`Trace`](crate::Trace) reports, without retaining the events
/// themselves.
///
/// # Examples
///
/// ```
/// use smarttrack_trace::{Event, Op, StreamValidator, ThreadId, LockId};
///
/// let mut v = StreamValidator::new();
/// let t0 = ThreadId::new(0);
/// let m = LockId::new(0);
/// v.admit(&Event::new(t0, Op::Acquire(m)))?;
/// assert!(v.admit(&Event::new(ThreadId::new(1), Op::Acquire(m))).is_err());
/// assert_eq!(v.len(), 1); // the rejected event is not admitted
/// # Ok::<(), smarttrack_trace::TraceError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct StreamValidator {
    lock_holder: HashMap<LockId, LockHolder>,
    barriers: HashMap<BarrierId, BarrierParties>,
    started: Vec<bool>,
    forked: Vec<bool>,
    joined: Vec<bool>,
    admitted: usize,
    num_threads: usize,
    num_vars: usize,
    num_locks: usize,
    num_volatiles: usize,
    num_condvars: usize,
    num_barriers: usize,
}

impl StreamValidator {
    /// Creates a validator that has seen no events.
    pub fn new() -> Self {
        StreamValidator::default()
    }

    fn mark_thread(&mut self, t: ThreadId) {
        let i = t.index();
        if i >= self.started.len() {
            self.started.resize(i + 1, false);
            self.forked.resize(i + 1, false);
            self.joined.resize(i + 1, false);
        }
        self.num_threads = self.num_threads.max(i + 1);
    }

    /// Validates and accounts for the next event of the stream.
    ///
    /// On success the event is *admitted*: it gets the next sequential
    /// [`EventId`] (returned) and updates the lock/thread state. A rejected
    /// event leaves the validator unchanged, so a caller may skip it and
    /// continue.
    ///
    /// # Errors
    ///
    /// Returns the [`TraceError`] describing the violated well-formedness
    /// rule, with `at` set to the stream position.
    pub fn admit(&mut self, e: &Event) -> Result<EventId, TraceError> {
        let at = self.admitted;
        // Validation phase: reads only, so a rejected event really does
        // leave the validator unchanged (the tables may be shorter than a
        // rejected event's thread index — treat missing entries as false).
        let flag = |v: &[bool], t: ThreadId| v.get(t.index()).copied().unwrap_or(false);
        if flag(&self.joined, e.tid) {
            return Err(TraceError::InvalidJoin { at, target: e.tid });
        }
        match e.op {
            Op::Acquire(m) | Op::AcqWrite(m) => {
                if let Some(holder) = self.lock_holder.get(&m) {
                    return Err(TraceError::AcquireHeldLock {
                        at,
                        tid: e.tid,
                        lock: m,
                        holder: holder.representative(),
                    });
                }
            }
            Op::AcqRead(m) => {
                // Read-acquisition is compatible with other readers, but not
                // with a writer and not re-entrantly with itself.
                match self.lock_holder.get(&m) {
                    Some(LockHolder::Writer(w)) => {
                        return Err(TraceError::AcquireHeldLock {
                            at,
                            tid: e.tid,
                            lock: m,
                            holder: *w,
                        });
                    }
                    Some(LockHolder::Readers(ts)) if ts.contains(&e.tid) => {
                        return Err(TraceError::AcquireHeldLock {
                            at,
                            tid: e.tid,
                            lock: m,
                            holder: e.tid,
                        });
                    }
                    _ => {}
                }
            }
            Op::TryAcqFail(m) => {
                // A failed trylock is a no-op and carries no precondition at
                // all. We do NOT require the lock to be held by someone
                // else (the contender may have released it between the
                // failure and the moment the failure was serialized), and
                // we do NOT reject a failure against the thread's *own*
                // hold: in the non-reentrant model that is exactly the
                // probe that fails — a holder's re-`try_lock` returns
                // `WouldBlock`, as does a read-holder's `try_write`
                // upgrade attempt — and live captures record both.
                let _ = m;
            }
            Op::Release(m) => {
                if !self.lock_holder.get(&m).is_some_and(|h| h.held_by(e.tid)) {
                    return Err(TraceError::ReleaseUnheldLock {
                        at,
                        tid: e.tid,
                        lock: m,
                    });
                }
            }
            Op::Fork(child) => {
                if child == e.tid {
                    return Err(TraceError::SelfForkJoin { at, tid: e.tid });
                }
                if flag(&self.forked, child) || flag(&self.started, child) {
                    return Err(TraceError::InvalidFork { at, target: child });
                }
            }
            Op::Join(child) => {
                if child == e.tid {
                    return Err(TraceError::SelfForkJoin { at, tid: e.tid });
                }
                if flag(&self.joined, child) {
                    return Err(TraceError::InvalidJoin { at, target: child });
                }
            }
            Op::Wait(_, m) => {
                // Wait is an atomic release-and-reacquire of the monitor:
                // the thread must hold it exclusively (a read-mode hold is
                // not a monitor) and still holds it afterwards.
                if self.lock_holder.get(&m) != Some(&LockHolder::Writer(e.tid)) {
                    return Err(TraceError::WaitWithoutLock {
                        at,
                        tid: e.tid,
                        lock: m,
                    });
                }
            }
            Op::BarrierEnter(b) => {
                if let Some(parties) = self.barriers.get(&b) {
                    if !parties.exited.is_empty() {
                        // Draining: the previous round's parties must all
                        // exit before a new round may gather.
                        return Err(TraceError::BarrierEnterWhileDraining {
                            at,
                            tid: e.tid,
                            barrier: b,
                        });
                    }
                    if parties.entered.contains(&e.tid) {
                        return Err(TraceError::BarrierReenter {
                            at,
                            tid: e.tid,
                            barrier: b,
                        });
                    }
                }
            }
            Op::BarrierExit(b) => {
                let pending = self.barriers.get(&b).is_some_and(|parties| {
                    parties.entered.contains(&e.tid) && !parties.exited.contains(&e.tid)
                });
                if !pending {
                    return Err(TraceError::BarrierExitWithoutEnter {
                        at,
                        tid: e.tid,
                        barrier: b,
                    });
                }
            }
            Op::Read(_)
            | Op::Write(_)
            | Op::VolatileRead(_)
            | Op::VolatileWrite(_)
            | Op::Notify(_)
            | Op::NotifyAll(_) => {}
        }
        // Admission phase: the event is valid, record its effects.
        self.mark_thread(e.tid);
        match e.op {
            Op::Acquire(m) | Op::AcqWrite(m) => {
                self.lock_holder.insert(m, LockHolder::Writer(e.tid));
                self.num_locks = self.num_locks.max(m.index() + 1);
            }
            Op::AcqRead(m) => {
                match self
                    .lock_holder
                    .entry(m)
                    .or_insert_with(|| LockHolder::Readers(Vec::new()))
                {
                    LockHolder::Readers(ts) => ts.push(e.tid),
                    LockHolder::Writer(_) => unreachable!("validated above"),
                }
                self.num_locks = self.num_locks.max(m.index() + 1);
            }
            Op::TryAcqFail(m) => {
                // No ownership change; only the id-space bound widens.
                self.num_locks = self.num_locks.max(m.index() + 1);
            }
            Op::Release(m) => {
                let drop_entry = match self.lock_holder.get_mut(&m) {
                    Some(LockHolder::Writer(_)) => true,
                    Some(LockHolder::Readers(ts)) => {
                        ts.retain(|&t| t != e.tid);
                        ts.is_empty()
                    }
                    None => unreachable!("validated above"),
                };
                if drop_entry {
                    self.lock_holder.remove(&m);
                }
                self.num_locks = self.num_locks.max(m.index() + 1);
            }
            Op::Read(x) | Op::Write(x) => {
                self.num_vars = self.num_vars.max(x.index() + 1);
            }
            Op::VolatileRead(v) | Op::VolatileWrite(v) => {
                self.num_volatiles = self.num_volatiles.max(v.index() + 1);
            }
            Op::Fork(child) => {
                self.mark_thread(child);
                self.forked[child.index()] = true;
            }
            Op::Join(child) => {
                self.mark_thread(child);
                self.joined[child.index()] = true;
            }
            Op::Wait(c, m) => {
                // The monitor stays held; only the id-space bounds widen.
                self.num_condvars = self.num_condvars.max(c.index() + 1);
                self.num_locks = self.num_locks.max(m.index() + 1);
            }
            Op::Notify(c) | Op::NotifyAll(c) => {
                self.num_condvars = self.num_condvars.max(c.index() + 1);
            }
            Op::BarrierEnter(b) => {
                self.barriers.entry(b).or_default().entered.push(e.tid);
                self.num_barriers = self.num_barriers.max(b.index() + 1);
            }
            Op::BarrierExit(b) => {
                let parties = self.barriers.get_mut(&b).expect("validated above");
                parties.exited.push(e.tid);
                if parties.exited.len() == parties.entered.len() {
                    // Round complete: parties matched, a new round may gather.
                    parties.entered.clear();
                    parties.exited.clear();
                }
                self.num_barriers = self.num_barriers.max(b.index() + 1);
            }
        }
        self.started[e.tid.index()] = true;
        self.admitted += 1;
        Ok(EventId::new(at as u32))
    }

    /// Number of events admitted so far.
    pub fn len(&self) -> usize {
        self.admitted
    }

    /// Returns `true` if no events have been admitted.
    pub fn is_empty(&self) -> bool {
        self.admitted == 0
    }

    /// Number of distinct threads seen (max index + 1).
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Number of distinct shared variables seen (max index + 1).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of distinct locks seen (max index + 1).
    pub fn num_locks(&self) -> usize {
        self.num_locks
    }

    /// Number of distinct volatile variables seen (max index + 1).
    pub fn num_volatiles(&self) -> usize {
        self.num_volatiles
    }

    /// Number of distinct condition variables seen (max index + 1).
    pub fn num_condvars(&self) -> usize {
        self.num_condvars
    }

    /// Number of distinct barriers seen (max index + 1).
    pub fn num_barriers(&self) -> usize {
        self.num_barriers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarId;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn rejection_leaves_state_unchanged() {
        let mut v = StreamValidator::new();
        v.admit(&Event::new(t(0), Op::Acquire(LockId::new(0))))
            .unwrap();
        let before = v.len();
        assert!(v
            .admit(&Event::new(t(1), Op::Acquire(LockId::new(0))))
            .is_err());
        assert_eq!(v.len(), before);
        // A rejected event from a brand-new thread must not widen the
        // id-space bounds either.
        assert_eq!(v.num_threads(), 1);
        assert!(v
            .admit(&Event::new(t(99), Op::Release(LockId::new(7))))
            .is_err());
        assert_eq!(v.num_threads(), 1);
        assert_eq!(v.num_locks(), 1);
        // The same lock can still be released by the real holder.
        v.admit(&Event::new(t(0), Op::Release(LockId::new(0))))
            .unwrap();
        // And then acquired by the other thread.
        v.admit(&Event::new(t(1), Op::Acquire(LockId::new(0))))
            .unwrap();
    }

    #[test]
    fn wait_requires_the_monitor_held() {
        use crate::{CondId, TraceError};
        let c = CondId::new(0);
        let m = LockId::new(0);
        let mut v = StreamValidator::new();
        assert!(matches!(
            v.admit(&Event::new(t(0), Op::Wait(c, m))),
            Err(TraceError::WaitWithoutLock { .. })
        ));
        v.admit(&Event::new(t(0), Op::Acquire(m))).unwrap();
        // Another thread holding is not enough.
        assert!(v.admit(&Event::new(t(1), Op::Wait(c, m))).is_err());
        v.admit(&Event::new(t(0), Op::Wait(c, m))).unwrap();
        // The monitor stays held across the wait.
        v.admit(&Event::new(t(0), Op::Release(m))).unwrap();
        assert_eq!(v.num_condvars(), 1);
    }

    #[test]
    fn notify_needs_no_lock() {
        let mut v = StreamValidator::new();
        v.admit(&Event::new(t(0), Op::Notify(crate::CondId::new(3))))
            .unwrap();
        v.admit(&Event::new(t(1), Op::NotifyAll(crate::CondId::new(1))))
            .unwrap();
        assert_eq!(v.num_condvars(), 4);
    }

    #[test]
    fn barrier_round_parties_must_match() {
        use crate::{BarrierId, TraceError};
        let b = BarrierId::new(0);
        let mut v = StreamValidator::new();
        // Exit without enter.
        assert!(matches!(
            v.admit(&Event::new(t(0), Op::BarrierExit(b))),
            Err(TraceError::BarrierExitWithoutEnter { .. })
        ));
        v.admit(&Event::new(t(0), Op::BarrierEnter(b))).unwrap();
        // Double enter.
        assert!(matches!(
            v.admit(&Event::new(t(0), Op::BarrierEnter(b))),
            Err(TraceError::BarrierReenter { .. })
        ));
        v.admit(&Event::new(t(1), Op::BarrierEnter(b))).unwrap();
        v.admit(&Event::new(t(0), Op::BarrierExit(b))).unwrap();
        // Draining: a new enter must wait for the round to finish.
        assert!(matches!(
            v.admit(&Event::new(t(2), Op::BarrierEnter(b))),
            Err(TraceError::BarrierEnterWhileDraining { .. })
        ));
        // Double exit.
        assert!(v.admit(&Event::new(t(0), Op::BarrierExit(b))).is_err());
        v.admit(&Event::new(t(1), Op::BarrierExit(b))).unwrap();
        // Round drained: fresh rounds (with different parties) may gather.
        v.admit(&Event::new(t(2), Op::BarrierEnter(b))).unwrap();
        v.admit(&Event::new(t(2), Op::BarrierExit(b))).unwrap();
        assert_eq!(v.num_barriers(), 1);
    }

    #[test]
    fn readers_share_and_writers_exclude() {
        use crate::TraceError;
        let m = LockId::new(0);
        let mut v = StreamValidator::new();
        // Two concurrent readers are fine.
        v.admit(&Event::new(t(0), Op::AcqRead(m))).unwrap();
        v.admit(&Event::new(t(1), Op::AcqRead(m))).unwrap();
        // A writer (either spelling) cannot break in while readers hold.
        assert!(matches!(
            v.admit(&Event::new(t(2), Op::AcqWrite(m))),
            Err(TraceError::AcquireHeldLock { .. })
        ));
        assert!(v.admit(&Event::new(t(2), Op::Acquire(m))).is_err());
        // Re-entrant read-acquisition by a holder is malformed.
        assert!(matches!(
            v.admit(&Event::new(t(0), Op::AcqRead(m))),
            Err(TraceError::AcquireHeldLock { holder, .. }) if holder == t(0)
        ));
        // A non-holder cannot release; each reader releases once.
        assert!(v.admit(&Event::new(t(2), Op::Release(m))).is_err());
        v.admit(&Event::new(t(0), Op::Release(m))).unwrap();
        assert!(v.admit(&Event::new(t(0), Op::Release(m))).is_err());
        v.admit(&Event::new(t(1), Op::Release(m))).unwrap();
        // Fully drained: a writer may now take the lock, excluding readers.
        v.admit(&Event::new(t(2), Op::AcqWrite(m))).unwrap();
        assert!(matches!(
            v.admit(&Event::new(t(0), Op::AcqRead(m))),
            Err(TraceError::AcquireHeldLock { holder, .. }) if holder == t(2)
        ));
        v.admit(&Event::new(t(2), Op::Release(m))).unwrap();
        assert_eq!(v.num_locks(), 1);
    }

    #[test]
    fn try_fail_carries_no_precondition() {
        let m = LockId::new(0);
        let mut v = StreamValidator::new();
        // Failing against a free lock is tolerated (the contender may have
        // released between the failure and its serialization).
        v.admit(&Event::new(t(0), Op::TryAcqFail(m))).unwrap();
        v.admit(&Event::new(t(1), Op::AcqRead(m))).unwrap();
        // Another thread's failure against a held lock is the normal case.
        v.admit(&Event::new(t(0), Op::TryAcqFail(m))).unwrap();
        // The holder's own probe fails too in the non-reentrant model: a
        // read-holder's try_write upgrade attempt, or a mutex holder's
        // re-try_lock, both return WouldBlock and both get recorded.
        v.admit(&Event::new(t(1), Op::TryAcqFail(m))).unwrap();
        v.admit(&Event::new(t(1), Op::Release(m))).unwrap();
        v.admit(&Event::new(t(1), Op::Acquire(m))).unwrap();
        v.admit(&Event::new(t(1), Op::TryAcqFail(m))).unwrap();
        // Holds are untouched by any of the probes.
        v.admit(&Event::new(t(1), Op::Release(m))).unwrap();
        assert_eq!(v.num_locks(), 1);
    }

    #[test]
    fn wait_requires_an_exclusive_hold() {
        use crate::{CondId, TraceError};
        let c = CondId::new(0);
        let m = LockId::new(0);
        let mut v = StreamValidator::new();
        v.admit(&Event::new(t(0), Op::AcqRead(m))).unwrap();
        // A read-mode hold is not a monitor.
        assert!(matches!(
            v.admit(&Event::new(t(0), Op::Wait(c, m))),
            Err(TraceError::WaitWithoutLock { .. })
        ));
        v.admit(&Event::new(t(0), Op::Release(m))).unwrap();
        v.admit(&Event::new(t(0), Op::AcqWrite(m))).unwrap();
        v.admit(&Event::new(t(0), Op::Wait(c, m))).unwrap();
        v.admit(&Event::new(t(0), Op::Release(m))).unwrap();
    }

    #[test]
    fn ids_are_sequential_over_admitted_events() {
        let mut v = StreamValidator::new();
        let a = v.admit(&Event::new(t(0), Op::Read(VarId::new(0)))).unwrap();
        let b = v
            .admit(&Event::new(t(1), Op::Write(VarId::new(3))))
            .unwrap();
        assert_eq!(a, EventId::new(0));
        assert_eq!(b, EventId::new(1));
        assert_eq!(v.num_threads(), 2);
        assert_eq!(v.num_vars(), 4);
    }
}
