//! Plain-text serialization and pretty-printing of traces.
//!
//! The line format is `T<tid> <op> [<arg>] [@L<loc>]`, one event per line:
//!
//! ```text
//! T0 rd x0 @L0
//! T0 acq m0
//! T1 wr x0 @L7
//! T0 fork T2
//! T1 vwr v3
//! ```
//!
//! [`render_columns`] produces the paper's figure layout (one column per
//! thread, trace order top to bottom) for small traces.

use std::error::Error;
use std::fmt;

use smarttrack_clock::ThreadId;

use crate::{BarrierId, CondId, Event, Loc, LockId, Op, Trace, TraceError, VarId};

/// Error from [`parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// The parsed events do not form a well-formed trace.
    Malformed(TraceError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadLine { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Malformed(e) => write!(f, "malformed trace: {e}"),
        }
    }
}

impl Error for ParseError {}

impl From<TraceError> for ParseError {
    fn from(e: TraceError) -> Self {
        ParseError::Malformed(e)
    }
}

/// Renders a trace in the line format (inverse of [`parse`]).
///
/// # Examples
///
/// ```
/// use smarttrack_trace::{fmt, paper};
///
/// let text = fmt::render(&paper::figure1());
/// assert!(text.starts_with("T0 rd x0"));
/// assert_eq!(fmt::parse(&text)?, paper::figure1());
/// # Ok::<(), smarttrack_trace::fmt::ParseError>(())
/// ```
pub fn render(trace: &Trace) -> String {
    let mut out = String::new();
    for e in trace.events() {
        render_event(&mut out, e);
        out.push('\n');
    }
    out
}

fn render_event(out: &mut String, e: &Event) {
    use fmt::Write;
    let _ = match e.op {
        Op::Read(x) => write!(out, "T{} rd x{}", e.tid.raw(), x.raw()),
        Op::Write(x) => write!(out, "T{} wr x{}", e.tid.raw(), x.raw()),
        Op::Acquire(m) => write!(out, "T{} acq m{}", e.tid.raw(), m.raw()),
        Op::Release(m) => write!(out, "T{} rel m{}", e.tid.raw(), m.raw()),
        Op::AcqRead(m) => write!(out, "T{} acqr m{}", e.tid.raw(), m.raw()),
        Op::AcqWrite(m) => write!(out, "T{} acqw m{}", e.tid.raw(), m.raw()),
        Op::TryAcqFail(m) => write!(out, "T{} tryf m{}", e.tid.raw(), m.raw()),
        Op::Fork(t) => write!(out, "T{} fork T{}", e.tid.raw(), t.raw()),
        Op::Join(t) => write!(out, "T{} join T{}", e.tid.raw(), t.raw()),
        Op::VolatileRead(v) => write!(out, "T{} vrd v{}", e.tid.raw(), v.raw()),
        Op::VolatileWrite(v) => write!(out, "T{} vwr v{}", e.tid.raw(), v.raw()),
        Op::Wait(c, m) => write!(out, "T{} wait c{} m{}", e.tid.raw(), c.raw(), m.raw()),
        Op::Notify(c) => write!(out, "T{} ntf c{}", e.tid.raw(), c.raw()),
        Op::NotifyAll(c) => write!(out, "T{} nfa c{}", e.tid.raw(), c.raw()),
        Op::BarrierEnter(b) => write!(out, "T{} bent b{}", e.tid.raw(), b.raw()),
        Op::BarrierExit(b) => write!(out, "T{} bext b{}", e.tid.raw(), b.raw()),
    };
    if !e.loc.is_unknown() {
        let _ = write!(out, " @L{}", e.loc.raw());
    }
}

fn parse_prefixed(token: &str, prefix: char, line: usize) -> Result<u32, ParseError> {
    let rest = token
        .strip_prefix(prefix)
        .ok_or_else(|| ParseError::BadLine {
            line,
            message: format!("expected `{prefix}<n>`, got `{token}`"),
        })?;
    rest.parse().map_err(|_| ParseError::BadLine {
        line,
        message: format!("bad number in `{token}`"),
    })
}

/// Parses the line format produced by [`render`].
///
/// Blank lines and lines starting with `#` are ignored.
///
/// # Errors
///
/// Returns [`ParseError::BadLine`] for unparseable lines and
/// [`ParseError::Malformed`] if the events violate trace well-formedness.
///
/// # Examples
///
/// ```
/// use smarttrack_trace::fmt;
///
/// let trace = fmt::parse("T0 wr x0 @L3\nT1 rd x0\n")?;
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.num_threads(), 2);
/// # Ok::<(), smarttrack_trace::fmt::ParseError>(())
/// ```
pub fn parse(text: &str) -> Result<Trace, ParseError> {
    let mut builder = crate::TraceBuilder::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tid_tok = parts.next().expect("nonempty line has a token");
        let tid = ThreadId::new(parse_prefixed(tid_tok, 'T', line_no)?);
        let op_tok = parts.next().ok_or_else(|| ParseError::BadLine {
            line: line_no,
            message: "missing operation".into(),
        })?;
        let arg_tok = parts.next().ok_or_else(|| ParseError::BadLine {
            line: line_no,
            message: "missing operand".into(),
        })?;
        let op = match op_tok {
            "rd" => Op::Read(VarId::new(parse_prefixed(arg_tok, 'x', line_no)?)),
            "wr" => Op::Write(VarId::new(parse_prefixed(arg_tok, 'x', line_no)?)),
            "acq" => Op::Acquire(LockId::new(parse_prefixed(arg_tok, 'm', line_no)?)),
            "rel" => Op::Release(LockId::new(parse_prefixed(arg_tok, 'm', line_no)?)),
            "acqr" => Op::AcqRead(LockId::new(parse_prefixed(arg_tok, 'm', line_no)?)),
            "acqw" => Op::AcqWrite(LockId::new(parse_prefixed(arg_tok, 'm', line_no)?)),
            "tryf" => Op::TryAcqFail(LockId::new(parse_prefixed(arg_tok, 'm', line_no)?)),
            "fork" => Op::Fork(ThreadId::new(parse_prefixed(arg_tok, 'T', line_no)?)),
            "join" => Op::Join(ThreadId::new(parse_prefixed(arg_tok, 'T', line_no)?)),
            "vrd" => Op::VolatileRead(VarId::new(parse_prefixed(arg_tok, 'v', line_no)?)),
            "vwr" => Op::VolatileWrite(VarId::new(parse_prefixed(arg_tok, 'v', line_no)?)),
            "wait" => {
                let c = CondId::new(parse_prefixed(arg_tok, 'c', line_no)?);
                let m_tok = parts.next().ok_or_else(|| ParseError::BadLine {
                    line: line_no,
                    message: "wait needs a monitor operand (`wait c<n> m<n>`)".into(),
                })?;
                Op::Wait(c, LockId::new(parse_prefixed(m_tok, 'm', line_no)?))
            }
            "ntf" => Op::Notify(CondId::new(parse_prefixed(arg_tok, 'c', line_no)?)),
            "nfa" => Op::NotifyAll(CondId::new(parse_prefixed(arg_tok, 'c', line_no)?)),
            "bent" => Op::BarrierEnter(BarrierId::new(parse_prefixed(arg_tok, 'b', line_no)?)),
            "bext" => Op::BarrierExit(BarrierId::new(parse_prefixed(arg_tok, 'b', line_no)?)),
            other => {
                return Err(ParseError::BadLine {
                    line: line_no,
                    message: format!("unknown operation `{other}`"),
                })
            }
        };
        let loc = match parts.next() {
            Some(tok) => {
                let raw = tok.strip_prefix('@').ok_or_else(|| ParseError::BadLine {
                    line: line_no,
                    message: format!("expected `@L<n>`, got `{tok}`"),
                })?;
                Loc::new(parse_prefixed(raw, 'L', line_no)?)
            }
            None => Loc::UNKNOWN,
        };
        builder.push_at(tid, op, loc)?;
    }
    Ok(builder.finish())
}

/// Renders a trace in the paper's figure layout: one column per thread,
/// events in trace order top to bottom.
///
/// Intended for small example traces; columns are sized to the widest
/// operation.
pub fn render_columns(trace: &Trace) -> String {
    let nthreads = trace.num_threads();
    let ops: Vec<String> = trace.events().iter().map(|e| e.op.to_string()).collect();
    let width = ops
        .iter()
        .map(String::len)
        .max()
        .unwrap_or(8)
        .max("Thread 1".len())
        + 2;
    let mut out = String::new();
    for t in 0..nthreads {
        let header = format!("Thread {}", t + 1);
        out.push_str(&format!("{header:<width$}"));
    }
    out.push('\n');
    for (e, op) in trace.events().iter().zip(&ops) {
        for t in 0..nthreads {
            if t == e.tid.index() {
                out.push_str(&format!("{op:<width$}"));
            } else {
                out.push_str(&" ".repeat(width));
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn render_parse_round_trip() {
        let tr = paper::figure3();
        let text = render(&tr);
        let back = parse(&text).expect("round trip parses");
        assert_eq!(tr, back);
    }

    #[test]
    fn parse_accepts_comments_and_blank_lines() {
        let tr = parse("# header\n\nT0 wr x0\nT1 rd x0 @L5\n").unwrap();
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.events()[1].loc, Loc::new(5));
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = parse("T0 wr x0\nT0 oops x0\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine { line: 2, .. }), "{err}");
    }

    #[test]
    fn parse_rejects_malformed_traces() {
        let err = parse("T0 rel m0\n").unwrap_err();
        assert!(matches!(err, ParseError::Malformed(_)), "{err}");
    }

    #[test]
    fn parse_rejects_bad_operand_prefix() {
        let err = parse("T0 rd m0\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine { line: 1, .. }), "{err}");
    }

    #[test]
    fn columns_layout_places_ops_under_threads() {
        let tr = paper::figure1();
        let s = render_columns(&tr);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("Thread 1") && lines[0].contains("Thread 2"));
        assert!(lines[1].starts_with("rd(x0)"));
        // T2's first event is indented into the second column.
        assert!(lines[5].trim_start().starts_with("acq(m0)"));
        assert!(lines[5].starts_with(' '));
    }

    #[test]
    fn round_trip_random_traces() {
        use crate::gen::RandomTraceSpec;
        for seed in 0..5 {
            let tr = RandomTraceSpec {
                volatiles: 2,
                volatile_prob: 0.1,
                fork_join: true,
                events: 300,
                condvars: 2,
                condvar_prob: 0.05,
                barriers: 1,
                barrier_prob: 0.02,
                ..RandomTraceSpec::default()
            }
            .generate(seed);
            assert_eq!(parse(&render(&tr)).unwrap(), tr);
        }
    }

    #[test]
    fn condvar_and_barrier_ops_round_trip() {
        let text = "T0 acq m0\nT1 ntf c0\nT1 nfa c1\nT0 wait c0 m0\nT0 rel m0\n\
                    T0 bent b0\nT1 bent b0\nT0 bext b0\nT1 bext b0\n";
        let tr = parse(text).expect("parses");
        assert_eq!(tr.num_condvars(), 2);
        assert_eq!(tr.num_barriers(), 1);
        assert_eq!(parse(&render(&tr)).unwrap(), tr);
    }

    #[test]
    fn rwlock_ops_round_trip() {
        let text = "T0 acqw m0\nT0 rel m0\nT1 acqr m0\nT2 acqr m0\nT0 tryf m0\n\
                    T1 rel m0\nT2 rel m0\n";
        let tr = parse(text).expect("parses");
        assert_eq!(tr.num_locks(), 1);
        assert_eq!(parse(&render(&tr)).unwrap(), tr);
    }

    #[test]
    fn wait_without_monitor_operand_is_a_bad_line() {
        let err = parse("T0 acq m0\nT0 wait c0\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine { line: 2, .. }), "{err}");
    }
}

/// Writes a trace to a file in the line format.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_file<P: AsRef<std::path::Path>>(trace: &Trace, path: P) -> std::io::Result<()> {
    std::fs::write(path, render(trace))
}

/// Reads a trace from a file in the line format.
///
/// # Errors
///
/// Returns an I/O error wrapped as `InvalidData` for parse failures.
pub fn read_file<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<Trace> {
    let text = std::fs::read_to_string(path)?;
    parse(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod file_tests {
    use super::*;
    use crate::paper;

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("smarttrack-fmt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("figure2.trace");
        let tr = paper::figure2();
        write_file(&tr, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(tr, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_file_reports_parse_errors_as_invalid_data() {
        let dir = std::env::temp_dir().join("smarttrack-fmt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.trace");
        std::fs::write(&path, "T0 oops x0\n").unwrap();
        let err = read_file(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
