use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::ops::Index;

use smarttrack_clock::ThreadId;

use crate::{BarrierId, Event, EventId, Loc, LockId, Op, StreamValidator, VarId};

/// Error produced when an event sequence violates trace well-formedness
/// (paper §2.1: "a thread only acquires a lock that is not held and only
/// releases a lock it holds", plus fork/join sanity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// A thread acquired a lock already held (by itself or another thread).
    AcquireHeldLock {
        /// Index of the offending event.
        at: usize,
        /// Acquiring thread.
        tid: ThreadId,
        /// The lock.
        lock: LockId,
        /// Current holder.
        holder: ThreadId,
    },
    /// A thread released a lock it does not hold.
    ReleaseUnheldLock {
        /// Index of the offending event.
        at: usize,
        /// Releasing thread.
        tid: ThreadId,
        /// The lock.
        lock: LockId,
    },
    /// A thread was forked twice, or forked after it already ran.
    InvalidFork {
        /// Index of the offending event.
        at: usize,
        /// The forked thread.
        target: ThreadId,
    },
    /// A thread executed an event after being joined, or was joined twice.
    InvalidJoin {
        /// Index of the offending event.
        at: usize,
        /// The thread involved.
        target: ThreadId,
    },
    /// A thread forked or joined itself.
    SelfForkJoin {
        /// Index of the offending event.
        at: usize,
        /// The thread.
        tid: ThreadId,
    },
    /// A thread waited on a condition variable without holding its monitor.
    WaitWithoutLock {
        /// Index of the offending event.
        at: usize,
        /// Waiting thread.
        tid: ThreadId,
        /// The monitor it does not hold.
        lock: LockId,
    },
    /// A thread entered a barrier it is already inside (no exit between).
    BarrierReenter {
        /// Index of the offending event.
        at: usize,
        /// The thread.
        tid: ThreadId,
        /// The barrier.
        barrier: BarrierId,
    },
    /// A thread entered a barrier while the previous round was still
    /// draining (parties of a round must all exit before the next gathers).
    BarrierEnterWhileDraining {
        /// Index of the offending event.
        at: usize,
        /// The thread.
        tid: ThreadId,
        /// The barrier.
        barrier: BarrierId,
    },
    /// A thread exited a barrier round it never entered (or exited twice).
    BarrierExitWithoutEnter {
        /// Index of the offending event.
        at: usize,
        /// The thread.
        tid: ThreadId,
        /// The barrier.
        barrier: BarrierId,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::AcquireHeldLock {
                at,
                tid,
                lock,
                holder,
            } => write!(
                f,
                "event {at}: {tid} acquires {lock} already held by {holder}"
            ),
            TraceError::ReleaseUnheldLock { at, tid, lock } => {
                write!(f, "event {at}: {tid} releases {lock} it does not hold")
            }
            TraceError::InvalidFork { at, target } => {
                write!(f, "event {at}: invalid fork of {target}")
            }
            TraceError::InvalidJoin { at, target } => {
                write!(f, "event {at}: invalid join of {target}")
            }
            TraceError::SelfForkJoin { at, tid } => {
                write!(f, "event {at}: {tid} forks or joins itself")
            }
            TraceError::WaitWithoutLock { at, tid, lock } => {
                write!(f, "event {at}: {tid} waits without holding monitor {lock}")
            }
            TraceError::BarrierReenter { at, tid, barrier } => {
                write!(f, "event {at}: {tid} re-enters {barrier} without exiting")
            }
            TraceError::BarrierEnterWhileDraining { at, tid, barrier } => {
                write!(
                    f,
                    "event {at}: {tid} enters {barrier} before the previous round drained"
                )
            }
            TraceError::BarrierExitWithoutEnter { at, tid, barrier } => {
                write!(f, "event {at}: {tid} exits {barrier} it is not inside")
            }
        }
    }
}

impl Error for TraceError {}

/// A well-formed execution trace: a totally ordered list of [`Event`]s.
///
/// Construct traces with [`TraceBuilder`] (which validates well-formedness
/// incrementally), parse them from text with [`crate::fmt::parse`] (or any
/// format via [`crate::formats::parse_bytes`]), or decode them from the
/// compact STB binary format with [`crate::binary::read_stb`]. Streaming
/// consumers that should not materialize a whole trace read events from a
/// [`crate::binary::StbReader`] instead.
///
/// # Examples
///
/// ```
/// use smarttrack_trace::{Op, ThreadId, TraceBuilder, VarId, LockId};
///
/// let t0 = ThreadId::new(0);
/// let m = LockId::new(0);
/// let mut b = TraceBuilder::new();
/// b.push(t0, Op::Acquire(m))?;
/// b.push(t0, Op::Write(VarId::new(0)))?;
/// b.push(t0, Op::Release(m))?;
/// let trace = b.finish();
/// assert_eq!(trace.len(), 3);
/// # Ok::<(), smarttrack_trace::TraceError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<Event>,
    num_threads: usize,
    num_vars: usize,
    num_locks: usize,
    num_volatiles: usize,
    num_condvars: usize,
    num_barriers: usize,
}

impl Trace {
    /// Builds a trace from raw events, validating well-formedness.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] encountered, if any.
    pub fn from_events<I: IntoIterator<Item = Event>>(events: I) -> Result<Self, TraceError> {
        let mut b = TraceBuilder::new();
        for e in events {
            b.push_event(e)?;
        }
        Ok(b.finish())
    }

    /// Number of events.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the trace has no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of distinct threads (max thread index + 1).
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Number of distinct shared variables (max index + 1).
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of distinct locks (max index + 1).
    #[inline]
    pub fn num_locks(&self) -> usize {
        self.num_locks
    }

    /// Number of distinct volatile variables (max index + 1).
    #[inline]
    pub fn num_volatiles(&self) -> usize {
        self.num_volatiles
    }

    /// Number of distinct condition variables (max index + 1).
    #[inline]
    pub fn num_condvars(&self) -> usize {
        self.num_condvars
    }

    /// Number of distinct barriers (max index + 1).
    #[inline]
    pub fn num_barriers(&self) -> usize {
        self.num_barriers
    }

    /// The events in trace order.
    #[inline]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterates `(EventId, &Event)` in trace order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &Event)> {
        self.events
            .iter()
            .enumerate()
            .map(|(i, e)| (EventId::new(i as u32), e))
    }

    /// Returns the event with the given id.
    #[inline]
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// The per-thread projection: event ids executed by `tid`, in order.
    pub fn thread_projection(&self, tid: ThreadId) -> Vec<EventId> {
        self.iter()
            .filter(|(_, e)| e.tid == tid)
            .map(|(id, _)| id)
            .collect()
    }

    /// For every read event, the event id of its last writer (`None` if the
    /// read has no preceding writer). Volatile accesses are not included.
    pub fn last_writers(&self) -> HashMap<EventId, Option<EventId>> {
        let mut last_write: HashMap<VarId, EventId> = HashMap::new();
        let mut out = HashMap::new();
        for (id, e) in self.iter() {
            match e.op {
                Op::Read(x) => {
                    out.insert(id, last_write.get(&x).copied());
                }
                Op::Write(x) => {
                    last_write.insert(x, id);
                }
                _ => {}
            }
        }
        out
    }

    /// For each event, the set of locks held by its thread *at* that event
    /// (the lock of an `acq` counts as held at the acquire; the lock of a
    /// `rel` counts as held at the release).
    pub fn held_locks_series(&self) -> Vec<Vec<LockId>> {
        let mut held: Vec<Vec<LockId>> = vec![Vec::new(); self.num_threads];
        let mut out = Vec::with_capacity(self.len());
        for e in &self.events {
            let h = &mut held[e.tid.index()];
            match e.op {
                Op::Acquire(m) | Op::AcqRead(m) | Op::AcqWrite(m) => {
                    h.push(m);
                    out.push(h.clone());
                }
                Op::Release(m) => {
                    out.push(h.clone());
                    h.retain(|&l| l != m);
                }
                _ => out.push(h.clone()),
            }
        }
        out
    }

    /// Approximate number of bytes needed to represent the trace itself (the
    /// "uninstrumented" memory baseline used by the memory experiments).
    pub fn footprint_bytes(&self) -> usize {
        self.events.capacity() * std::mem::size_of::<Event>() + std::mem::size_of::<Self>()
    }
}

impl Index<EventId> for Trace {
    type Output = Event;

    fn index(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// Incremental, validating builder for [`Trace`]s.
///
/// Events are appended in trace order; lock and fork/join discipline is
/// enforced as events arrive so errors carry the precise offending index.
/// Validation is performed by [`StreamValidator`] (the storage-free
/// streaming core shared with the `smarttrack-detect` analysis sessions);
/// the builder adds event retention on top.
#[derive(Clone, Debug, Default)]
pub struct TraceBuilder {
    events: Vec<Event>,
    validator: StreamValidator,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Appends an event with an unknown source location.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the event violates well-formedness.
    pub fn push(&mut self, tid: ThreadId, op: Op) -> Result<EventId, TraceError> {
        self.push_event(Event::new(tid, op))
    }

    /// Appends an event with a source location.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the event violates well-formedness.
    pub fn push_at(&mut self, tid: ThreadId, op: Op, loc: Loc) -> Result<EventId, TraceError> {
        self.push_event(Event::with_loc(tid, op, loc))
    }

    /// Appends a fully built event.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the event violates well-formedness.
    pub fn push_event(&mut self, e: Event) -> Result<EventId, TraceError> {
        let id = self.validator.admit(&e)?;
        self.events.push(e);
        Ok(id)
    }

    /// Number of events appended so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events have been appended.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finishes the trace. Open critical sections are allowed (an execution
    /// may be observed mid-flight), as in the paper's examples.
    pub fn finish(self) -> Trace {
        Trace {
            events: self.events,
            num_threads: self.validator.num_threads(),
            num_vars: self.validator.num_vars(),
            num_locks: self.validator.num_locks(),
            num_volatiles: self.validator.num_volatiles(),
            num_condvars: self.validator.num_condvars(),
            num_barriers: self.validator.num_barriers(),
        }
    }

    /// A [`Trace`] of everything appended so far, without consuming the
    /// builder. Since the events are already validated, this is a plain
    /// copy — the cheap way for a streaming consumer to re-examine its
    /// prefix (e.g. the windowed oracle analysis running a window).
    ///
    /// For a zero-copy view use [`with_snapshot`](TraceBuilder::with_snapshot).
    pub fn snapshot(&self) -> Trace {
        Trace {
            events: self.events.clone(),
            num_threads: self.validator.num_threads(),
            num_vars: self.validator.num_vars(),
            num_locks: self.validator.num_locks(),
            num_volatiles: self.validator.num_volatiles(),
            num_condvars: self.validator.num_condvars(),
            num_barriers: self.validator.num_barriers(),
        }
    }

    /// Lends the appended events to `f` as a [`Trace`] without copying
    /// them: the event vector is moved into a temporary trace for the
    /// duration of the call and moved back afterwards. This is the
    /// zero-allocation variant of [`snapshot`](TraceBuilder::snapshot) for
    /// streaming consumers that repeatedly re-analyze their growing prefix.
    pub fn with_snapshot<R>(&mut self, f: impl FnOnce(&Trace) -> R) -> R {
        let trace = Trace {
            events: std::mem::take(&mut self.events),
            num_threads: self.validator.num_threads(),
            num_vars: self.validator.num_vars(),
            num_locks: self.validator.num_locks(),
            num_volatiles: self.validator.num_volatiles(),
            num_condvars: self.validator.num_condvars(),
            num_barriers: self.validator.num_barriers(),
        };
        let result = f(&trace);
        self.events = trace.events;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }

    #[test]
    fn builds_well_formed_trace() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Release(m(0))).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap();
        let tr = b.finish();
        assert_eq!(tr.len(), 4);
        assert_eq!(tr.num_threads(), 2);
        assert_eq!(tr.num_vars(), 1);
        assert_eq!(tr.num_locks(), 1);
    }

    #[test]
    fn rejects_double_acquire() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        let err = b.push(t(1), Op::Acquire(m(0))).unwrap_err();
        assert!(matches!(err, TraceError::AcquireHeldLock { holder, .. } if holder == t(0)));
    }

    #[test]
    fn rejects_reentrant_acquire() {
        // The paper's traces model non-reentrant monitors: re-acquisition by
        // the holder is also malformed at the trace level.
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        assert!(b.push(t(0), Op::Acquire(m(0))).is_err());
    }

    #[test]
    fn rejects_release_of_unheld_lock() {
        let mut b = TraceBuilder::new();
        let err = b.push(t(0), Op::Release(m(0))).unwrap_err();
        assert_eq!(
            err,
            TraceError::ReleaseUnheldLock {
                at: 0,
                tid: t(0),
                lock: m(0)
            }
        );
    }

    #[test]
    fn rejects_release_by_non_holder() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        assert!(b.push(t(1), Op::Release(m(0))).is_err());
    }

    #[test]
    fn rejects_fork_of_running_thread() {
        let mut b = TraceBuilder::new();
        b.push(t(1), Op::Read(x(0))).unwrap();
        assert!(matches!(
            b.push(t(0), Op::Fork(t(1))),
            Err(TraceError::InvalidFork { .. })
        ));
    }

    #[test]
    fn rejects_events_after_join() {
        let mut b = TraceBuilder::new();
        b.push(t(1), Op::Read(x(0))).unwrap();
        b.push(t(0), Op::Join(t(1))).unwrap();
        assert!(matches!(
            b.push(t(1), Op::Read(x(0))),
            Err(TraceError::InvalidJoin { .. })
        ));
    }

    #[test]
    fn rejects_self_fork() {
        let mut b = TraceBuilder::new();
        assert!(matches!(
            b.push(t(0), Op::Fork(t(0))),
            Err(TraceError::SelfForkJoin { .. })
        ));
    }

    #[test]
    fn last_writers_track_per_variable() {
        let mut b = TraceBuilder::new();
        let w0 = b.push(t(0), Op::Write(x(0))).unwrap();
        let r0 = b.push(t(1), Op::Read(x(0))).unwrap();
        let r1 = b.push(t(1), Op::Read(x(1))).unwrap();
        let w1 = b.push(t(1), Op::Write(x(0))).unwrap();
        let r2 = b.push(t(0), Op::Read(x(0))).unwrap();
        let _ = w1;
        let tr = b.finish();
        let lw = tr.last_writers();
        assert_eq!(lw[&r0], Some(w0));
        assert_eq!(lw[&r1], None);
        assert_eq!(lw[&r2], Some(w1));
    }

    #[test]
    fn held_locks_series_includes_acquire_and_release() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Acquire(m(0))).unwrap();
        b.push(t(0), Op::Acquire(m(1))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Release(m(1))).unwrap();
        b.push(t(0), Op::Write(x(0))).unwrap();
        b.push(t(0), Op::Release(m(0))).unwrap();
        let tr = b.finish();
        let series = tr.held_locks_series();
        assert_eq!(series[0], vec![m(0)]);
        assert_eq!(series[1], vec![m(0), m(1)]);
        assert_eq!(series[2], vec![m(0), m(1)]);
        assert_eq!(series[3], vec![m(0), m(1)]);
        assert_eq!(series[4], vec![m(0)]);
        assert_eq!(series[5], vec![m(0)]);
    }

    #[test]
    fn thread_projection_preserves_order() {
        let mut b = TraceBuilder::new();
        b.push(t(0), Op::Read(x(0))).unwrap();
        b.push(t(1), Op::Read(x(0))).unwrap();
        b.push(t(0), Op::Write(x(1))).unwrap();
        let tr = b.finish();
        let proj = tr.thread_projection(t(0));
        assert_eq!(proj, vec![EventId::new(0), EventId::new(2)]);
    }
}
