//! Interchange trace formats and format auto-detection.
//!
//! Besides the native line format ([`fmt`](crate::fmt)) and the compact STB
//! binary format ([`binary`](crate::binary)), traces can be read from and
//! written to two text formats used by existing race-detection tooling, so
//! recorded executions from other systems can be analyzed directly:
//!
//! * **STD** ([`parse_std`]/[`render_std`]) — the `RAPID`-style format used
//!   by the WCP authors' tooling and by RoadRunner trace dumps:
//!   one event per line, `<thread>|<operation>(<target>)|<location>`, e.g.
//!   `T0|r(V1)|201`. Operations: `r`/`w` (reads/writes), `acq`/`rel`
//!   (locks), `fork`/`join` (thread lifecycle). Volatile accesses are not
//!   part of the common STD dialect; they round-trip through a `vr`/`vw`
//!   extension that STD-only consumers can treat as unknown lines.
//! * **CSV** ([`parse_csv`]/[`render_csv`]) — `tid,op,target,loc` rows with
//!   a header, for spreadsheet-side inspection of small traces.
//!
//! Identifier mapping: STD and CSV name threads `T<k>`, variables `V<k>`,
//! and locks `L<k>`; the native model uses dense `u32` indices, so names map
//! through their numeric suffix. Parsers accept arbitrary non-numeric names
//! too, interning them in first-appearance order.
//!
//! [`TraceFormat`] enumerates all four formats; [`parse_bytes`] /
//! [`render_bytes`] dispatch over them (including the binary one), and
//! [`read_file`] / [`write_file`] pick the format automatically — by
//! magic-byte sniffing ([`sniff`]) for reads, by file extension
//! ([`format_of_path`]) otherwise. `docs/TRACE_FORMATS.md` at the
//! repository root is the normative spec with a selection guide.
//!
//! # Examples
//!
//! ```
//! use smarttrack_trace::formats;
//!
//! let text = "\
//! T0|r(V0)|10
//! T0|acq(L0)|11
//! T0|rel(L0)|12
//! T1|w(V0)|20
//! ";
//! let trace = formats::parse_std(text)?;
//! assert_eq!(trace.len(), 4);
//! assert_eq!(formats::parse_std(&formats::render_std(&trace))?, trace);
//! # Ok::<(), smarttrack_trace::formats::FormatError>(())
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use smarttrack_clock::ThreadId;

use crate::{BarrierId, CondId, Event, Loc, LockId, Op, Trace, TraceBuilder, TraceError, VarId};

/// Error from the interchange-format parsers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FormatError {
    /// A line (or row) could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// The parsed events do not form a well-formed trace.
    Malformed(TraceError),
    /// A binary (STB) decode failure, rendered to text (the structured form
    /// is [`binary::StbError`](crate::binary::StbError), available from the
    /// [`binary`](crate::binary) entry points directly).
    Binary(String),
    /// Bytes for a text format were not valid UTF-8.
    NotUtf8 {
        /// Byte offset of the first invalid sequence.
        offset: usize,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::BadLine { line, message } => write!(f, "line {line}: {message}"),
            FormatError::Malformed(e) => write!(f, "malformed trace: {e}"),
            FormatError::Binary(message) => write!(f, "{message}"),
            FormatError::NotUtf8 { offset } => {
                write!(
                    f,
                    "invalid UTF-8 at byte {offset} (binary data in a text format?)"
                )
            }
        }
    }
}

impl Error for FormatError {}

impl From<TraceError> for FormatError {
    fn from(e: TraceError) -> Self {
        FormatError::Malformed(e)
    }
}

impl From<crate::binary::StbError> for FormatError {
    fn from(e: crate::binary::StbError) -> Self {
        match e {
            crate::binary::StbError::Malformed(err) => FormatError::Malformed(err),
            other => FormatError::Binary(other.to_string()),
        }
    }
}

/// Maps external entity names to dense ids: numeric suffixes (`T3`, `V17`,
/// `L2`, or bare numbers) map directly; anything else interns in
/// first-appearance order, above the numeric range already seen.
#[derive(Debug, Default)]
struct Interner {
    named: HashMap<String, u32>,
    next_synthetic: u32,
}

impl Interner {
    fn resolve(&mut self, name: &str, prefix: char) -> u32 {
        let trimmed = name
            .strip_prefix(prefix)
            .or_else(|| name.strip_prefix(prefix.to_ascii_uppercase()))
            .unwrap_or(name);
        if let Ok(n) = trimmed.parse::<u32>() {
            self.next_synthetic = self.next_synthetic.max(n + 1);
            return n;
        }
        if let Some(&id) = self.named.get(name) {
            return id;
        }
        let id = self.next_synthetic;
        self.next_synthetic += 1;
        self.named.insert(name.to_string(), id);
        id
    }
}

#[derive(Debug, Default)]
struct Interners {
    threads: Interner,
    vars: Interner,
    locks: Interner,
    volatiles: Interner,
    condvars: Interner,
    barriers: Interner,
}

fn event_from_parts(
    interners: &mut Interners,
    tid: &str,
    op: &str,
    target: &str,
    loc: Option<u32>,
    line: usize,
) -> Result<Event, FormatError> {
    let t = ThreadId::new(interners.threads.resolve(tid, 't'));
    let op = match op {
        "r" | "read" => Op::Read(VarId::new(interners.vars.resolve(target, 'v'))),
        "w" | "write" => Op::Write(VarId::new(interners.vars.resolve(target, 'v'))),
        "acq" | "acquire" => Op::Acquire(LockId::new(interners.locks.resolve(target, 'l'))),
        "rel" | "release" => Op::Release(LockId::new(interners.locks.resolve(target, 'l'))),
        "acqr" => Op::AcqRead(LockId::new(interners.locks.resolve(target, 'l'))),
        "acqw" => Op::AcqWrite(LockId::new(interners.locks.resolve(target, 'l'))),
        "tryf" => Op::TryAcqFail(LockId::new(interners.locks.resolve(target, 'l'))),
        "fork" => Op::Fork(ThreadId::new(interners.threads.resolve(target, 't'))),
        "join" => Op::Join(ThreadId::new(interners.threads.resolve(target, 't'))),
        "vr" => Op::VolatileRead(VarId::new(interners.volatiles.resolve(target, 'v'))),
        "vw" => Op::VolatileWrite(VarId::new(interners.volatiles.resolve(target, 'v'))),
        "wait" => {
            // Wait has two operands, `<condvar>;<monitor>` (semicolon, so the
            // pair survives the CSV format's comma-separated fields).
            let (c, m) = target.split_once(';').ok_or_else(|| FormatError::BadLine {
                line,
                message: format!("wait wants `wait(C<n>;L<n>)`, got `{target}`"),
            })?;
            Op::Wait(
                CondId::new(interners.condvars.resolve(c.trim(), 'c')),
                LockId::new(interners.locks.resolve(m.trim(), 'l')),
            )
        }
        "notify" => Op::Notify(CondId::new(interners.condvars.resolve(target, 'c'))),
        "notifyall" => Op::NotifyAll(CondId::new(interners.condvars.resolve(target, 'c'))),
        "benter" => Op::BarrierEnter(BarrierId::new(interners.barriers.resolve(target, 'b'))),
        "bexit" => Op::BarrierExit(BarrierId::new(interners.barriers.resolve(target, 'b'))),
        other => {
            return Err(FormatError::BadLine {
                line,
                message: format!("unknown operation `{other}`"),
            })
        }
    };
    let loc = loc.map(Loc::new).unwrap_or(Loc::UNKNOWN);
    Ok(Event::with_loc(t, op, loc))
}

/// Parses the STD (`RAPID`) line format: `<thread>|<op>(<target>)|<loc>`.
///
/// Empty lines and `#` comments are skipped. The trailing `|<loc>` segment
/// is optional.
///
/// # Errors
///
/// [`FormatError::BadLine`] on syntax problems;
/// [`FormatError::Malformed`] if the events violate trace well-formedness
/// (e.g. releasing a lock that is not held).
pub fn parse_std(text: &str) -> Result<Trace, FormatError> {
    let mut interners = Interners::default();
    let mut builder = TraceBuilder::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split('|');
        let tid = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| FormatError::BadLine {
                line,
                message: "missing thread field".into(),
            })?;
        let op_field = parts.next().ok_or_else(|| FormatError::BadLine {
            line,
            message: "missing operation field".into(),
        })?;
        let loc = match parts.next() {
            None | Some("") => None,
            Some(s) => Some(s.trim().parse::<u32>().map_err(|_| FormatError::BadLine {
                line,
                message: format!("bad location `{s}`"),
            })?),
        };
        let (op, target) = split_op(op_field).ok_or_else(|| FormatError::BadLine {
            line,
            message: format!("bad operation syntax `{op_field}` (want `op(target)`)"),
        })?;
        let event = event_from_parts(&mut interners, tid, op, target, loc, line)?;
        builder.push_event(event)?;
    }
    Ok(builder.finish())
}

/// Splits `op(target)` into its parts.
fn split_op(field: &str) -> Option<(&str, &str)> {
    let open = field.find('(')?;
    let close = field.rfind(')')?;
    if close < open {
        return None;
    }
    Some((field[..open].trim(), field[open + 1..close].trim()))
}

/// Renders a trace in the STD line format (inverse of [`parse_std`]).
pub fn render_std(trace: &Trace) -> String {
    let mut out = String::new();
    for e in trace.events() {
        let (op, target) = std_op(&e.op);
        out.push_str(&format!("T{}|{}({})", e.tid.raw(), op, target));
        if e.loc != Loc::UNKNOWN {
            out.push_str(&format!("|{}", e.loc.raw()));
        }
        out.push('\n');
    }
    out
}

fn std_op(op: &Op) -> (&'static str, String) {
    match op {
        Op::Read(x) => ("r", format!("V{}", x.raw())),
        Op::Write(x) => ("w", format!("V{}", x.raw())),
        Op::Acquire(m) => ("acq", format!("L{}", m.raw())),
        Op::Release(m) => ("rel", format!("L{}", m.raw())),
        Op::AcqRead(m) => ("acqr", format!("L{}", m.raw())),
        Op::AcqWrite(m) => ("acqw", format!("L{}", m.raw())),
        Op::TryAcqFail(m) => ("tryf", format!("L{}", m.raw())),
        Op::Fork(t) => ("fork", format!("T{}", t.raw())),
        Op::Join(t) => ("join", format!("T{}", t.raw())),
        Op::VolatileRead(v) => ("vr", format!("V{}", v.raw())),
        Op::VolatileWrite(v) => ("vw", format!("V{}", v.raw())),
        Op::Wait(c, m) => ("wait", format!("C{};L{}", c.raw(), m.raw())),
        Op::Notify(c) => ("notify", format!("C{}", c.raw())),
        Op::NotifyAll(c) => ("notifyall", format!("C{}", c.raw())),
        Op::BarrierEnter(b) => ("benter", format!("B{}", b.raw())),
        Op::BarrierExit(b) => ("bexit", format!("B{}", b.raw())),
    }
}

/// Parses the CSV format: header `tid,op,target,loc`, then one row per
/// event. `loc` may be empty.
///
/// # Errors
///
/// Same classes as [`parse_std`].
pub fn parse_csv(text: &str) -> Result<Trace, FormatError> {
    let mut interners = Interners::default();
    let mut builder = TraceBuilder::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || (line == 1 && trimmed.eq_ignore_ascii_case("tid,op,target,loc")) {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() < 3 {
            return Err(FormatError::BadLine {
                line,
                message: format!("want `tid,op,target[,loc]`, got {} field(s)", fields.len()),
            });
        }
        let loc = match fields.get(3) {
            None | Some(&"") => None,
            Some(s) => Some(s.parse::<u32>().map_err(|_| FormatError::BadLine {
                line,
                message: format!("bad location `{s}`"),
            })?),
        };
        let event = event_from_parts(&mut interners, fields[0], fields[1], fields[2], loc, line)?;
        builder.push_event(event)?;
    }
    Ok(builder.finish())
}

/// Renders a trace as CSV (inverse of [`parse_csv`]).
pub fn render_csv(trace: &Trace) -> String {
    let mut out = String::from("tid,op,target,loc\n");
    for e in trace.events() {
        let (op, target) = std_op(&e.op);
        let loc = if e.loc == Loc::UNKNOWN {
            String::new()
        } else {
            e.loc.raw().to_string()
        };
        out.push_str(&format!("T{},{},{},{}\n", e.tid.raw(), op, target, loc));
    }
    out
}

/// The trace formats understood by [`parse_bytes`]/[`render_bytes`] (and
/// the CLI's `--format` flag).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceFormat {
    /// The native line format ([`crate::fmt`]).
    #[default]
    Native,
    /// The STD/`RAPID` pipe format.
    Std,
    /// Comma-separated rows.
    Csv,
    /// The STB binary format ([`crate::binary`]).
    Stb,
}

impl TraceFormat {
    /// Returns `true` for the binary format (STB), whose byte stream is not
    /// text and cannot go through [`parse_as`]/[`render_as`].
    pub const fn is_binary(self) -> bool {
        matches!(self, TraceFormat::Stb)
    }

    /// The conventional file extension for the format.
    pub const fn extension(self) -> &'static str {
        match self {
            TraceFormat::Native => "trace",
            TraceFormat::Std => "std",
            TraceFormat::Csv => "csv",
            TraceFormat::Stb => "stb",
        }
    }
}

impl std::str::FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "native" => Ok(TraceFormat::Native),
            "std" | "rapid" => Ok(TraceFormat::Std),
            "csv" => Ok(TraceFormat::Csv),
            "stb" | "binary" => Ok(TraceFormat::Stb),
            other => Err(format!(
                "unknown trace format `{other}` (native, std, csv, stb)"
            )),
        }
    }
}

impl fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFormat::Native => write!(f, "native"),
            TraceFormat::Std => write!(f, "std"),
            TraceFormat::Csv => write!(f, "csv"),
            TraceFormat::Stb => write!(f, "stb"),
        }
    }
}

/// Parses `text` in the given *text* format.
///
/// # Errors
///
/// Syntax and well-formedness errors as [`FormatError`] (native-format
/// errors are converted to the same type). For [`TraceFormat::Stb`] — whose
/// byte stream is not text — this always fails; use [`parse_bytes`], which
/// handles all four formats.
pub fn parse_as(text: &str, format: TraceFormat) -> Result<Trace, FormatError> {
    match format {
        TraceFormat::Native => crate::fmt::parse(text).map_err(|e| match e {
            crate::fmt::ParseError::BadLine { line, message } => {
                FormatError::BadLine { line, message }
            }
            crate::fmt::ParseError::Malformed(err) => FormatError::Malformed(err),
        }),
        TraceFormat::Std => parse_std(text),
        TraceFormat::Csv => parse_csv(text),
        TraceFormat::Stb => Err(FormatError::Binary(
            "STB is a binary format; decode bytes with `parse_bytes` or \
             `binary::read_stb` instead of `parse_as`"
                .to_string(),
        )),
    }
}

/// Renders `trace` in the given *text* format.
///
/// # Panics
///
/// Panics for [`TraceFormat::Stb`], whose output is not text — use
/// [`render_bytes`], which handles all four formats.
pub fn render_as(trace: &Trace, format: TraceFormat) -> String {
    match format {
        TraceFormat::Native => crate::fmt::render(trace),
        TraceFormat::Std => render_std(trace),
        TraceFormat::Csv => render_csv(trace),
        TraceFormat::Stb => panic!("STB is binary; render bytes with `render_bytes`"),
    }
}

/// Parses `bytes` in the given format (text formats are decoded as UTF-8).
///
/// # Errors
///
/// [`FormatError::NotUtf8`] for binary garbage handed to a text format;
/// otherwise the same classes as [`parse_as`] / the STB decoder.
///
/// # Examples
///
/// ```
/// use smarttrack_trace::formats::{self, TraceFormat};
/// use smarttrack_trace::paper;
///
/// let trace = paper::figure1();
/// for format in [TraceFormat::Native, TraceFormat::Std, TraceFormat::Csv, TraceFormat::Stb] {
///     let bytes = formats::render_bytes(&trace, format);
///     assert_eq!(formats::parse_bytes(&bytes, format)?, trace);
/// }
/// # Ok::<(), smarttrack_trace::formats::FormatError>(())
/// ```
pub fn parse_bytes(bytes: &[u8], format: TraceFormat) -> Result<Trace, FormatError> {
    match format {
        TraceFormat::Stb => Ok(crate::binary::from_stb_bytes(bytes)?),
        text_format => {
            let text = std::str::from_utf8(bytes).map_err(|e| FormatError::NotUtf8 {
                offset: e.valid_up_to(),
            })?;
            parse_as(text, text_format)
        }
    }
}

/// Renders `trace` in the given format as bytes (the inverse of
/// [`parse_bytes`]).
pub fn render_bytes(trace: &Trace, format: TraceFormat) -> Vec<u8> {
    match format {
        TraceFormat::Stb => crate::binary::to_stb_bytes(trace),
        text_format => render_as(trace, text_format).into_bytes(),
    }
}

/// Identifies a format from content alone: currently recognizes the STB
/// magic number. Returns `None` for anything else (the text formats are not
/// reliably distinguishable from each other by content, so extension-based
/// selection applies — see [`format_of_path`]).
pub fn sniff(bytes: &[u8]) -> Option<TraceFormat> {
    bytes
        .starts_with(&crate::binary::STB_MAGIC)
        .then_some(TraceFormat::Stb)
}

/// Picks a format from a path's extension: `.stb` → STB, `.std`/`.rapid` →
/// STD, `.csv` → CSV, anything else → the native line format.
pub fn format_of_path<P: AsRef<std::path::Path>>(path: P) -> TraceFormat {
    match path
        .as_ref()
        .extension()
        .and_then(|e| e.to_str())
        .map(str::to_ascii_lowercase)
        .as_deref()
    {
        Some("stb") => TraceFormat::Stb,
        Some("std") | Some("rapid") => TraceFormat::Std,
        Some("csv") => TraceFormat::Csv,
        _ => TraceFormat::Native,
    }
}

/// Reads a trace file with format auto-detection: content sniffing
/// ([`sniff`]) wins, then the path extension ([`format_of_path`]). An STB
/// file therefore loads correctly whatever it is named.
///
/// # Errors
///
/// I/O errors as-is; parse and decode failures wrapped as
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_file<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<Trace> {
    let bytes = std::fs::read(&path)?;
    let format = sniff(&bytes).unwrap_or_else(|| format_of_path(&path));
    parse_bytes(&bytes, format)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Writes a trace file in the format chosen by the path's extension
/// ([`format_of_path`]); the inverse of [`read_file`].
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_file<P: AsRef<std::path::Path>>(trace: &Trace, path: P) -> std::io::Result<()> {
    std::fs::write(&path, render_bytes(trace, format_of_path(&path)))
}

/// Extensions recognized as trace files by the corpus helpers
/// ([`corpus_paths`]): the four conventional format extensions plus the
/// common text spellings.
pub const TRACE_EXTENSIONS: &[&str] = &["trace", "stb", "std", "rapid", "csv", "txt"];

/// Returns `true` if the path's extension marks it as a trace file
/// (case-insensitively; see [`TRACE_EXTENSIONS`]).
pub fn is_trace_path<P: AsRef<std::path::Path>>(path: P) -> bool {
    path.as_ref()
        .extension()
        .and_then(|e| e.to_str())
        .map(str::to_ascii_lowercase)
        .is_some_and(|ext| TRACE_EXTENSIONS.contains(&ext.as_str()))
}

/// Expands one corpus argument into a sorted list of trace-file paths —
/// the iteration primitive batch drivers share (the CLI `batch` command,
/// examples, tests):
///
/// * a **directory** yields every trace file directly inside it (by
///   extension, see [`is_trace_path`]; non-recursive, so a corpus
///   directory can hold reports and notes beside its traces);
/// * a path whose final component contains `*` is a **glob** over that
///   directory (`corpus/xalan-*.stb`; `*` matches any run of characters;
///   a `*` in any *other* component is rejected as
///   [`InvalidInput`](std::io::ErrorKind::InvalidInput) rather than
///   silently treated as a literal file name);
/// * anything else is returned as-is (one explicit file — whatever its
///   extension, so `smarttrack batch odd.name` still works).
///
/// The result is sorted (lexicographically by path) so corpora enumerate
/// deterministically on every file system.
///
/// # Errors
///
/// I/O errors from reading the directory. An empty result is not an error
/// here; callers decide whether an empty corpus is acceptable.
pub fn corpus_paths(arg: &str) -> std::io::Result<Vec<std::path::PathBuf>> {
    use std::path::{Path, PathBuf};

    let path = Path::new(arg);
    let mut found: Vec<PathBuf> = if path.is_dir() {
        std::fs::read_dir(path)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|entry| entry.path())
            .filter(|p| p.is_file() && is_trace_path(p))
            .collect()
    } else if let Some(pattern) = path
        .file_name()
        .and_then(|n| n.to_str())
        .filter(|n| n.contains('*'))
    {
        let dir = match path.parent() {
            Some(parent) if !parent.as_os_str().is_empty() => parent,
            _ => Path::new("."),
        };
        if dir.to_str().is_some_and(|d| d.contains('*')) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "only the final path component may contain `*`",
            ));
        }
        std::fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|entry| entry.path())
            .filter(|p| {
                p.is_file()
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|name| glob_matches(pattern, name))
            })
            .collect()
    } else {
        if arg.contains('*') {
            // A `*` in a directory component would otherwise fall through
            // to the explicit-file branch and fail as a baffling per-job
            // "No such file" — reject it up front instead.
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "only the final path component may contain `*`",
            ));
        }
        vec![path.to_path_buf()]
    };
    found.sort();
    Ok(found)
}

/// Matches a `*`-only glob `pattern` against `name` (no `?`, no character
/// classes — the subset corpus arguments need). The first literal anchors
/// at the start, the last at the end; middle literals match leftmost in
/// order (each `*` absorbs any run of characters, so leftmost is never
/// wrong).
fn glob_matches(pattern: &str, name: &str) -> bool {
    let parts: Vec<&str> = pattern.split('*').collect();
    if parts.len() == 1 {
        return pattern == name;
    }
    let Some(mut rest) = name.strip_prefix(parts[0]) else {
        return false;
    };
    for part in &parts[1..parts.len() - 1] {
        if part.is_empty() {
            continue;
        }
        match rest.find(part) {
            Some(at) => rest = &rest[at + part.len()..],
            None => return false,
        }
    }
    rest.ends_with(parts[parts.len() - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn glob_matching_covers_star_shapes() {
        assert!(glob_matches("*", "anything.stb"));
        assert!(glob_matches("xalan-*.stb", "xalan-11.stb"));
        assert!(!glob_matches("xalan-*.stb", "avrora-11.stb"));
        assert!(!glob_matches("xalan-*.stb", "xalan-11.stb.bak"));
        assert!(glob_matches("a*b", "aXbYb"), "star is greedy enough");
        assert!(glob_matches("a*b*c", "abc"), "stars may be empty");
        assert!(
            !glob_matches("a*b*b", "aXb"),
            "each literal needs its own text"
        );
        assert!(glob_matches("plain.trace", "plain.trace"));
        assert!(!glob_matches("plain.trace", "other.trace"));
    }

    #[test]
    fn corpus_paths_expand_dirs_globs_and_files() {
        let dir = std::env::temp_dir().join(format!("st-corpus-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["b.stb", "a.trace", "c.std", "notes.md", "x.csv"] {
            std::fs::write(dir.join(name), b"").unwrap();
        }
        let dir_str = dir.display().to_string();

        // Directory: trace extensions only, sorted.
        let names = |paths: Vec<std::path::PathBuf>| -> Vec<String> {
            paths
                .iter()
                .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
                .collect()
        };
        assert_eq!(
            names(corpus_paths(&dir_str).unwrap()),
            ["a.trace", "b.stb", "c.std", "x.csv"]
        );
        // Glob within the directory.
        let glob = format!("{dir_str}/*.st*");
        assert_eq!(names(corpus_paths(&glob).unwrap()), ["b.stb", "c.std"]);
        // A single explicit file passes through whatever its extension.
        let md = dir.join("notes.md").display().to_string();
        assert_eq!(names(corpus_paths(&md).unwrap()), ["notes.md"]);
        // `*` outside the final component is a clear error, not a literal.
        for bad in ["runs-*/x.stb".to_string(), format!("{dir_str}/*/x.stb")] {
            let err = corpus_paths(&bad).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "{bad}");
            assert!(err.to_string().contains("final path component"), "{err}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn std_round_trips_paper_figures() {
        for (name, tr) in paper::all_figures() {
            let text = render_std(&tr);
            let back = parse_std(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back, tr, "{name}");
        }
    }

    #[test]
    fn csv_round_trips_paper_figures() {
        for (name, tr) in paper::all_figures() {
            let back = parse_csv(&render_csv(&tr)).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back, tr, "{name}");
        }
    }

    #[test]
    fn std_round_trips_random_traces() {
        use crate::gen::RandomTraceSpec;
        for seed in 0..10 {
            let tr = RandomTraceSpec::default().generate(seed);
            assert_eq!(parse_std(&render_std(&tr)).expect("round trip"), tr);
            assert_eq!(parse_csv(&render_csv(&tr)).expect("round trip"), tr);
        }
    }

    #[test]
    fn condvar_and_barrier_ops_round_trip_all_formats() {
        use crate::gen::RandomTraceSpec;
        for seed in 0..6 {
            let tr = RandomTraceSpec::tiny_sync().generate(seed);
            for format in [
                TraceFormat::Native,
                TraceFormat::Std,
                TraceFormat::Csv,
                TraceFormat::Stb,
            ] {
                let bytes = render_bytes(&tr, format);
                assert_eq!(
                    parse_bytes(&bytes, format).expect("round trip"),
                    tr,
                    "{format} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn rwlock_ops_round_trip_all_formats() {
        let text = "T0|acqw(L0)|1\nT0|rel(L0)|2\nT1|acqr(L0)|3\nT2|acqr(L0)|4\n\
                    T0|tryf(L0)|5\nT1|rel(L0)|6\nT2|rel(L0)|7\n";
        let tr = parse_std(text).expect("parses");
        assert_eq!(tr.num_locks(), 1);
        for format in [
            TraceFormat::Native,
            TraceFormat::Std,
            TraceFormat::Csv,
            TraceFormat::Stb,
        ] {
            let bytes = render_bytes(&tr, format);
            assert_eq!(
                parse_bytes(&bytes, format).expect("round trip"),
                tr,
                "{format}"
            );
        }
    }

    #[test]
    fn wait_target_uses_a_semicolon_pair() {
        let tr = parse_std("T0|acq(L0)|1\nT1|notify(C0)|2\nT0|wait(C0;L0)|3\nT0|rel(L0)|4\n")
            .expect("parses");
        assert_eq!(tr.num_condvars(), 1);
        assert!(render_std(&tr).contains("wait(C0;L0)"));
        // CSV keeps its comma-separated fields intact.
        let csv = render_csv(&tr);
        assert_eq!(parse_csv(&csv).unwrap(), tr);
        let err = parse_std("T0|acq(L0)|1\nT0|wait(C0)|2\n").unwrap_err();
        assert!(matches!(err, FormatError::BadLine { line: 2, .. }), "{err}");
    }

    #[test]
    fn accepts_comments_blank_lines_and_missing_locs() {
        let text = "\n# a comment\nT0|r(V0)\n\nT1|w(V0)|9\n";
        let tr = parse_std(text).expect("parses");
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.events()[0].loc, Loc::UNKNOWN);
        assert_eq!(tr.events()[1].loc, Loc::new(9));
    }

    #[test]
    fn interns_symbolic_names_stably() {
        let text = "main|acq(guard)|1\nmain|w(counter)|2\nmain|rel(guard)|3\nworker|r(counter)|4\n";
        let tr = parse_std(text).expect("parses");
        assert_eq!(tr.num_threads(), 2);
        // `counter` interned once: both accesses hit the same variable.
        let vars: Vec<_> = tr
            .events()
            .iter()
            .filter_map(|e| e.op.access_var())
            .collect();
        assert_eq!(vars[0], vars[1]);
    }

    #[test]
    fn numeric_and_symbolic_names_do_not_collide() {
        let text = "T0|w(V5)|1\nT0|w(data)|2\nT0|w(V5)|3\n";
        let tr = parse_std(text).expect("parses");
        let vars: Vec<_> = tr
            .events()
            .iter()
            .filter_map(|e| e.op.access_var())
            .collect();
        assert_eq!(vars[0], vars[2], "V5 stays V5");
        assert_ne!(vars[0], vars[1], "`data` interns above the numeric range");
    }

    #[test]
    fn rejects_unknown_operations() {
        let err = parse_std("T0|frobnicate(V0)|1").unwrap_err();
        assert!(matches!(err, FormatError::BadLine { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_bad_syntax_with_line_numbers() {
        let err = parse_std("T0|r(V0)|1\nnot a line\n").unwrap_err();
        match err {
            FormatError::BadLine { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn rejects_ill_formed_lock_usage() {
        let err = parse_std("T0|rel(L0)|1").unwrap_err();
        assert!(matches!(err, FormatError::Malformed(_)), "{err}");
    }

    #[test]
    fn csv_header_is_optional_but_skipped() {
        let with = parse_csv("tid,op,target,loc\nT0,w,V0,1\n").expect("with header");
        let without = parse_csv("T0,w,V0,1\n").expect("without header");
        assert_eq!(with, without);
    }

    #[test]
    fn format_names_parse() {
        assert_eq!("std".parse::<TraceFormat>(), Ok(TraceFormat::Std));
        assert_eq!("RAPID".parse::<TraceFormat>(), Ok(TraceFormat::Std));
        assert_eq!("csv".parse::<TraceFormat>(), Ok(TraceFormat::Csv));
        assert_eq!("native".parse::<TraceFormat>(), Ok(TraceFormat::Native));
        assert_eq!("stb".parse::<TraceFormat>(), Ok(TraceFormat::Stb));
        assert_eq!("binary".parse::<TraceFormat>(), Ok(TraceFormat::Stb));
        assert!("xml".parse::<TraceFormat>().is_err());
        assert_eq!(TraceFormat::Std.to_string(), "std");
        assert_eq!(TraceFormat::Stb.to_string(), "stb");
    }

    #[test]
    fn parse_as_dispatches_all_text_formats() {
        let tr = paper::figure1();
        for format in [TraceFormat::Native, TraceFormat::Std, TraceFormat::Csv] {
            let text = render_as(&tr, format);
            assert_eq!(parse_as(&text, format).expect("round trip"), tr, "{format}");
        }
    }

    #[test]
    fn parse_bytes_dispatches_all_formats() {
        let tr = paper::figure2();
        for format in [
            TraceFormat::Native,
            TraceFormat::Std,
            TraceFormat::Csv,
            TraceFormat::Stb,
        ] {
            let bytes = render_bytes(&tr, format);
            assert_eq!(
                parse_bytes(&bytes, format).expect("round trip"),
                tr,
                "{format}"
            );
        }
    }

    #[test]
    fn parse_as_refuses_the_binary_format_without_panicking() {
        let err = parse_as("anything", TraceFormat::Stb).unwrap_err();
        assert!(matches!(err, FormatError::Binary(_)), "{err}");
    }

    #[test]
    fn binary_bytes_in_a_text_format_are_a_utf8_error() {
        let bytes = render_bytes(&paper::figure1(), TraceFormat::Stb);
        let err = parse_bytes(&bytes, TraceFormat::Native).unwrap_err();
        assert!(matches!(err, FormatError::NotUtf8 { .. }), "{err}");
    }

    #[test]
    fn sniffing_recognizes_stb_and_defers_on_text() {
        let tr = paper::figure1();
        assert_eq!(
            sniff(&render_bytes(&tr, TraceFormat::Stb)),
            Some(TraceFormat::Stb)
        );
        assert_eq!(sniff(&render_bytes(&tr, TraceFormat::Native)), None);
        assert_eq!(sniff(b""), None);
    }

    #[test]
    fn format_of_path_maps_extensions() {
        assert_eq!(format_of_path("a/b.stb"), TraceFormat::Stb);
        assert_eq!(format_of_path("a/b.STD"), TraceFormat::Std);
        assert_eq!(format_of_path("a/b.rapid"), TraceFormat::Std);
        assert_eq!(format_of_path("a/b.csv"), TraceFormat::Csv);
        assert_eq!(format_of_path("a/b.trace"), TraceFormat::Native);
        assert_eq!(format_of_path("noext"), TraceFormat::Native);
        for f in [
            TraceFormat::Native,
            TraceFormat::Std,
            TraceFormat::Csv,
            TraceFormat::Stb,
        ] {
            assert_eq!(format_of_path(format!("t.{}", f.extension())), f);
        }
    }

    #[test]
    fn file_round_trip_honors_extension_and_sniffing() {
        let dir = std::env::temp_dir().join("smarttrack-formats-test");
        std::fs::create_dir_all(&dir).unwrap();
        let tr = paper::figure3();
        for ext in ["trace", "std", "csv", "stb"] {
            let path = dir.join(format!("auto-{}.{ext}", std::process::id()));
            write_file(&tr, &path).unwrap();
            assert_eq!(read_file(&path).unwrap(), tr, ".{ext}");
            std::fs::remove_file(&path).ok();
        }
        // Sniffing beats a lying extension: STB bytes in a `.trace` file.
        let path = dir.join(format!("lying-{}.trace", std::process::id()));
        std::fs::write(&path, render_bytes(&tr, TraceFormat::Stb)).unwrap();
        assert_eq!(read_file(&path).unwrap(), tr);
        std::fs::remove_file(&path).ok();
    }
}
